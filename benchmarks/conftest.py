"""Benchmark fixtures.

Each benchmark regenerates one of the paper's tables or figures and records
the headline numbers in ``benchmark.extra_info`` (paper value vs. measured).
A single session-scoped lab shares traces and simulations across benchmarks,
so the suite's cost is dominated by the distinct simulations, not repeats.

Set ``REPRO_TIER=full`` for the full-size runs (more inputs, more slices).
"""

import os

import pytest

os.environ.setdefault("REPRO_TIER", "quick")

from repro.experiments.config import active_tier  # noqa: E402
from repro.experiments.lab import Lab  # noqa: E402


@pytest.fixture(scope="session")
def lab():
    return Lab(tier=active_tier())


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment driver exactly once under pytest-benchmark.

    Experiment results are cached inside the lab, so repeated timing rounds
    would only measure cache hits; a single round reports the true
    regeneration cost.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
