#!/usr/bin/env python3
"""Perf-trajectory driver: record the repo's pinned performance numbers.

Thin wrapper over ``python -m repro.bench`` for people browsing the
``benchmarks/`` directory; both entry points run the same scenarios and
write the same schema-versioned ``BENCH_core.json`` at the repo root.

    PYTHONPATH=src python benchmarks/perf_trajectory.py [--only SCENARIO] ...

The committed ``benchmarks/baseline.json`` is simply a previous output of
this driver, promoted; refresh it by copying a new ``BENCH_core.json``
over it when a performance change is intentional.  CI runs this on every
push and fails only on schema errors or a regression beyond the tolerance
band — see docs/benchmarking.md.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench.__main__ import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
