"""Ablation benchmarks for the design choices DESIGN.md calls out.

These quantify component contributions and cross-validate the two IPC
models — the kind of evidence a reviewer would ask for when judging the
substitutions the reproduction makes.
"""

import pytest
from conftest import run_once

from repro.pipeline.model import EventFrontEndModel, IntervalIpcModel
from repro.pipeline.config import SKYLAKE_LIKE
from repro.pipeline.simulator import simulate_trace
from repro.predictors.simple import Bimodal, GShare
from repro.predictors.perceptron import Perceptron
from repro.predictors.ppm import PPM
from repro.predictors.gehl import OGehl
from repro.predictors.tournament import Tournament
from repro.predictors.tage import Tage, TageConfig
from repro.predictors.tagescl import make_tage_sc_l
from repro.workloads import WORKLOADS_BY_NAME, trace_workload

_BENCH = "605.mcf_s"
_INSTR = 300_000


@pytest.fixture(scope="module")
def trace():
    return trace_workload(WORKLOADS_BY_NAME[_BENCH], 0, instructions=_INSTR).trace


def test_predictor_family_ladder(benchmark, trace):
    """Accuracy ladder across predictor families (Sec. II's taxonomy).

    The TAGE family should dominate: bimodal < gshare < perceptron/PPM <
    TAGE < TAGE-SC-L on the H2P-heavy workload.
    """

    def run_ladder():
        predictors = {
            "bimodal": Bimodal(),
            "gshare": GShare(),
            "perceptron": Perceptron(),
            "tournament": Tournament(),
            "o-gehl": OGehl(),
            "ppm": PPM(),
            "tage": Tage(TageConfig()),
            "tage-sc-l-8kb": make_tage_sc_l(8),
        }
        return {
            name: simulate_trace(trace, p).accuracy
            for name, p in predictors.items()
        }

    accs = run_once(benchmark, run_ladder)
    print()
    for name, acc in sorted(accs.items(), key=lambda kv: kv[1]):
        print(f"  {name:16s} {acc:.4f}")
    for name, acc in accs.items():
        benchmark.extra_info[name] = round(acc, 4)
    assert accs["tage-sc-l-8kb"] >= accs["bimodal"]
    assert accs["tage"] >= accs["gshare"]


def test_sc_and_loop_component_ablation(benchmark, trace):
    """TAGE-SC-L component ablation: contribution of the SC and L parts."""

    def run_ablation():
        variants = {
            "full": make_tage_sc_l(8),
            "no-sc": make_tage_sc_l(8, enable_sc=False),
            "no-loop": make_tage_sc_l(8, enable_loop=False),
            "tage-only": make_tage_sc_l(8, enable_sc=False, enable_loop=False),
        }
        return {
            name: simulate_trace(trace, p).mispredictions
            for name, p in variants.items()
        }

    mis = run_once(benchmark, run_ablation)
    print()
    for name, m in mis.items():
        print(f"  {name:10s} {m} mispredictions")
        benchmark.extra_info[name] = m
    # Components never hurt by much on this workload.
    assert mis["full"] <= mis["tage-only"] * 1.1


def test_history_length_ablation(benchmark, trace):
    """Geometric-series reach: longer max history helps H2P workloads."""

    def run_sweep():
        out = {}
        for max_hist in (64, 256, 1000):
            cfg = TageConfig.uniform(
                num_tables=10, log_entries=8, min_history=5, max_history=max_hist
            )
            out[max_hist] = simulate_trace(trace, Tage(cfg)).accuracy
        return out

    accs = run_once(benchmark, run_sweep)
    print()
    for h, acc in accs.items():
        print(f"  max_history={h:5d}: {acc:.4f}")
        benchmark.extra_info[f"max_hist_{h}"] = round(acc, 4)
    assert accs[1000] >= accs[64] - 0.01


def test_interval_vs_event_ipc_model(benchmark, trace):
    """Cross-validation of the two IPC models on real misprediction
    positions: they must agree on ordering and stay within ~25%."""

    def run_models():
        result = simulate_trace(
            trace, make_tage_sc_l(8), record_mispredict_positions=True
        )
        interval = IntervalIpcModel(SKYLAKE_LIKE).cycles(
            result.instr_count, result.mispredictions
        )
        event = EventFrontEndModel(SKYLAKE_LIKE).cycles(
            result.instr_count, result.mispredict_positions
        )
        return interval, event

    interval, event = run_once(benchmark, run_models)
    ratio = event / interval
    print(f"\n  interval={interval:.0f} cycles, event={event:.0f}, ratio={ratio:.3f}")
    benchmark.extra_info["event_over_interval"] = round(ratio, 3)
    assert 1.0 <= ratio < 1.6


def test_quantization_ablation(benchmark):
    """CNN helper quantization: float vs 2-bit (with and without QAT)."""
    from repro.experiments.cnn_study import STUDY_CONFIG
    from repro.predictors.cnn_helper import CnnHelperPredictor, extract_branch_dataset
    from repro.workloads.helper_study import HELPER_STUDY_WORKLOAD, h2p_branch_ip

    def run_quant():
        wt0 = trace_workload(HELPER_STUDY_WORKLOAD, 0)
        wt1 = trace_workload(HELPER_STUDY_WORKLOAD, 1)
        ip = h2p_branch_ip(wt0.metadata["program"])
        X0, y0 = extract_branch_dataset(wt0.trace, ip, STUDY_CONFIG.history_length)
        X1, y1 = extract_branch_dataset(wt1.trace, ip, STUDY_CONFIG.history_length)
        out = {}
        helper = CnnHelperPredictor(ip, STUDY_CONFIG)
        helper.train(X0, y0)
        out["float"] = helper.accuracy(X1, y1)
        naive = CnnHelperPredictor(ip, STUDY_CONFIG)
        naive.train(X0, y0)
        naive.quantize(2)
        out["2bit-naive"] = naive.accuracy(X1, y1)
        qat = CnnHelperPredictor(ip, STUDY_CONFIG)
        qat.train(X0, y0)
        qat.quantize(2, finetune_histories=X0, finetune_outcomes=y0)
        out["2bit-qat"] = qat.accuracy(X1, y1)
        return out

    accs = run_once(benchmark, run_quant)
    print()
    for name, acc in accs.items():
        print(f"  {name:12s} {acc:.4f}")
        benchmark.extra_info[name] = round(acc, 4)
    assert accs["2bit-qat"] >= accs["2bit-naive"] - 0.02
    assert accs["float"] >= accs["2bit-qat"] - 0.02


def test_tage_reallocation_policy_ablation(benchmark, trace):
    """TAGE usefulness/reallocation policy: how fast the `useful` bits age
    determines how aggressively entries are recycled.  H2P-heavy streams
    prefer faster aging (thrashing entries are reclaimed sooner)."""

    def run_sweep():
        out = {}
        for period in (1 << 12, 1 << 16, 1 << 20):
            cfg = TageConfig.uniform(
                num_tables=10, log_entries=8, min_history=5, max_history=1000,
                useful_reset_period=period,
            )
            out[period] = simulate_trace(trace, Tage(cfg)).accuracy
        return out

    accs = run_once(benchmark, run_sweep)
    print()
    for period, acc in accs.items():
        print(f"  reset period {period:>8d}: {acc:.4f}")
        benchmark.extra_info[f"reset_{period}"] = round(acc, 4)
    spread = max(accs.values()) - min(accs.values())
    benchmark.extra_info["policy_spread"] = round(spread, 4)
    assert spread < 0.05  # policy matters, but is second-order


def test_predictor_throughput(benchmark):
    """Raw predictor throughput (predict+update pairs per second) — the
    simulation-cost model behind the tier sizing."""
    predictor = make_tage_sc_l(8)
    ips = [0x1000 + 16 * (i % 300) for i in range(2000)]
    takens = [(i * 7) % 3 == 0 for i in range(2000)]

    def run_block():
        for ip, taken in zip(ips, takens):
            predictor.predict(ip)
            predictor.update(ip, taken)

    benchmark.pedantic(run_block, rounds=5, iterations=1, warmup_rounds=1)
    benchmark.extra_info["branches_per_call"] = len(ips)


def test_wormhole_on_multidimensional_branch(benchmark):
    """Domain-specific model ablation: the wormhole predictor vs TAGE-SC-L
    8KB on a multidimensional loop branch (a 200-bit row re-scanned every
    outer iteration amid history-polluting noise branches)."""
    import random

    from repro.predictors.wormhole import Wormhole

    rng = random.Random(1)
    row = [rng.random() < 0.5 for _ in range(200)]
    events = []
    for _ in range(30):
        for bit in row:
            events.append((0x40, bool(bit)))
            for _ in range(3):
                events.append((0x1000 + rng.randrange(40) * 16,
                               rng.random() < 0.5))

    def run_pair():
        def drive(p, with_rows):
            correct = total = seen = 0
            for ip, taken in events:
                pred = p.predict(ip)
                if ip == 0x40:
                    seen += 1
                    if seen > 1200:
                        total += 1
                        correct += pred == taken
                p.update(ip, taken)
                if with_rows and ip == 0x40 and seen % 200 == 0:
                    p.note_row_boundary(0x40)
            return correct / total

        return {
            "wormhole": drive(Wormhole(), True),
            "tage-sc-l-8kb": drive(make_tage_sc_l(8), False),
        }

    accs = run_once(benchmark, run_pair)
    print()
    for name, acc in accs.items():
        print(f"  {name:14s} {acc:.4f}")
        benchmark.extra_info[name] = round(acc, 4)
    assert accs["wormhole"] > accs["tage-sc-l-8kb"]


def test_three_ipc_models_cross_validation(benchmark, trace):
    """All three IPC models (interval, event, fetch-break) on the same
    simulation: orderings must agree and estimates stay within a small
    factor — evidence the substitution for ChampSim is not model-fragile."""
    from repro.pipeline.model import FetchBreakModel

    def run_models():
        result = simulate_trace(
            trace, make_tage_sc_l(8), record_mispredict_positions=True
        )
        interval = IntervalIpcModel(SKYLAKE_LIKE).evaluate(
            result.instr_count, result.mispredictions
        )
        event = EventFrontEndModel(SKYLAKE_LIKE).evaluate(
            result.instr_count, result.mispredict_positions
        )
        fetch = FetchBreakModel(SKYLAKE_LIKE).evaluate(trace, result.mispredictions)
        return interval.ipc, event.ipc, fetch.ipc

    interval, event, fetch = run_once(benchmark, run_models)
    print(f"\n  interval={interval:.3f}  event={event:.3f}  fetch-break={fetch:.3f}")
    benchmark.extra_info["interval_ipc"] = round(interval, 3)
    benchmark.extra_info["event_ipc"] = round(event, 3)
    benchmark.extra_info["fetch_break_ipc"] = round(fetch, 3)
    assert 0.3 < fetch / interval < 3.0
    assert event <= interval + 1e-9


def test_indirect_target_prediction(benchmark):
    """Front-end substrate ablation: last-target (BTB-style) vs ITTAGE on an
    interpreter-like indirect branch whose target follows the recent opcode
    history, plus the uniform-dispatch worst case."""
    import random

    from repro.predictors.targets import Ittage

    rng = random.Random(5)
    # Interpreter-like: 12 "opcodes" emitted by cycling through 4 short
    # basic-block sequences (so the next target correlates with history).
    sequences = [
        [0x3000 + 64 * o for o in seq]
        for seq in ([0, 1, 2], [3, 4, 0, 5], [6, 7], [8, 9, 10, 11, 2])
    ]
    stream = []
    for _ in range(600):
        stream.extend(sequences[rng.randrange(4)])

    def run_comparison():
        def drive(predictor_kind):
            last = None
            p = Ittage()
            correct = total = 0
            for i, t in enumerate(stream):
                pred = last if predictor_kind == "last-target" else p.predict(0x80)
                if i > len(stream) // 2:
                    total += 1
                    correct += pred == t
                if predictor_kind == "ittage":
                    p.update(0x80, t, pred)
                last = t
            return correct / total

        return {
            "last-target": drive("last-target"),
            "ittage": drive("ittage"),
        }

    accs = run_once(benchmark, run_comparison)
    print()
    for name, acc in accs.items():
        print(f"  {name:12s} {acc:.4f}")
        benchmark.extra_info[name] = round(acc, 4)
    assert accs["ittage"] > accs["last-target"] + 0.2
