"""Benchmarks regenerating the paper's Figures 1-10."""

from conftest import run_once

from repro.experiments.fig1 import compute_fig1
from repro.experiments.fig2 import compute_fig2
from repro.experiments.fig3 import compute_fig3, compute_fig4
from repro.experiments.fig5 import compute_fig5
from repro.experiments.fig7 import compute_fig7
from repro.experiments.fig8 import compute_fig8
from repro.experiments.fig9 import compute_fig9
from repro.experiments.fig10 import compute_fig10


def test_fig1_pipeline_scaling_specint(benchmark, lab):
    """Fig. 1: relative IPC vs pipeline capacity scaling (SPECint-like)."""
    study = run_once(benchmark, compute_fig1, lab)
    print()
    print(study.render())
    benchmark.extra_info["paper_opportunity_1x"] = 0.185
    benchmark.extra_info["measured_opportunity_1x"] = round(study.opportunity_at(1), 3)
    benchmark.extra_info["paper_opportunity_4x"] = 0.553
    benchmark.extra_info["measured_opportunity_4x"] = round(study.opportunity_at(4), 3)
    benchmark.extra_info["paper_h2p_share_1x"] = 0.757
    benchmark.extra_info["measured_h2p_share_1x"] = round(study.h2p_share_at(1), 3)
    big_gain = study.curve("tage-sc-l-64kb").at(1) / study.curve("tage-sc-l-8kb").at(1) - 1
    benchmark.extra_info["paper_64kb_gain_1x"] = 0.027
    benchmark.extra_info["measured_64kb_gain_1x"] = round(big_gain, 3)


def test_fig2_heavy_hitters(benchmark, lab):
    """Fig. 2: cumulative misprediction fraction of ranked heavy hitters."""
    fig = run_once(benchmark, compute_fig2, lab)
    print()
    print(fig.render())
    benchmark.extra_info["paper_top5_coverage"] = 0.37
    benchmark.extra_info["measured_top5_coverage"] = round(fig.mean_coverage_top(5), 3)


def test_fig3_rare_branch_distributions(benchmark, lab):
    """Fig. 3: per-branch misprediction/execution/accuracy histograms (LCF)."""
    fig = run_once(benchmark, compute_fig3, lab)
    print()
    print(fig.render())
    d = fig.distributions
    benchmark.extra_info["paper_frac_below_100_execs"] = 0.85
    benchmark.extra_info["measured_frac_below_100_execs_scaled"] = round(
        d.executions.fractions[0], 3
    )
    benchmark.extra_info["paper_frac_acc_above_099"] = 0.55
    benchmark.extra_info["measured_frac_acc_above_099"] = round(
        d.accuracy.fractions[-1], 3
    )


def test_fig4_accuracy_spread(benchmark, lab):
    """Fig. 4: accuracy spread of rare branches."""
    fig = run_once(benchmark, compute_fig4, lab)
    print()
    print(fig.render())
    benchmark.extra_info["paper_first_bin_std"] = 0.35
    benchmark.extra_info["measured_first_bin_std"] = round(fig.spread.bin_std[0], 3)


def test_fig5_pipeline_scaling_lcf(benchmark, lab):
    """Fig. 5: relative IPC vs pipeline capacity scaling (LCF)."""
    study = run_once(benchmark, compute_fig5, lab)
    print()
    print(study.render())
    benchmark.extra_info["paper_h2p_share_1x"] = 0.378
    benchmark.extra_info["measured_h2p_share_1x"] = round(study.h2p_share_at(1), 3)
    benchmark.extra_info["paper_h2p_share_32x"] = 0.337
    benchmark.extra_info["measured_h2p_share_32x"] = round(study.h2p_share_at(32), 3)


def test_fig6_dependency_positions(benchmark, lab):
    """Fig. 6: history-position distributions of dependency branches.

    Shares its computation with Table III; the series here are the
    per-panel scatter points.
    """
    from repro.experiments.table3 import compute_table3

    table = run_once(benchmark, compute_table3, lab)
    series = table.fig6_series()
    print()
    for name, points in series.items():
        print(f"{name}: {points[:8]}")
    spreads = [e.spread.max_positions_per_dependency for e in table.entries]
    benchmark.extra_info["measured_max_positions_per_dependency"] = max(spreads)
    assert all(points for points in series.values())


def test_fig7_storage_sweep(benchmark, lab):
    """Fig. 7: fraction of the TAGE8->perfect IPC gap closed vs storage."""
    fig = run_once(benchmark, compute_fig7, lab)
    print()
    print(fig.render())
    benchmark.extra_info["paper_max_fraction_1x"] = 0.5  # "less than half"
    benchmark.extra_info["measured_best_fraction_1x"] = round(
        fig.best_mean_fraction_at(1), 3
    )
    benchmark.extra_info["measured_best_fraction_32x"] = round(
        fig.best_mean_fraction_at(32), 3
    )


def test_fig8_rare_branch_limit_study(benchmark, lab):
    """Fig. 8: IPC opportunity remaining after idealizing frequent branches."""
    fig = run_once(benchmark, compute_fig8, lab)
    print()
    print(fig.render())
    hi, lo = fig.thresholds
    benchmark.extra_info["paper_remaining_gt1000"] = 0.343
    benchmark.extra_info["measured_remaining_hi"] = round(fig.mean_remaining(hi), 3)
    benchmark.extra_info["paper_remaining_gt100"] = 0.274
    benchmark.extra_info["measured_remaining_lo"] = round(fig.mean_remaining(lo), 3)


def test_fig9_recurrence_intervals(benchmark, lab):
    """Fig. 9: median recurrence interval distribution (LCF)."""
    fig = run_once(benchmark, compute_fig9, lab)
    print()
    print(fig.render())
    benchmark.extra_info["measured_peak_bin"] = fig.histogram.peak_bin()


def test_fig10_register_values(benchmark, lab):
    """Fig. 10: register-value distributions at top heavy hitters."""
    fig = run_once(benchmark, compute_fig10, lab)
    print()
    print(fig.render())
    benchmark.extra_info["measured_profiles"] = len(fig.profiles)
    benchmark.extra_info["measured_distinct_pairs_fraction"] = round(
        fig.distinct_pairs_fraction(), 3
    )
