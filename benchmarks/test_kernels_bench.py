"""Benchmarks: vectorized kernel throughput and the on-disk trace store.

Two measurements back the kernel work's acceptance bar:

* scalar vs. vectorized branches/sec for bimodal and gshare over a
  quick-tier trace (the kernels must clear a 5x speedup), and
* cold vs. warm trace acquisition through a :class:`TraceStore` (the warm
  path replaces interpreter execution with one ``.npz`` read).

Headline numbers land in ``benchmark.extra_info`` so the pytest-benchmark
JSON artifact (see the ``kernels`` CI job) records them per run.
"""

import os
from time import perf_counter

from conftest import run_once

from repro.experiments.config import active_tier
from repro.pipeline.simulator import simulate_trace
from repro.predictors.simple import Bimodal, GShare
from repro.workloads import WORKLOADS_BY_NAME, TraceStore, trace_workload

WORKLOAD = "605.mcf_s"

#: The acceptance bar for the vectorized path (see docs/performance.md).
MIN_SPEEDUP = 5.0


def _quick_trace():
    tier = active_tier()
    return trace_workload(
        WORKLOADS_BY_NAME[WORKLOAD], 0, instructions=tier.spec_instructions
    )


def _best_of(n, fn):
    times = []
    for _ in range(n):
        t0 = perf_counter()
        fn()
        times.append(perf_counter() - t0)
    return min(times)


def _speedup_for(benchmark, make_predictor, traced):
    tier = active_tier()
    trace = traced.trace
    slice_instructions = tier.spec_instructions // tier.spec_slices

    os.environ["REPRO_KERNELS"] = "0"
    try:
        scalar_s = _best_of(
            2,
            lambda: simulate_trace(
                trace, make_predictor(), slice_instructions=slice_instructions
            ),
        )
    finally:
        os.environ["REPRO_KERNELS"] = "1"
    kernel_s = _best_of(
        3,
        lambda: simulate_trace(
            trace, make_predictor(), slice_instructions=slice_instructions
        ),
    )
    run_once(
        benchmark,
        simulate_trace,
        trace,
        make_predictor(),
        slice_instructions=slice_instructions,
    )

    speedup = scalar_s / kernel_s
    benchmark.extra_info["workload"] = WORKLOAD
    benchmark.extra_info["branches"] = len(trace)
    benchmark.extra_info["scalar_branches_per_sec"] = round(len(trace) / scalar_s)
    benchmark.extra_info["kernel_branches_per_sec"] = round(len(trace) / kernel_s)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    assert speedup >= MIN_SPEEDUP, (
        f"vectorized {make_predictor().name} only {speedup:.2f}x over scalar "
        f"(bar: {MIN_SPEEDUP}x)"
    )


def test_bimodal_kernel_speedup(benchmark):
    _speedup_for(benchmark, Bimodal, _quick_trace())


def test_gshare_kernel_speedup(benchmark):
    _speedup_for(benchmark, GShare, _quick_trace())


def test_trace_store_cold_vs_warm(benchmark, tmp_path):
    tier = active_tier()
    n = tier.spec_instructions
    store = TraceStore(tmp_path)

    t0 = perf_counter()
    traced = trace_workload(WORKLOADS_BY_NAME[WORKLOAD], 0, instructions=n)
    generate_s = perf_counter() - t0

    t0 = perf_counter()
    store.store(WORKLOAD, 0, n, traced.trace)
    store_s = perf_counter() - t0

    warm_s = _best_of(3, lambda: store.load(WORKLOAD, 0, n))
    run_once(benchmark, store.load, WORKLOAD, 0, n)

    benchmark.extra_info["workload"] = WORKLOAD
    benchmark.extra_info["instructions"] = n
    benchmark.extra_info["generate_s"] = round(generate_s, 3)
    benchmark.extra_info["store_s"] = round(store_s, 3)
    benchmark.extra_info["warm_load_s"] = round(warm_s, 4)
    benchmark.extra_info["warm_speedup"] = round(generate_s / warm_s, 1)
    assert store.load(WORKLOAD, 0, n) is not None
