"""Benchmark: parallel fan-out vs serial for a Fig. 7-style storage sweep.

Runs the full fig7 request set (LCF suite x six TAGE-SC-L storage presets)
twice — once through a serial Lab and once prefetched across worker
processes — and records both wall clocks plus the speedup in
``extra_info``.  On a single-core runner the parallel pass measures
scheduler overhead rather than speedup; see ``docs/performance.md`` for
the expected multi-core scaling.

Set ``REPRO_BENCH_JOBS`` to pin the worker count (default: all cores).
"""

import os
from time import perf_counter

from conftest import run_once

from repro.experiments.config import active_tier
from repro.experiments.lab import Lab
from repro.experiments.plans import EXPERIMENT_PLANS


def _fig7_sweep(lab):
    jobs = EXPERIMENT_PLANS["fig7"](lab)
    lab.prefetch(jobs)
    for job in jobs:
        lab.simulate(
            job.workload, job.input_index, job.predictor,
            instructions=job.instructions,
            slice_instructions=job.slice_instructions,
        )
    return len(jobs)


def test_fig7_sweep_parallel_vs_serial(benchmark):
    workers = int(os.environ.get("REPRO_BENCH_JOBS", "0") or 0) or (
        os.cpu_count() or 1
    )
    serial = Lab(tier=active_tier(), jobs=1)
    t0 = perf_counter()
    n_jobs = _fig7_sweep(serial)
    serial_s = perf_counter() - t0

    with Lab(tier=active_tier(), jobs=workers) as parallel:
        t0 = perf_counter()
        run_once(benchmark, _fig7_sweep, parallel)
        parallel_s = perf_counter() - t0

    benchmark.extra_info["jobs_in_sweep"] = n_jobs
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["serial_s"] = round(serial_s, 2)
    benchmark.extra_info["parallel_s"] = round(parallel_s, 2)
    benchmark.extra_info["speedup"] = round(serial_s / parallel_s, 2)
