"""Benchmarks for the in-text studies: TAGE allocation thrash (Sec. IV-A)
and the CNN helper-predictor direction (Sec. V-C)."""

from conftest import run_once

from repro.experiments.allocation_study import compute_allocation_study
from repro.experiments.cnn_study import compute_cnn_study


def test_allocation_study(benchmark, lab):
    """Sec. IV-A: H2P vs non-H2P TAGE table allocation behaviour."""
    result = run_once(benchmark, compute_allocation_study, lab)
    print()
    print(result.render())
    import numpy as np

    h2p_medians = [s.h2p.median_allocations for s in result.studies.values()]
    non_medians = [s.non_h2p.median_allocations for s in result.studies.values()]
    benchmark.extra_info["paper_h2p_median_allocations"] = 13_093
    benchmark.extra_info["measured_h2p_median_allocations"] = float(
        np.median(h2p_medians)
    )
    benchmark.extra_info["paper_non_h2p_median_allocations"] = 4
    benchmark.extra_info["measured_non_h2p_median_allocations"] = float(
        np.median(non_medians)
    )
    assert all(s.h2p_dominates for s in result.studies.values())


def test_cnn_helper_study(benchmark, lab):
    """Sec. V-C: offline-trained CNN helper vs TAGE-SC-L 8KB on an H2P."""
    result = run_once(benchmark, compute_cnn_study, lab)
    print()
    print(result.render())
    benchmark.extra_info["measured_tage_acc"] = round(result.tage_accuracy_on_h2p, 3)
    benchmark.extra_info["measured_helper_2bit_acc"] = round(
        result.helper_quantized_cross_input_accuracy, 3
    )
    benchmark.extra_info["measured_uplift"] = round(result.improvement, 3)
    assert result.improvement > 0


def test_phase_study(benchmark, lab):
    """Sec. V-B (extension): phase-aware long-term statistics for rare
    branches on the LCF suite."""
    from repro.experiments.phase_study import compute_phase_study

    result = run_once(benchmark, compute_phase_study, lab)
    print()
    print(result.render())
    benchmark.extra_info["mean_accuracy_delta"] = round(
        result.mean_accuracy_delta, 4
    )
    benchmark.extra_info["mean_rare_accuracy_delta"] = round(
        result.mean_rare_accuracy_delta, 4
    )
    assert result.mean_rare_accuracy_delta > 0
