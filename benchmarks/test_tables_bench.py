"""Benchmarks regenerating the paper's Tables I, II, and III."""

from conftest import run_once

from repro.experiments.table1 import compute_table1
from repro.experiments.table2 import compute_table2
from repro.experiments.table3 import compute_table3


def test_table1(benchmark, lab):
    """Table I: SPECint summary statistics under TAGE-SC-L 8KB."""
    table = run_once(benchmark, compute_table1, lab)
    print()
    print(table.render())
    benchmark.extra_info["paper_mean_accuracy"] = 0.952
    benchmark.extra_info["measured_mean_accuracy"] = round(table.mean_accuracy, 4)
    benchmark.extra_info["paper_mean_h2ps_per_slice"] = 10
    benchmark.extra_info["measured_mean_h2ps_per_slice"] = round(
        table.mean_h2ps_per_slice, 2
    )
    benchmark.extra_info["paper_mean_mispred_share"] = 0.553
    benchmark.extra_info["measured_mean_mispred_share"] = round(
        table.mean_mispred_share, 3
    )
    assert len(table.rows) == 9


def test_table2(benchmark, lab):
    """Table II: LCF application summary under TAGE-SC-L 8KB."""
    table = run_once(benchmark, compute_table2, lab)
    print()
    print(table.render())
    benchmark.extra_info["paper_mean_static_ips"] = 14_072 / 10  # scaled
    benchmark.extra_info["measured_mean_static_ips"] = round(
        table.mean_static_branches, 1
    )
    benchmark.extra_info["paper_mean_acc_per_branch"] = 0.85
    benchmark.extra_info["measured_mean_acc_per_branch"] = round(
        table.mean_accuracy, 3
    )
    assert len(table.rows) == 6


def test_table3(benchmark, lab):
    """Table III: dependency-branch statistics for top heavy hitters."""
    table = run_once(benchmark, compute_table3, lab)
    print()
    print(table.render())
    spreads = [e.spread.mean_positions_per_dependency for e in table.entries]
    benchmark.extra_info["measured_mean_positions_per_dependency"] = round(
        sum(spreads) / len(spreads), 2
    )
    benchmark.extra_info["paper_max_hist_within"] = 3000
    benchmark.extra_info["measured_max_hist_pos"] = max(
        e.row.max_history_position for e in table.entries
    )
    assert all(e.row.num_dependency_branches >= 1 for e in table.entries)
