"""Characterize any workload with one call.

Runs the paper's full measurement pipeline (accuracy, H2P screening, heavy
hitters, rare branches, recurrence, IPC opportunity) over each suite's
representative workloads and prints a compact diagnosis: is the workload's
misprediction problem H2P-dominated (the SPECint regime) or
rare-branch-dominated (the LCF regime)?

Usage::

    python examples/characterize_workload.py [benchmark ...]
"""

import sys

from repro.analysis import characterize_workload
from repro.workloads import WORKLOADS_BY_NAME, trace_workload


def main() -> None:
    names = sys.argv[1:] or ["605.mcf_s", "623.xalancbmk_s", "game"]
    for name in names:
        spec = WORKLOADS_BY_NAME.get(name)
        if spec is None:
            raise SystemExit(
                f"unknown workload {name!r}; choose from "
                f"{sorted(WORKLOADS_BY_NAME)}"
            )
        traced = trace_workload(spec, 0, instructions=300_000)
        report = characterize_workload(traced.trace)
        print(f"\n=== {name} ===")
        print(report.render())
        regime = (
            "H2P-dominated: specialize predictors for the heavy hitters "
            "(Sec. V-C helpers)"
            if report.h2p_dominated
            else "rare-branch-dominated: long-term/phase statistics needed "
            "(Sec. V-B)"
        )
        print(f"  diagnosis                  {regime}")


if __name__ == "__main__":
    main()
