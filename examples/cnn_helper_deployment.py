"""Offline-trained CNN helper predictors, end to end (paper Sec. V).

Demonstrates the deployment scenario the paper proposes for data-center
applications:

1. collect traces of the application over multiple inputs (the offline
   trace library);
2. train a per-branch CNN helper on the H2P that TAGE-SC-L mispredicts;
3. quantize it to 2-bit weights (the on-BPU format);
4. "load" it alongside TAGE-SC-L and evaluate on an *unseen* input.

Usage::

    python examples/cnn_helper_deployment.py
"""

import numpy as np

from repro.pipeline import simulate_trace
from repro.predictors import make_tage_sc_l
from repro.predictors.cnn_helper import (
    CnnHelperConfig,
    CnnHelperPredictor,
    HelperAugmentedPredictor,
    extract_branch_dataset,
)
from repro.workloads import trace_workload
from repro.workloads.helper_study import HELPER_STUDY_WORKLOAD, h2p_branch_ip


def main() -> None:
    config = CnnHelperConfig(
        history_length=20, conv_width=10, num_filters=24, epochs=10
    )

    print("1. Building the offline trace library (inputs 0 and 1)...")
    train_traces = [trace_workload(HELPER_STUDY_WORKLOAD, i) for i in (0, 1)]
    test_trace = trace_workload(HELPER_STUDY_WORKLOAD, 2)
    ip = h2p_branch_ip(test_trace.metadata["program"])

    baseline = simulate_trace(test_trace.trace, make_tage_sc_l(8))
    tage_acc = baseline.stats.get(ip).accuracy
    print(f"   target H2P @ {hex(ip)}: TAGE-SC-L 8KB accuracy "
          f"{tage_acc:.3f} on the unseen input")

    print("2. Training the helper offline on the pooled library...")
    parts = [
        extract_branch_dataset(t.trace, ip, config.history_length)
        for t in train_traces
    ]
    X = np.concatenate([p[0] for p in parts])
    y = np.concatenate([p[1] for p in parts])
    helper = CnnHelperPredictor(ip, config)
    helper.train(X, y)
    X_test, y_test = extract_branch_dataset(
        test_trace.trace, ip, config.history_length
    )
    print(f"   float accuracy on unseen input: "
          f"{helper.accuracy(X_test, y_test):.3f}")

    print("3. Quantizing to 2-bit weights (quantization-aware)...")
    helper.quantize(2, finetune_histories=X, finetune_outcomes=y)
    print(f"   2-bit accuracy on unseen input: "
          f"{helper.accuracy(X_test, y_test):.3f}")
    print(f"   deployed helper footprint: {helper.storage_bits(2) / 8192:.2f} KiB")

    print("4. Deploying alongside TAGE-SC-L 8KB...")
    augmented = HelperAugmentedPredictor(make_tage_sc_l(8), [helper])
    deployed = simulate_trace(test_trace.trace, augmented)
    print(
        f"   H2P accuracy: {tage_acc:.3f} (TAGE alone) -> "
        f"{deployed.stats.get(ip).accuracy:.3f} (TAGE + helper)"
    )
    print(
        f"   overall accuracy: {baseline.accuracy:.4f} -> {deployed.accuracy:.4f}"
    )


if __name__ == "__main__":
    main()
