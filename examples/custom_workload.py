"""Author a custom synthetic workload with the kernel library.

Shows how downstream users compose their own branch-behaviour mixes: a
"compression codec"-like program with a hot model-update loop (H2P), a
rare-symbol dispatch table, and phased behaviour — then evaluates how each
TAGE-SC-L size handles it.

Usage::

    python examples/custom_workload.py
"""

import random

import numpy as np

from repro.isa import Executor, ProgramBuilder
from repro.pipeline import simulate_trace
from repro.predictors import make_tage_sc_l
from repro.workloads import (
    build_driver,
    build_h2p_kernel,
    build_loop_nest_kernel,
    build_rare_dispatch_kernel,
    build_scan_kernel,
    make_input_data,
)
from repro.workloads.base import R_SEGMENT


def build_codec_like(input_index: int):
    b = ProgramBuilder("codec_like")
    b.data("symbols", make_input_data(42, input_index, 4093, "zipf"))
    b.data("scan_data", np.sort(make_input_data(43, input_index, 4093, "uniform")))

    # Hot model-update loop: data-dependent H2P with dependency branches.
    model = build_h2p_kernel(
        b, "model", "symbols", 4093, h2p_threshold=112,
        dep_a_threshold=3, dep_b_threshold=2,
    )
    # Rare-symbol handling: 150 cold handlers behind an input-driven switch.
    rare = build_rare_dispatch_kernel(
        b, "rare", num_handlers=150, branches_per_handler=2,
        rng=random.Random(7), handlers_per_segment=50, segment_reg=R_SEGMENT,
    )
    # Bulk work: block copies and table scans.
    blocks = build_loop_nest_kernel(b, "blocks", inner_trips=16)
    scan = build_scan_kernel(b, "scan", "scan_data", 4093, bias_threshold=50000)

    # Three phases: encode-heavy, dispatch-heavy, scan-heavy.
    build_driver(
        b,
        segments=[
            [(model.entry, 400), (blocks.entry, 120), (scan.entry, 200)],
            [(model.entry, 150), (rare.entry, 180), (scan.entry, 150)],
            [(scan.entry, 700), (blocks.entry, 250), (model.entry, 80)],
        ],
        rounds_per_segment=4,
    )
    return b.build(), model


def main() -> None:
    program, model = build_codec_like(0)
    print(
        f"codec_like: {program.num_static_blocks()} blocks, "
        f"{program.num_static_conditional_branches()} static conditional branches"
    )
    result = Executor(program, seed=11).run(400_000)
    trace = result.trace
    print(f"traced {trace.instr_count} instructions, "
          f"{trace.num_conditional()} conditional branches\n")

    h2p_ip = program.terminator_ip(model.h2p_labels[0])
    print(f"{'predictor':18s} {'overall acc':>12s} {'H2P acc':>9s} {'MPKI':>7s}")
    for kib in (8, 64, 1024):
        sim = simulate_trace(trace, make_tage_sc_l(kib))
        h2p = sim.stats.get(h2p_ip)
        print(
            f"tage-sc-l-{kib}kb".ljust(18)
            + f"{sim.accuracy:>12.4f} {h2p.accuracy:>9.3f} {sim.mpki:>7.2f}"
        )
    print(
        "\nStorage helps the aggregate (capacity) but barely moves the H2P —"
        "\nthe paper's Sec. IV in one custom workload."
    )


if __name__ == "__main__":
    main()
