"""H2P characterization: screening, heavy hitters, and dependency branches.

Walks the paper's Sec. III/IV-A measurement pipeline on one benchmark:

1. simulate TAGE-SC-L 8KB per 300K-instruction slice and screen H2Ps;
2. rank the heavy hitters and show the cumulative misprediction curve;
3. re-execute with dataflow taint tracking and profile the history
   positions at which the top hitter's dependency branches appear.

Usage::

    python examples/h2p_characterization.py [benchmark]
"""

import sys

from repro.analysis import (
    dependency_row,
    position_spread,
    rank_heavy_hitters,
    screen_workload,
)
from repro.config import DEPENDENCY_WINDOW_INSTRUCTIONS, SLICE_INSTRUCTIONS
from repro.pipeline import simulate_trace
from repro.predictors import make_tage_sc_l
from repro.workloads import WORKLOADS_BY_NAME, execute_workload, trace_workload


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "641.leela_s"
    workload = WORKLOADS_BY_NAME[name]

    print(f"Tracing {name} (3 slices)...")
    traced = trace_workload(workload, 0, instructions=3 * SLICE_INSTRUCTIONS)
    result = simulate_trace(
        traced.trace, make_tage_sc_l(8), slice_instructions=SLICE_INSTRUCTIONS
    )
    print(f"  aggregate accuracy: {result.accuracy:.4f}")

    report = screen_workload(name, "input0", result.slice_stats)
    print(
        f"  H2Ps per slice: {report.mean_h2ps_per_slice:.1f}, causing "
        f"{100 * report.mean_misprediction_share:.1f}% of mispredictions"
    )

    hitters = rank_heavy_hitters(result.stats, report.union_h2p_ips)
    print("\nHeavy hitters (ranked by dynamic executions):")
    print(f"  {'rank':>4s} {'ip':>8s} {'execs':>8s} {'mispred':>8s} {'cum.frac':>9s}")
    for h in hitters[:8]:
        print(
            f"  {h.rank:>4d} {hex(h.ip):>8s} {h.executions:>8d} "
            f"{h.mispredictions:>8d} {h.cumulative_misprediction_fraction:>9.3f}"
        )

    print("\nDependency-branch analysis (taint-tracked re-execution)...")
    exec_result = execute_workload(
        workload, 0, instructions=SLICE_INSTRUCTIONS, track_dataflow=True
    )
    for hitter in hitters:
        row, profile = dependency_row(
            name, exec_result.cond_branch_events, hitter.ip,
            DEPENDENCY_WINDOW_INSTRUCTIONS,
        )
        if profile.num_dependency_branches == 0:
            continue
        spread = position_spread(profile)
        print(f"  top data-dependent hitter: {hex(hitter.ip)}")
        print(f"    dependency branches: {row.num_dependency_branches}")
        print(
            f"    history positions: {row.min_history_position}.."
            f"{row.max_history_position}"
        )
        print(
            f"    mean distinct positions per dependency branch: "
            f"{spread.mean_positions_per_dependency:.1f}"
        )
        print(
            "    -> the same predictive branch appears all over the history,"
            "\n       which is why exact pattern matching struggles (Sec. IV-A)."
        )
        break


if __name__ == "__main__":
    main()
