"""Quickstart: simulate branch predictors over a synthetic workload.

Runs the mcf-like benchmark (small, H2P-heavy) under several predictors and
prints accuracy, MPKI, and modeled IPC at 1x and 8x pipeline scale — the
core loop behind every experiment in the reproduction.

Usage::

    python examples/quickstart.py
"""

from repro.pipeline import IntervalIpcModel, SKYLAKE_LIKE, simulate_trace
from repro.predictors import (
    Bimodal,
    GShare,
    PPM,
    Perceptron,
    make_tage_sc_l,
)
from repro.workloads import WORKLOADS_BY_NAME, trace_workload


def main() -> None:
    workload = WORKLOADS_BY_NAME["605.mcf_s"]
    print(f"Tracing {workload.name} (300K instructions)...")
    traced = trace_workload(workload, input_index=0, instructions=300_000)
    trace = traced.trace
    print(
        f"  {len(trace)} branches, {trace.num_conditional()} conditional, "
        f"{len(trace.static_branch_ips())} static branch IPs"
    )

    predictors = [
        Bimodal(),
        GShare(),
        Perceptron(),
        PPM(),
        make_tage_sc_l(8),
        make_tage_sc_l(64),
    ]

    print(f"\n{'predictor':18s} {'storage':>9s} {'accuracy':>9s} "
          f"{'MPKI':>7s} {'IPC@1x':>7s} {'IPC@8x':>7s}")
    for predictor in predictors:
        result = simulate_trace(trace, predictor)
        ipc_1x = IntervalIpcModel(SKYLAKE_LIKE).ipc(
            result.instr_count, result.mispredictions
        )
        ipc_8x = IntervalIpcModel(SKYLAKE_LIKE.scaled(8)).ipc(
            result.instr_count, result.mispredictions
        )
        print(
            f"{predictor.name:18s} {predictor.storage_kib():>7.1f}KB "
            f"{result.accuracy:>9.4f} {result.mpki:>7.2f} "
            f"{ipc_1x:>7.2f} {ipc_8x:>7.2f}"
        )

    perfect_1x = IntervalIpcModel(SKYLAKE_LIKE).ipc(trace.instr_count, 0)
    perfect_8x = IntervalIpcModel(SKYLAKE_LIKE.scaled(8)).ipc(trace.instr_count, 0)
    print(f"{'perfect BP':18s} {'-':>9s} {'1.0000':>9s} {'0.00':>7s} "
          f"{perfect_1x:>7.2f} {perfect_8x:>7.2f}")
    print(
        "\nNote how the gap between TAGE-SC-L and perfect prediction widens "
        "from 1x to 8x pipeline scale — the paper's Fig. 1 in miniature."
    )


if __name__ == "__main__":
    main()
