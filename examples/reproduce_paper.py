"""Regenerate every table and figure of the paper in one run.

Thin wrapper over :mod:`repro.experiments.runner` (also available as
``python -m repro``).  Executes each experiment at the active tier
(``REPRO_TIER=quick`` by default; set ``full`` for the complete runs) and
prints the same rows/series the paper reports.

Usage::

    python examples/reproduce_paper.py               # everything
    python examples/reproduce_paper.py fig1 table2   # a subset
    REPRO_TIER=full python examples/reproduce_paper.py
    python examples/reproduce_paper.py fig7 --jobs 8 # parallel fan-out
    REPRO_JOBS=0 python examples/reproduce_paper.py  # 0 = all cores

``--jobs/-j N`` (or ``REPRO_JOBS``) fans the simulations of each
experiment out across N worker processes; results are bit-identical to
the default serial run (see ``docs/performance.md``).  With a cache
directory configured, ``--resume`` checkpoints completed simulations so
an interrupted sweep can be rerun and only the missing work is
re-dispatched (see ``docs/resilience.md``)::

    REPRO_CACHE_DIR=cache python examples/reproduce_paper.py --jobs 8 --resume
"""

import sys

from repro.experiments.runner import main

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
