"""Regenerate every table and figure of the paper in one run.

Thin wrapper over :mod:`repro.experiments.runner` (also available as
``python -m repro``).  Executes each experiment at the active tier
(``REPRO_TIER=quick`` by default; set ``full`` for the complete runs) and
prints the same rows/series the paper reports.

Usage::

    python examples/reproduce_paper.py               # everything
    python examples/reproduce_paper.py fig1 table2   # a subset
    REPRO_TIER=full python examples/reproduce_paper.py
"""

import sys

from repro.experiments.runner import main

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
