"""Setup shim: this environment has no `wheel` package and no network, so
PEP-517 editable installs cannot build; the legacy `setup.py develop` path
is used instead (`pip install -e . --no-build-isolation --no-use-pep517`)."""
from setuptools import setup, find_packages

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Branch Prediction Is Not A Solved Problem' "
        "(Lin & Tarsa, IISWC 2019)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
    entry_points={
        "console_scripts": [
            "repro-experiments=repro.experiments.runner:main",
        ]
    },
)
