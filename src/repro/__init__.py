"""repro — reproduction of "Branch Prediction Is Not A Solved Problem"
(Lin & Tarsa, IISWC 2019).

The library provides:

* :mod:`repro.core` — branch traces, histories, metrics, storage accounting;
* :mod:`repro.isa` — a synthetic mini-ISA with a trace-producing executor
  (the substrate standing in for proprietary SPEC/LCF traces);
* :mod:`repro.workloads` — SPECint-2017-like and large-code-footprint
  synthetic benchmarks;
* :mod:`repro.predictors` — from-scratch branch predictors, including
  TAGE-SC-L at 8KB-1024KB budgets, perceptrons, PPM, loop/IMLI, oracles, and
  an offline-trained CNN helper predictor;
* :mod:`repro.pipeline` — a Skylake-like pipeline IPC model with 1x-32x
  capacity scaling;
* :mod:`repro.analysis` — H2P screening, heavy hitters, rare-branch
  distributions, dependency branches, TAGE allocation stats, recurrence
  intervals, register-value features;
* :mod:`repro.phases` — SimPoint-style phase clustering;
* :mod:`repro.experiments` — drivers reproducing every table and figure;
* :mod:`repro.obs` — observability: metrics registry, span tracing, and
  the ``repro.*`` structured-logging hierarchy.
"""

__version__ = "1.0.0"
