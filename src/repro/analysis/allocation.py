"""TAGE table-allocation analysis (paper Sec. IV-A, in-text numbers).

The paper instruments TAGE-SC-L 64KB and finds that H2P branches thrash the
tagged tables: the median H2P triggers ~13K allocations but only ever owns
~4K distinct entries (entries are allocated, scrapped, and re-allocated),
while the median non-H2P branch allocates ~4 entries total.  This module
reduces a :class:`repro.predictors.tage.AllocationStats` plus an H2P set to
those summary statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Set

import numpy as np

from repro.predictors.tage import AllocationStats


@dataclass(frozen=True)
class AllocationSummary:
    """Sec. IV-A summary for one branch class (H2P or non-H2P)."""

    num_branches: int
    median_allocations: float
    median_unique_entries: float
    mean_allocation_share: float  # mean fraction of all allocations per branch

    @property
    def reallocation_ratio(self) -> float:
        """Median allocations / median unique entries: >1 means entries are
        repeatedly scrapped and re-allocated for the same branch."""
        if self.median_unique_entries == 0:
            return 0.0
        return self.median_allocations / self.median_unique_entries


@dataclass(frozen=True)
class AllocationStudy:
    """H2P vs. non-H2P allocation behaviour."""

    h2p: AllocationSummary
    non_h2p: AllocationSummary
    total_allocations: int

    @property
    def h2p_dominates(self) -> bool:
        """The paper's qualitative claim: H2Ps consume an outsized share of
        allocations relative to non-H2P branches."""
        return (
            self.h2p.median_allocations > self.non_h2p.median_allocations
            and self.h2p.mean_allocation_share > self.non_h2p.mean_allocation_share
        )


def _summarize(
    stats: AllocationStats, ips: Iterable[int], total_allocations: int
) -> AllocationSummary:
    ips = list(ips)
    if not ips:
        return AllocationSummary(0, 0.0, 0.0, 0.0)
    allocs = np.asarray([stats.allocations_for(ip) for ip in ips], dtype=float)
    uniques = np.asarray([stats.unique_entries_for(ip) for ip in ips], dtype=float)
    share = (
        float(np.mean(allocs / total_allocations)) if total_allocations else 0.0
    )
    return AllocationSummary(
        num_branches=len(ips),
        median_allocations=float(np.median(allocs)),
        median_unique_entries=float(np.median(uniques)),
        mean_allocation_share=share,
    )


def allocation_study(
    stats: AllocationStats,
    h2p_ips: Iterable[int],
    all_ips: Optional[Iterable[int]] = None,
) -> AllocationStudy:
    """Split allocation statistics into H2P and non-H2P classes.

    ``all_ips`` defaults to every branch that triggered at least one
    allocation; pass the full static-branch set to include branches that
    never allocated (their counts are zero).
    """
    h2p_set: Set[int] = set(h2p_ips)
    if all_ips is None:
        universe: Set[int] = set(stats.allocations.keys()) | h2p_set
    else:
        universe = set(all_ips) | h2p_set
    non_h2p = universe - h2p_set
    total = stats.total_allocations
    return AllocationStudy(
        h2p=_summarize(stats, h2p_set, total),
        non_h2p=_summarize(stats, non_h2p, total),
        total_allocations=total,
    )
