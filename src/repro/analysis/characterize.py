"""One-call workload characterization.

``characterize_workload(trace)`` runs the paper's entire measurement
pipeline over a single trace — prediction accuracy under TAGE-SC-L 8KB,
MPKI, per-slice H2P screening, heavy-hitter concentration, the rare-branch
population, recurrence structure, and modeled IPC opportunity — and returns
a single report object with a ``render()`` for humans.  This is the
"characterize my workload" entry point for downstream users who don't need
the per-figure experiment drivers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.h2p import H2pCriteria, DEFAULT_CRITERIA, screen_workload
from repro.analysis.heavy_hitters import cumulative_curve
from repro.analysis.opportunity import ipc_opportunity
from repro.analysis.recurrence import median_recurrence_intervals
from repro.config import RARE_EXECUTION_THRESHOLDS, SLICE_INSTRUCTIONS
from repro.core.types import BranchTrace
from repro.pipeline.config import SKYLAKE_LIKE, PipelineConfig
from repro.pipeline.simulator import simulate_trace
from repro.predictors.base import BranchPredictor
from repro.predictors.tagescl import make_tage_sc_l


@dataclass(frozen=True)
class CharacterizationReport:
    """The paper's headline metrics for one workload trace."""

    predictor_name: str
    instructions: int
    conditional_branches: int
    static_branches: int
    accuracy: float
    mpki: float
    h2ps_per_slice: float
    h2p_misprediction_share: float
    top5_heavy_hitter_coverage: float
    rare_branch_fraction: float  # static branches below the rare threshold
    rare_branch_accuracy: float
    median_recurrence_interval: float  # median over static branches
    ipc_opportunity_1x: float
    ipc_opportunity_8x: float

    def render(self) -> str:
        lines = [
            f"Workload characterization under {self.predictor_name}",
            f"  instructions               {self.instructions:,}",
            f"  conditional branches       {self.conditional_branches:,} "
            f"({self.static_branches:,} static)",
            f"  accuracy / MPKI            {self.accuracy:.4f} / {self.mpki:.2f}",
            f"  H2Ps per slice             {self.h2ps_per_slice:.1f} "
            f"(cause {100 * self.h2p_misprediction_share:.1f}% of mispredictions)",
            f"  top-5 heavy hitters cover  "
            f"{100 * self.top5_heavy_hitter_coverage:.1f}% of mispredictions",
            f"  rare static branches       {100 * self.rare_branch_fraction:.1f}% "
            f"(accuracy {self.rare_branch_accuracy:.3f})",
            f"  median recurrence interval {self.median_recurrence_interval:,.0f} "
            f"instructions",
            f"  IPC opportunity            {100 * self.ipc_opportunity_1x:.1f}% at 1x, "
            f"{100 * self.ipc_opportunity_8x:.1f}% at 8x pipeline scale",
        ]
        return "\n".join(lines)

    @property
    def h2p_dominated(self) -> bool:
        """True when fixing H2Ps alone would address most mispredictions
        (the SPECint-like regime); False suggests a rare-branch-dominated
        LCF-like workload."""
        return self.h2p_misprediction_share > 0.5


def characterize_workload(
    trace: BranchTrace,
    predictor: Optional[BranchPredictor] = None,
    slice_instructions: int = SLICE_INSTRUCTIONS,
    criteria: H2pCriteria = DEFAULT_CRITERIA,
    pipeline: PipelineConfig = SKYLAKE_LIKE,
    rare_threshold: Optional[int] = None,
) -> CharacterizationReport:
    """Run the full characterization pipeline over one trace."""
    predictor = predictor or make_tage_sc_l(8)
    rare_threshold = (
        rare_threshold if rare_threshold is not None else RARE_EXECUTION_THRESHOLDS[0]
    )

    result = simulate_trace(trace, predictor, slice_instructions=slice_instructions)
    report = screen_workload("workload", "trace", result.slice_stats, criteria)

    curve = cumulative_curve(result.stats, report.union_h2p_ips, max_rank=5)
    top5 = float(curve[-1]) if len(curve) else 0.0

    rare_execs = rare_mispreds = rare_count = 0
    for _, counts in result.stats.items():
        if counts.executions <= rare_threshold:
            rare_count += 1
            rare_execs += counts.executions
            rare_mispreds += counts.mispredictions
    num_static = len(result.stats)
    rare_fraction = rare_count / num_static if num_static else 0.0
    rare_accuracy = 1.0 - rare_mispreds / rare_execs if rare_execs else 1.0

    mris = list(median_recurrence_intervals(trace).values())
    median_mri = float(np.median(mris)) if mris else 0.0

    return CharacterizationReport(
        predictor_name=predictor.name,
        instructions=result.instr_count,
        conditional_branches=result.stats.total_executions,
        static_branches=num_static,
        accuracy=result.accuracy,
        mpki=result.mpki,
        h2ps_per_slice=report.mean_h2ps_per_slice,
        h2p_misprediction_share=report.mean_misprediction_share,
        top5_heavy_hitter_coverage=top5,
        rare_branch_fraction=rare_fraction,
        rare_branch_accuracy=rare_accuracy,
        median_recurrence_interval=median_mri,
        ipc_opportunity_1x=ipc_opportunity(
            result.instr_count, result.mispredictions, pipeline, 1.0
        ),
        ipc_opportunity_8x=ipc_opportunity(
            result.instr_count, result.mispredictions, pipeline, 8.0
        ),
    )
