"""Dependency-branch history-position study (paper Table III & Fig. 6).

Combines a dataflow-instrumented execution with the H2P screening results:
for the chosen H2P branch (typically the top heavy hitter), it produces the
distribution of *history positions* at which ground-truth dependency
branches appear, plus the Table III summary (number of dependency branches,
min/max history position).  The headline observations are asserted by the
experiment tests: dependency branches land within the history reach of
TAGE-SC-L, but each one appears at *many different positions*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.config import DEPENDENCY_WINDOW_INSTRUCTIONS
from repro.isa.dataflow import DependencyProfile, analyze_dependencies
from repro.isa.executor import ConditionBranchEvent


@dataclass(frozen=True)
class DependencyRow:
    """One row of Table III."""

    benchmark: str
    h2p_ip: int
    num_dependency_branches: int
    min_history_position: Optional[int]
    max_history_position: Optional[int]
    executions_analyzed: int


@dataclass(frozen=True)
class PositionSpreadSummary:
    """Quantifies the paper's Fig. 6 observation: dependency branches occupy
    many distinct history positions, with non-uniform recurrence."""

    mean_positions_per_dependency: float
    max_positions_per_dependency: int
    position_entropy_bits: float


def dependency_row(
    benchmark: str,
    events: Sequence[ConditionBranchEvent],
    h2p_ip: int,
    window_instructions: int = DEPENDENCY_WINDOW_INSTRUCTIONS,
) -> Tuple[DependencyRow, DependencyProfile]:
    """Compute the Table III row (and full profile) for one H2P."""
    profile = analyze_dependencies(events, h2p_ip, window_instructions)
    row = DependencyRow(
        benchmark=benchmark,
        h2p_ip=h2p_ip,
        num_dependency_branches=profile.num_dependency_branches,
        min_history_position=profile.min_history_position,
        max_history_position=profile.max_history_position,
        executions_analyzed=profile.executions_analyzed,
    )
    return row, profile


def position_spread(profile: DependencyProfile) -> PositionSpreadSummary:
    """How smeared the dependency branches are across history positions."""
    dep_ips = profile.dependency_branch_ips
    if not dep_ips:
        return PositionSpreadSummary(0.0, 0, 0.0)
    spreads = [profile.position_spread(ip) for ip in dep_ips]
    total = sum(profile.positions.values())
    entropy = 0.0
    if total:
        for count in profile.positions.values():
            p = count / total
            entropy -= p * np.log2(p)
    return PositionSpreadSummary(
        mean_positions_per_dependency=float(np.mean(spreads)),
        max_positions_per_dependency=int(max(spreads)),
        position_entropy_bits=float(entropy),
    )
