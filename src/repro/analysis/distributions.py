"""Rare-branch distribution analyses (paper Figs. 3 and 4).

Fig. 3 histograms the per-static-branch dynamic mispredictions, dynamic
executions, and prediction accuracy over the LCF dataset.  Fig. 4 plots
accuracy against execution count per branch (a) and the standard deviation
of accuracy within execution-count bins (b), quantifying that rare branches
have low-confidence, high-spread statistics.

Bin edges are the paper's divided by the execution-count scale (see
:mod:`repro.experiments.config`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.metrics import BranchStats
from repro.config import EXEC_SCALE


def _scale_edges(edges: Sequence[float], scale: int) -> List[float]:
    return [e / scale if e > 0 else e for e in edges]


#: Paper Fig. 3 (left): dynamic misprediction bins, scaled.
MISPREDICTION_BIN_EDGES = _scale_edges(
    [0, 1, 10, 50, 100, 500, 1000, 5000], EXEC_SCALE
)

#: Paper Fig. 3 (middle): dynamic execution bins, scaled.
EXECUTION_BIN_EDGES = _scale_edges([0, 100, 1000, 10_000, 100_000, 1_000_000], EXEC_SCALE)

#: Paper Fig. 3 (right): accuracy bins (scale-free).
ACCURACY_BIN_EDGES = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.99, 1.0]


@dataclass(frozen=True)
class Histogram:
    """A normalized histogram over static branches."""

    edges: Tuple[float, ...]
    fractions: Tuple[float, ...]  # one per bin, sums to ~1
    counts: Tuple[int, ...]

    @property
    def num_branches(self) -> int:
        return int(sum(self.counts))

    def fraction_at_or_below(self, value: float) -> float:
        """Total fraction of branches in bins entirely at/below ``value``."""
        total = 0.0
        for i in range(len(self.fractions)):
            if self.edges[i + 1] <= value + 1e-12:
                total += self.fractions[i]
        return total


def _histogram(values: np.ndarray, edges: Sequence[float]) -> Histogram:
    counts, _ = np.histogram(values, bins=np.asarray(edges, dtype=float))
    # np.histogram's final bin is closed; values above the last edge are
    # clamped into it so no branch is silently dropped.
    above = int((values > edges[-1]).sum())
    counts = counts.copy()
    counts[-1] += above
    total = counts.sum()
    fractions = counts / total if total else counts.astype(float)
    return Histogram(
        edges=tuple(float(e) for e in edges),
        fractions=tuple(float(f) for f in fractions),
        counts=tuple(int(c) for c in counts),
    )


@dataclass(frozen=True)
class BranchDistributions:
    """The three Fig. 3 panels for one dataset."""

    mispredictions: Histogram
    executions: Histogram
    accuracy: Histogram


def branch_distributions(
    stats_list: Sequence[BranchStats],
    misprediction_edges: Optional[Sequence[float]] = None,
    execution_edges: Optional[Sequence[float]] = None,
    accuracy_edges: Optional[Sequence[float]] = None,
) -> BranchDistributions:
    """Pool per-branch statistics from several applications and histogram
    them (the paper pools all six LCF applications)."""
    mis, execs, accs = [], [], []
    for stats in stats_list:
        for _, counts in stats.items():
            mis.append(counts.mispredictions)
            execs.append(counts.executions)
            accs.append(counts.accuracy)
    mis_a = np.asarray(mis, dtype=float)
    exec_a = np.asarray(execs, dtype=float)
    acc_a = np.asarray(accs, dtype=float)
    return BranchDistributions(
        mispredictions=_histogram(mis_a, misprediction_edges or MISPREDICTION_BIN_EDGES),
        executions=_histogram(exec_a, execution_edges or EXECUTION_BIN_EDGES),
        accuracy=_histogram(acc_a, accuracy_edges or ACCURACY_BIN_EDGES),
    )


@dataclass(frozen=True)
class AccuracySpread:
    """Fig. 4 data: accuracy vs. execution count."""

    executions: np.ndarray  # per branch
    accuracies: np.ndarray  # per branch
    bin_edges: np.ndarray
    bin_std: np.ndarray  # std of accuracy within each bin
    bin_counts: np.ndarray


def accuracy_spread(
    stats_list: Sequence[BranchStats],
    bin_width: Optional[int] = None,
    max_executions: Optional[int] = None,
) -> AccuracySpread:
    """Per-branch accuracy vs. executions plus binned accuracy spread.

    ``bin_width`` defaults to the paper's 100 executions, scaled.
    """
    if bin_width is None:
        bin_width = max(1, 100 // EXEC_SCALE)
    execs, accs = [], []
    for stats in stats_list:
        for _, counts in stats.items():
            execs.append(counts.executions)
            accs.append(counts.accuracy)
    exec_a = np.asarray(execs, dtype=float)
    acc_a = np.asarray(accs, dtype=float)
    if max_executions is None:
        max_executions = int(exec_a.max()) + bin_width if len(exec_a) else bin_width
    edges = np.arange(0, max_executions + bin_width, bin_width, dtype=float)
    stds = np.zeros(len(edges) - 1)
    counts = np.zeros(len(edges) - 1, dtype=int)
    which = np.digitize(exec_a, edges) - 1
    for b in range(len(edges) - 1):
        sel = acc_a[which == b]
        counts[b] = len(sel)
        stds[b] = float(sel.std()) if len(sel) > 1 else 0.0
    return AccuracySpread(
        executions=exec_a,
        accuracies=acc_a,
        bin_edges=edges,
        bin_std=stds,
        bin_counts=counts,
    )
