"""Hard-to-predict (H2P) branch screening.

Implements the paper's Sec. III-A criteria: within each slice of a workload,
a branch is H2P if it (1) has prediction accuracy below 99% under the
screening predictor (TAGE-SC-L 8KB), (2) executes at least 15,000 times
(scaled), and (3) generates at least 1,000 mispredictions (scaled).  The
module also aggregates H2P sets across slices and across application inputs,
producing the Table I statistics (H2Ps per slice / per input, recurrence in
3+ inputs, % of mispredictions due to H2Ps).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Set

import numpy as np

from repro.core.metrics import BranchStats, misprediction_fraction
from repro.config import (
    H2P_ACCURACY_THRESHOLD,
    H2P_MIN_EXECUTIONS,
    H2P_MIN_MISPREDICTIONS,
)


@dataclass(frozen=True)
class H2pCriteria:
    """Screening thresholds (defaults: the paper's, scaled)."""

    accuracy_below: float = H2P_ACCURACY_THRESHOLD
    min_executions: int = H2P_MIN_EXECUTIONS
    min_mispredictions: int = H2P_MIN_MISPREDICTIONS

    def __post_init__(self) -> None:
        if not 0 < self.accuracy_below <= 1:
            raise ValueError("accuracy_below must be in (0, 1]")
        if self.min_executions < 1 or self.min_mispredictions < 0:
            raise ValueError("invalid thresholds")


DEFAULT_CRITERIA = H2pCriteria()


def screen_h2ps(
    slice_stats: BranchStats, criteria: H2pCriteria = DEFAULT_CRITERIA
) -> List[int]:
    """H2P branch IPs in one slice's statistics, sorted by IP."""
    out = []
    for ip, counts in slice_stats.items():
        if (
            counts.executions >= criteria.min_executions
            and counts.mispredictions >= criteria.min_mispredictions
            and counts.accuracy < criteria.accuracy_below
        ):
            out.append(ip)
    return sorted(out)


@dataclass
class SliceH2pReport:
    """Per-slice screening result."""

    slice_index: int
    h2p_ips: List[int]
    misprediction_share: float  # fraction of slice mispredictions from H2Ps
    total_executions: int
    total_mispredictions: int
    mean_h2p_executions: float


@dataclass
class WorkloadH2pReport:
    """H2P screening over all slices of one (benchmark, input) trace."""

    benchmark: str
    input_name: str
    slices: List[SliceH2pReport]
    union_h2p_ips: FrozenSet[int]

    @property
    def mean_h2ps_per_slice(self) -> float:
        if not self.slices:
            return 0.0
        return float(np.mean([len(s.h2p_ips) for s in self.slices]))

    @property
    def mean_misprediction_share(self) -> float:
        if not self.slices:
            return 0.0
        return float(np.mean([s.misprediction_share for s in self.slices]))

    @property
    def mean_h2p_executions_per_slice(self) -> float:
        vals = [s.mean_h2p_executions for s in self.slices if s.h2p_ips]
        return float(np.mean(vals)) if vals else 0.0


def screen_workload(
    benchmark: str,
    input_name: str,
    slice_stats: Sequence[BranchStats],
    criteria: H2pCriteria = DEFAULT_CRITERIA,
) -> WorkloadH2pReport:
    """Screen every slice of one workload trace."""
    reports: List[SliceH2pReport] = []
    union: Set[int] = set()
    for k, stats in enumerate(slice_stats):
        ips = screen_h2ps(stats, criteria)
        union.update(ips)
        mean_exec = (
            float(np.mean([stats.get(ip).executions for ip in ips])) if ips else 0.0
        )
        reports.append(
            SliceH2pReport(
                slice_index=k,
                h2p_ips=ips,
                misprediction_share=misprediction_fraction(stats, ips),
                total_executions=stats.total_executions,
                total_mispredictions=stats.total_mispredictions,
                mean_h2p_executions=mean_exec,
            )
        )
    return WorkloadH2pReport(
        benchmark=benchmark,
        input_name=input_name,
        slices=reports,
        union_h2p_ips=frozenset(union),
    )


@dataclass
class CrossInputH2pSummary:
    """H2P recurrence across application inputs (Table I's middle columns)."""

    benchmark: str
    total_h2ps: int  # union over all inputs
    recurring_3plus: int  # H2Ps appearing in >= 3 inputs
    mean_per_input: float
    mean_per_slice: float
    appearance_counts: Dict[int, int] = field(default_factory=dict)


def summarize_across_inputs(
    benchmark: str, reports: Sequence[WorkloadH2pReport]
) -> CrossInputH2pSummary:
    """Aggregate per-input screening reports for one benchmark."""
    if not reports:
        raise ValueError("need at least one input report")
    appearance: Counter = Counter()
    for rep in reports:
        for ip in rep.union_h2p_ips:
            appearance[ip] += 1
    recurring = sum(1 for ip, n in appearance.items() if n >= 3)
    return CrossInputH2pSummary(
        benchmark=benchmark,
        total_h2ps=len(appearance),
        recurring_3plus=recurring,
        mean_per_input=float(np.mean([len(r.union_h2p_ips) for r in reports])),
        mean_per_slice=float(np.mean([r.mean_h2ps_per_slice for r in reports])),
        appearance_counts=dict(appearance),
    )
