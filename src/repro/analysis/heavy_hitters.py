"""Heavy-hitter analysis (paper Fig. 2).

Ranks a benchmark's H2P branches by total dynamic executions and computes
the cumulative fraction of all dynamic mispredictions they account for.  The
paper's headline: the top five heavy hitters cover 37% of mispredictions on
average; ten H2Ps cover 55.3% per slice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

import numpy as np

from repro.core.metrics import BranchStats


@dataclass(frozen=True)
class HeavyHitter:
    """One ranked H2P branch."""

    rank: int  # 1-based, by dynamic executions
    ip: int
    executions: int
    mispredictions: int
    cumulative_misprediction_fraction: float


def rank_heavy_hitters(
    stats: BranchStats, h2p_ips: Iterable[int]
) -> List[HeavyHitter]:
    """Rank H2Ps by dynamic executions; cumulative fractions are of *all*
    mispredictions in ``stats`` (H2P and non-H2P alike), as in Fig. 2."""
    total_mispred = stats.total_mispredictions
    entries = sorted(
        ((ip, stats.get(ip)) for ip in set(h2p_ips)),
        key=lambda kv: (-kv[1].executions, -kv[1].mispredictions, kv[0]),
    )
    out: List[HeavyHitter] = []
    cum = 0
    for rank, (ip, counts) in enumerate(entries, start=1):
        cum += counts.mispredictions
        out.append(
            HeavyHitter(
                rank=rank,
                ip=ip,
                executions=counts.executions,
                mispredictions=counts.mispredictions,
                cumulative_misprediction_fraction=(
                    cum / total_mispred if total_mispred else 0.0
                ),
            )
        )
    return out


def cumulative_curve(
    stats: BranchStats, h2p_ips: Iterable[int], max_rank: int = 50
) -> np.ndarray:
    """The Fig. 2 series: cumulative misprediction fraction vs. rank.

    Entry ``i`` is the fraction covered by the top ``i+1`` heavy hitters;
    the curve is padded with its final value out to ``max_rank``.
    """
    hitters = rank_heavy_hitters(stats, h2p_ips)
    curve = np.zeros(max_rank, dtype=float)
    last = 0.0
    for i in range(max_rank):
        if i < len(hitters):
            last = hitters[i].cumulative_misprediction_fraction
        curve[i] = last
    return curve


def top_heavy_hitter(stats: BranchStats, h2p_ips: Iterable[int]) -> HeavyHitter:
    """The single heaviest hitter (the subject of Table III / Figs. 6, 10)."""
    hitters = rank_heavy_hitters(stats, h2p_ips)
    if not hitters:
        raise ValueError("no H2P branches to rank")
    return hitters[0]


def coverage_at(curve: Sequence[float], n: int) -> float:
    """Cumulative misprediction fraction of the top ``n`` heavy hitters."""
    if n < 1:
        raise ValueError("n must be >= 1")
    if len(curve) == 0:
        return 0.0
    return float(curve[min(n, len(curve)) - 1])
