"""IPC-opportunity computations (paper Figs. 1, 5, 7, 8).

These helpers combine simulation statistics with the pipeline IPC model to
produce the paper's performance-opportunity metrics:

* relative-IPC curves under pipeline scaling for a set of predictor
  variants (Figs. 1 and 5), including the "Perfect H2Ps" idealization;
* the fraction of the TAGE8→perfect IPC gap closed by larger storage
  (Fig. 7);
* the fraction of the IPC opportunity remaining after perfectly predicting
  all branches above an execution-count threshold (Fig. 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Mapping, Sequence, Tuple


from repro.core.metrics import BranchStats
from repro.pipeline.config import SCALING_FACTORS, SKYLAKE_LIKE, PipelineConfig
from repro.pipeline.model import IntervalIpcModel


def mispredictions_excluding(
    stats: BranchStats, perfect_ips: Iterable[int]
) -> int:
    """Misprediction count if the given branches were predicted perfectly.

    This is how the "Perfect H2Ps" (Figs. 1/5) and ">N executions perfect"
    (Fig. 8) idealizations are realized: only the emitted prediction changes,
    so the misprediction count simply loses those branches' contributions.
    """
    excluded = set(perfect_ips)
    removed = sum(stats.get(ip).mispredictions for ip in excluded)
    return stats.total_mispredictions - removed


def mispredictions_excluding_above(
    stats: BranchStats, min_executions: int
) -> int:
    """Mispredictions left after perfectly predicting every branch with more
    than ``min_executions`` dynamic executions (Fig. 8's idealization)."""
    remaining = 0
    for _, counts in stats.items():
        if counts.executions <= min_executions:
            remaining += counts.mispredictions
    return remaining


@dataclass(frozen=True)
class ScalingCurve:
    """One line of Fig. 1/5: relative IPC per pipeline scaling factor."""

    label: str
    scales: Tuple[float, ...]
    relative_ipc: Tuple[float, ...]

    def at(self, scale: float) -> float:
        for s, v in zip(self.scales, self.relative_ipc):
            if s == scale:
                return v
        raise KeyError(f"scale {scale} not in curve")


def scaling_curves(
    instructions: int,
    variant_mispredictions: Mapping[str, int],
    baseline_label: str,
    config: PipelineConfig = SKYLAKE_LIKE,
    scales: Sequence[float] = SCALING_FACTORS,
) -> List[ScalingCurve]:
    """Relative-IPC-vs-scale curves for several predictor variants.

    All curves are normalized to the *baseline variant at 1x* (the paper's
    "IPC relative to baseline Skylake config" axis).
    """
    if baseline_label not in variant_mispredictions:
        raise ValueError(f"baseline {baseline_label!r} missing from variants")
    base_ipc = IntervalIpcModel(config.scaled(1.0)).ipc(
        instructions, variant_mispredictions[baseline_label]
    )
    curves = []
    for label, mispred in variant_mispredictions.items():
        rel = []
        for s in scales:
            ipc = IntervalIpcModel(config.scaled(s)).ipc(instructions, mispred)
            rel.append(ipc / base_ipc)
        curves.append(
            ScalingCurve(label=label, scales=tuple(scales), relative_ipc=tuple(rel))
        )
    return curves


def ipc_opportunity(
    instructions: int,
    baseline_mispredictions: int,
    config: PipelineConfig = SKYLAKE_LIKE,
    scale: float = 1.0,
) -> float:
    """Fractional IPC gain of perfect prediction over the baseline at one
    scale (the paper's "18.5% IPC opportunity at baseline")."""
    model = IntervalIpcModel(config.scaled(scale))
    base = model.ipc(instructions, baseline_mispredictions)
    perfect = model.ipc(instructions, 0)
    return perfect / base - 1.0


def h2p_share_of_opportunity(
    instructions: int,
    baseline_mispredictions: int,
    h2p_mispredictions_removed: int,
    config: PipelineConfig = SKYLAKE_LIKE,
    scale: float = 1.0,
) -> float:
    """Fraction of the perfect-BP IPC gain captured by fixing only H2Ps.

    ``h2p_mispredictions_removed`` is the baseline misprediction count minus
    the H2P contribution.  This is the paper's "H2Ps account for 75.7% of
    the potential IPC gain" style metric.
    """
    model = IntervalIpcModel(config.scaled(scale))
    base = model.ipc(instructions, baseline_mispredictions)
    perfect = model.ipc(instructions, 0)
    h2p_fixed = model.ipc(instructions, h2p_mispredictions_removed)
    if perfect <= base:
        return 0.0
    return (h2p_fixed - base) / (perfect - base)


@dataclass(frozen=True)
class GapClosure:
    """Fig. 7 cell: fraction of the TAGE8→perfect gap closed by one
    configuration at one pipeline scale."""

    label: str
    scale: float
    fraction_closed: float


def storage_gap_closure(
    instructions: int,
    baseline_mispredictions: int,
    config_mispredictions: Mapping[str, int],
    config: PipelineConfig = SKYLAKE_LIKE,
    scales: Sequence[float] = SCALING_FACTORS,
) -> List[GapClosure]:
    """Fig. 7: per (storage configuration, pipeline scale), the fraction of
    the baseline→perfect IPC gap the configuration closes."""
    out: List[GapClosure] = []
    for s in scales:
        model = IntervalIpcModel(config.scaled(s))
        base = model.ipc(instructions, baseline_mispredictions)
        perfect = model.ipc(instructions, 0)
        for label, mispred in config_mispredictions.items():
            improved = model.ipc(instructions, mispred)
            frac = (improved - base) / (perfect - base) if perfect > base else 0.0
            out.append(GapClosure(label=label, scale=s, fraction_closed=frac))
    return out


def opportunity_remaining(
    instructions: int,
    baseline_mispredictions: int,
    remaining_mispredictions: int,
    config: PipelineConfig = SKYLAKE_LIKE,
    scale: float = 1.0,
) -> float:
    """Fig. 8: fraction of the baseline→perfect IPC opportunity that remains
    after an idealization leaves ``remaining_mispredictions`` in place."""
    model = IntervalIpcModel(config.scaled(scale))
    base = model.ipc(instructions, baseline_mispredictions)
    perfect = model.ipc(instructions, 0)
    improved = model.ipc(instructions, remaining_mispredictions)
    if perfect <= base:
        return 0.0
    return (perfect - improved) / (perfect - base)
