"""Recurrence-interval analysis (paper Fig. 9).

The *recurrence interval* of a static branch is the number of instructions
between two consecutive dynamic executions of that branch.  The distribution
of per-branch *median* recurrence intervals reveals phase-like behaviour:
branches re-executed only every ~100K-1M instructions belong to macro-level
phases that an on-chip phase recognizer could exploit (Sec. V-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.types import BranchTrace
from repro.config import EXEC_SCALE


def _scaled(edges: Sequence[float], scale: int) -> List[float]:
    return [e / scale if e > 0 else e for e in edges]


#: Paper Fig. 9 bins (instructions), scaled by the slice scale (recurrence
#: intervals are instruction distances, which shrink with the trace).
RECURRENCE_BIN_EDGES = _scaled(
    [0, 1, 100, 1_000, 10_000, 100_000, 1_000_000, 2_000_000, 4_000_000,
     8_000_000, 16_000_000, 32_000_000],
    EXEC_SCALE,
)


def median_recurrence_intervals(
    trace: BranchTrace, conditional_only: bool = True
) -> Dict[int, float]:
    """Per-static-branch median recurrence interval (in instructions).

    Branches executing exactly once get interval 0 (the paper's singleton
    bin).
    """
    positions: Dict[int, List[int]] = {}
    mask = trace.conditional_mask if conditional_only else np.ones(len(trace.ips), bool)
    ips = trace.ips[mask]
    instr = trace.instr_indices[mask]
    order = np.argsort(instr, kind="stable")
    for i in order:
        positions.setdefault(int(ips[i]), []).append(int(instr[i]))
    out: Dict[int, float] = {}
    for ip, pos in positions.items():
        if len(pos) < 2:
            out[ip] = 0.0
        else:
            diffs = np.diff(np.asarray(pos))
            out[ip] = float(np.median(diffs))
    return out


@dataclass(frozen=True)
class RecurrenceHistogram:
    """Fraction of static branch IPs per median-recurrence-interval bin."""

    edges: Tuple[float, ...]
    fractions: Tuple[float, ...]
    counts: Tuple[int, ...]

    def peak_bin(self, skip_singletons: bool = True) -> int:
        """Index of the most populated bin (optionally ignoring the 0-1 bin
        of single-execution branches, as the paper does)."""
        start = 1 if skip_singletons else 0
        fracs = self.fractions[start:]
        return start + int(np.argmax(fracs))


def recurrence_histogram(
    traces: Sequence[BranchTrace],
    edges: Optional[Sequence[float]] = None,
) -> RecurrenceHistogram:
    """Pooled histogram of median recurrence intervals (Fig. 9)."""
    edges = list(edges) if edges is not None else list(RECURRENCE_BIN_EDGES)
    values: List[float] = []
    for trace in traces:
        values.extend(median_recurrence_intervals(trace).values())
    arr = np.asarray(values, dtype=float)
    counts, _ = np.histogram(arr, bins=np.asarray(edges))
    counts = counts.copy()
    counts[-1] += int((arr > edges[-1]).sum())
    total = counts.sum()
    fractions = counts / total if total else counts.astype(float)
    return RecurrenceHistogram(
        edges=tuple(float(e) for e in edges),
        fractions=tuple(float(f) for f in fractions),
        counts=tuple(int(c) for c in counts),
    )
