"""Register-value feature analysis (paper Fig. 10).

For data-dependent branches, the architectural register values immediately
preceding each dynamic execution are a candidate off-BPU input signal
(Sec. V-B).  The paper plots, for the top H2P heavy hitter of each SPECint
benchmark, the distribution of the (lower 32 bits of) values in 18 tracked
registers.  The executor's snapshot instrumentation supplies exactly that
data; this module reduces it to per-register value histograms and simple
structure metrics (how concentrated / heavy-tailed the distributions are).
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class RegisterValueProfile:
    """Value statistics for one tracked register at one branch."""

    register: int
    num_samples: int
    num_distinct: int
    entropy_bits: float  # Shannon entropy of the value distribution
    top_values: Tuple[Tuple[int, int], ...]  # (value, count), most common first

    @property
    def concentration(self) -> float:
        """Fraction of samples covered by the single most common value."""
        if not self.num_samples or not self.top_values:
            return 0.0
        return self.top_values[0][1] / self.num_samples


@dataclass(frozen=True)
class BranchRegisterProfile:
    """Fig. 10 panel data: per-register value profiles at one branch."""

    ip: int
    registers: Tuple[RegisterValueProfile, ...]

    def profile_for(self, register: int) -> RegisterValueProfile:
        for p in self.registers:
            if p.register == register:
                return p
        raise KeyError(f"register {register} not tracked")

    @property
    def mean_entropy_bits(self) -> float:
        if not self.registers:
            return 0.0
        return float(np.mean([p.entropy_bits for p in self.registers]))

    def scatter_points(self) -> List[Tuple[int, int, int]]:
        """(register, value, count) triples — the raw Fig. 10 scatter."""
        out = []
        for p in self.registers:
            for value, count in p.top_values:
                out.append((p.register, value, count))
        return out


def _entropy_bits(counts: Sequence[int]) -> float:
    total = sum(counts)
    if total == 0:
        return 0.0
    h = 0.0
    for c in counts:
        if c:
            p = c / total
            h -= p * math.log2(p)
    return h


def profile_register_values(
    ip: int,
    snapshots: Sequence[Tuple[int, ...]],
    tracked_registers: Sequence[int],
    top_n: int = 64,
) -> BranchRegisterProfile:
    """Reduce raw executor snapshots for one branch to per-register profiles.

    Args:
        ip: the branch the snapshots belong to.
        snapshots: one tuple of register values per dynamic execution
            (as produced by ``Executor(snapshot_ips=...)``).
        tracked_registers: the register indices corresponding to the tuple
            positions.
        top_n: how many most-common values to retain per register.
    """
    profiles: List[RegisterValueProfile] = []
    for pos, reg in enumerate(tracked_registers):
        counter: Counter = Counter()
        for snap in snapshots:
            counter[snap[pos] & 0xFFFFFFFF] += 1
        top = tuple(counter.most_common(top_n))
        profiles.append(
            RegisterValueProfile(
                register=reg,
                num_samples=len(snapshots),
                num_distinct=len(counter),
                entropy_bits=_entropy_bits(list(counter.values())),
                top_values=top,
            )
        )
    return BranchRegisterProfile(ip=ip, registers=tuple(profiles))


def profiles_differ(
    a: BranchRegisterProfile, b: BranchRegisterProfile, min_ratio: float = 1.5
) -> bool:
    """Heuristic for the paper's observation (1): distributions at different
    branches are drastically different.  True when the mean per-register
    entropies differ by ``min_ratio`` or the dominant values disagree on a
    majority of registers."""
    ea, eb = a.mean_entropy_bits, b.mean_entropy_bits
    if max(ea, eb) >= min_ratio * max(min(ea, eb), 1e-9):
        return True
    disagree = 0
    for pa, pb in zip(a.registers, b.registers):
        va = pa.top_values[0][0] if pa.top_values else None
        vb = pb.top_values[0][0] if pb.top_values else None
        if va != vb:
            disagree += 1
    return disagree > len(a.registers) // 2
