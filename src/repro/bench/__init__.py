"""``repro.bench``: the pinned perf-trajectory harness.

The repo's performance story (vectorized kernels, the on-disk trace store,
the parallel fan-out) has so far been asserted by one-off benchmark tests
but never *recorded*, so regressions between PRs are invisible.  This
harness runs a small set of pinned quick-tier scenarios and writes a
schema-versioned ``BENCH_core.json`` (``repro.bench/v1``) at the repo
root, with full run metadata (git SHA, date, tier, host), so every commit
can be compared against the committed ``benchmarks/baseline.json``:

* ``sim_throughput`` — scalar vs. kernel branches/sec per predictor
  family, plus TAGE-SC-L scalar vs. the batch-of-one replay;
* ``trace_store`` — cold (generate + publish) vs. warm (one ``.npz``
  read) trace acquisition;
* ``jobs_scaling`` — wall clock for a fixed simulation batch at
  ``--jobs 1/2/4`` over a pre-warmed trace store; the speedups are
  gated (direction ``higher``) whenever the machine has ≥ 2 cores;
* ``table1`` — cold and warm wall clock for the ``table1`` experiment
  (both pinned: the cold run now rides the batch-of-one replay);
* ``fig7_quick`` — cold and warm wall clock for the fig. 7 storage sweep
  over a warm trace store, plus the pinned scalar-vs-batched replay
  ratio for one workload's full preset sweep (CI gates on ≥ 3x).

Run with ``python -m repro.bench`` (or ``benchmarks/perf_trajectory.py``);
CI runs it on every push, uploads the artifact, and soft-fails only on
schema errors or a > ``DEFAULT_TOLERANCE`` regression vs. the baseline —
the wide band absorbs shared-runner noise while still catching order-of-
magnitude slips.  See ``docs/benchmarking.md``.
"""

from __future__ import annotations

import functools
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

BENCH_SCHEMA_VERSION = "repro.bench/v1"

#: Relative regression band for the baseline comparison (CI fails past it).
DEFAULT_TOLERANCE = 0.40

#: Wall-clock metrics where both sides sit under this many seconds are
#: recorded but not compared: a 20 ms cache read can swing 2x run to run
#: on a shared machine, and a relative band on it would only flap CI.
MIN_COMPARABLE_SECONDS = 0.25

#: Repo root (…/src/repro/bench/__init__.py -> three levels up).
REPO_ROOT = Path(__file__).resolve().parents[3]

#: Default artifact/baseline locations.
DEFAULT_OUT = REPO_ROOT / "BENCH_core.json"
DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "baseline.json"


@dataclass
class BenchConfig:
    """Pinned scenario parameters (tests shrink these; the CLI never does)."""

    workload: str = "605.mcf_s"
    extra_workload: str = "625.x264_s"  # second trace for the scaling batch
    input_index: int = 0
    instructions: Optional[int] = None  # None = active tier's spec length
    repeats: int = 2  # best-of-N for the throughput timings
    kernel_predictors: Tuple[str, ...] = (
        "bimodal", "gshare", "two-level-local",
        "perceptron", "path-perceptron", "o-gehl",
    )
    scalar_predictors: Tuple[str, ...] = ("tage-sc-l-8kb",)
    fig7_workload: str = "nosql"  # one-workload scalar-vs-batched ratio
    jobs_levels: Tuple[int, ...] = (1, 2, 4)
    # The scaling batch wants sims heavy enough to amortize pool startup;
    # the cheap kernel predictors finish in ~50ms and would *anti*-scale.
    # Two workloads × four inputs = 8 jobs: more jobs than the deepest
    # --jobs level, so the longest-job-first scheduler can actually pack
    # workers instead of serializing behind a one-job-per-worker batch.
    scaling_predictor: str = "tage-sc-l-8kb"
    scaling_inputs: Tuple[int, ...] = (0, 1, 2, 3)
    table1_cold_jobs: int = 4


#: Scenario registry: name -> fn(config, metrics, echo).
SCENARIOS: Dict[str, Callable[[BenchConfig, Dict[str, Dict[str, Any]], Callable], None]] = {}


def scenario(name: str):
    def register(fn):
        SCENARIOS[name] = fn
        return fn

    return register


def _metric(
    metrics: Dict[str, Dict[str, Any]],
    name: str,
    value: float,
    unit: str,
    direction: str,
) -> None:
    """Record one metric.  ``direction`` is ``higher``/``lower`` (better)
    or ``info`` (excluded from the baseline comparison)."""
    metrics[name] = {"value": float(value), "unit": unit, "direction": direction}


def _best_of(n: int, fn: Callable[[], Any]) -> Tuple[float, Any]:
    """Minimum wall time over ``n`` runs (and the last return value)."""
    best = float("inf")
    result = None
    for _ in range(max(1, n)):
        t0 = perf_counter()
        result = fn()
        best = min(best, perf_counter() - t0)
    return best, result


def _instructions(config: BenchConfig) -> int:
    if config.instructions is not None:
        return config.instructions
    from repro.config import active_tier

    return active_tier().spec_instructions


def _pinned_trace(
    config: BenchConfig,
    workload: Optional[str] = None,
    input_index: Optional[int] = None,
):
    from repro.experiments.lab import workload_spec
    from repro.workloads import trace_workload

    return trace_workload(
        workload_spec(workload or config.workload),
        config.input_index if input_index is None else input_index,
        instructions=_instructions(config),
    )


@scenario("sim_throughput")
def _bench_sim_throughput(config: BenchConfig, metrics, echo) -> None:
    """Scalar vs. kernel branches/sec for each predictor family."""
    from repro.experiments.lab import PREDICTOR_FACTORIES
    from repro.kernels import kernels_disabled, kernels_override
    from repro.pipeline.simulator import simulate_trace

    trace = _pinned_trace(config)
    branches = len(trace.trace)

    def run(label: str):
        return simulate_trace(trace.trace, PREDICTOR_FACTORIES[label]())

    for label in config.kernel_predictors:
        with kernels_disabled():
            t_scalar, _ = _best_of(config.repeats, functools.partial(run, label))
        with kernels_override(True):
            t_kernel, _ = _best_of(config.repeats, functools.partial(run, label))
        _metric(metrics, f"sim.{label}.scalar.branches_per_sec",
                branches / t_scalar, "branches/s", "higher")
        _metric(metrics, f"sim.{label}.kernel.branches_per_sec",
                branches / t_kernel, "branches/s", "higher")
        _metric(metrics, f"sim.{label}.kernel_speedup",
                t_scalar / t_kernel, "x", "info")
        echo(f"  {label}: scalar {branches / t_scalar:,.0f}/s, "
             f"kernel {branches / t_kernel:,.0f}/s "
             f"({t_scalar / t_kernel:.1f}x)")
    for label in config.scalar_predictors:
        # TAGE-SC-L: the pure-Python scalar loop vs. the batch-of-one
        # replay `simulate_trace` now dispatches by default.
        with kernels_disabled():
            t_scalar, _ = _best_of(1, functools.partial(run, label))
        with kernels_override(True):
            t_batched, _ = _best_of(config.repeats, functools.partial(run, label))
        _metric(metrics, f"sim.{label}.scalar.branches_per_sec",
                branches / t_scalar, "branches/s", "higher")
        _metric(metrics, f"sim.{label}.batched.branches_per_sec",
                branches / t_batched, "branches/s", "higher")
        _metric(metrics, f"sim.{label}.batched_speedup",
                t_scalar / t_batched, "x", "higher")
        echo(f"  {label}: scalar {branches / t_scalar:,.0f}/s, "
             f"batched {branches / t_batched:,.0f}/s "
             f"({t_scalar / t_batched:.1f}x)")


@scenario("trace_store")
def _bench_trace_store(config: BenchConfig, metrics, echo) -> None:
    """Cold (generate + publish) vs. warm (.npz read) trace acquisition."""
    from repro.workloads.trace_store import TraceStore

    n = _instructions(config)
    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as d:
        store = TraceStore(d)

        t0 = perf_counter()
        generated = _pinned_trace(config)
        store.store(config.workload, config.input_index, n, generated.trace)
        cold_s = perf_counter() - t0

        warm_s, loaded = _best_of(
            config.repeats,
            lambda: store.load(config.workload, config.input_index, n),
        )
        assert loaded is not None
    _metric(metrics, "trace_store.cold_s", cold_s, "s", "lower")
    _metric(metrics, "trace_store.warm_s", warm_s, "s", "lower")
    _metric(metrics, "trace_store.speedup", cold_s / warm_s if warm_s else 0.0,
            "x", "info")
    echo(f"  cold {cold_s:.3f}s, warm {warm_s:.4f}s")


@scenario("jobs_scaling")
def _bench_jobs_scaling(config: BenchConfig, metrics, echo) -> None:
    """Wall clock for one fixed simulation batch at each --jobs level.

    Every level gets a fresh cache directory (so simulations are really
    recomputed) pre-warmed with the generated traces (so trace generation
    is excluded and workers read through the shared store).  The batch is
    8 TAGE-SC-L jobs — more than the deepest ``--jobs`` level — so the
    speedup metrics measure real packing, and they carry direction
    ``higher`` (baseline-gated) whenever the machine has at least two
    cores; on a single-core box they degrade to ``info`` because no
    process pool can beat serial there.  ``parallel.cores`` records which
    regime produced the numbers.
    """
    from repro.experiments.lab import Lab
    from repro.workloads.trace_store import TraceStore

    cores = os.cpu_count() or 1
    speedup_direction = "higher" if cores >= 2 else "info"
    _metric(metrics, "parallel.cores", cores, "cores", "info")
    n = _instructions(config)
    workloads = [config.workload, config.extra_workload]
    pairs = [(w, i) for w in workloads for i in config.scaling_inputs]
    traces = {(w, i): _pinned_trace(config, w, i) for w, i in pairs}
    requests = [(w, i, config.scaling_predictor, n) for w, i in pairs]
    base_s: Optional[float] = None
    for jobs in config.jobs_levels:
        with tempfile.TemporaryDirectory(prefix="repro-bench-jobs-") as d:
            store = TraceStore(d)
            for (w, i), tr in traces.items():
                store.store(w, i, n, tr.trace)
            lab = Lab(cache_dir=d, jobs=jobs)
            try:
                t0 = perf_counter()
                lab.prefetch(requests)
                for w, i, p, size in requests:
                    lab.simulate(w, i, p, instructions=size)
                wall_s = perf_counter() - t0
            finally:
                lab.close()
        _metric(metrics, f"parallel.jobs{jobs}.wall_s", wall_s, "s", "lower")
        if base_s is None:
            base_s = wall_s
        else:
            _metric(metrics, f"parallel.jobs{jobs}.speedup", base_s / wall_s,
                    "x", speedup_direction)
        echo(f"  jobs={jobs}: {wall_s:.2f}s")


@scenario("table1")
def _bench_table1(config: BenchConfig, metrics, echo) -> None:
    """Cold and warm wall clock for the ``table1`` experiment."""
    from repro.experiments.lab import Lab
    from repro.experiments.runner import run_experiments

    with tempfile.TemporaryDirectory(prefix="repro-bench-table1-") as d:
        lab = Lab(cache_dir=d, jobs=config.table1_cold_jobs)
        try:
            t0 = perf_counter()
            run_experiments(["table1"], lab, echo=lambda _line: None)
            cold_s = perf_counter() - t0
        finally:
            lab.close()
        lab = Lab(cache_dir=d, jobs=1)
        try:
            t0 = perf_counter()
            run_experiments(["table1"], lab, echo=lambda _line: None)
            warm_s = perf_counter() - t0
        finally:
            lab.close()
    _metric(metrics, "table1.cold_s", cold_s, "s", "lower")
    _metric(metrics, "table1.warm_s", warm_s, "s", "lower")
    echo(f"  cold {cold_s:.1f}s (jobs={config.table1_cold_jobs}), warm {warm_s:.2f}s")


@scenario("fig7_quick")
def _bench_fig7_quick(config: BenchConfig, metrics, echo) -> None:
    """The batched TAGE-SC-L storage sweep: fig7 wall clock + replay ratio.

    ``fig7.cold_s`` times the whole experiment over a pre-warmed trace
    store (every preset simulated through the multi-config replay);
    ``fig7.warm_s`` re-renders from the simulation cache.  The pinned
    ``fig7.batched_speedup`` replays one workload's full preset sweep
    scalar vs. batched on the same trace — the honest kernel ratio, with
    trace acquisition and caching excluded.  CI gates on it staying ≥ 3x.
    """
    from repro.experiments.fig7 import compute_fig7
    from repro.experiments.lab import PREDICTOR_FACTORIES, Lab
    from repro.kernels import kernels_disabled, kernels_override
    from repro.pipeline.simulator import simulate_trace, simulate_trace_batch
    from repro.predictors.tagescl import STORAGE_PRESETS_KIB
    from repro.workloads import LCF_WORKLOADS

    sweep = [f"tage-sc-l-{kib}kb" for kib in STORAGE_PRESETS_KIB]
    with tempfile.TemporaryDirectory(prefix="repro-bench-fig7-") as d:
        lab = Lab(cache_dir=d, jobs=1)
        try:
            for spec in LCF_WORKLOADS:
                lab.trace(spec.name, 0)
            t0 = perf_counter()
            compute_fig7(lab)
            cold_s = perf_counter() - t0
            t0 = perf_counter()
            compute_fig7(lab)
            warm_s = perf_counter() - t0
            pinned = lab.trace(config.fig7_workload, 0)
        finally:
            lab.close()
    _metric(metrics, "fig7.cold_s", cold_s, "s", "lower")
    _metric(metrics, "fig7.warm_s", warm_s, "s", "lower")
    echo(f"  fig7: cold {cold_s:.2f}s, warm {warm_s:.3f}s")

    with kernels_disabled():
        t0 = perf_counter()
        for name in sweep:
            simulate_trace(pinned.trace, PREDICTOR_FACTORIES[name]())
        scalar_s = perf_counter() - t0
    with kernels_override(True):
        t0 = perf_counter()
        simulate_trace_batch(
            pinned.trace, [PREDICTOR_FACTORIES[name]() for name in sweep]
        )
        batched_s = perf_counter() - t0
    _metric(metrics, "fig7.scalar_sweep_s", scalar_s, "s", "info")
    _metric(metrics, "fig7.batched_sweep_s", batched_s, "s", "lower")
    _metric(metrics, "fig7.batched_speedup",
            scalar_s / batched_s if batched_s else 0.0, "x", "higher")
    echo(f"  {config.fig7_workload} sweep: scalar {scalar_s:.2f}s, "
         f"batched {batched_s:.2f}s ({scalar_s / batched_s:.1f}x)")


def run_benchmarks(
    config: Optional[BenchConfig] = None,
    only: Optional[Sequence[str]] = None,
    echo: Callable[[str], None] = print,
) -> Dict[str, Any]:
    """Run the pinned scenarios; returns the ``repro.bench/v1`` document."""
    from repro.config import active_tier
    from repro.obs.runmeta import run_metadata

    config = config or BenchConfig()
    selected = list(only) if only else list(SCENARIOS)
    unknown = [s for s in selected if s not in SCENARIOS]
    if unknown:
        raise ValueError(f"unknown scenarios: {unknown}; choose from {list(SCENARIOS)}")

    metrics: Dict[str, Dict[str, Any]] = {}
    timings: Dict[str, float] = {}
    for name in selected:
        echo(f"[bench] {name}")
        t0 = perf_counter()
        SCENARIOS[name](config, metrics, echo)
        timings[name] = perf_counter() - t0
    return {
        "schema": BENCH_SCHEMA_VERSION,
        # fresh=True: the document must pin HEAD *as of this run*, not
        # whatever a long-lived process cached at its first artifact export.
        "meta": run_metadata(fresh=True),
        "config": {
            "tier": active_tier().name,
            "workload": config.workload,
            "instructions": _instructions(config),
            "repeats": config.repeats,
            "scenarios": selected,
        },
        "scenario_seconds": {k: round(v, 3) for k, v in timings.items()},
        "metrics": metrics,
    }


def validate_bench_doc(doc: Dict[str, Any]) -> None:
    """Schema check for a bench document; raises ``ValueError`` on errors."""
    if doc.get("schema") != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported bench schema {doc.get('schema')!r}; "
            f"expected {BENCH_SCHEMA_VERSION}"
        )
    for key in ("meta", "config", "metrics"):
        if key not in doc:
            raise ValueError(f"bench document missing {key!r}")
    if not isinstance(doc["metrics"], dict) or not doc["metrics"]:
        raise ValueError("bench document has no metrics")
    for name, m in doc["metrics"].items():
        if not isinstance(m, dict):
            raise ValueError(f"metric {name!r} is not an object")
        for key in ("value", "unit", "direction"):
            if key not in m:
                raise ValueError(f"metric {name!r} missing {key!r}")
        if m["direction"] not in ("higher", "lower", "info"):
            raise ValueError(f"metric {name!r} has bad direction {m['direction']!r}")
        if not isinstance(m["value"], (int, float)):
            raise ValueError(f"metric {name!r} value is not numeric")


def compare_to_baseline(
    doc: Dict[str, Any],
    baseline: Dict[str, Any],
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[Dict[str, Any]]:
    """Direction-aware comparison; returns the out-of-band regressions.

    Only metrics present in *both* documents with a better-direction
    (``higher``/``lower``) participate; ``info`` metrics, metrics added or
    removed between versions, and sub-:data:`MIN_COMPARABLE_SECONDS`
    wall-clock metrics never fail the comparison.
    """
    regressions: List[Dict[str, Any]] = []
    base_metrics = baseline.get("metrics", {})
    for name, m in doc.get("metrics", {}).items():
        base = base_metrics.get(name)
        direction = m.get("direction")
        if base is None or direction not in ("higher", "lower"):
            continue
        cur_v, base_v = float(m["value"]), float(base["value"])
        if base_v <= 0:
            continue
        if m.get("unit") == "s" and max(cur_v, base_v) < MIN_COMPARABLE_SECONDS:
            continue
        ratio = cur_v / base_v
        bad = ratio < (1.0 - tolerance) if direction == "higher" else ratio > (
            1.0 + tolerance
        )
        if bad:
            regressions.append(
                {
                    "metric": name,
                    "direction": direction,
                    "current": cur_v,
                    "baseline": base_v,
                    "ratio": ratio,
                }
            )
    return regressions


def write_bench_json(doc: Dict[str, Any], path) -> Path:
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    with open(out, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    return out


def load_bench_json(path) -> Dict[str, Any]:
    with open(path) as f:
        return json.load(f)
