"""``python -m repro.bench``: run the pinned perf-trajectory scenarios.

Writes a ``repro.bench/v1`` document (default: ``BENCH_core.json`` at the
repo root) and, when a baseline exists, reports direction-aware
regressions beyond the tolerance band.  Exit status: 0 clean, 1 schema
error or out-of-band regression (with ``--check``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.bench import (
    DEFAULT_BASELINE,
    DEFAULT_OUT,
    DEFAULT_TOLERANCE,
    SCENARIOS,
    BenchConfig,
    compare_to_baseline,
    load_bench_json,
    run_benchmarks,
    validate_bench_doc,
    write_bench_json,
)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench",
        description="Run the pinned perf-trajectory benchmark scenarios.",
    )
    parser.add_argument(
        "--out",
        default=str(DEFAULT_OUT),
        metavar="PATH",
        help=f"output document (default: {DEFAULT_OUT})",
    )
    parser.add_argument(
        "--baseline",
        default=str(DEFAULT_BASELINE),
        metavar="PATH",
        help=f"baseline document to compare against (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        metavar="FRAC",
        help="relative regression band for the comparison "
        f"(default: {DEFAULT_TOLERANCE})",
    )
    parser.add_argument(
        "--only",
        action="append",
        metavar="SCENARIO",
        help=f"run only this scenario (repeatable). Choices: {', '.join(SCENARIOS)}",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 if any metric regresses beyond the tolerance vs. the "
        "baseline (schema errors always exit 1)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list scenario names and exit"
    )
    args = parser.parse_args(argv)
    if args.list:
        for name in SCENARIOS:
            print(name)
        return 0

    try:
        doc = run_benchmarks(only=args.only)
    except ValueError as exc:
        parser.error(str(exc))
    validate_bench_doc(doc)
    out = write_bench_json(doc, args.out)
    print(f"\nwrote {out} ({len(doc['metrics'])} metrics, "
          f"schema {doc['schema']})")

    try:
        baseline = load_bench_json(args.baseline)
    except (OSError, ValueError):
        print(f"no readable baseline at {args.baseline}; comparison skipped")
        return 0
    regressions = compare_to_baseline(doc, baseline, tolerance=args.tolerance)
    if not regressions:
        print(f"baseline comparison clean (tolerance {args.tolerance:.0%})")
        return 0
    print(f"{len(regressions)} metric(s) beyond the {args.tolerance:.0%} band:")
    for r in regressions:
        print(
            f"  {r['metric']}: {r['current']:.4g} vs baseline "
            f"{r['baseline']:.4g} ({r['ratio']:.2f}x, want {r['direction']})"
        )
    return 1 if args.check else 0


if __name__ == "__main__":
    sys.exit(main())
