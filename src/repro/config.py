"""Scaled experiment constants.

The paper operates on 10B-instruction traces post-processed into
30M-instruction slices, and screens H2Ps at >=15,000 executions / >=1,000
mispredictions per slice.  A pure-Python interpreter cannot execute 10B
instructions, so every instruction-count constant is scaled down by
``SLICE_SCALE`` and every per-branch execution-count constant by
``EXEC_SCALE`` (the synthetic static branch populations are themselves
``STATIC_SCALE`` times smaller than the paper's, so per-branch execution
counts shrink by ``SLICE_SCALE / STATIC_SCALE``).  The accuracy criterion
(<99%) is scale-free and unchanged.

Every analysis and experiment driver reads these constants, so the whole
reproduction can be re-run at a different scale by editing this module (or
passing explicit values to the drivers).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

#: Instruction-count scale relative to the paper (30M-instruction slices
#: become 300K).
SLICE_SCALE = 100

#: Static-branch-population scale relative to the paper.
STATIC_SCALE = 10

#: Per-branch execution-count scale = SLICE_SCALE / STATIC_SCALE.
EXEC_SCALE = SLICE_SCALE // STATIC_SCALE

#: Scaled slice length (paper: 30,000,000).
SLICE_INSTRUCTIONS = 30_000_000 // SLICE_SCALE

#: H2P screening criteria (paper: accuracy < 0.99, >= 15,000 executions,
#: >= 1,000 mispredictions per slice).  These are *per-slice totals*, so
#: they scale with the slice length (SLICE_SCALE), keeping the criteria
#: mutually consistent: a slice with the paper's aggregate accuracy can
#: still contain the paper's number of qualifying H2Ps.
H2P_ACCURACY_THRESHOLD = 0.99
H2P_MIN_EXECUTIONS = 15_000 // SLICE_SCALE
H2P_MIN_MISPREDICTIONS = 1_000 // SLICE_SCALE

#: Dependency-branch analysis window (paper: 5,000 instructions), scaled
#: mildly — kernels are tighter than real code, so 2,500 instructions spans
#: proportionally more branches than the paper's window.
DEPENDENCY_WINDOW_INSTRUCTIONS = 2_500

#: Rare-branch thresholds for the Fig. 8 limit study (paper: 1,000 / 100
#: dynamic executions per 30M-instruction trace).
RARE_EXECUTION_THRESHOLDS = (1_000 // EXEC_SCALE, 100 // EXEC_SCALE)

#: Registers tracked for the Fig. 10 register-value study.
NUM_TRACKED_REGISTERS = 18


@dataclass(frozen=True)
class ExperimentTier:
    """How much data an experiment run consumes.

    ``quick`` keeps unit-test latency tolerable; ``full`` is the benchmark
    default.  Both use the same slice length so per-slice statistics are
    comparable — the tiers differ in how many inputs and slices they cover.
    """

    name: str
    spec_inputs: int  # inputs per SPECint benchmark
    spec_slices: int  # slices per (benchmark, input) trace
    lcf_slices: int  # slices per LCF application trace

    @property
    def spec_instructions(self) -> int:
        return self.spec_slices * SLICE_INSTRUCTIONS

    @property
    def lcf_instructions(self) -> int:
        return self.lcf_slices * SLICE_INSTRUCTIONS


QUICK_TIER = ExperimentTier(name="quick", spec_inputs=2, spec_slices=3, lcf_slices=1)
FULL_TIER = ExperimentTier(name="full", spec_inputs=4, spec_slices=10, lcf_slices=1)


def active_tier() -> ExperimentTier:
    """The tier selected by the ``REPRO_TIER`` environment variable
    (``quick`` unless set to ``full``)."""
    return FULL_TIER if os.environ.get("REPRO_TIER", "").lower() == "full" else QUICK_TIER
