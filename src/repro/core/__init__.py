"""Core datatypes, histories, metrics, and storage accounting."""

from repro.core.history import (
    GlobalHistory,
    HistoryState,
    LocalHistoryTable,
    PathHistory,
)
from repro.core.metrics import BranchCounts, BranchStats, misprediction_fraction
from repro.core.storage import StorageBudget, bits_to_kib, kib_to_bits
from repro.core.types import (
    BranchKind,
    BranchRecord,
    BranchTrace,
    TraceSlice,
    WorkloadTrace,
)

__all__ = [
    "BranchCounts",
    "BranchKind",
    "BranchRecord",
    "BranchStats",
    "BranchTrace",
    "GlobalHistory",
    "HistoryState",
    "LocalHistoryTable",
    "PathHistory",
    "StorageBudget",
    "TraceSlice",
    "WorkloadTrace",
    "bits_to_kib",
    "kib_to_bits",
    "misprediction_fraction",
]
