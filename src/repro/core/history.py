"""Branch history registers.

The paper (Sec. II) describes the three data modalities BPUs organize raw
data into: the *global history* (ordered directions of recently executed
branches), each branch's *local history*, and the *path history* (recent
branch IPs).  These classes are the shared substrate for every predictor in
:mod:`repro.predictors`.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List


class GlobalHistory:
    """Fixed-capacity global direction history.

    Maintains both a packed integer view (cheap hashing for table-indexed
    predictors) and a positional view (``bit(i)`` = direction of the i-th most
    recent branch) for perceptron- and CNN-style predictors.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._mask = (1 << capacity) - 1
        self._bits = 0
        self._length = 0

    def push(self, taken: bool) -> None:
        self._bits = ((self._bits << 1) | int(taken)) & self._mask
        if self._length < self.capacity:
            self._length += 1

    def __len__(self) -> int:
        return self._length

    def bit(self, position: int) -> int:
        """Direction of the branch at ``position`` (0 = most recent)."""
        if position < 0 or position >= self.capacity:
            raise IndexError(f"history position {position} out of range")
        return (self._bits >> position) & 1

    def low_bits(self, n: int) -> int:
        """The ``n`` most recent directions packed into an int (newest = LSB)."""
        if n < 0 or n > self.capacity:
            raise ValueError(f"cannot take {n} bits from capacity {self.capacity}")
        return self._bits & ((1 << n) - 1)

    def to_list(self, n: int) -> List[int]:
        """The ``n`` most recent directions, newest first."""
        return [(self._bits >> i) & 1 for i in range(min(n, self.capacity))]

    def fold(self, n: int, width: int) -> int:
        """Fold the ``n`` most recent directions into ``width`` bits by XOR.

        This is the classic folded-history trick TAGE uses to index tables
        with long histories.
        """
        if width <= 0:
            raise ValueError("width must be positive")
        bits = self.low_bits(n)
        folded = 0
        while bits:
            folded ^= bits & ((1 << width) - 1)
            bits >>= width
        return folded


class PathHistory:
    """Recent branch IP values (the path modality)."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._ips: Deque[int] = deque(maxlen=capacity)
        self._hash = 0

    def push(self, ip: int) -> None:
        self._ips.appendleft(ip)
        # Rolling path hash mixing low IP bits, as hardware path histories do.
        self._hash = ((self._hash << 3) ^ (ip & 0xFFFF)) & 0xFFFFFFFF

    def __len__(self) -> int:
        return len(self._ips)

    def recent(self, n: int) -> List[int]:
        """The ``n`` most recent branch IPs, newest first."""
        return list(self._ips)[:n]

    def hash_value(self, width: int) -> int:
        """A ``width``-bit digest of the path history."""
        if width <= 0 or width > 32:
            raise ValueError("width must be in 1..32")
        h, digest = self._hash, 0
        while h:
            digest ^= h & ((1 << width) - 1)
            h >>= width
        return digest


class LocalHistoryTable:
    """Per-branch direction histories, keyed by hashed IP.

    Models the local-history modality (Yeh & Patt two-level prediction): a
    table of shift registers indexed by low IP bits.
    """

    def __init__(self, num_entries: int, history_bits: int) -> None:
        if num_entries <= 0 or num_entries & (num_entries - 1):
            raise ValueError("num_entries must be a positive power of two")
        if history_bits <= 0:
            raise ValueError("history_bits must be positive")
        self.num_entries = num_entries
        self.history_bits = history_bits
        self._mask = (1 << history_bits) - 1
        self._table = [0] * num_entries

    def _index(self, ip: int) -> int:
        return ip & (self.num_entries - 1)

    def get(self, ip: int) -> int:
        """Packed local history for ``ip`` (newest direction = LSB)."""
        return self._table[self._index(ip)]

    def push(self, ip: int, taken: bool) -> None:
        i = self._index(ip)
        self._table[i] = ((self._table[i] << 1) | int(taken)) & self._mask

    def storage_bits(self) -> int:
        return self.num_entries * self.history_bits


class HistoryState:
    """Bundle of all three history modalities, updated in lockstep.

    Predictors that need several modalities (TAGE-SC-L, statistical
    corrector) share one ``HistoryState`` so that the views stay consistent.
    """

    def __init__(
        self,
        global_capacity: int = 4096,
        path_capacity: int = 32,
        local_entries: int = 1024,
        local_bits: int = 16,
    ) -> None:
        self.global_history = GlobalHistory(global_capacity)
        self.path_history = PathHistory(path_capacity)
        self.local_histories = LocalHistoryTable(local_entries, local_bits)

    def update(self, ip: int, taken: bool) -> None:
        self.global_history.push(taken)
        self.path_history.push(ip)
        self.local_histories.push(ip, taken)
