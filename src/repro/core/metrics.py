"""Prediction-quality metrics.

Everything in the paper's Tables I/II and Figures 2-8 reduces to per-branch
and aggregate counts of dynamic executions and mispredictions.  The
:class:`BranchStats` accumulator is the single source of those counts for the
whole analysis pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

import numpy as np


@dataclass
class BranchCounts:
    """Dynamic execution / misprediction counts for one static branch."""

    executions: int = 0
    mispredictions: int = 0

    @property
    def correct(self) -> int:
        return self.executions - self.mispredictions

    @property
    def accuracy(self) -> float:
        """Prediction accuracy; 1.0 for branches that never executed."""
        if self.executions == 0:
            return 1.0
        return self.correct / self.executions

    def merge(self, other: "BranchCounts") -> None:
        self.executions += other.executions
        self.mispredictions += other.mispredictions


class BranchStats:
    """Accumulates per-static-branch prediction statistics over a run."""

    def __init__(self) -> None:
        self._counts: Dict[int, BranchCounts] = {}
        self.total_executions = 0
        self.total_mispredictions = 0

    def record(self, ip: int, correct: bool) -> None:
        entry = self._counts.get(ip)
        if entry is None:
            entry = BranchCounts()
            self._counts[ip] = entry
        entry.executions += 1
        self.total_executions += 1
        if not correct:
            entry.mispredictions += 1
            self.total_mispredictions += 1

    def record_bulk(self, ip: int, executions: int, mispredictions: int) -> None:
        """Add pre-aggregated counts (used by vectorized simulation paths)."""
        if mispredictions > executions:
            raise ValueError("mispredictions cannot exceed executions")
        entry = self._counts.get(ip)
        if entry is None:
            entry = BranchCounts()
            self._counts[ip] = entry
        entry.executions += executions
        entry.mispredictions += mispredictions
        self.total_executions += executions
        self.total_mispredictions += mispredictions

    def __contains__(self, ip: int) -> bool:
        return ip in self._counts

    def __len__(self) -> int:
        return len(self._counts)

    def get(self, ip: int) -> BranchCounts:
        return self._counts.get(ip, BranchCounts())

    def items(self) -> Iterable[Tuple[int, BranchCounts]]:
        return self._counts.items()

    def ips(self) -> List[int]:
        return list(self._counts.keys())

    def counts_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Columnar view ``(ips, executions, mispredictions)`` in insertion
        order — the operand order scalar accumulation established, which the
        vectorized reductions below must preserve to stay bit-identical."""
        n = len(self._counts)
        ips = np.fromiter(self._counts.keys(), dtype=np.int64, count=n)
        executions = np.fromiter(
            (c.executions for c in self._counts.values()), dtype=np.int64, count=n
        )
        mispredictions = np.fromiter(
            (c.mispredictions for c in self._counts.values()),
            dtype=np.int64,
            count=n,
        )
        return ips, executions, mispredictions

    @property
    def accuracy(self) -> float:
        """Aggregate accuracy over all recorded dynamic branches."""
        if self.total_executions == 0:
            return 1.0
        return 1.0 - self.total_mispredictions / self.total_executions

    def accuracy_excluding(self, excluded_ips: Iterable[int]) -> float:
        """Aggregate accuracy with the given static branches removed.

        Implements the paper's "Avg. Acc. excl. H2Ps" column of Table I.
        """
        excluded = set(excluded_ips)
        execs = self.total_executions
        mispreds = self.total_mispredictions
        for ip in excluded:
            entry = self._counts.get(ip)
            if entry is not None:
                execs -= entry.executions
                mispreds -= entry.mispredictions
        if execs == 0:
            return 1.0
        return 1.0 - mispreds / execs

    def mean_accuracy_per_branch(self) -> float:
        """Unweighted mean of per-static-branch accuracy (Table II metric).

        Vectorized over :meth:`counts_arrays`; both the per-branch division
        and the mean see the exact values/order a per-entry Python loop
        would, so results match the scalar formulation bit-for-bit.
        """
        if not self._counts:
            return 1.0
        _, executions, mispredictions = self.counts_arrays()
        accuracy = np.ones(len(executions), dtype=np.float64)
        np.divide(
            executions - mispredictions,
            executions,
            out=accuracy,
            where=executions > 0,
        )
        return float(np.mean(accuracy))

    def mean_executions_per_branch(self) -> float:
        if not self._counts:
            return 0.0
        return self.total_executions / len(self._counts)

    def mpki(self, instr_count: int) -> float:
        """Mispredictions per kilo-instruction."""
        if instr_count <= 0:
            raise ValueError("instr_count must be positive")
        return 1000.0 * self.total_mispredictions / instr_count

    def merge(self, other: "BranchStats") -> None:
        for ip, counts in other.items():
            self.record_bulk(ip, counts.executions, counts.mispredictions)

    def copy(self) -> "BranchStats":
        out = BranchStats()
        out.merge(self)
        return out


def misprediction_fraction(
    stats: BranchStats, ips: Iterable[int]
) -> float:
    """Fraction of all dynamic mispredictions caused by the given branches.

    This is the paper's "% Mispreds due to H2Ps per Slice" metric.
    """
    if stats.total_mispredictions == 0:
        return 0.0
    wanted = set(ips)
    all_ips, _, mispredictions = stats.counts_arrays()
    mask = np.isin(
        all_ips, np.fromiter(wanted, dtype=np.int64, count=len(wanted))
    )
    subset = int(mispredictions[mask].sum())
    return subset / stats.total_mispredictions
