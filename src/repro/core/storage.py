"""BPU storage accounting.

CBP2016 (and the paper's limit studies) compare predictors at fixed storage
budgets: 8KB and 64KB in the contest, up to 1024KB in the paper's Fig. 7
sweep.  Every predictor in :mod:`repro.predictors` reports its footprint via
``storage_bits()``; this module provides the budget arithmetic and a helper
to verify a predictor fits its advertised budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol


KIB = 1024
BITS_PER_BYTE = 8


def kib_to_bits(kib: float) -> int:
    """Convert a storage budget in KiB to bits."""
    if kib <= 0:
        raise ValueError("storage budget must be positive")
    return int(kib * KIB * BITS_PER_BYTE)


def bits_to_kib(bits: int) -> float:
    if bits < 0:
        raise ValueError("bits must be non-negative")
    return bits / (KIB * BITS_PER_BYTE)


class HasStorage(Protocol):
    def storage_bits(self) -> int: ...


@dataclass(frozen=True)
class StorageBudget:
    """A storage envelope with a tolerance, e.g. "8KB-class predictor".

    CBP rules allow small overheads (logic registers, a few counters), so we
    accept footprints up to ``slack`` above the nominal budget.
    """

    kib: float
    slack: float = 0.10

    @property
    def bits(self) -> int:
        return kib_to_bits(self.kib)

    def fits(self, component: HasStorage) -> bool:
        return component.storage_bits() <= self.bits * (1.0 + self.slack)

    def utilization(self, component: HasStorage) -> float:
        """Fraction of the budget the component consumes."""
        return component.storage_bits() / self.bits


def saturating_counter_bits(num_counters: int, width: int) -> int:
    """Bits consumed by a table of saturating counters."""
    if num_counters < 0 or width <= 0:
        raise ValueError("invalid counter table shape")
    return num_counters * width
