"""Core datatypes shared across the library.

The whole measurement pipeline in the paper operates on a *dynamic branch
stream*: the ordered sequence of (instruction pointer, branch kind, taken
direction, target) tuples produced as a program retires instructions.  These
types model that stream plus the slicing discipline the paper uses
(30M-instruction slices, scaled down here; see
:mod:`repro.experiments.config`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np


class BranchKind(enum.IntEnum):
    """Kinds of control-flow instructions the BPU observes.

    Only :attr:`CONDITIONAL` branches are predicted for direction; the other
    kinds participate in the path history and instruction accounting.
    """

    CONDITIONAL = 0
    UNCONDITIONAL = 1
    CALL = 2
    RETURN = 3
    INDIRECT = 4


@dataclass(frozen=True)
class BranchRecord:
    """A single dynamic branch execution as seen by the BPU.

    Attributes:
        ip: instruction pointer (virtual address) of the branch.
        taken: observed direction (always True for unconditional kinds).
        target: branch target address.
        kind: the :class:`BranchKind`.
        instr_index: index of this branch in the retired instruction stream
            (used for recurrence-interval and slicing analyses).
    """

    ip: int
    taken: bool
    target: int
    kind: BranchKind = BranchKind.CONDITIONAL
    instr_index: int = 0

    @property
    def is_conditional(self) -> bool:
        return self.kind == BranchKind.CONDITIONAL


class BranchTrace:
    """A columnar dynamic branch trace.

    Stores the branch stream as parallel numpy arrays for speed, while still
    exposing a record-oriented iteration interface.  ``instr_count`` is the
    total number of retired instructions the trace spans (branches plus
    non-branch instructions), which the IPC model and slicing logic need.
    """

    __slots__ = (
        "ips",
        "taken",
        "targets",
        "kinds",
        "instr_indices",
        "instr_count",
        "_lists",
        "_cond_cols",
        "_cond_codes",
        "_plan_cache",
    )

    def __init__(
        self,
        ips: Sequence[int],
        taken: Sequence[bool],
        targets: Optional[Sequence[int]] = None,
        kinds: Optional[Sequence[int]] = None,
        instr_indices: Optional[Sequence[int]] = None,
        instr_count: Optional[int] = None,
    ) -> None:
        self.ips = np.asarray(ips, dtype=np.int64)
        self.taken = np.asarray(taken, dtype=np.uint8)
        n = len(self.ips)
        if len(self.taken) != n:
            raise ValueError("ips and taken must have equal length")
        self.targets = (
            np.asarray(targets, dtype=np.int64)
            if targets is not None
            else np.zeros(n, dtype=np.int64)
        )
        self.kinds = (
            np.asarray(kinds, dtype=np.int8)
            if kinds is not None
            else np.full(n, int(BranchKind.CONDITIONAL), dtype=np.int8)
        )
        self.instr_indices = (
            np.asarray(instr_indices, dtype=np.int64)
            if instr_indices is not None
            else np.arange(n, dtype=np.int64)
        )
        if len(self.targets) != n or len(self.kinds) != n or len(self.instr_indices) != n:
            raise ValueError("all trace columns must have equal length")
        if instr_count is None:
            instr_count = int(self.instr_indices[-1]) + 1 if n else 0
        if n and instr_count <= int(self.instr_indices[-1]):
            raise ValueError("instr_count must exceed the last instruction index")
        self.instr_count = int(instr_count)
        self._lists: Optional[
            Tuple[List[int], List[bool], List[int], List[int], List[int]]
        ] = None
        self._cond_cols: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        self._cond_codes: Optional[Tuple[np.ndarray, np.ndarray]] = None
        # Scoring-plan memo used by repro.kernels.engine: grouping work that
        # depends only on (trace, warmup, slice length), not the predictor.
        self._plan_cache: Optional[Dict[Any, Any]] = None

    def __len__(self) -> int:
        return len(self.ips)

    def __iter__(self) -> Iterator[BranchRecord]:
        for i in range(len(self.ips)):
            yield BranchRecord(
                ip=int(self.ips[i]),
                taken=bool(self.taken[i]),
                target=int(self.targets[i]),
                kind=BranchKind(int(self.kinds[i])),
                instr_index=int(self.instr_indices[i]),
            )

    @classmethod
    def from_records(
        cls, records: Iterable[BranchRecord], instr_count: Optional[int] = None
    ) -> "BranchTrace":
        recs = list(records)
        return cls(
            ips=[r.ip for r in recs],
            taken=[r.taken for r in recs],
            targets=[r.target for r in recs],
            kinds=[int(r.kind) for r in recs],
            instr_indices=[r.instr_index for r in recs],
            instr_count=instr_count,
        )

    def columns_as_lists(
        self,
    ) -> Tuple[List[int], List[bool], List[int], List[int], List[int]]:
        """The trace columns as plain Python lists, decoded once.

        The scalar simulation loop iterates the columns element-wise, where
        list indexing beats ``ndarray.__getitem__`` (no per-access boxing);
        decoding via ``.tolist()`` is O(n), so the result is memoized on the
        trace.  Columns are treated as immutable after construction — callers
        must not mutate the returned lists (or the backing arrays).

        Returns ``(ips, taken, targets, kinds, instr_indices)`` with
        ``taken`` as real booleans.
        """
        if self._lists is None:
            self._lists = (
                self.ips.tolist(),
                self.taken.astype(bool).tolist(),
                self.targets.tolist(),
                self.kinds.tolist(),
                self.instr_indices.tolist(),
            )
        return self._lists

    def conditional_columns(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(ips, taken, instr_indices)`` of the conditional subsequence.

        Memoized: simulating several predictors over one trace (the normal
        experiment shape) pays the boolean extraction once.  Same
        immutability contract as :meth:`columns_as_lists`.
        """
        if self._cond_cols is None:
            cond = self.conditional_mask
            self._cond_cols = (
                self.ips[cond],
                self.taken[cond].astype(bool),
                self.instr_indices[cond],
            )
        return self._cond_cols

    def conditional_ip_codes(self) -> Tuple[np.ndarray, np.ndarray]:
        """Factorized conditional IPs: ``(unique_ips, codes)``, memoized.

        ``unique_ips`` is sorted ascending and ``codes[i]`` indexes into it
        for conditional branch ``i`` (int32: static branch counts are tiny).
        The expensive sort over wide int64 IPs happens once per trace; the
        vectorized scoring path re-derives per-call groupings from the
        small codes instead.
        """
        if self._cond_codes is None:
            ips_c = self.conditional_columns()[0]
            uniq, inv = np.unique(ips_c, return_inverse=True)
            self._cond_codes = (uniq, inv.reshape(ips_c.shape).astype(np.int32))
        return self._cond_codes

    @property
    def conditional_mask(self) -> np.ndarray:
        return self.kinds == int(BranchKind.CONDITIONAL)

    def num_conditional(self) -> int:
        return int(self.conditional_mask.sum())

    def static_branch_ips(self, conditional_only: bool = True) -> np.ndarray:
        """Unique static branch IPs appearing in the trace."""
        ips = self.ips[self.conditional_mask] if conditional_only else self.ips
        return np.unique(ips)

    def slices(self, slice_instructions: int) -> List["TraceSlice"]:
        """Cut the trace into fixed-instruction-length slices.

        Mirrors the paper's post-processing of 10B-instruction traces into
        30M-instruction slices.  The final partial slice is kept only if it
        covers at least half a slice, so short tails do not distort per-slice
        statistics.
        """
        if slice_instructions <= 0:
            raise ValueError("slice_instructions must be positive")
        out: List[TraceSlice] = []
        n_slices = self.instr_count // slice_instructions
        remainder = self.instr_count - n_slices * slice_instructions
        if remainder >= slice_instructions // 2:
            n_slices += 1
        boundaries = np.searchsorted(
            self.instr_indices,
            [(k + 1) * slice_instructions for k in range(n_slices)],
        )
        start = 0
        for k in range(n_slices):
            stop = int(boundaries[k])
            out.append(
                TraceSlice(
                    trace=self,
                    index=k,
                    start=start,
                    stop=stop,
                    instr_start=k * slice_instructions,
                    instr_stop=min((k + 1) * slice_instructions, self.instr_count),
                )
            )
            start = stop
        return out


@dataclass(frozen=True)
class TraceSlice:
    """A contiguous window of a :class:`BranchTrace` covering a fixed number
    of retired instructions (the paper's 30M-instruction slice, scaled)."""

    trace: BranchTrace
    index: int
    start: int  # first branch index in the parent trace (inclusive)
    stop: int  # last branch index (exclusive)
    instr_start: int
    instr_stop: int

    @property
    def instr_count(self) -> int:
        return self.instr_stop - self.instr_start

    @property
    def ips(self) -> np.ndarray:
        return self.trace.ips[self.start : self.stop]

    @property
    def taken(self) -> np.ndarray:
        return self.trace.taken[self.start : self.stop]

    @property
    def kinds(self) -> np.ndarray:
        return self.trace.kinds[self.start : self.stop]

    def __len__(self) -> int:
        return self.stop - self.start


@dataclass
class WorkloadTrace:
    """A traced (benchmark, input) pair: the paper's unit of data collection.

    Attributes:
        benchmark: benchmark name (e.g. ``"641.leela_s"``).
        input_name: application-input identifier (the paper expands each
            benchmark with multiple inputs, after Amaral et al.).
        trace: the dynamic branch trace.
    """

    benchmark: str
    input_name: str
    trace: BranchTrace
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def label(self) -> str:
        return f"{self.benchmark}/{self.input_name}"
