"""Experiment drivers: one per table/figure of the paper."""

from repro.experiments.allocation_study import (
    AllocationStudyResult,
    compute_allocation_study,
)
from repro.experiments.cnn_study import CnnStudyResult, compute_cnn_study
from repro.experiments.config import (
    DEPENDENCY_WINDOW_INSTRUCTIONS,
    EXEC_SCALE,
    FULL_TIER,
    H2P_ACCURACY_THRESHOLD,
    H2P_MIN_EXECUTIONS,
    H2P_MIN_MISPREDICTIONS,
    NUM_TRACKED_REGISTERS,
    QUICK_TIER,
    RARE_EXECUTION_THRESHOLDS,
    SLICE_INSTRUCTIONS,
    SLICE_SCALE,
    STATIC_SCALE,
    ExperimentTier,
    active_tier,
)
from repro.experiments.fig1 import ScalingStudy, compute_fig1, compute_scaling_study
from repro.experiments.fig2 import Fig2, compute_fig2
from repro.experiments.fig3 import Fig3, Fig4, compute_fig3, compute_fig4
from repro.experiments.fig5 import compute_fig5
from repro.experiments.fig7 import Fig7, compute_fig7
from repro.experiments.fig8 import Fig8, compute_fig8
from repro.experiments.fig9 import Fig9, compute_fig9
from repro.experiments.fig10 import Fig10, compute_fig10
from repro.experiments.lab import Lab, PREDICTOR_FACTORIES, default_lab, workload_spec
from repro.experiments.plans import EXPERIMENT_PLANS
from repro.experiments.phase_study import (
    PhaseStudyResult,
    PhaseStudyRow,
    compute_phase_study,
    rare_branch_accuracy,
)
from repro.experiments.table1 import Table1, Table1Row, compute_table1
from repro.experiments.table2 import Table2, Table2Row, compute_table2
from repro.experiments.table3 import Table3, Table3Entry, compute_table3

__all__ = [
    "AllocationStudyResult",
    "CnnStudyResult",
    "DEPENDENCY_WINDOW_INSTRUCTIONS",
    "EXEC_SCALE",
    "ExperimentTier",
    "FULL_TIER",
    "Fig10",
    "Fig2",
    "Fig3",
    "Fig4",
    "Fig7",
    "Fig8",
    "Fig9",
    "EXPERIMENT_PLANS",
    "H2P_ACCURACY_THRESHOLD",
    "H2P_MIN_EXECUTIONS",
    "H2P_MIN_MISPREDICTIONS",
    "Lab",
    "NUM_TRACKED_REGISTERS",
    "PREDICTOR_FACTORIES",
    "PhaseStudyResult",
    "PhaseStudyRow",
    "QUICK_TIER",
    "RARE_EXECUTION_THRESHOLDS",
    "SLICE_INSTRUCTIONS",
    "SLICE_SCALE",
    "STATIC_SCALE",
    "ScalingStudy",
    "Table1",
    "Table1Row",
    "Table2",
    "Table2Row",
    "Table3",
    "Table3Entry",
    "active_tier",
    "compute_allocation_study",
    "compute_cnn_study",
    "compute_fig1",
    "compute_phase_study",
    "rare_branch_accuracy",
    "compute_fig10",
    "compute_fig2",
    "compute_fig3",
    "compute_fig4",
    "compute_fig5",
    "compute_fig7",
    "compute_fig8",
    "compute_fig9",
    "compute_scaling_study",
    "compute_table1",
    "compute_table2",
    "compute_table3",
    "default_lab",
    "workload_spec",
]
