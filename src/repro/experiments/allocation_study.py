"""Sec. IV-A allocation study: how H2Ps thrash TAGE's tagged tables.

Runs TAGE-SC-L 64KB with allocation instrumentation over SPECint workloads
and splits allocation counts into H2P vs. non-H2P classes.  The paper's
in-text numbers: median allocations per H2P 13,093 vs. 4 for non-H2Ps;
median unique entries per H2P 3,990 vs. 4; per-branch allocation share 3.6%
vs. <0.01%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.allocation import AllocationStudy, allocation_study
from repro.analysis.h2p import screen_workload
from repro.experiments.lab import Lab, default_lab
from repro.experiments.reporting import format_table
from repro.pipeline.simulator import simulate_trace
from repro.predictors.tagescl import make_tage_sc_l
from repro.workloads import SPECINT_WORKLOADS


@dataclass(frozen=True)
class AllocationStudyResult:
    studies: Dict[str, AllocationStudy]

    def render(self) -> str:
        headers = [
            "benchmark", "class", "branches", "med allocs", "med unique",
            "realloc ratio", "mean share",
        ]
        rows: List[Tuple] = []
        for name, study in self.studies.items():
            for label, s in (("H2P", study.h2p), ("non-H2P", study.non_h2p)):
                rows.append(
                    (
                        name, label, s.num_branches, s.median_allocations,
                        s.median_unique_entries, round(s.reallocation_ratio, 2),
                        f"{100 * s.mean_allocation_share:.4f}%",
                    )
                )
        return format_table(
            headers, rows, title="Sec. IV-A: TAGE-SC-L 64KB allocation behaviour"
        )


def compute_allocation_study(
    lab: Optional[Lab] = None,
    benchmarks: Optional[Sequence[str]] = None,
) -> AllocationStudyResult:
    lab = lab or default_lab()
    names = list(benchmarks) if benchmarks else [w.name for w in SPECINT_WORKLOADS[:4]]
    studies: Dict[str, AllocationStudy] = {}
    for name in names:
        trace = lab.trace(name, 0)
        predictor = make_tage_sc_l(64, track_allocations=True)
        from repro.experiments.config import SLICE_INSTRUCTIONS

        result = simulate_trace(
            trace.trace, predictor, slice_instructions=SLICE_INSTRUCTIONS
        )
        report = screen_workload(name, "input0", result.slice_stats)
        studies[name] = allocation_study(
            predictor.allocation_stats,
            report.union_h2p_ips,
            all_ips=result.stats.ips(),
        )
    return AllocationStudyResult(studies=studies)
