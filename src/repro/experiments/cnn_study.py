"""Sec. V-C study: offline-trained CNN helper predictors on an H2P.

Implements the paper's proposed direction end to end:

1. trace the helper-study workload over multiple application inputs;
2. train a per-branch CNN helper offline on some inputs;
3. evaluate it on *unseen* inputs (the companion paper's generalization
   claim) in float and 2-bit quantized form;
4. compare against TAGE-SC-L 8KB's accuracy on the same branch, and deploy
   the helper alongside TAGE via :class:`HelperAugmentedPredictor` to
   measure the end-to-end accuracy improvement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.experiments.lab import Lab, default_lab
from repro.experiments.reporting import format_table
from repro.pipeline.simulator import simulate_trace
from repro.predictors.cnn_helper import (
    CnnHelperConfig,
    CnnHelperPredictor,
    HelperAugmentedPredictor,
    extract_branch_dataset,
)
from repro.predictors.tagescl import make_tage_sc_l
from repro.workloads.helper_study import HELPER_STUDY_WORKLOAD, h2p_branch_ip

#: Default helper hyperparameters for the study: the convolution window must
#: span the dependency pair through the random-length noise gap.
STUDY_CONFIG = CnnHelperConfig(
    history_length=20, conv_width=10, num_filters=24, epochs=10
)


@dataclass(frozen=True)
class CnnStudyResult:
    h2p_ip: int
    tage_accuracy_on_h2p: float
    helper_train_accuracy: float
    helper_cross_input_accuracy: float
    helper_quantized_cross_input_accuracy: float
    augmented_accuracy_on_h2p: float
    helper_storage_kib_2bit: float

    @property
    def improvement(self) -> float:
        """Cross-input accuracy uplift of the 2-bit helper over TAGE."""
        return self.helper_quantized_cross_input_accuracy - self.tage_accuracy_on_h2p

    def render(self) -> str:
        rows = [
            ("TAGE-SC-L 8KB on H2P", self.tage_accuracy_on_h2p),
            ("CNN helper (train input)", self.helper_train_accuracy),
            ("CNN helper (unseen input, float)", self.helper_cross_input_accuracy),
            ("CNN helper (unseen input, 2-bit)", self.helper_quantized_cross_input_accuracy),
            ("TAGE + deployed helper on H2P", self.augmented_accuracy_on_h2p),
        ]
        return format_table(
            ["configuration", "accuracy"],
            rows,
            title=(
                f"Sec. V-C: CNN helper study (H2P @ {hex(self.h2p_ip)}, "
                f"helper {self.helper_storage_kib_2bit:.2f} KiB at 2-bit)"
            ),
        )


def compute_cnn_study(
    lab: Optional[Lab] = None,
    config: CnnHelperConfig = STUDY_CONFIG,
    train_inputs: Tuple[int, ...] = (0, 1),
    test_input: int = 2,
) -> CnnStudyResult:
    lab = lab or default_lab()
    name = HELPER_STUDY_WORKLOAD.name

    test_trace = lab.trace(name, test_input)
    ip = h2p_branch_ip(test_trace.metadata["program"])

    # TAGE baseline on the unseen input.
    tage_result = simulate_trace(test_trace.trace, make_tage_sc_l(8))
    tage_acc = tage_result.stats.get(ip).accuracy

    # Offline training set: multiple inputs pooled (the paper's multi-input
    # trace library).
    X_parts, y_parts = [], []
    for ti in train_inputs:
        trace = lab.trace(name, ti)
        X, y = extract_branch_dataset(trace.trace, ip, config.history_length)
        X_parts.append(X)
        y_parts.append(y)
    X_train = np.concatenate(X_parts)
    y_train = np.concatenate(y_parts)
    X_test, y_test = extract_branch_dataset(test_trace.trace, ip, config.history_length)

    helper = CnnHelperPredictor(ip, config)
    helper.train(X_train, y_train)
    train_acc = helper.accuracy(X_train, y_train)
    float_acc = helper.accuracy(X_test, y_test)
    helper.quantize(2, finetune_histories=X_train, finetune_outcomes=y_train)
    quant_acc = helper.accuracy(X_test, y_test)

    # Deploy alongside TAGE on the unseen input.
    augmented = HelperAugmentedPredictor(make_tage_sc_l(8), [helper])
    aug_result = simulate_trace(test_trace.trace, augmented)
    aug_acc = aug_result.stats.get(ip).accuracy

    return CnnStudyResult(
        h2p_ip=ip,
        tage_accuracy_on_h2p=tage_acc,
        helper_train_accuracy=train_acc,
        helper_cross_input_accuracy=float_acc,
        helper_quantized_cross_input_accuracy=quant_acc,
        augmented_accuracy_on_h2p=aug_acc,
        helper_storage_kib_2bit=helper.storage_bits(2) / 8192.0,
    )
