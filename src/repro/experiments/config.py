"""Re-export of :mod:`repro.config` (kept for the experiments namespace).

The scaled constants live at top level so that analysis modules can import
them without touching the experiment drivers.
"""

from repro.config import (  # noqa: F401
    DEPENDENCY_WINDOW_INSTRUCTIONS,
    EXEC_SCALE,
    FULL_TIER,
    H2P_ACCURACY_THRESHOLD,
    H2P_MIN_EXECUTIONS,
    H2P_MIN_MISPREDICTIONS,
    NUM_TRACKED_REGISTERS,
    QUICK_TIER,
    RARE_EXECUTION_THRESHOLDS,
    SLICE_INSTRUCTIONS,
    SLICE_SCALE,
    STATIC_SCALE,
    ExperimentTier,
    active_tier,
)
