"""Fig. 1 (and Fig. 5): relative IPC vs. pipeline capacity scaling.

Four variants over a workload suite: TAGE-SC-L 8KB (the baseline), TAGE-SC-L
64KB, "Perfect H2Ps" (the baseline with every H2P branch predicted
perfectly), and perfect branch prediction.  All IPCs are relative to the
baseline predictor at 1x scale.  Fig. 1 runs the SPECint suite; Fig. 5 the
LCF suite (see :mod:`repro.experiments.fig5`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.analysis.h2p import screen_workload
from repro.analysis.opportunity import ScalingCurve, scaling_curves
from repro.experiments.lab import Lab, default_lab
from repro.experiments.reporting import format_series
from repro.pipeline.config import SCALING_FACTORS
from repro.workloads import SPECINT_WORKLOADS

VARIANTS = ("tage-sc-l-8kb", "tage-sc-l-64kb", "perfect-h2ps", "perfect")


@dataclass(frozen=True)
class ScalingStudy:
    """Fig. 1/5 data: one relative-IPC curve per predictor variant."""

    suite: str
    instructions: int
    mispredictions: Dict[str, int]
    curves: Tuple[ScalingCurve, ...]

    def curve(self, label: str) -> ScalingCurve:
        for c in self.curves:
            if c.label == label:
                return c
        raise KeyError(label)

    def opportunity_at(self, scale: float) -> float:
        """Fractional IPC gain of perfect BP over the baseline at a scale."""
        perfect = self.curve("perfect").at(scale)
        base = self.curve("tage-sc-l-8kb").at(scale)
        return perfect / base - 1.0

    def h2p_share_at(self, scale: float) -> float:
        """Fraction of the perfect-BP gain captured by fixing only H2Ps."""
        perfect = self.curve("perfect").at(scale)
        base = self.curve("tage-sc-l-8kb").at(scale)
        h2p = self.curve("perfect-h2ps").at(scale)
        if perfect <= base:
            return 0.0
        return (h2p - base) / (perfect - base)

    def render(self) -> str:
        lines = [f"Relative IPC vs pipeline scale ({self.suite})"]
        for c in self.curves:
            lines.append(format_series(c.label, c.scales, c.relative_ipc))
        return "\n".join(lines)


def compute_scaling_study(
    suite_names: Sequence[str],
    suite_label: str,
    lab: Optional[Lab] = None,
    scales: Sequence[float] = SCALING_FACTORS,
) -> ScalingStudy:
    """Aggregate misprediction counts over a suite, then model IPC."""
    lab = lab or default_lab()
    instructions = 0
    mis: Dict[str, int] = {v: 0 for v in VARIANTS}
    for name in suite_names:
        for input_index in lab.inputs_for(name):
            base = lab.simulate(name, input_index, "tage-sc-l-8kb")
            big = lab.simulate(name, input_index, "tage-sc-l-64kb")
            report = screen_workload(name, str(input_index), base.slice_stats)
            # "Perfect H2Ps" removes, per slice, the mispredictions of the
            # branches that qualify as H2P *in that slice* — the same
            # granularity at which the paper screens.
            h2p_mis = 0
            for slice_report, slice_stats in zip(report.slices, base.slice_stats):
                h2p_mis += sum(
                    slice_stats.get(ip).mispredictions
                    for ip in slice_report.h2p_ips
                )
            instructions += base.instr_count
            mis["tage-sc-l-8kb"] += base.mispredictions
            mis["tage-sc-l-64kb"] += big.mispredictions
            mis["perfect-h2ps"] += base.mispredictions - h2p_mis
            mis["perfect"] += 0
    curves = scaling_curves(
        instructions, mis, baseline_label="tage-sc-l-8kb", scales=scales
    )
    return ScalingStudy(
        suite=suite_label,
        instructions=instructions,
        mispredictions=mis,
        curves=tuple(curves),
    )


def compute_fig1(lab: Optional[Lab] = None) -> ScalingStudy:
    """Fig. 1: the SPECint suite."""
    return compute_scaling_study(
        [w.name for w in SPECINT_WORKLOADS], "SPECint-like", lab
    )
