"""Fig. 10: register-value distributions preceding top heavy hitters.

For each SPECint benchmark, snapshot the 18 tracked registers at every
dynamic execution of the top H2P heavy hitter and profile the value
distributions.  The paper's two observations are checked downstream: the
distributions differ drastically across benchmarks (so helpers should be
branch-specific), and they carry recognizable structure (finite entropy,
dominant values) that a model could exploit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.analysis.h2p import screen_workload
from repro.analysis.heavy_hitters import rank_heavy_hitters
from repro.analysis.regvalues import (
    BranchRegisterProfile,
    profile_register_values,
    profiles_differ,
)
from repro.experiments.config import NUM_TRACKED_REGISTERS
from repro.experiments.lab import Lab, default_lab
from repro.experiments.reporting import format_table
from repro.workloads import SPECINT_WORKLOADS, WORKLOADS_BY_NAME, execute_workload

SNAPSHOT_INSTRUCTIONS = 300_000


@dataclass(frozen=True)
class Fig10:
    profiles: Dict[str, BranchRegisterProfile]

    def distinct_pairs_fraction(self) -> float:
        """Fraction of benchmark pairs whose register-value distributions
        differ (paper observation 1: essentially all of them)."""
        names = list(self.profiles)
        if len(names) < 2:
            return 1.0
        total, differ = 0, 0
        for i in range(len(names)):
            for j in range(i + 1, len(names)):
                total += 1
                if profiles_differ(self.profiles[names[i]], self.profiles[names[j]]):
                    differ += 1
        return differ / total

    def render(self) -> str:
        headers = ["benchmark", "h2p ip", "samples", "mean entropy (bits)", "max distinct"]
        rows = []
        for name, prof in self.profiles.items():
            rows.append(
                (
                    name, hex(prof.ip),
                    prof.registers[0].num_samples if prof.registers else 0,
                    round(prof.mean_entropy_bits, 2),
                    max(p.num_distinct for p in prof.registers) if prof.registers else 0,
                )
            )
        return format_table(
            headers, rows,
            title="Fig. 10: register-value structure at top heavy hitters",
        )


def compute_fig10(
    lab: Optional[Lab] = None,
    benchmarks: Optional[Sequence[str]] = None,
) -> Fig10:
    lab = lab or default_lab()
    names = list(benchmarks) if benchmarks else [w.name for w in SPECINT_WORKLOADS]
    tracked = tuple(range(NUM_TRACKED_REGISTERS))
    profiles: Dict[str, BranchRegisterProfile] = {}
    for name in names:
        result = lab.simulate(name, 0, "tage-sc-l-8kb")
        report = screen_workload(name, "input0", result.slice_stats)
        if not report.union_h2p_ips:
            continue
        top_ip = rank_heavy_hitters(result.stats, report.union_h2p_ips)[0].ip
        exec_result = execute_workload(
            WORKLOADS_BY_NAME[name], 0,
            instructions=SNAPSHOT_INSTRUCTIONS,
            snapshot_ips=[top_ip],
            tracked_registers=tracked,
        )
        snaps = exec_result.register_snapshots.get(top_ip, [])
        profiles[name] = profile_register_values(top_ip, snaps, tracked)
    return Fig10(profiles=profiles)
