"""Fig. 2: cumulative misprediction fraction of ranked H2P heavy hitters."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.analysis.h2p import screen_workload
from repro.analysis.heavy_hitters import coverage_at, cumulative_curve
from repro.experiments.lab import Lab, default_lab
from repro.experiments.reporting import format_series
from repro.workloads import SPECINT_WORKLOADS


@dataclass(frozen=True)
class Fig2:
    """One cumulative curve per benchmark (input 0, full trace stats)."""

    curves: Dict[str, np.ndarray]
    max_rank: int

    def mean_coverage_top(self, n: int) -> float:
        """Mean cumulative fraction of mispredictions from the top-n heavy
        hitters (the paper: top 5 cover 37% on average)."""
        return float(
            np.mean([coverage_at(curve, n) for curve in self.curves.values()])
        )

    def render(self) -> str:
        lines = ["Fig. 2: cumulative misprediction fraction vs heavy-hitter rank"]
        ranks = list(range(1, self.max_rank + 1))
        for name, curve in self.curves.items():
            lines.append(format_series(name, ranks[:10], curve[:10]))
        lines.append(f"mean top-5 coverage: {self.mean_coverage_top(5):.3f}")
        return "\n".join(lines)


def compute_fig2(lab: Optional[Lab] = None, max_rank: int = 50) -> Fig2:
    lab = lab or default_lab()
    curves: Dict[str, np.ndarray] = {}
    for spec in SPECINT_WORKLOADS:
        result = lab.simulate(spec.name, 0, "tage-sc-l-8kb")
        report = screen_workload(spec.name, "input0", result.slice_stats)
        curves[spec.name] = cumulative_curve(
            result.stats, report.union_h2p_ips, max_rank=max_rank
        )
    return Fig2(curves=curves, max_rank=max_rank)
