"""Figs. 3 & 4: rare-branch distributions over the LCF dataset."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.distributions import (
    AccuracySpread,
    BranchDistributions,
    accuracy_spread,
    branch_distributions,
)
from repro.experiments.lab import Lab, default_lab
from repro.experiments.reporting import format_histogram
from repro.workloads import LCF_WORKLOADS


@dataclass(frozen=True)
class Fig3:
    distributions: BranchDistributions

    def render(self) -> str:
        d = self.distributions
        return "\n".join(
            [
                "Fig. 3 (LCF dataset, TAGE-SC-L 8KB)",
                "dynamic mispredictions per static branch:",
                format_histogram(d.mispredictions.edges, d.mispredictions.fractions),
                "dynamic executions per static branch:",
                format_histogram(d.executions.edges, d.executions.fractions),
                "prediction accuracy per static branch:",
                format_histogram(d.accuracy.edges, d.accuracy.fractions),
            ]
        )


@dataclass(frozen=True)
class Fig4:
    spread: AccuracySpread

    def render(self) -> str:
        lines = ["Fig. 4b: stddev of accuracy by execution-count bin"]
        for i in range(min(len(self.spread.bin_std), 15)):
            lo, hi = self.spread.bin_edges[i], self.spread.bin_edges[i + 1]
            lines.append(
                f"  [{lo:.0f}, {hi:.0f}): std={self.spread.bin_std[i]:.3f} "
                f"(n={self.spread.bin_counts[i]})"
            )
        return "\n".join(lines)


def _lcf_stats(lab: Lab) -> List:
    return [
        lab.simulate(spec.name, 0, "tage-sc-l-8kb").stats for spec in LCF_WORKLOADS
    ]


def compute_fig3(lab: Optional[Lab] = None) -> Fig3:
    lab = lab or default_lab()
    return Fig3(distributions=branch_distributions(_lcf_stats(lab)))


def compute_fig4(lab: Optional[Lab] = None) -> Fig4:
    lab = lab or default_lab()
    return Fig4(spread=accuracy_spread(_lcf_stats(lab)))
