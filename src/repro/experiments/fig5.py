"""Fig. 5: relative IPC vs. pipeline scaling for the LCF suite.

Same methodology as Fig. 1; the paper's headline difference is that the
"Perfect H2Ps" idealization captures a much smaller share of the perfect-BP
opportunity on LCF applications (~38% at 1x vs ~76% for SPECint), because
rare branches — not H2Ps — dominate their mispredictions.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.fig1 import ScalingStudy, compute_scaling_study
from repro.experiments.lab import Lab
from repro.workloads import LCF_WORKLOADS


def compute_fig5(lab: Optional[Lab] = None) -> ScalingStudy:
    return compute_scaling_study([w.name for w in LCF_WORKLOADS], "LCF", lab)
