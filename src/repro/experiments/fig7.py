"""Fig. 7: TAGE-SC-L storage sweep (8KB→1024KB) across pipeline scales.

For each LCF application and each storage preset, measure how much of the
TAGE8→perfect IPC gap the larger predictor closes, at each pipeline scale.
The paper's findings: even 1024KB closes less than half the gap at 1x; the
biggest step is 8KB→64KB; and the capturable fraction *shrinks* as the
pipeline scales up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.opportunity import storage_gap_closure
from repro.experiments.lab import Lab, default_lab
from repro.experiments.reporting import format_table
from repro.pipeline.config import SCALING_FACTORS
from repro.predictors.tagescl import STORAGE_PRESETS_KIB
from repro.workloads import LCF_WORKLOADS


@dataclass(frozen=True)
class Fig7:
    """fractions[app][(storage_kib, scale)] = gap fraction closed."""

    fractions: Dict[str, Dict[Tuple[int, float], float]]
    storages: Tuple[int, ...]
    scales: Tuple[float, ...]

    def mean_fraction(self, storage_kib: int, scale: float) -> float:
        return float(
            np.mean([per_app[(storage_kib, scale)] for per_app in self.fractions.values()])
        )

    def best_mean_fraction_at(self, scale: float) -> float:
        return max(self.mean_fraction(kib, scale) for kib in self.storages)

    def render(self) -> str:
        headers = ["scale"] + [f"{kib}KB" for kib in self.storages]
        rows = []
        for s in self.scales:
            rows.append(
                [f"{s:g}x"] + [round(self.mean_fraction(kib, s), 3) for kib in self.storages]
            )
        return format_table(
            headers, rows,
            title="Fig. 7: mean fraction of TAGE8->perfect IPC gap closed (LCF)",
        )


def compute_fig7(
    lab: Optional[Lab] = None,
    storages: Sequence[int] = STORAGE_PRESETS_KIB,
    scales: Sequence[float] = SCALING_FACTORS,
) -> Fig7:
    lab = lab or default_lab()
    fractions: Dict[str, Dict[Tuple[int, float], float]] = {}
    # The whole storage sweep for one workload is a single batched trace
    # pass; the per-preset simulate() calls below then hit the cache.
    sweep = list(
        dict.fromkeys(["tage-sc-l-8kb"] + [f"tage-sc-l-{kib}kb" for kib in storages])
    )
    for spec in LCF_WORKLOADS:
        lab.simulate_batch(spec.name, 0, sweep)
        base = lab.simulate(spec.name, 0, "tage-sc-l-8kb")
        config_mis = {}
        for kib in storages:
            result = lab.simulate(spec.name, 0, f"tage-sc-l-{kib}kb")
            config_mis[kib] = result.mispredictions
        closures = storage_gap_closure(
            base.instr_count,
            base.mispredictions,
            {str(k): v for k, v in config_mis.items()},
            scales=scales,
        )
        per_app: Dict[Tuple[int, float], float] = {}
        for c in closures:
            per_app[(int(c.label), c.scale)] = c.fraction_closed
        fractions[spec.name] = per_app
    return Fig7(
        fractions=fractions,
        storages=tuple(storages),
        scales=tuple(scales),
    )
