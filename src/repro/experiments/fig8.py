"""Fig. 8: IPC opportunity remaining after idealizing frequent branches.

Using the largest (1024KB) TAGE-SC-L configuration at 1x pipeline scale,
perfectly predict every branch with more than N dynamic executions (paper:
N = 1000 and N = 100, scaled here) and measure the fraction of the
TAGE→perfect IPC opportunity that *remains* — i.e. the share owed to rare
branches.  Paper: 34.3% remains at N=1000 and 27.4% at N=100 on average.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.analysis.opportunity import (
    mispredictions_excluding_above,
    opportunity_remaining,
)
from repro.experiments.config import RARE_EXECUTION_THRESHOLDS
from repro.experiments.lab import Lab, default_lab
from repro.experiments.reporting import format_table
from repro.workloads import LCF_WORKLOADS


@dataclass(frozen=True)
class Fig8:
    """remaining[app][threshold] = fraction of IPC opportunity remaining."""

    remaining: Dict[str, Dict[int, float]]
    thresholds: Tuple[int, ...]

    def mean_remaining(self, threshold: int) -> float:
        return float(
            np.mean([per_app[threshold] for per_app in self.remaining.values()])
        )

    def render(self) -> str:
        headers = ["application"] + [f">{t} perfect" for t in self.thresholds]
        rows = [
            [app] + [round(vals[t], 3) for t in self.thresholds]
            for app, vals in self.remaining.items()
        ]
        rows.append(
            ["MEAN"] + [round(self.mean_remaining(t), 3) for t in self.thresholds]
        )
        return format_table(
            headers, rows,
            title="Fig. 8: fraction of IPC opportunity remaining (TAGE-SC-L 1024KB, 1x)",
        )


def compute_fig8(
    lab: Optional[Lab] = None,
    thresholds: Tuple[int, ...] = RARE_EXECUTION_THRESHOLDS,
    predictor: str = "tage-sc-l-1024kb",
) -> Fig8:
    lab = lab or default_lab()
    remaining: Dict[str, Dict[int, float]] = {}
    for spec in LCF_WORKLOADS:
        # A batch of one still routes through the batched TAGE-SC-L replay
        # (several-fold faster than the scalar loop); the simulate() call
        # below is then a cache hit.
        lab.simulate_batch(spec.name, 0, [predictor])
        result = lab.simulate(spec.name, 0, predictor)
        per_app: Dict[int, float] = {}
        for t in thresholds:
            left = mispredictions_excluding_above(result.stats, t)
            per_app[t] = opportunity_remaining(
                result.instr_count, result.mispredictions, left
            )
        remaining[spec.name] = per_app
    return Fig8(remaining=remaining, thresholds=tuple(thresholds))
