"""Fig. 9: distribution of median recurrence intervals over the LCF dataset."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.recurrence import RecurrenceHistogram, recurrence_histogram
from repro.experiments.lab import Lab, default_lab
from repro.experiments.reporting import format_histogram
from repro.workloads import LCF_WORKLOADS


@dataclass(frozen=True)
class Fig9:
    histogram: RecurrenceHistogram

    def render(self) -> str:
        return "\n".join(
            [
                "Fig. 9: median recurrence interval distribution (LCF)",
                format_histogram(self.histogram.edges, self.histogram.fractions),
                f"peak bin (excl. singletons): {self.histogram.peak_bin()}",
            ]
        )


def compute_fig9(lab: Optional[Lab] = None) -> Fig9:
    lab = lab or default_lab()
    traces = [lab.trace(spec.name, 0).trace for spec in LCF_WORKLOADS]
    return Fig9(histogram=recurrence_histogram(traces))
