"""The ``introspect`` experiment: provider attribution for a workload's H2Ps.

Reproduces the paper's Table-III-style *where do the predictions come
from* breakdown using the :mod:`repro.obs.introspect` channel instead of
aggregate counters: for each benchmark, the H2P set is screened the usual
way (accuracy < 99%, execution/misprediction floors) and each H2P's
predictions are attributed to the TAGE structure that produced them —
bimodal base, alternate prediction, or a specific tagged table — alongside
loop-predictor overrides, SC flips, allocation churn, and a per-slice
mispredict heatmap row.

Simulations here deliberately bypass the Lab's simulation cache: the
channel only sees branches that are actually simulated, and the predictor
is built fresh with allocation tracking on.  Traces still come from the
Lab (memory/disk/trace-store cached as usual).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.h2p import screen_workload
from repro.config import SLICE_INSTRUCTIONS
from repro.experiments.lab import PREDICTOR_FACTORIES, Lab, default_lab
from repro.experiments.reporting import format_table
from repro.obs import introspect
from repro.pipeline.simulator import simulate_trace
from repro.predictors.tagescl import make_tage_sc_l
from repro.workloads import SPECINT_WORKLOADS

#: Heavy hitters shown per benchmark.
TOP_BRANCHES = 3

#: Width of the rendered per-slice mispredict sparkline.
HEATMAP_CELLS = 10

_PRESET_RE = re.compile(r"^tage-sc-l-(\d+)kb$")


@dataclass(frozen=True)
class IntrospectRow:
    """One H2P's attribution summary."""

    benchmark: str
    ip: int
    executions: int
    mispredictions: int
    accuracy: float
    top_source: str  # dominant provider key, e.g. "table7" / "alt" / "base"
    top_source_frac: float
    alt_frac: float
    loop_used: int
    sc_flipped: int
    allocations: int
    unique_entries: int
    heat: str  # per-slice mispredict sparkline


@dataclass(frozen=True)
class IntrospectStudy:
    predictor: str
    rows: Tuple[IntrospectRow, ...]
    reports: Tuple[Dict, ...]  # raw channel reports, one per benchmark

    def render(self) -> str:
        headers = [
            "benchmark", "ip", "execs", "mispred", "acc",
            "top source", "alt%", "loop", "sc flip", "allocs", "entries",
            "mispredicts/slice",
        ]
        table_rows = [
            (
                r.benchmark,
                f"0x{r.ip:x}",
                r.executions,
                r.mispredictions,
                round(r.accuracy, 4),
                f"{r.top_source} ({r.top_source_frac:.0%})",
                f"{r.alt_frac:.0%}",
                r.loop_used,
                r.sc_flipped,
                r.allocations,
                r.unique_entries,
                r.heat,
            )
            for r in self.rows
        ]
        return format_table(
            headers,
            table_rows,
            title=f"Prediction introspection: H2P provider attribution ({self.predictor})",
        )


def _sparkline(slice_mis: Dict[str, int]) -> str:
    """Fixed-width per-slice mispredict density as 0-9 digits."""
    if not slice_mis:
        return "-" * HEATMAP_CELLS
    n = max(int(k) for k in slice_mis) + 1
    counts = [0] * max(n, 1)
    for k, v in slice_mis.items():
        counts[int(k)] = v
    # Re-bin to HEATMAP_CELLS columns.
    cells = [0] * HEATMAP_CELLS
    for i, c in enumerate(counts):
        cells[i * HEATMAP_CELLS // len(counts)] += c
    peak = max(cells) or 1
    return "".join(str(min(9, (9 * c) // peak)) for c in cells)


def _build_predictor(predictor: str):
    """Factory lookup with allocation tracking forced on for the presets."""
    m = _PRESET_RE.match(predictor)
    if m:
        return make_tage_sc_l(int(m.group(1)), track_allocations=True)
    return PREDICTOR_FACTORIES[predictor]()


def compute_introspect(
    lab: Optional[Lab] = None,
    benchmarks: Optional[Sequence[str]] = None,
    predictor: str = "tage-sc-l-8kb",
    top_branches: int = TOP_BRANCHES,
) -> IntrospectStudy:
    lab = lab or default_lab()
    names = list(benchmarks) if benchmarks else [w.name for w in SPECINT_WORKLOADS]
    rows: List[IntrospectRow] = []
    reports: List[Dict] = []
    was_enabled = introspect.is_enabled()
    introspect.enable_introspection()
    try:
        for name in names:
            trace = lab.trace(name, 0)
            introspect.set_context(workload=name, input_name=0)
            result = simulate_trace(
                trace.trace,
                _build_predictor(predictor),
                slice_instructions=SLICE_INSTRUCTIONS,
            )
            report = introspect.reports()[-1]
            reports.append(report)
            screened = screen_workload(name, "input0", result.slice_stats)
            h2p_ips = screened.union_h2p_ips
            shown = 0
            for entry in report["branches"]:
                if entry["ip"] not in h2p_ips:
                    continue
                providers = entry.get("provider", {})
                total = sum(providers.values()) or 1
                top_key, top_n = ("-", 0)
                if providers:
                    top_key, top_n = max(providers.items(), key=lambda kv: kv[1])
                rows.append(
                    IntrospectRow(
                        benchmark=name,
                        ip=entry["ip"],
                        executions=entry["executions"],
                        mispredictions=entry["mispredictions"],
                        accuracy=entry["accuracy"],
                        top_source=top_key,
                        top_source_frac=top_n / total,
                        alt_frac=providers.get("alt", 0) / total,
                        loop_used=entry.get("loop_used", 0),
                        sc_flipped=entry.get("sc_flipped", 0),
                        allocations=entry.get("allocations", 0),
                        unique_entries=entry.get("unique_entries", 0),
                        heat=_sparkline(entry.get("slice_mispredicts", {})),
                    )
                )
                shown += 1
                if shown >= top_branches:
                    break
    finally:
        if not was_enabled:
            introspect.disable_introspection()
        introspect.set_context(None, None)
    return IntrospectStudy(predictor=predictor, rows=tuple(rows), reports=tuple(reports))
