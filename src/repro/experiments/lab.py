"""The measurement lab: shared trace generation and cached simulation.

Every table/figure driver pulls its data through a :class:`Lab`, which
memoizes (and optionally disk-caches) the expensive steps — executing
synthetic workloads and driving predictors over their traces — so that
experiments sharing a (workload, input, predictor) combination pay for it
once.  Results are keyed by workload name, input index, trace length, and
predictor label; bump :data:`CACHE_VERSION` after changing anything that
affects simulation outcomes.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro import obs
from repro.core.metrics import BranchStats
from repro.core.types import WorkloadTrace
from repro.experiments.config import (
    SLICE_INSTRUCTIONS,
    ExperimentTier,
    active_tier,
)
from repro.pipeline.simulator import SimulationResult, simulate_trace
from repro.predictors.base import BranchPredictor
from repro.predictors.tagescl import STORAGE_PRESETS_KIB, make_tage_sc_l
from repro.workloads import WORKLOADS_BY_NAME, WorkloadSpec, trace_workload
from repro.workloads.helper_study import HELPER_STUDY_WORKLOAD

#: Bump to invalidate on-disk caches after behavioural changes.
#: (v4: payloads are now self-describing ``{"cache_version", "result"}``
#: dicts so stale/corrupt files are detected instead of silently trusted.)
CACHE_VERSION = 4

_log = obs.get_logger("lab")

#: Predictor registry: label -> factory.
PREDICTOR_FACTORIES: Dict[str, Callable[[], BranchPredictor]] = {
    f"tage-sc-l-{kib}kb": (lambda kib=kib: make_tage_sc_l(kib))
    for kib in STORAGE_PRESETS_KIB
}


def _workload(name: str) -> WorkloadSpec:
    if name == HELPER_STUDY_WORKLOAD.name:
        return HELPER_STUDY_WORKLOAD
    try:
        return WORKLOADS_BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown workload {name!r}") from None


class Lab:
    """Caching façade over workload execution and predictor simulation."""

    def __init__(
        self,
        tier: Optional[ExperimentTier] = None,
        cache_dir: Optional[str] = None,
    ) -> None:
        self.tier = tier or active_tier()
        env_dir = os.environ.get("REPRO_CACHE_DIR")
        if cache_dir is None and env_dir:
            cache_dir = env_dir
        self.cache_dir = Path(cache_dir) if cache_dir else None
        if self.cache_dir:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        self._traces: Dict[Tuple[str, int, int], WorkloadTrace] = {}
        self._sims: Dict[Tuple, SimulationResult] = {}

    # -- trace access ------------------------------------------------------

    def instructions_for(self, name: str) -> int:
        """Trace length for a workload under the active tier."""
        spec = _workload(name)
        if spec.category == "specint":
            return self.tier.spec_instructions
        if spec.category == "lcf":
            return self.tier.lcf_instructions
        return spec.default_instructions

    def inputs_for(self, name: str) -> List[int]:
        """Input indices to use under the active tier."""
        spec = _workload(name)
        if spec.category == "specint":
            return list(range(min(self.tier.spec_inputs, spec.num_inputs)))
        return list(range(spec.num_inputs))

    def trace(
        self, name: str, input_index: int, instructions: Optional[int] = None
    ) -> WorkloadTrace:
        n = instructions if instructions is not None else self.instructions_for(name)
        key = (name, input_index, n)
        cached = self._traces.get(key)
        if cached is None:
            obs.counter("lab.trace.build")
            _log.info("generating trace %s/input%d (%d instructions)", name, input_index, n)
            with obs.timer("lab.trace.generate", extra=(f"lab.trace.generate.{name}",)):
                cached = trace_workload(_workload(name), input_index, instructions=n)
            self._traces[key] = cached
        else:
            obs.counter("lab.trace.cache_hit")
        return cached

    # -- simulation --------------------------------------------------------

    def simulate(
        self,
        name: str,
        input_index: int,
        predictor: str = "tage-sc-l-8kb",
        instructions: Optional[int] = None,
        slice_instructions: int = SLICE_INSTRUCTIONS,
    ) -> SimulationResult:
        """Simulate one predictor over one workload input, cached."""
        if predictor not in PREDICTOR_FACTORIES:
            raise KeyError(
                f"unknown predictor {predictor!r}; register a factory in "
                "PREDICTOR_FACTORIES"
            )
        n = instructions if instructions is not None else self.instructions_for(name)
        key = (name, input_index, n, predictor, slice_instructions)
        cached = self._sims.get(key)
        if cached is not None:
            obs.counter("lab.sim.cache_hit.memory")
            return cached

        disk = self._disk_path(key)
        if disk is not None and disk.exists():
            cached = self._load_disk(disk)
            if cached is not None:
                obs.counter("lab.sim.cache_hit.disk")
                _log.debug("disk cache hit: %s", disk)
                self._sims[key] = cached
                return cached

        obs.counter("lab.sim.cache_miss")
        _log.info(
            "simulating %s/input%d with %s (%d instructions)",
            name, input_index, predictor, n,
        )
        with obs.span(
            "lab.simulate", workload=name, input=input_index, predictor=predictor
        ):
            trace = self.trace(name, input_index, n)
            result = simulate_trace(
                trace.trace,
                PREDICTOR_FACTORIES[predictor](),
                slice_instructions=slice_instructions,
            )
        self._sims[key] = result
        if disk is not None:
            with open(disk, "wb") as f:
                pickle.dump({"cache_version": CACHE_VERSION, "result": result}, f)
            obs.counter("lab.sim.cache_store")
        return result

    def _load_disk(self, disk: Path) -> Optional[SimulationResult]:
        """Load one disk-cache entry, or ``None`` (with a warning) if it is
        corrupt or from an incompatible :data:`CACHE_VERSION`."""
        try:
            with open(disk, "rb") as f:
                payload = pickle.load(f)
        except Exception as exc:
            reason = f"unreadable ({type(exc).__name__}: {exc})"
        else:
            if (
                isinstance(payload, dict)
                and payload.get("cache_version") == CACHE_VERSION
                and isinstance(payload.get("result"), SimulationResult)
            ):
                return payload["result"]
            found = payload.get("cache_version") if isinstance(payload, dict) else None
            reason = (
                f"stale cache version {found!r} (want {CACHE_VERSION})"
                if found is not None
                else "unrecognized payload format"
            )
        obs.counter("lab.cache.invalid")
        _log.warning("ignoring invalid disk cache %s: %s; recomputing", disk, reason)
        return None

    def _disk_path(self, key: Tuple) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        name, input_index, n, predictor, slice_n = key
        fname = f"v{CACHE_VERSION}_{name}_{input_index}_{n}_{predictor}_{slice_n}.pkl"
        return self.cache_dir / fname.replace("/", "_")

    # -- aggregates --------------------------------------------------------

    def aggregate_stats(
        self, names: List[str], predictor: str = "tage-sc-l-8kb"
    ) -> Tuple[BranchStats, int]:
        """Pooled per-branch stats and total instructions over workloads
        (all inputs under the tier).  Branch IPs collide across programs, so
        IPs are offset per (workload, input) before pooling."""
        pooled = BranchStats()
        instructions = 0
        for w, name in enumerate(names):
            for input_index in self.inputs_for(name):
                result = self.simulate(name, input_index, predictor)
                offset = (w * 64 + input_index + 1) << 40
                for ip, counts in result.stats.items():
                    pooled.record_bulk(
                        ip + offset, counts.executions, counts.mispredictions
                    )
                instructions += result.instr_count
        return pooled, instructions


_DEFAULT_LAB: Optional[Lab] = None


def default_lab() -> Lab:
    """Process-wide shared lab (so tests/benchmarks reuse simulations)."""
    global _DEFAULT_LAB
    if _DEFAULT_LAB is None:
        _DEFAULT_LAB = Lab()
    return _DEFAULT_LAB
