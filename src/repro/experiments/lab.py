"""The measurement lab: shared trace generation and cached simulation.

Every table/figure driver pulls its data through a :class:`Lab`, which
memoizes (and optionally disk-caches) the expensive steps — executing
synthetic workloads and driving predictors over their traces — so that
experiments sharing a (workload, input, predictor) combination pay for it
once.  Results are keyed by workload name, input index, trace length, and
predictor label; bump :data:`CACHE_VERSION` after changing anything that
affects simulation outcomes.
"""

from __future__ import annotations

import contextlib
import contextvars
import hashlib
import os
import pickle
import re
import tempfile
import threading
from collections import OrderedDict
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
    Union,
)

from repro import obs
from repro.obs import introspect
from repro.core.metrics import BranchStats
from repro.core.types import WorkloadTrace
from repro.experiments.config import (
    SLICE_INSTRUCTIONS,
    ExperimentTier,
    active_tier,
)
from repro.parallel.jobs import BatchSimJob, SimJob
from repro.parallel.scheduler import ParallelScheduler, resolve_jobs
from repro.pipeline.simulator import (
    SimulationResult,
    simulate_trace,
    simulate_trace_batch,
)
from repro.predictors.base import BranchPredictor
from repro.predictors.gehl import OGehl
from repro.predictors.perceptron import PathPerceptron, Perceptron
from repro.predictors.simple import Bimodal, GShare, TwoLevelLocal
from repro.predictors.tagescl import STORAGE_PRESETS_KIB, make_tage_sc_l
from repro.resilience import faults
from repro.resilience.manifest import ResumeManifest
from repro.resilience.quarantine import quarantine_file
from repro.phases import cluster_phases, prepare_bbvs
from repro.workloads import (
    WORKLOADS_BY_NAME,
    WorkloadSpec,
    execute_workload,
    trace_workload,
)
from repro.workloads.helper_study import HELPER_STUDY_WORKLOAD
from repro.workloads.trace_store import TraceStore

#: A prefetch request: a full :class:`SimJob`, a multi-config
#: :class:`BatchSimJob`, or a (workload, input_index, predictor[,
#: instructions[, slice_instructions]]) tuple.
SimRequest = Union[SimJob, BatchSimJob, Tuple]

#: Bump to invalidate on-disk caches after behavioural changes.
#: (v4: payloads are now self-describing ``{"cache_version", "result"}``
#: dicts so stale/corrupt files are detected instead of silently trusted.
#: v5: injective cache filenames — the old ``replace("/", "_")`` scheme
#: aliased distinct keys like ``a/b`` and ``a_b`` onto one file; names now
#: carry a digest of the raw key.)
CACHE_VERSION = 5


def _slug(part: str) -> str:
    """Filesystem-safe (but non-injective) rendering of one key part."""
    return re.sub(r"[^A-Za-z0-9_.-]", "_", part)

_log = obs.get_logger("lab")

#: The experiment label for checkpoint-manifest records.  A context
#: variable — not Lab instance state — so concurrent daemon requests
#: (threads, asyncio tasks) each see their own label instead of
#: mislabeling each other's records and spans.
_CURRENT_EXPERIMENT: contextvars.ContextVar[Optional[str]] = contextvars.ContextVar(
    "repro_lab_experiment", default=None
)


def _env_cap(name: str, default: int) -> int:
    """Positive cache bound from the environment (<= 0 disables the bound)."""
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"{name} must be an integer, got {raw!r}") from None


#: Default in-memory cache bounds.  Generous — a full quick-tier run of
#: every experiment fits — but finite, so a long-lived service process
#: does not grow without limit.  Override with the environment variables
#: of the same names; values <= 0 disable the bound entirely.
DEFAULT_TRACE_CACHE_CAP = 64      # REPRO_LAB_TRACE_CACHE (traces are large)
DEFAULT_SIM_CACHE_CAP = 4096      # REPRO_LAB_SIM_CACHE

_V = TypeVar("_V")


class _LruCache(Dict[Tuple, _V]):
    """An insertion/access-ordered bounded dict (LRU-evicting).

    Lookups through :meth:`get` refresh recency; inserting past ``cap``
    evicts the least recently used entry and counts it under
    ``lab.mem.evicted`` (plus a per-kind child counter).  A ``cap <= 0``
    means unbounded.  Not itself locked — the owning :class:`Lab`
    serializes access.
    """

    def __init__(self, cap: int, kind: str) -> None:
        super().__init__()
        self.cap = cap
        self.kind = kind
        self._order: "OrderedDict[Tuple, None]" = OrderedDict()

    def get(self, key: Tuple, default: Optional[_V] = None) -> Optional[_V]:
        value = super().get(key, default)
        if key in self._order:
            self._order.move_to_end(key)
        return value

    def __setitem__(self, key: Tuple, value: _V) -> None:
        super().__setitem__(key, value)
        self._order[key] = None
        self._order.move_to_end(key)
        if self.cap > 0:
            while len(self._order) > self.cap:
                oldest, _ = self._order.popitem(last=False)
                super().__delitem__(oldest)
                obs.counter("lab.mem.evicted")
                obs.counter(f"lab.mem.evicted.{self.kind}")

    def __delitem__(self, key: Tuple) -> None:
        super().__delitem__(key)
        self._order.pop(key, None)

#: Predictor registry: label -> factory.
PREDICTOR_FACTORIES: Dict[str, Callable[[], BranchPredictor]] = {
    f"tage-sc-l-{kib}kb": (lambda kib=kib: make_tage_sc_l(kib))
    for kib in STORAGE_PRESETS_KIB
}
# Kernel-bearing baselines (default configurations), so experiments and
# benchmarks can request them by label like the TAGE-SC-L presets.
PREDICTOR_FACTORIES["bimodal"] = Bimodal
PREDICTOR_FACTORIES["gshare"] = GShare
PREDICTOR_FACTORIES["two-level-local"] = TwoLevelLocal
# The dot-product family (numpy replay kernels), for benchmarks and
# ad-hoc comparisons against the tabular baselines.
PREDICTOR_FACTORIES["perceptron"] = Perceptron
PREDICTOR_FACTORIES["path-perceptron"] = PathPerceptron
PREDICTOR_FACTORIES["o-gehl"] = OGehl


def workload_spec(name: str) -> WorkloadSpec:
    """Resolve a workload name through the registries (raises KeyError)."""
    if name == HELPER_STUDY_WORKLOAD.name:
        return HELPER_STUDY_WORKLOAD
    try:
        return WORKLOADS_BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown workload {name!r}") from None


class Lab:
    """Caching façade over workload execution and predictor simulation.

    With ``jobs > 1`` (or ``$REPRO_JOBS``), :meth:`prefetch` fans batches
    of simulations out across worker processes; ``jobs == 1`` (the
    default) keeps the exact serial behavior.  Labs sharing a
    ``cache_dir`` — including concurrent processes — coexist safely: disk
    writes are atomic (tempfile + rename) and corrupt or stale entries
    are ignored and recomputed.

    One Lab is also safe to share across *threads* (the ``repro.service``
    daemon keeps a single long-lived instance warm): the in-memory caches
    are lock-guarded and every expensive computation runs under a per-key
    single-flight, so concurrent requests for the same key compute it
    exactly once (the rest wait, counted by ``lab.singleflight.wait``).
    The caches are LRU-bounded (``REPRO_LAB_TRACE_CACHE`` /
    ``REPRO_LAB_SIM_CACHE``; evictions count under ``lab.mem.evicted``) so
    a long-lived process does not grow without limit.  Serial behavior is
    bit-identical to previous releases.
    """

    def __init__(
        self,
        tier: Optional[ExperimentTier] = None,
        cache_dir: Optional[str] = None,
        jobs: Optional[int] = None,
        resume: Optional[bool] = None,
    ) -> None:
        self.tier = tier or active_tier()
        env_dir = os.environ.get("REPRO_CACHE_DIR")
        if cache_dir is None and env_dir:
            cache_dir = env_dir
        self.cache_dir = Path(cache_dir) if cache_dir else None
        if self.cache_dir:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        # Generated traces share the cache directory with simulation
        # results; the store's filenames are content-addressed, so the two
        # kinds of entry coexist.
        self.trace_store = TraceStore(self.cache_dir) if self.cache_dir else None
        self.jobs = resolve_jobs(jobs)
        self._scheduler: Optional[ParallelScheduler] = None
        # In-memory caches: LRU-bounded (a long-lived daemon must not grow
        # without limit) and guarded by one reentrant lock.  Expensive work
        # happens outside the lock under a per-key single-flight, so two
        # concurrent requests for the same key compute it exactly once.
        self._lock = threading.RLock()
        self._inflight: Dict[Tuple, threading.Event] = {}
        self._traces: _LruCache[WorkloadTrace] = _LruCache(
            _env_cap("REPRO_LAB_TRACE_CACHE", DEFAULT_TRACE_CACHE_CAP), "traces"
        )
        self._sims: _LruCache[SimulationResult] = _LruCache(
            _env_cap("REPRO_LAB_SIM_CACHE", DEFAULT_SIM_CACHE_CAP), "sims"
        )
        self._phase_counts: _LruCache[int] = _LruCache(
            _env_cap("REPRO_LAB_SIM_CACHE", DEFAULT_SIM_CACHE_CAP), "phases"
        )
        # Checkpoint/resume: completed requests are recorded in an
        # append-only manifest so an interrupted sweep restarted with
        # --resume re-dispatches only the missing work.
        if resume is None:
            resume = os.environ.get("REPRO_RESUME", "") not in ("", "0", "false")
        self.manifest: Optional[ResumeManifest] = None
        if resume:
            if self.cache_dir is None:
                _log.warning(
                    "resume requested without a cache directory; ignoring "
                    "(set --cache-dir or REPRO_CACHE_DIR)"
                )
            else:
                self.manifest = ResumeManifest(
                    ResumeManifest.default_path(self.cache_dir), CACHE_VERSION
                )
                self.manifest.load()

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Release the worker pool and manifest, if open (idempotent)."""
        if self._scheduler is not None:
            self._scheduler.close()
            self._scheduler = None
        if self.manifest is not None:
            self.manifest.close()

    @contextlib.contextmanager
    def experiment(self, name: Optional[str]) -> Iterator[None]:
        """Label checkpoint records made inside the block with ``name``.

        The label lives in a :mod:`contextvars` variable, not instance
        state, so concurrent requests (daemon threads / asyncio tasks)
        each carry their own label instead of overwriting a shared field.
        """
        token = _CURRENT_EXPERIMENT.set(name)
        try:
            yield
        finally:
            _CURRENT_EXPERIMENT.reset(token)

    def begin_experiment(self, name: Optional[str]) -> None:
        """Label subsequent checkpoint records with the running experiment.

        Imperative variant of :meth:`experiment` for call sites without a
        natural ``with`` block; the label is still context-local.
        """
        _CURRENT_EXPERIMENT.set(name)

    @staticmethod
    def current_experiment() -> Optional[str]:
        """The experiment label active in this context (or ``None``)."""
        return _CURRENT_EXPERIMENT.get()

    def __enter__(self) -> "Lab":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- single-flight -----------------------------------------------------

    def _join_flight(self, flight_key: Tuple) -> Optional[threading.Event]:
        """Become the leader for ``flight_key`` (returns ``None``) or get
        the current leader's completion event to wait on.

        Callers must hold :attr:`_lock`.  The leader computes the value,
        publishes it to the cache, and calls :meth:`_leave_flight`;
        followers wait, then re-check the cache (looping, since a failed
        leader publishes nothing and a follower takes over)."""
        event = self._inflight.get(flight_key)
        if event is None:
            self._inflight[flight_key] = threading.Event()
            return None
        return event

    def _leave_flight(self, flight_key: Tuple) -> None:
        """Release leadership of ``flight_key`` and wake every follower."""
        with self._lock:
            event = self._inflight.pop(flight_key, None)
        if event is not None:
            event.set()

    # -- trace access ------------------------------------------------------

    def instructions_for(self, name: str) -> int:
        """Trace length for a workload under the active tier."""
        spec = workload_spec(name)
        if spec.category == "specint":
            return self.tier.spec_instructions
        if spec.category == "lcf":
            return self.tier.lcf_instructions
        return spec.default_instructions

    def inputs_for(self, name: str) -> List[int]:
        """Input indices to use under the active tier."""
        spec = workload_spec(name)
        if spec.category == "specint":
            return list(range(min(self.tier.spec_inputs, spec.num_inputs)))
        return list(range(spec.num_inputs))

    def trace(
        self, name: str, input_index: int, instructions: Optional[int] = None
    ) -> WorkloadTrace:
        n = instructions if instructions is not None else self.instructions_for(name)
        key = (name, input_index, n)
        flight_key = ("trace", *key)
        while True:
            with self._lock:
                cached = self._traces.get(key)
                if cached is not None:
                    obs.counter("lab.trace.cache_hit")
                    return cached
                event = self._join_flight(flight_key)
            if event is None:
                break
            obs.counter("lab.singleflight.wait")
            event.wait()
        try:
            spec = workload_spec(name)
            stored = (
                self.trace_store.load(name, input_index, n)
                if self.trace_store is not None
                else None
            )
            if stored is not None:
                _log.info(
                    "loaded trace %s/input%d (%d instructions) from trace store",
                    name, input_index, n,
                )
                # The program is rebuilt (cheap, no execution) so consumers
                # of ``metadata["program"]`` — e.g. the CNN study's static
                # analysis — work identically on store hits.
                cached = WorkloadTrace(
                    benchmark=spec.name,
                    input_name=spec.input_name(input_index),
                    trace=stored,
                    metadata={
                        "program": spec.build(input_index),
                        "instructions": n,
                        "from_trace_store": True,
                    },
                )
            else:
                obs.counter("lab.trace.build")
                _log.info(
                    "generating trace %s/input%d (%d instructions)", name, input_index, n
                )
                with obs.timer(
                    "lab.trace.generate", extra=(f"lab.trace.generate.{name}",)
                ):
                    cached = trace_workload(spec, input_index, instructions=n)
                if self.trace_store is not None:
                    self.trace_store.store(name, input_index, n, cached.trace)
            with self._lock:
                self._traces[key] = cached
        finally:
            self._leave_flight(flight_key)
        return cached

    # -- simulation --------------------------------------------------------

    def simulate(
        self,
        name: str,
        input_index: int,
        predictor: str = "tage-sc-l-8kb",
        instructions: Optional[int] = None,
        slice_instructions: int = SLICE_INSTRUCTIONS,
    ) -> SimulationResult:
        """Simulate one predictor over one workload input, cached."""
        if predictor not in PREDICTOR_FACTORIES:
            raise KeyError(
                f"unknown predictor {predictor!r}; register a factory in "
                "PREDICTOR_FACTORIES"
            )
        n = instructions if instructions is not None else self.instructions_for(name)
        key = (name, input_index, n, predictor, slice_instructions)
        flight_key = ("sim", *key)
        while True:
            with self._lock:
                cached = self._sims.get(key)
                if cached is not None:
                    obs.counter("lab.sim.cache_hit.memory")
                    return cached
                event = self._join_flight(flight_key)
            if event is None:
                break
            obs.counter("lab.singleflight.wait")
            event.wait()
        try:
            disk = self._disk_path(key)
            if disk is not None and disk.exists():
                cached = self._load_disk(disk)
                if cached is not None:
                    obs.counter("lab.sim.cache_hit.disk")
                    _log.debug("disk cache hit: %s", disk)
                    with self._lock:
                        self._sims[key] = cached
                    self._mark_complete(key)
                    return cached

            obs.counter("lab.sim.cache_miss")
            _log.info(
                "simulating %s/input%d with %s (%d instructions)",
                name, input_index, predictor, n,
            )
            with obs.span(
                "lab.simulate", workload=name, input=input_index, predictor=predictor
            ):
                trace = self.trace(name, input_index, n)
                if introspect.is_enabled():
                    # Label the simulation's introspection report; note that
                    # cache hits above never reach this point, so reports only
                    # exist for actually-simulated (workload, input) pairs.
                    introspect.set_context(workload=name, input_name=input_index)
                result = simulate_trace(
                    trace.trace,
                    PREDICTOR_FACTORIES[predictor](),
                    slice_instructions=slice_instructions,
                )
            with self._lock:
                self._sims[key] = result
            if disk is not None and self._store_disk(disk, result):
                self._mark_complete(key)
        finally:
            self._leave_flight(flight_key)
        return result

    def simulate_batch(
        self,
        name: str,
        input_index: int,
        predictors: Sequence[str],
        instructions: Optional[int] = None,
        slice_instructions: int = SLICE_INSTRUCTIONS,
    ) -> List[SimulationResult]:
        """Simulate several predictors over one workload input, cached.

        Cache misses are replayed together by
        :func:`~repro.pipeline.simulator.simulate_trace_batch`, which
        shares the trace pass (and, for the TAGE-SC-L family, the folded
        history index streams) across configurations.  Every result lands
        in the memory/disk caches under the same per-predictor key
        :meth:`simulate` uses, so subsequent serial lookups are hits.
        Results come back in ``predictors`` order, bit-identical to what
        per-predictor :meth:`simulate` calls would have produced.
        """
        for predictor in predictors:
            if predictor not in PREDICTOR_FACTORIES:
                raise KeyError(
                    f"unknown predictor {predictor!r}; register a factory in "
                    "PREDICTOR_FACTORIES"
                )
        n = instructions if instructions is not None else self.instructions_for(name)
        keys = [
            (name, input_index, n, predictor, slice_instructions)
            for predictor in predictors
        ]
        resolved: Dict[Tuple, SimulationResult] = {}
        missing: List[Tuple[str, Tuple]] = []   # keys this call leads
        deferred: List[Tuple[str, Tuple]] = []  # keys another caller leads
        led: set = set()  # flights this call still owns (released in finally)
        try:
            for predictor, key in zip(predictors, keys):
                with self._lock:
                    cached = self._sims.get(key)
                    if cached is not None:
                        obs.counter("lab.sim.cache_hit.memory")
                        resolved[key] = cached
                        continue
                    if self._join_flight(("sim", *key)) is not None:
                        # Another request is already computing this key —
                        # don't redo it here; wait for it at the end.
                        deferred.append((predictor, key))
                        continue
                    led.add(key)
                disk = self._disk_path(key)
                if disk is not None and disk.exists():
                    cached = self._load_disk(disk)
                    if cached is not None:
                        obs.counter("lab.sim.cache_hit.disk")
                        with self._lock:
                            self._sims[key] = cached
                        resolved[key] = cached
                        self._mark_complete(key)
                        led.discard(key)
                        self._leave_flight(("sim", *key))
                        continue
                obs.counter("lab.sim.cache_miss")
                missing.append((predictor, key))
            if missing:
                _log.info(
                    "batch-simulating %s/input%d with %d predictor(s) "
                    "(%d instructions)",
                    name, input_index, len(missing), n,
                )
                with obs.span(
                    "lab.simulate_batch",
                    workload=name,
                    input=input_index,
                    predictors=len(missing),
                ):
                    trace = self.trace(name, input_index, n)
                    if introspect.is_enabled():
                        introspect.set_context(workload=name, input_name=input_index)
                    results = simulate_trace_batch(
                        trace.trace,
                        [PREDICTOR_FACTORIES[p]() for p, _ in missing],
                        slice_instructions=slice_instructions,
                    )
                for (_, key), result in zip(missing, results):
                    with self._lock:
                        self._sims[key] = result
                    resolved[key] = result
                    disk = self._disk_path(key)
                    if disk is not None and self._store_disk(disk, result):
                        self._mark_complete(key)
        finally:
            for key in led:
                self._leave_flight(("sim", *key))
        for predictor, key in deferred:
            resolved[key] = self.simulate(
                name, input_index, predictor,
                instructions=n, slice_instructions=slice_instructions,
            )
        return [resolved[key] for key in keys]

    # -- phase analysis ----------------------------------------------------

    def phase_count(
        self,
        name: str,
        input_index: int,
        instructions: Optional[int] = None,
        bbv_interval: int = SLICE_INSTRUCTIONS,
    ) -> int:
        """Number of execution phases (SimPoint-style BBV clustering).

        Deterministic in ``(workload, input, instructions, bbv_interval)``,
        so the result is cached in memory and — with a ``cache_dir`` — on
        disk, sparing the warm path a full interpreter execution (Table I's
        phases column is otherwise its only remaining execution).
        """
        n = instructions if instructions is not None else self.instructions_for(name)
        key = (name, input_index, n, bbv_interval)
        flight_key = ("phases", *key)
        while True:
            with self._lock:
                cached = self._phase_counts.get(key)
                if cached is not None:
                    obs.counter("lab.phases.cache_hit.memory")
                    return cached
                event = self._join_flight(flight_key)
            if event is None:
                break
            obs.counter("lab.singleflight.wait")
            event.wait()
        try:
            disk: Optional[Path] = None
            if self.cache_dir is not None:
                disk = self.cache_dir / self._cache_filename("phases", key)
                if disk.exists():
                    loaded = self._load_disk(disk, want=int)
                    if loaded is not None:
                        obs.counter("lab.phases.cache_hit.disk")
                        with self._lock:
                            self._phase_counts[key] = loaded
                        return loaded
            obs.counter("lab.phases.cache_miss")
            _log.info(
                "clustering phases for %s/input%d (%d instructions)",
                name, input_index, n,
            )
            result = execute_workload(
                workload_spec(name), input_index, instructions=n,
                bbv_interval=bbv_interval,
            )
            if result.bbvs is None or len(result.bbvs) < 2:
                count = 1
            else:
                vectors = prepare_bbvs(result.bbvs)
                count = cluster_phases(vectors, max_k=min(10, len(vectors))).num_phases
            with self._lock:
                self._phase_counts[key] = count
            if disk is not None:
                self._store_disk(disk, count)
        finally:
            self._leave_flight(flight_key)
        return count

    # -- parallel fan-out --------------------------------------------------

    def prefetch(self, requests: Iterable[SimRequest]) -> int:
        """Plan a batch of simulations and fan the misses out over workers.

        ``requests`` are :class:`SimJob`s or (workload, input_index,
        predictor[, instructions[, slice_instructions]]) tuples; omitted
        sizes default per the active tier, exactly like :meth:`simulate`.
        Duplicate requests and requests already satisfied by the in-memory
        or disk cache are planned away; the rest run on the process pool
        and land in both caches, so the subsequent serial
        :meth:`simulate` calls are cache hits.  Returns the number of jobs
        dispatched.

        With ``jobs == 1`` this returns immediately (exact serial
        behavior, metric-for-metric).  Worker failures are logged and
        dropped; the serial path recomputes those keys synchronously.
        """
        if self.jobs <= 1:
            return 0
        requested = 0
        batch: List[Union[SimJob, BatchSimJob]] = []
        seen = set()
        for request in requests:
            requested += 1
            job = self._normalize_request(request)
            if job.key() in seen:
                continue
            seen.add(job.key())
            batch.append(job)
        obs.counter("lab.parallel.jobs.requested", requested)
        todo: List[Union[SimJob, BatchSimJob]] = []
        planned = 0
        for job in batch:
            if isinstance(job, BatchSimJob):
                # Batch jobs are planned per member key; a partially cached
                # batch is narrowed to its missing predictors before
                # dispatch, so workers never redo cached configurations.
                missing = []
                for predictor, key in zip(job.predictors, job.sim_keys()):
                    if self._plan_one(key):
                        continue
                    missing.append(predictor)
                if not missing:
                    planned += 1
                    continue
                if len(missing) < len(job.predictors):
                    job = BatchSimJob(
                        job.workload, job.input_index, job.instructions,
                        tuple(missing), job.slice_instructions,
                    )
                todo.append(job)
                continue
            if self._plan_one(job.key()):
                planned += 1
                continue
            todo.append(job)
        obs.counter("lab.parallel.jobs.cache_planned", planned)
        if not todo:
            return 0
        _log.info(
            "prefetch: %d requests -> %d jobs (%d cache-planned) on %d workers",
            requested, len(todo), planned, self.jobs,
        )
        if self._scheduler is None:
            self._scheduler = ParallelScheduler(
                self.jobs,
                trace_store_dir=str(self.cache_dir) if self.cache_dir else None,
            )
        with obs.span("lab.prefetch", jobs=len(todo), workers=self.jobs):
            self._scheduler.run(todo, self._store_job_result)
        return len(todo)

    def _plan_one(self, key: Tuple) -> bool:
        """True when one cache key needs no dispatch (memory/manifest/disk).

        The manifest check is advisory: a checkpointed entry is planned
        away without even touching the disk file — if it is gone or
        corrupt, the serial render path recomputes it, so results stay
        bit-identical.
        """
        with self._lock:
            if key in self._sims:
                return True
        if self.manifest is not None and key in self.manifest:
            obs.counter("lab.resume.planned")
            return True
        disk = self._disk_path(key)
        if disk is not None and disk.exists():
            cached = self._load_disk(disk)
            if cached is not None:
                obs.counter("lab.sim.cache_hit.disk")
                with self._lock:
                    self._sims[key] = cached
                return True
        return False

    def _store_job_result(
        self, job: Union[SimJob, BatchSimJob], result
    ) -> None:
        if isinstance(job, BatchSimJob):
            for key, member in zip(job.sim_keys(), result):
                with self._lock:
                    self._sims[key] = member
                disk = self._disk_path(key)
                if disk is not None and self._store_disk(disk, member):
                    self._mark_complete(key)
            return
        key = job.key()
        with self._lock:
            self._sims[key] = result
        disk = self._disk_path(key)
        if disk is not None and self._store_disk(disk, result):
            self._mark_complete(key)

    def _mark_complete(self, key: Tuple) -> None:
        """Checkpoint one durably published request (no-op without --resume)."""
        if self.manifest is not None:
            self.manifest.mark(key, _CURRENT_EXPERIMENT.get())

    def _normalize_request(self, request: SimRequest) -> Union[SimJob, BatchSimJob]:
        """Fill tier defaults and validate names (KeyError like simulate)."""
        if isinstance(request, BatchSimJob):
            for predictor in request.predictors:
                if predictor not in PREDICTOR_FACTORIES:
                    raise KeyError(
                        f"unknown predictor {predictor!r}; register a factory "
                        "in PREDICTOR_FACTORIES"
                    )
            workload_spec(request.workload)
            return request
        if isinstance(request, SimJob):
            name, input_index, n, predictor, slice_n = request.key()
        else:
            name, input_index, predictor = request[:3]
            n = request[3] if len(request) > 3 else None
            slice_n = request[4] if len(request) > 4 else SLICE_INSTRUCTIONS
        if predictor not in PREDICTOR_FACTORIES:
            raise KeyError(
                f"unknown predictor {predictor!r}; register a factory in "
                "PREDICTOR_FACTORIES"
            )
        workload_spec(name)  # raises for unknown workloads
        if n is None:
            n = self.instructions_for(name)
        return SimJob(name, input_index, n, predictor, slice_n)

    def _store_disk(self, disk: Path, result: object) -> bool:
        """Atomically publish one cache entry; True on durable success.

        The payload is written to a unique sibling tempfile and renamed
        into place, so concurrent readers never observe a partial pickle
        and concurrent writers of the same (deterministic) entry simply
        race to an identical file.  I/O failures only cost the cache
        entry, never the run.
        """
        try:
            faults.check_enospc("cache.enospc")
            fd, tmp_name = tempfile.mkstemp(
                dir=str(disk.parent), prefix=disk.name, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as f:
                    pickle.dump(
                        {"cache_version": CACHE_VERSION, "result": result}, f
                    )
                os.replace(tmp_name, disk)
            except BaseException:
                with contextlib.suppress(OSError):
                    os.unlink(tmp_name)
                raise
        except OSError as exc:
            obs.counter("lab.cache.store_failed")
            _log.warning("could not write disk cache %s: %s", disk, exc)
            return False
        faults.corrupt_file("cache.corrupt", disk)
        obs.counter("lab.sim.cache_store")
        return True

    def _load_disk(self, disk: Path, want: type = SimulationResult):
        """Load one disk-cache entry holding a ``want`` instance, or
        ``None`` (with a warning) if it is corrupt or from an incompatible
        :data:`CACHE_VERSION`.  Bad entries are *quarantined* — moved to
        ``quarantine/`` under the cache directory — so they are recomputed
        once instead of re-read and re-warned on every load."""
        try:
            with open(disk, "rb") as f:
                payload = pickle.load(f)
        except Exception as exc:
            # Fail-soft by design: a corrupt/truncated entry (e.g. a torn
            # write from a killed worker) must cost a recompute, never the
            # run.  The dedicated counter separates I/O-level failures from
            # well-formed-but-stale payloads (both also count as invalid).
            obs.counter("lab.cache.load_error")
            reason = f"unreadable ({type(exc).__name__}: {exc})"
        else:
            if (
                isinstance(payload, dict)
                and payload.get("cache_version") == CACHE_VERSION
                and isinstance(payload.get("result"), want)
            ):
                return payload["result"]
            found = payload.get("cache_version") if isinstance(payload, dict) else None
            reason = (
                f"stale cache version {found!r} (want {CACHE_VERSION})"
                if found is not None
                else "unrecognized payload format"
            )
        obs.counter("lab.cache.invalid")
        _log.warning("ignoring invalid disk cache %s: %s; recomputing", disk, reason)
        if self.cache_dir is not None:
            quarantine_file(disk, self.cache_dir, reason)
        return None

    def _cache_filename(self, kind: str, key: Tuple) -> str:
        """Injective cache filename for ``key``: a human-readable slug plus
        a digest of the raw key.  (The pre-v5 ``replace("/", "_")`` scheme
        aliased distinct keys — e.g. ``a/b`` and ``a_b`` — onto one file,
        silently serving one key's payload for the other.)"""
        raw = "\x1f".join(str(part) for part in (kind, *key))
        digest = hashlib.sha256(raw.encode("utf-8")).hexdigest()[:16]
        human = "_".join(_slug(str(part)) for part in (kind, *key))
        return f"v{CACHE_VERSION}_{human}_{digest}.pkl"

    def _disk_path(self, key: Tuple) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / self._cache_filename("sim", key)

    # -- aggregates --------------------------------------------------------

    def aggregate_stats(
        self, names: List[str], predictor: str = "tage-sc-l-8kb"
    ) -> Tuple[BranchStats, int]:
        """Pooled per-branch stats and total instructions over workloads
        (all inputs under the tier).  Branch IPs collide across programs, so
        IPs are offset per (workload, input) before pooling."""
        pooled = BranchStats()
        instructions = 0
        for w, name in enumerate(names):
            for input_index in self.inputs_for(name):
                result = self.simulate(name, input_index, predictor)
                offset = (w * 64 + input_index + 1) << 40
                for ip, counts in result.stats.items():
                    pooled.record_bulk(
                        ip + offset, counts.executions, counts.mispredictions
                    )
                instructions += result.instr_count
        return pooled, instructions


_DEFAULT_LAB: Optional[Lab] = None


def default_lab() -> Lab:
    """Process-wide shared lab (so tests/benchmarks reuse simulations)."""
    global _DEFAULT_LAB
    if _DEFAULT_LAB is None:
        _DEFAULT_LAB = Lab()
    return _DEFAULT_LAB
