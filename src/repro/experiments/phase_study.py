"""Sec. V-B study: phase-aware long-term statistics for rare branches.

Evaluates the :class:`~repro.predictors.phase_aware.PhaseBiasHelper`
prototype on the LCF applications: overall and rare-branch accuracy of
TAGE-SC-L 8KB with and without the helper, the number of phases the online
recognizer finds, and the hit rate of its overrides.  The paper argues this
direction should recover part of the rare-branch opportunity that storage
scaling cannot (Figs. 7/8); the study quantifies how much a small prototype
already captures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.config import RARE_EXECUTION_THRESHOLDS
from repro.core.metrics import BranchStats
from repro.experiments.lab import Lab, default_lab
from repro.experiments.reporting import format_table
from repro.pipeline.simulator import simulate_trace
from repro.predictors.phase_aware import PhaseBiasHelper
from repro.predictors.tagescl import make_tage_sc_l
from repro.workloads import LCF_WORKLOADS


def rare_branch_accuracy(stats: BranchStats, max_executions: int) -> float:
    """Aggregate accuracy over branches with at most ``max_executions``."""
    execs = mispreds = 0
    for _, counts in stats.items():
        if counts.executions <= max_executions:
            execs += counts.executions
            mispreds += counts.mispredictions
    if execs == 0:
        return 1.0
    return 1.0 - mispreds / execs


@dataclass(frozen=True)
class PhaseStudyRow:
    application: str
    base_accuracy: float
    helper_accuracy: float
    base_rare_accuracy: float
    helper_rare_accuracy: float
    phases_detected: int
    overrides: int
    override_hit_rate: float

    @property
    def accuracy_delta(self) -> float:
        return self.helper_accuracy - self.base_accuracy

    @property
    def rare_accuracy_delta(self) -> float:
        return self.helper_rare_accuracy - self.base_rare_accuracy


@dataclass(frozen=True)
class PhaseStudyResult:
    rows: Tuple[PhaseStudyRow, ...]
    rare_threshold: int

    @property
    def mean_accuracy_delta(self) -> float:
        return sum(r.accuracy_delta for r in self.rows) / len(self.rows)

    @property
    def mean_rare_accuracy_delta(self) -> float:
        return sum(r.rare_accuracy_delta for r in self.rows) / len(self.rows)

    def render(self) -> str:
        headers = [
            "application", "acc", "acc+phase", "rare acc", "rare+phase",
            "phases", "overrides", "hit rate",
        ]
        rows = [
            (
                r.application, r.base_accuracy, r.helper_accuracy,
                r.base_rare_accuracy, r.helper_rare_accuracy,
                r.phases_detected, r.overrides, r.override_hit_rate,
            )
            for r in self.rows
        ]
        return format_table(
            headers, rows,
            title="Sec. V-B: phase-aware rare-branch helper on LCF",
        )


def compute_phase_study(
    lab: Optional[Lab] = None,
    applications: Optional[Sequence[str]] = None,
    rare_threshold: Optional[int] = None,
) -> PhaseStudyResult:
    lab = lab or default_lab()
    names = list(applications) if applications else [w.name for w in LCF_WORKLOADS]
    threshold = (
        rare_threshold if rare_threshold is not None else RARE_EXECUTION_THRESHOLDS[0]
    )
    rows: List[PhaseStudyRow] = []
    for name in names:
        base_result = lab.simulate(name, 0, "tage-sc-l-8kb")
        trace = lab.trace(name, 0)
        helper = PhaseBiasHelper(make_tage_sc_l(8))
        helper_result = simulate_trace(trace.trace, helper)
        rows.append(
            PhaseStudyRow(
                application=name,
                base_accuracy=base_result.accuracy,
                helper_accuracy=helper_result.accuracy,
                base_rare_accuracy=rare_branch_accuracy(
                    base_result.stats, threshold
                ),
                helper_rare_accuracy=rare_branch_accuracy(
                    helper_result.stats, threshold
                ),
                phases_detected=helper.recognizer.num_phases,
                overrides=helper.overrides,
                override_hit_rate=(
                    helper.override_correct / helper.overrides
                    if helper.overrides
                    else 0.0
                ),
            )
        )
    return PhaseStudyResult(rows=tuple(rows), rare_threshold=threshold)
