"""Per-experiment simulation request sets for the parallel scheduler.

Each planner enumerates — without computing anything — the (workload,
input, predictor) simulations its ``compute_*`` driver will request from
the :class:`~repro.experiments.lab.Lab`.  The runner hands the planned
set to :meth:`Lab.prefetch` before invoking the driver, so by the time
the serial render path asks for a simulation it is already a cache hit.

Planners must stay in sync with their drivers; the parallel-equivalence
tests exercise both paths against each other.  Experiments that only
consume traces (fig9, allocation, cnn) or run ad-hoc predictors inline
have nothing to fan out and no entry here — they simply run serially.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Union

from repro.experiments.config import SLICE_INSTRUCTIONS
from repro.experiments.lab import Lab
from repro.parallel.jobs import BatchSimJob, SimJob, predictor_weight
from repro.predictors.tagescl import STORAGE_PRESETS_KIB
from repro.workloads import LCF_WORKLOADS, SPECINT_WORKLOADS

AnySimJob = Union[SimJob, BatchSimJob]

_SPEC = tuple(w.name for w in SPECINT_WORKLOADS)
_LCF = tuple(w.name for w in LCF_WORKLOADS)
_BASE = ("tage-sc-l-8kb",)
_SCALING = ("tage-sc-l-8kb", "tage-sc-l-64kb")
_STORAGE_SWEEP = tuple(f"tage-sc-l-{kib}kb" for kib in STORAGE_PRESETS_KIB)


def suite_jobs(
    lab: Lab,
    names: Sequence[str],
    predictors: Sequence[str],
    all_inputs: bool = False,
) -> List[SimJob]:
    """Jobs for a workload suite at the lab's tier sizes.

    Already sharded per (workload, input, predictor) so the scheduler has
    many more jobs than workers, and ordered heavy-family-first (TAGE
    before kernel predictors) so the scheduler's stable longest-job-first
    sort starts the slow jobs immediately instead of leaving one for the
    tail of the batch.
    """
    jobs: List[SimJob] = []
    for name in names:
        n = lab.instructions_for(name)
        inputs = lab.inputs_for(name) if all_inputs else [0]
        for input_index in inputs:
            for predictor in predictors:
                jobs.append(
                    SimJob(name, input_index, n, predictor, SLICE_INSTRUCTIONS)
                )
    jobs.sort(key=lambda j: predictor_weight(j.predictor), reverse=True)
    return jobs


def plan_table1(lab: Lab) -> List[SimJob]:
    return suite_jobs(lab, _SPEC, _BASE, all_inputs=True)


def plan_table2(lab: Lab) -> List[SimJob]:
    return suite_jobs(lab, _LCF, _BASE)


def plan_table3(lab: Lab) -> List[SimJob]:
    return suite_jobs(lab, _SPEC, _BASE)


def plan_fig1(lab: Lab) -> List[SimJob]:
    return suite_jobs(lab, _SPEC, _SCALING, all_inputs=True)


def plan_fig2(lab: Lab) -> List[SimJob]:
    return suite_jobs(lab, _SPEC, _BASE)


def plan_fig3(lab: Lab) -> List[SimJob]:
    return suite_jobs(lab, _LCF, _BASE)


def plan_fig5(lab: Lab) -> List[SimJob]:
    return suite_jobs(lab, _LCF, _SCALING, all_inputs=True)


def batch_suite_jobs(
    lab: Lab, names: Sequence[str], predictors: Sequence[str]
) -> List[BatchSimJob]:
    """One multi-config job per workload: every predictor in one trace pass.

    The TAGE-SC-L storage sweeps are where the batched kernel pays off —
    the presets differ only in geometry, so history reconstruction and the
    folded index streams are shared across the whole sweep.
    """
    return [
        BatchSimJob(
            name, 0, lab.instructions_for(name), tuple(predictors),
            SLICE_INSTRUCTIONS,
        )
        for name in names
    ]


def plan_fig7(lab: Lab) -> List[AnySimJob]:
    return batch_suite_jobs(lab, _LCF, _STORAGE_SWEEP)


def plan_fig8(lab: Lab) -> List[AnySimJob]:
    return batch_suite_jobs(lab, _LCF, ("tage-sc-l-1024kb",))


def plan_fig10(lab: Lab) -> List[SimJob]:
    return suite_jobs(lab, _SPEC, _BASE)


def plan_phase(lab: Lab) -> List[SimJob]:
    return suite_jobs(lab, _LCF, _BASE)


def plan_staticcheck(lab: Lab) -> List[SimJob]:
    # The static/dynamic cross-check screens H2Ps over every SPECint input
    # and reads each LCF app's branch population from its first input.
    return suite_jobs(lab, _SPEC, _BASE, all_inputs=True) + suite_jobs(
        lab, _LCF, _BASE
    )


#: Experiment name -> request-set planner (fig4/fig6 share fig3/table3 sims).
EXPERIMENT_PLANS: Dict[str, Callable[[Lab], List[AnySimJob]]] = {
    "table1": plan_table1,
    "table2": plan_table2,
    "table3": plan_table3,
    "fig1": plan_fig1,
    "fig2": plan_fig2,
    "fig3": plan_fig3,
    "fig4": plan_fig3,
    "fig5": plan_fig5,
    "fig6": plan_table3,
    "fig7": plan_fig7,
    "fig8": plan_fig8,
    "fig10": plan_fig10,
    "phase": plan_phase,
    "staticcheck": plan_staticcheck,
    # staticpred consumes exactly the same simulation set: SPECint H2P
    # screens over every input, LCF screens from the first input.
    "staticpred": plan_staticcheck,
}
