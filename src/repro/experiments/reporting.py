"""Plain-text rendering of experiment results.

Each experiment driver returns structured data; these helpers render the
same rows/series the paper's tables and figures report, for terminal output
and for the EXPERIMENTS.md record.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

Cell = Union[str, int, float, None]


def format_cell(value: Cell, precision: int = 3) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    precision: int = 3,
    title: str = "",
) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[format_cell(c, precision) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(
    label: str, xs: Sequence[Cell], ys: Sequence[float], precision: int = 3
) -> str:
    """Render one figure series as ``label: x=y`` pairs."""
    pairs = "  ".join(
        f"{format_cell(x, 0)}={format_cell(y, precision)}" for x, y in zip(xs, ys)
    )
    return f"{label}: {pairs}"


def format_histogram(
    edges: Sequence[float], fractions: Sequence[float], precision: int = 4
) -> str:
    """Render histogram bins as ``[lo, hi): fraction`` lines."""
    lines = []
    for i, frac in enumerate(fractions):
        lines.append(
            f"  [{format_cell(edges[i], 1)}, {format_cell(edges[i + 1], 1)}): "
            f"{frac:.{precision}f}"
        )
    return "\n".join(lines)
