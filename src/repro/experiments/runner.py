"""Command-line experiment runner.

``python -m repro [names...]`` regenerates the paper's tables and figures
(all of them by default) at the active tier and prints the rendered results.
The ``examples/reproduce_paper.py`` script is a thin wrapper over this
module.
"""

from __future__ import annotations

import argparse
from typing import Callable, Dict, List, Optional, Sequence

from repro import obs
from repro.obs.trace import trace_out_path
from repro.experiments.allocation_study import compute_allocation_study
from repro.experiments.cnn_study import compute_cnn_study
from repro.experiments.fig1 import compute_fig1
from repro.experiments.fig2 import compute_fig2
from repro.experiments.fig3 import compute_fig3, compute_fig4
from repro.experiments.fig5 import compute_fig5
from repro.experiments.fig7 import compute_fig7
from repro.experiments.fig8 import compute_fig8
from repro.experiments.fig9 import compute_fig9
from repro.experiments.fig10 import compute_fig10
from repro.experiments.introspect import compute_introspect
from repro.experiments.lab import Lab
from repro.experiments.phase_study import compute_phase_study
from repro.experiments.plans import EXPERIMENT_PLANS
from repro.experiments.staticcheck_check import compute_staticcheck_report
from repro.experiments.staticpred import compute_staticpred_report
from repro.experiments.table1 import compute_table1
from repro.experiments.table2 import compute_table2
from repro.experiments.table3 import compute_table3

_log = obs.get_logger("experiments")


def _fig6(lab: Lab) -> str:
    return "\n".join(
        f"{name}: {points[:6]}"
        for name, points in compute_table3(lab).fig6_series().items()
    )


#: Experiment name -> callable(lab) -> printable text.
EXPERIMENTS: Dict[str, Callable[[Lab], str]] = {
    "table1": lambda lab: compute_table1(lab).render(),
    "table2": lambda lab: compute_table2(lab).render(),
    "table3": lambda lab: compute_table3(lab).render(),
    "fig1": lambda lab: compute_fig1(lab).render(),
    "fig2": lambda lab: compute_fig2(lab).render(),
    "fig3": lambda lab: compute_fig3(lab).render(),
    "fig4": lambda lab: compute_fig4(lab).render(),
    "fig5": lambda lab: compute_fig5(lab).render(),
    "fig6": _fig6,
    "fig7": lambda lab: compute_fig7(lab).render(),
    "fig8": lambda lab: compute_fig8(lab).render(),
    "fig9": lambda lab: compute_fig9(lab).render(),
    "fig10": lambda lab: compute_fig10(lab).render(),
    "introspect": lambda lab: compute_introspect(lab).render(),
    "allocation": lambda lab: compute_allocation_study(lab).render(),
    "cnn": lambda lab: compute_cnn_study(lab).render(),
    "phase": lambda lab: compute_phase_study(lab).render(),
    "staticcheck": lambda lab: compute_staticcheck_report(lab).render(),
    "staticpred": lambda lab: compute_staticpred_report(lab).render(),
}


def run_experiments(
    names: Optional[Sequence[str]] = None,
    lab: Optional[Lab] = None,
    echo: Callable[[str], None] = print,
) -> List[str]:
    """Run experiments by name; returns the rendered outputs in order."""
    selected = list(names) if names else list(EXPERIMENTS)
    unknown = [n for n in selected if n not in EXPERIMENTS]
    if unknown:
        raise ValueError(
            f"unknown experiments: {unknown}; choose from {sorted(EXPERIMENTS)}"
        )
    lab = lab or Lab()
    outputs: List[str] = []
    workers = f" with {lab.jobs} workers" if lab.jobs > 1 else ""
    echo(f"Running {len(selected)} experiment(s) at tier '{lab.tier.name}'{workers}\n")
    for name in selected:
        _log.info("starting experiment %s", name)
        # Span-based timing: the span lands in the exported tree (with lab
        # simulate children) and also backs the elapsed display.  The
        # experiment label is context-local (``Lab.experiment``), so
        # checkpoint records written inside the block carry it without
        # mutating shared Lab state.
        with lab.experiment(name), obs.span(name, tier=lab.tier.name) as sp:
            # Fan the experiment's planned simulations out across the
            # worker pool first; the serial driver below then renders
            # entirely from cache hits.
            plan = EXPERIMENT_PLANS.get(name) if lab.jobs > 1 else None
            if plan is not None:
                lab.prefetch(plan(lab))
            output = EXPERIMENTS[name](lab)
        _log.info("finished %s in %s", name, obs.format_duration(sp.duration_s))
        echo(f"{'=' * 72}\n{name} ({obs.format_duration(sp.duration_s)})\n{'=' * 72}")
        echo(output)
        echo("")
        outputs.append(output)
    return outputs


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Regenerate the tables and figures of 'Branch Prediction Is Not "
            "A Solved Problem' (Lin & Tarsa, IISWC 2019)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="NAME",
        help=f"experiments to run (default: all). Choices: {', '.join(EXPERIMENTS)}",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="directory for the on-disk simulation cache",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the simulation fan-out "
        "(default: $REPRO_JOBS or 1 = serial; 0 means all cores)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="checkpoint completed simulations in the cache directory and, "
        "on restart, re-dispatch only the missing ones "
        "(requires --cache-dir or REPRO_CACHE_DIR; see docs/resilience.md)",
    )
    parser.add_argument(
        "--log-level",
        default=None,
        choices=["debug", "info", "warning", "error"],
        help="logging level for the repro.* hierarchy "
        "(default: $REPRO_LOG_LEVEL or warning)",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="enable metrics collection and write the registry + span trees "
        "as JSON to PATH at end of run",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write a Chrome-trace-event/Perfetto timeline of the run to "
        "PATH (also enabled by REPRO_TRACE_OUT; implies metrics collection)",
    )
    parser.add_argument(
        "--introspect-out",
        default=None,
        metavar="PATH",
        help="enable per-branch prediction introspection (REPRO_INTROSPECT=1) "
        "and write the collected reports as JSON to PATH",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment names and exit"
    )
    args = parser.parse_args(argv)
    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0

    obs.configure_logging(args.log_level)
    if args.metrics_out:
        obs.enable()
    trace_out = args.trace_out or trace_out_path()
    if trace_out:
        # Spans only record while metrics collection is on, so the timeline
        # implies it; the collector itself starts here (epoch = run start).
        obs.enable()
        obs.enable_tracing()
    if args.introspect_out:
        obs.enable_introspection()

    lab = Lab(cache_dir=args.cache_dir, jobs=args.jobs, resume=args.resume or None)
    try:
        run_experiments(args.experiments or None, lab)
    except ValueError as exc:
        parser.error(str(exc))
    finally:
        lab.close()

    if obs.is_enabled():
        print(obs.render_summary())
    if args.metrics_out:
        path = obs.write_metrics_json(args.metrics_out)
        _log.info("wrote metrics JSON to %s", path)
    if trace_out:
        path = obs.write_trace_json(trace_out)
        print(f"timeline trace written to {path} "
              "(open in chrome://tracing or https://ui.perfetto.dev)")
    if args.introspect_out:
        path = obs.write_introspect_json(args.introspect_out)
        _log.info("wrote introspection JSON to %s", path)
    return 0
