"""Cross-check: static branch classification vs. dynamic findings.

Two agreement properties tie :mod:`repro.staticcheck` to the paper's
dynamic methodology at the active tier:

* **SPECint / H2P** — every branch the dynamic screen flags as H2P
  (Sec. III-A criteria under TAGE-SC-L 8KB) must be classified
  *data-dependent* statically: H2Ps are by construction conditioned on
  loaded input data, so a loop-back or guard classification for one means
  either a generator or an analysis regression.
* **LCF / population** — every conditional-branch IP observed dynamically
  must exist in the static CFG's classified conditional-branch set (the
  static footprint is a superset of any trace's branch population).

The result renders alongside the lint summary as the ``staticcheck``
experiment (``python -m repro staticcheck``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.h2p import screen_workload
from repro.experiments.lab import Lab, default_lab
from repro.staticcheck.classify import BranchClass, branch_class_by_ip
from repro.staticcheck.diagnostics import Report
from repro.staticcheck.engine import analyze_program, lint_registry
from repro.workloads import LCF_WORKLOADS, SPECINT_WORKLOADS

_SCREEN_PREDICTOR = "tage-sc-l-8kb"


@dataclass(frozen=True)
class WorkloadCrossCheck:
    """Agreement result for one workload."""

    benchmark: str
    category: str
    dynamic_ips: int  # H2P IPs (specint) or conditional-branch IPs (lcf)
    agreeing: int
    mismatches: Tuple[str, ...]  # rendered disagreement descriptions

    @property
    def ok(self) -> bool:
        return not self.mismatches


@dataclass(frozen=True)
class StaticCheckReport:
    """Lint report + static/dynamic cross-check for the runner."""

    lint: Report
    checks: Tuple[WorkloadCrossCheck, ...]

    @property
    def ok(self) -> bool:
        return not self.lint.has_errors() and all(c.ok for c in self.checks)

    def render(self) -> str:
        lines = [self.lint.render(), ""]
        lines.append("static/dynamic agreement (active tier):")
        for c in self.checks:
            status = "ok" if c.ok else "MISMATCH"
            what = "H2P IPs" if c.category == "specint" else "branch IPs"
            lines.append(
                f"  {c.benchmark:<20} {c.agreeing}/{c.dynamic_ips} {what} "
                f"agree [{status}]"
            )
            lines.extend(f"    {m}" for m in c.mismatches)
        verdict = "agree" if self.ok else "DISAGREE"
        lines.append(f"staticcheck and dynamic measurements {verdict}")
        return "\n".join(lines)


def crosscheck_specint_h2ps(lab: Lab) -> List[WorkloadCrossCheck]:
    """Check every dynamically screened H2P IP is statically data-dependent."""
    out: List[WorkloadCrossCheck] = []
    for spec in SPECINT_WORKLOADS:
        classes: Dict[int, Tuple[str, BranchClass]] = {}
        h2p_ips: set = set()
        for input_index in lab.inputs_for(spec.name):
            result = lab.simulate(spec.name, input_index, _SCREEN_PREDICTOR)
            report = screen_workload(
                spec.name, spec.input_name(input_index), result.slice_stats
            )
            h2p_ips.update(report.union_h2p_ips)
            if not classes:
                analysis = analyze_program(spec.build(input_index))
                classes = branch_class_by_ip(list(analysis.branches))
        mismatches = []
        for ip in sorted(h2p_ips):
            entry = classes.get(ip)
            if entry is None:
                mismatches.append(f"H2P ip 0x{ip:x} has no static classification")
            elif entry[1] is not BranchClass.DATA:
                mismatches.append(
                    f"H2P ip 0x{ip:x} (block {entry[0]}) classified "
                    f"{entry[1].value}, expected data"
                )
        out.append(
            WorkloadCrossCheck(
                benchmark=spec.name,
                category="specint",
                dynamic_ips=len(h2p_ips),
                agreeing=len(h2p_ips) - len(mismatches),
                mismatches=tuple(mismatches),
            )
        )
    return out


def crosscheck_lcf_populations(lab: Lab) -> List[WorkloadCrossCheck]:
    """Check dynamic branch populations are subsets of the static CFG's."""
    out: List[WorkloadCrossCheck] = []
    for spec in LCF_WORKLOADS:
        input_index = lab.inputs_for(spec.name)[0]
        result = lab.simulate(spec.name, input_index, _SCREEN_PREDICTOR)
        dynamic_ips = set(result.stats.ips())
        analysis = analyze_program(spec.build(input_index))
        static_ips = {p.ip for p in analysis.branches}
        missing = sorted(dynamic_ips - static_ips)
        mismatches = tuple(
            f"dynamic branch ip 0x{ip:x} missing from the static CFG"
            for ip in missing[:5]
        )
        out.append(
            WorkloadCrossCheck(
                benchmark=spec.name,
                category="lcf",
                dynamic_ips=len(dynamic_ips),
                agreeing=len(dynamic_ips) - len(missing),
                mismatches=mismatches,
            )
        )
    return out


def compute_staticcheck_report(lab: Optional[Lab] = None) -> StaticCheckReport:
    """Lint every registered workload, then cross-check against dynamics."""
    lab = lab or default_lab()
    lint = lint_registry()
    checks = crosscheck_specint_h2ps(lab) + crosscheck_lcf_populations(lab)
    return StaticCheckReport(lint=lint, checks=tuple(checks))
