"""Cross-validation: static predictability verdicts vs. dynamic behaviour.

The static predictability engine (:mod:`repro.staticcheck.predictability`)
assigns every conditional branch a verdict without executing anything.
This experiment closes the loop against the dynamic quick-tier data the
paper's methodology produces:

* each branch IP observed under TAGE-SC-L 8KB gets a **dynamic label** —
  ``H2P`` (survives the Sec. III-A screen), ``RARE`` (never reaches the
  screen's execution floor in any slice), ``EASY`` (accuracy >= 99%) or
  ``MED`` (everything else);
* each static verdict class has an **expected dynamic label set**:
  ``CONST``/``BIASED`` branches should be ``EASY``; ``LOOP_EXIT`` and
  ``CORRELATED`` branches should at least not be H2Ps; ``H2P_CANDIDATE``
  branches should be dynamic H2Ps; statically ``RARE`` branches should be
  dynamically rare or never observed at all.

Precision is reported over *tested* branches only (observed with at least
``H2P_MIN_EXECUTIONS`` executions in some slice): a statically-easy branch
that dynamics never exercised is evidence of nothing.  Recall of the
``H2P_CANDIDATE`` class against the dynamic H2P set is the CI-gated
headline number — on the SPECint suite only.  The LCF suite screens from
a single slice with no predictor warm-up, so counted-loop tails surface
as cold-start H2Ps there; that artifact is reported separately and
documented in ``docs/static-analysis.md``, not gated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro import obs
from repro.analysis.h2p import screen_workload
from repro.config import H2P_MIN_EXECUTIONS
from repro.experiments.lab import Lab, default_lab
from repro.staticcheck.engine import analyze_program
from repro.staticcheck.predictability import StaticPredictability, Verdict
from repro.workloads import LCF_WORKLOADS, SPECINT_WORKLOADS
from repro.workloads.base import WorkloadSpec, build_cached

_SCREEN_PREDICTOR = "tage-sc-l-8kb"

#: Minimum SPECint-aggregate H2P-candidate recall the CI gate accepts.
H2P_RECALL_GATE = 0.8

#: Dynamic labels.
H2P, RARE, EASY, MED = "h2p", "rare", "easy", "med"

#: Dynamic labels that count as a match, per static verdict class.
EXPECTED_LABELS: Dict[Verdict, Tuple[str, ...]] = {
    Verdict.CONST: (EASY,),
    Verdict.BIASED: (EASY,),
    Verdict.LOOP_EXIT: (EASY, MED),
    Verdict.CORRELATED: (EASY, MED),
    Verdict.H2P_CANDIDATE: (H2P,),
    Verdict.RARE: (RARE,),
}


@dataclass(frozen=True)
class ClassTally:
    """Agreement counts for one verdict class (possibly aggregated)."""

    tested: int
    matching: int

    @property
    def precision(self) -> float:
        return self.matching / self.tested if self.tested else 1.0


@dataclass(frozen=True)
class WorkloadValidation:
    """Static-vs-dynamic agreement for one workload."""

    benchmark: str
    category: str
    observed_ips: int
    tallies: Dict[Verdict, ClassTally]
    h2p_found: int  # dynamic H2P IPs with an H2P_CANDIDATE verdict
    h2p_total: int  # all dynamic H2P IPs
    missed_h2ps: Tuple[str, ...]  # block labels of the recall misses

    @property
    def recall(self) -> float:
        return self.h2p_found / self.h2p_total if self.h2p_total else 1.0


def _dynamic_labels(
    lab: Lab, spec: WorkloadSpec, input_indices: List[int]
) -> Tuple[Dict[int, str], Set[int]]:
    """Aggregate dynamic labels by branch IP over the given inputs.

    Returns ``(label by ip, tested ips)`` where a *tested* IP reached the
    H2P screen's execution floor in at least one slice.
    """
    max_exec: Dict[int, int] = {}
    executions: Dict[int, int] = {}
    mispredictions: Dict[int, int] = {}
    h2p_ips: Set[int] = set()
    for input_index in input_indices:
        result = lab.simulate(spec.name, input_index, _SCREEN_PREDICTOR)
        report = screen_workload(
            spec.name, spec.input_name(input_index), result.slice_stats
        )
        h2p_ips.update(report.union_h2p_ips)
        for slice_stats in result.slice_stats:
            for ip, counts in slice_stats.items():
                max_exec[ip] = max(max_exec.get(ip, 0), counts.executions)
                executions[ip] = executions.get(ip, 0) + counts.executions
                mispredictions[ip] = (
                    mispredictions.get(ip, 0) + counts.mispredictions
                )
    labels: Dict[int, str] = {}
    tested: Set[int] = set()
    for ip, total in executions.items():
        if ip in h2p_ips:
            labels[ip] = H2P
        elif max_exec[ip] < H2P_MIN_EXECUTIONS:
            labels[ip] = RARE
        elif 1.0 - mispredictions[ip] / total >= 0.99:
            labels[ip] = EASY
        else:
            labels[ip] = MED
        if max_exec[ip] >= H2P_MIN_EXECUTIONS:
            tested.add(ip)
    return labels, tested


def validate_workload(
    lab: Lab, spec: WorkloadSpec, input_indices: List[int]
) -> WorkloadValidation:
    """Cross-validate one workload's static verdicts against dynamics."""
    labels, tested_ips = _dynamic_labels(lab, spec, input_indices)
    analysis = analyze_program(build_cached(spec, input_indices[0]))
    verdict_by_ip: Dict[int, StaticPredictability] = {
        entry.ip: entry for entry in analysis.predictability
    }

    tallies = {verdict: [0, 0] for verdict in Verdict}
    for ip, entry in verdict_by_ip.items():
        label = labels.get(ip)
        if entry.verdict is Verdict.RARE:
            # A statically rare branch is validated by being dynamically
            # rare *or* never observed at all — absence is agreement.
            tallies[Verdict.RARE][0] += 1
            if label is None or label == RARE:
                tallies[Verdict.RARE][1] += 1
            continue
        if ip not in tested_ips:
            continue  # not enough dynamic executions to judge
        tallies[entry.verdict][0] += 1
        if label in EXPECTED_LABELS[entry.verdict]:
            tallies[entry.verdict][1] += 1

    h2p_ips = sorted(ip for ip, label in labels.items() if label == H2P)
    missed = [
        verdict_by_ip[ip].block
        for ip in h2p_ips
        if ip in verdict_by_ip
        and verdict_by_ip[ip].verdict is not Verdict.H2P_CANDIDATE
    ]
    return WorkloadValidation(
        benchmark=spec.name,
        category=spec.category,
        observed_ips=len(labels),
        tallies={
            verdict: ClassTally(tested=t, matching=m)
            for verdict, (t, m) in tallies.items()
        },
        h2p_found=len(h2p_ips) - len(missed),
        h2p_total=len(h2p_ips),
        missed_h2ps=tuple(missed),
    )


def _aggregate(
    rows: List[WorkloadValidation],
) -> Dict[Verdict, ClassTally]:
    out: Dict[Verdict, ClassTally] = {}
    for verdict in Verdict:
        tested = sum(r.tallies[verdict].tested for r in rows)
        matching = sum(r.tallies[verdict].matching for r in rows)
        out[verdict] = ClassTally(tested=tested, matching=matching)
    return out


@dataclass(frozen=True)
class StaticPredReport:
    """The full cross-validation result for the runner."""

    rows: Tuple[WorkloadValidation, ...]

    def _category(self, category: str) -> List[WorkloadValidation]:
        return [r for r in self.rows if r.category == category]

    def category_recall(self, category: str) -> Tuple[int, int]:
        rows = self._category(category)
        return (
            sum(r.h2p_found for r in rows),
            sum(r.h2p_total for r in rows),
        )

    @property
    def specint_recall(self) -> float:
        found, total = self.category_recall("specint")
        return found / total if total else 1.0

    @property
    def ok(self) -> bool:
        return self.specint_recall >= H2P_RECALL_GATE

    def render(self) -> str:
        lines = ["static predictability vs. dynamic H2P screen (active tier):"]
        lines.append(
            f"  {'benchmark':<20} {'cat':<8} {'ips':>5} "
            f"{'H2P recall':>12}  misses"
        )
        for r in self.rows:
            recall = f"{r.h2p_found}/{r.h2p_total}"
            missed = ", ".join(r.missed_h2ps[:3])
            if len(r.missed_h2ps) > 3:
                missed += f", +{len(r.missed_h2ps) - 3} more"
            lines.append(
                f"  {r.benchmark:<20} {r.category:<8} {r.observed_ips:>5} "
                f"{recall:>12}  {missed}"
            )
        lines.append("")
        lines.append("verdict-class precision over dynamically tested branches:")
        for verdict, tally in _aggregate(list(self.rows)).items():
            expected = "/".join(EXPECTED_LABELS[verdict])
            lines.append(
                f"  {verdict.value:<15} {tally.matching:>5}/{tally.tested:<5} "
                f"= {tally.precision:.3f}  (expected: {expected})"
            )
        lines.append("")
        for category in ("specint", "lcf"):
            found, total = self.category_recall(category)
            recall = found / total if total else 1.0
            note = ""
            if category == "specint":
                status = "ok" if recall >= H2P_RECALL_GATE else "BELOW GATE"
                note = f"  [gate >= {H2P_RECALL_GATE}: {status}]"
            else:
                note = "  [not gated: single-slice cold-start artifact]"
            lines.append(
                f"H2P-candidate recall, {category}: {found}/{total} "
                f"= {recall:.3f}{note}"
            )
        return "\n".join(lines)


def compute_staticpred_report(lab: Optional[Lab] = None) -> StaticPredReport:
    """Validate every registered workload's verdicts against dynamics."""
    lab = lab or default_lab()
    rows: List[WorkloadValidation] = []
    with obs.span("staticpred", workloads=len(SPECINT_WORKLOADS) + len(LCF_WORKLOADS)):
        for spec in SPECINT_WORKLOADS:
            rows.append(
                validate_workload(lab, spec, list(lab.inputs_for(spec.name)))
            )
        for spec in LCF_WORKLOADS:
            rows.append(
                validate_workload(lab, spec, [lab.inputs_for(spec.name)[0]])
            )
    return StaticPredReport(rows=tuple(rows))
