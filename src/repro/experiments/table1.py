"""Table I: SPECint summary statistics under TAGE-SC-L 8KB.

Per benchmark: average SimPoint phase count, static branch counts (total and
median per slice), aggregate accuracy with and without H2Ps, input count,
H2P recurrence across inputs, per-input and per-slice H2P counts, average
dynamic executions per H2P per slice, and the share of mispredictions due
to H2Ps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.analysis.h2p import (
    CrossInputH2pSummary,
    screen_workload,
    summarize_across_inputs,
)
from repro.experiments.lab import Lab, default_lab, workload_spec
from repro.experiments.reporting import format_table
from repro.workloads import SPECINT_WORKLOADS


@dataclass(frozen=True)
class Table1Row:
    benchmark: str
    avg_phases: float
    total_static_branches: int
    median_static_per_slice: float
    avg_accuracy: float
    avg_accuracy_excl_h2ps: float
    num_inputs: int
    h2ps_total: int
    h2ps_in_3plus_inputs: int
    h2ps_per_input: float
    h2ps_per_slice: float
    avg_dyn_execs_per_h2p_per_slice: float
    mispred_share_from_h2ps: float


@dataclass(frozen=True)
class Table1:
    rows: Tuple[Table1Row, ...]

    @property
    def mean_accuracy(self) -> float:
        return float(np.mean([r.avg_accuracy for r in self.rows]))

    @property
    def mean_mispred_share(self) -> float:
        return float(np.mean([r.mispred_share_from_h2ps for r in self.rows]))

    @property
    def mean_h2ps_per_slice(self) -> float:
        return float(np.mean([r.h2ps_per_slice for r in self.rows]))

    def row(self, benchmark: str) -> Table1Row:
        for r in self.rows:
            if r.benchmark == benchmark:
                return r
        raise KeyError(benchmark)

    def render(self) -> str:
        headers = [
            "benchmark", "phases", "static", "med/slice", "acc", "acc-excl",
            "inputs", "H2Ps", "3+in", "per-input", "per-slice", "execs/H2P",
            "%mis-H2P",
        ]
        rows = [
            (
                r.benchmark, round(r.avg_phases, 1), r.total_static_branches,
                round(r.median_static_per_slice, 1), r.avg_accuracy,
                r.avg_accuracy_excl_h2ps, r.num_inputs, r.h2ps_total,
                r.h2ps_in_3plus_inputs, round(r.h2ps_per_input, 1),
                round(r.h2ps_per_slice, 1),
                int(r.avg_dyn_execs_per_h2p_per_slice),
                round(100 * r.mispred_share_from_h2ps, 1),
            )
            for r in self.rows
        ]
        return format_table(headers, rows, title="Table I (TAGE-SC-L 8KB, scaled)")


def compute_table1(
    lab: Optional[Lab] = None, with_phases: bool = True
) -> Table1:
    """Build Table I from the SPECint workloads under the active tier."""
    lab = lab or default_lab()
    return Table1(
        rows=tuple(
            compute_table1_row(lab, spec.name, with_phases=with_phases)
            for spec in SPECINT_WORKLOADS
        )
    )


def compute_table1_row(
    lab: Lab, benchmark: str, with_phases: bool = True
) -> Table1Row:
    """One benchmark's Table I row (all its inputs under the active tier).

    Factored out of :func:`compute_table1` so a single cell can be served
    (e.g. by the ``repro.service`` daemon) without computing the whole
    table; results are bit-identical to the corresponding full-table row.
    """
    spec = workload_spec(benchmark)
    inputs = lab.inputs_for(spec.name)
    reports = []
    accs, accs_excl = [], []
    static_total: set = set()
    static_per_slice: List[int] = []
    phase_counts: List[float] = []
    for input_index in inputs:
        result = lab.simulate(spec.name, input_index, "tage-sc-l-8kb")
        report = screen_workload(
            spec.name, spec.input_name(input_index), result.slice_stats
        )
        reports.append(report)
        accs.append(result.stats.accuracy)
        accs_excl.append(
            result.stats.accuracy_excluding(report.union_h2p_ips)
        )
        static_total.update(result.stats.ips())
        static_per_slice.extend(len(s) for s in result.slice_stats)
        if with_phases:
            phase_counts.append(lab.phase_count(spec.name, input_index))
    summary: CrossInputH2pSummary = summarize_across_inputs(spec.name, reports)
    return Table1Row(
        benchmark=spec.name,
        avg_phases=float(np.mean(phase_counts)) if phase_counts else 1.0,
        total_static_branches=len(static_total),
        median_static_per_slice=float(np.median(static_per_slice)),
        avg_accuracy=float(np.mean(accs)),
        avg_accuracy_excl_h2ps=float(np.mean(accs_excl)),
        num_inputs=len(inputs),
        h2ps_total=summary.total_h2ps,
        h2ps_in_3plus_inputs=summary.recurring_3plus,
        h2ps_per_input=summary.mean_per_input,
        h2ps_per_slice=summary.mean_per_slice,
        avg_dyn_execs_per_h2p_per_slice=float(
            np.mean([r.mean_h2p_executions_per_slice for r in reports])
        ),
        mispred_share_from_h2ps=float(
            np.mean([r.mean_misprediction_share for r in reports])
        ),
    )
