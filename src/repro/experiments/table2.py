"""Table II: large-code-footprint application summary under TAGE-SC-L 8KB.

Per application: static branch IPs, average dynamic executions per static
branch, average per-branch accuracy (unweighted mean over static branches,
as in the paper), and the H2P count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.analysis.h2p import screen_workload
from repro.experiments.lab import Lab, default_lab
from repro.experiments.reporting import format_table
from repro.workloads import LCF_WORKLOADS


@dataclass(frozen=True)
class Table2Row:
    application: str
    static_branch_ips: int
    avg_dyn_execs_per_branch: float
    avg_accuracy_per_branch: float
    aggregate_accuracy: float
    num_h2ps: float


@dataclass(frozen=True)
class Table2:
    rows: Tuple[Table2Row, ...]

    @property
    def mean_static_branches(self) -> float:
        return float(np.mean([r.static_branch_ips for r in self.rows]))

    @property
    def mean_accuracy(self) -> float:
        return float(np.mean([r.avg_accuracy_per_branch for r in self.rows]))

    @property
    def mean_execs_per_branch(self) -> float:
        return float(np.mean([r.avg_dyn_execs_per_branch for r in self.rows]))

    def row(self, application: str) -> Table2Row:
        for r in self.rows:
            if r.application == application:
                return r
        raise KeyError(application)

    def render(self) -> str:
        headers = [
            "application", "static IPs", "execs/branch", "acc/branch",
            "agg acc", "H2Ps",
        ]
        rows = [
            (
                r.application, r.static_branch_ips,
                round(r.avg_dyn_execs_per_branch, 1),
                r.avg_accuracy_per_branch, r.aggregate_accuracy,
                round(r.num_h2ps, 1),
            )
            for r in self.rows
        ]
        return format_table(headers, rows, title="Table II (TAGE-SC-L 8KB, scaled)")


def compute_table2(lab: Optional[Lab] = None) -> Table2:
    lab = lab or default_lab()
    rows: List[Table2Row] = []
    for spec in LCF_WORKLOADS:
        result = lab.simulate(spec.name, 0, "tage-sc-l-8kb")
        report = screen_workload(spec.name, "input0", result.slice_stats)
        stats = result.stats
        rows.append(
            Table2Row(
                application=spec.name,
                static_branch_ips=len(stats),
                avg_dyn_execs_per_branch=stats.mean_executions_per_branch(),
                avg_accuracy_per_branch=stats.mean_accuracy_per_branch(),
                aggregate_accuracy=stats.accuracy,
                num_h2ps=report.mean_h2ps_per_slice,
            )
        )
    return Table2(rows=tuple(rows))
