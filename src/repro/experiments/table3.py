"""Table III & Fig. 6: dependency-branch history positions per heavy hitter.

For each SPECint benchmark: identify the top H2P heavy hitter (by dynamic
executions), re-execute the workload with dataflow taint tracking, and
profile the history positions of its ground-truth dependency branches.  The
same profiles supply Fig. 6's per-benchmark position distributions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.dependency import (
    DependencyRow,
    PositionSpreadSummary,
    dependency_row,
    position_spread,
)
from repro.analysis.h2p import screen_workload
from repro.analysis.heavy_hitters import rank_heavy_hitters
from repro.experiments.config import DEPENDENCY_WINDOW_INSTRUCTIONS
from repro.experiments.lab import Lab, default_lab
from repro.experiments.reporting import format_table
from repro.isa.dataflow import DependencyProfile, top_dependency_positions
from repro.workloads import SPECINT_WORKLOADS, WORKLOADS_BY_NAME, execute_workload

#: Instructions of taint-tracked execution per benchmark (taint tracking is
#: several times slower than plain execution, so this is kept to one slice).
DATAFLOW_INSTRUCTIONS = 300_000


@dataclass(frozen=True)
class Table3Entry:
    row: DependencyRow
    spread: PositionSpreadSummary
    profile: DependencyProfile


@dataclass(frozen=True)
class Table3:
    entries: Tuple[Table3Entry, ...]

    def entry(self, benchmark: str) -> Table3Entry:
        for e in self.entries:
            if e.row.benchmark == benchmark:
                return e
        raise KeyError(benchmark)

    def render(self) -> str:
        headers = [
            "benchmark", "dep branches", "min hist pos", "max hist pos",
            "mean positions/dep", "execs analyzed",
        ]
        rows = [
            (
                e.row.benchmark, e.row.num_dependency_branches,
                e.row.min_history_position, e.row.max_history_position,
                round(e.spread.mean_positions_per_dependency, 1),
                e.row.executions_analyzed,
            )
            for e in self.entries
        ]
        return format_table(headers, rows, title="Table III (top heavy hitter per benchmark)")

    def fig6_series(self, top_n: int = 30) -> Dict[str, List[Tuple[int, int, int]]]:
        """Fig. 6 panels: per benchmark, (dep_ip, position, count) points."""
        return {
            e.row.benchmark: top_dependency_positions(e.profile, top_n)
            for e in self.entries
        }


def compute_table3(
    lab: Optional[Lab] = None,
    benchmarks: Optional[Sequence[str]] = None,
    window_instructions: int = DEPENDENCY_WINDOW_INSTRUCTIONS,
) -> Table3:
    lab = lab or default_lab()
    names = list(benchmarks) if benchmarks else [w.name for w in SPECINT_WORKLOADS]
    entries: List[Table3Entry] = []
    for name in names:
        result = lab.simulate(name, 0, "tage-sc-l-8kb")
        report = screen_workload(name, "input0", result.slice_stats)
        h2p_ips = report.union_h2p_ips
        if not h2p_ips:
            continue
        hitters = rank_heavy_hitters(result.stats, h2p_ips)
        exec_result = execute_workload(
            WORKLOADS_BY_NAME[name], 0,
            instructions=DATAFLOW_INSTRUCTIONS,
            track_dataflow=True,
        )
        # The paper profiles the top heavy hitter.  Our screened set also
        # contains helper branches whose conditions are pure loop counters
        # (no input-data operands, hence no dependency branches); walk down
        # the ranking to the heaviest hitter with a data-dependent condition.
        row = profile = None
        for hitter in hitters:
            row, profile = dependency_row(
                name, exec_result.cond_branch_events, hitter.ip, window_instructions
            )
            if profile.num_dependency_branches > 0:
                break
        if row is None:
            continue
        entries.append(
            Table3Entry(row=row, spread=position_spread(profile), profile=profile)
        )
    return Table3(entries=tuple(entries))
