"""Operand-dependency analysis over executed branch streams.

Implements the paper's Sec. IV-A methodology: for each dynamic execution of
an H2P branch, examine the prior conditional branches within a fixed
instruction window and identify *dependency branches* — branches whose
condition reads a data value also read when computing the H2P's condition.
The executor's taint tracking supplies ground-truth value origins, so the
"operand dependency graph over the prior N instructions" reduces to taint-set
intersection.

The product is, per H2P, a distribution over *history positions* (how many
conditional branches back the dependency branch appeared), which is exactly
what the paper's Table III and Fig. 6 report.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.isa.executor import ConditionBranchEvent


@dataclass
class DependencyProfile:
    """History-position statistics of dependency branches for one H2P.

    ``positions[(dep_ip, position)]`` counts how often the dependency branch
    at ``dep_ip`` appeared ``position`` conditional branches before the H2P
    (position 1 = immediately preceding branch).
    """

    h2p_ip: int
    executions_analyzed: int = 0
    positions: Counter = field(default_factory=Counter)

    @property
    def dependency_branch_ips(self) -> List[int]:
        return sorted({ip for ip, _ in self.positions})

    @property
    def num_dependency_branches(self) -> int:
        return len({ip for ip, _ in self.positions})

    @property
    def min_history_position(self) -> Optional[int]:
        if not self.positions:
            return None
        return min(pos for _, pos in self.positions)

    @property
    def max_history_position(self) -> Optional[int]:
        if not self.positions:
            return None
        return max(pos for _, pos in self.positions)

    def positions_for(self, dep_ip: int) -> Counter:
        """Position histogram for a single dependency branch."""
        out: Counter = Counter()
        for (ip, pos), count in self.positions.items():
            if ip == dep_ip:
                out[pos] += count
        return out

    def position_spread(self, dep_ip: int) -> int:
        """Number of distinct history positions a dependency branch occupies.

        The paper's key observation is that this is large: "any given
        dependency branch appears in many different positions".
        """
        return len(self.positions_for(dep_ip))


def analyze_dependencies(
    events: Sequence[ConditionBranchEvent],
    h2p_ip: int,
    window_instructions: int,
    max_positions: Optional[int] = None,
) -> DependencyProfile:
    """Build the dependency profile of ``h2p_ip`` from a taint-tracked run.

    Args:
        events: conditional-branch events from an :class:`Executor` run with
            ``track_dataflow=True`` (in execution order).
        h2p_ip: the H2P branch to profile.
        window_instructions: dependency window in retired instructions (the
            paper uses 5,000; we default to the scaled value at call sites).
        max_positions: optionally cap how far back (in branches) to scan.
    """
    if window_instructions <= 0:
        raise ValueError("window_instructions must be positive")
    profile = DependencyProfile(h2p_ip=h2p_ip)
    n = len(events)
    for i in range(n):
        ev = events[i]
        if ev.ip != h2p_ip:
            continue
        profile.executions_analyzed += 1
        if not ev.taint:
            continue
        taint = ev.taint
        lo_instr = ev.instr_index - window_instructions
        position = 0
        j = i - 1
        while j >= 0:
            prior = events[j]
            if prior.instr_index < lo_instr:
                break
            position += 1
            if max_positions is not None and position > max_positions:
                break
            if prior.ip != h2p_ip and not taint.isdisjoint(prior.taint):
                profile.positions[(prior.ip, position)] += 1
            j -= 1
    return profile


def top_dependency_positions(
    profile: DependencyProfile, top_n: int = 20
) -> List[Tuple[int, int, int]]:
    """The ``top_n`` most frequent (dep_ip, position, count) triples —
    the data behind each panel of the paper's Fig. 6."""
    return [
        (ip, pos, count)
        for (ip, pos), count in profile.positions.most_common(top_n)
    ]
