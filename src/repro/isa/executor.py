"""Trace-producing interpreter for the mini-ISA.

The executor runs a :class:`~repro.isa.program.Program` for a fixed number of
retired instructions and records the dynamic branch stream.  Optional
instrumentation (each off by default because it costs time):

* **dataflow taints** — per-value origin sets enabling the paper's
  dependency-branch analysis (Sec. IV-A);
* **register snapshots** — architectural register values at each dynamic
  execution of chosen branch IPs (Fig. 10);
* **basic-block vectors** — per-interval block execution counts for
  SimPoint-style phase clustering (Table I).

Programs are compiled to tuple bytecode once per run; the hot loop is a
plain ``while`` with integer dispatch, which keeps pure-Python execution
around a million instructions per second.
"""

from __future__ import annotations

import logging
import random
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.core.types import BranchTrace
from repro.isa.instructions import (
    Alu,
    AluImm,
    ArrayBase,
    Br,
    Call,
    Halt,
    Imm,
    Jmp,
    Load,
    Nop,
    Rand,
    Ret,
    Store,
    Switch,
    WORD_MASK,
    NUM_REGISTERS,
)
from repro.isa.program import Program

# Compiled opcodes (straight-line instructions).
_OP_IMM = 0
_OP_ALU = 1
_OP_ALUI = 2
_OP_LOAD = 3
_OP_STORE = 4
_OP_RAND = 5
_OP_NOP = 6

# Compiled terminator opcodes.
_T_BR = 10
_T_JMP = 11
_T_CALL = 12
_T_RET = 13
_T_SWITCH = 14
_T_HALT = 15

_MAX_TAINT = 16
_MAX_CALL_DEPTH = 256

_EMPTY_TAINT: FrozenSet[int] = frozenset()

_log = obs.get_logger("exec")


@dataclass
class ConditionBranchEvent:
    """Dataflow record for one dynamic conditional branch (tracking mode)."""

    seq: int  # index among conditional branches
    instr_index: int
    ip: int
    taken: bool
    taint: FrozenSet[int]


@dataclass
class ExecutionResult:
    """Everything a single execution run produced."""

    trace: BranchTrace
    instr_count: int
    cond_branch_events: Optional[List[ConditionBranchEvent]] = None
    register_snapshots: Optional[Dict[int, List[Tuple[int, ...]]]] = None
    bbvs: Optional[np.ndarray] = None  # shape (intervals, num_blocks)


class Executor:
    """Interprets a program, producing a :class:`BranchTrace`.

    Args:
        program: finalized program to run.
        seed: seed for the input-data (:class:`Rand`) stream; different seeds
            model different application inputs.
        track_dataflow: record per-branch condition taints.
        snapshot_ips: conditional-branch IPs whose register context to
            snapshot at each dynamic execution.
        tracked_registers: registers captured in snapshots (default: first
            18, matching the paper's Fig. 10 methodology).
        bbv_interval: if set, collect one basic-block vector per this many
            retired instructions.
    """

    def __init__(
        self,
        program: Program,
        seed: int = 0,
        track_dataflow: bool = False,
        snapshot_ips: Optional[Sequence[int]] = None,
        tracked_registers: Optional[Sequence[int]] = None,
        bbv_interval: Optional[int] = None,
    ) -> None:
        self.program = program
        self.seed = seed
        self.track_dataflow = track_dataflow
        self.snapshot_ips = frozenset(snapshot_ips or ())
        self.tracked_registers = tuple(tracked_registers or range(18))
        if bbv_interval is not None and bbv_interval <= 0:
            raise ValueError("bbv_interval must be positive")
        self.bbv_interval = bbv_interval
        self._compiled = _compile(program)

    def run(self, max_instructions: int) -> ExecutionResult:
        """Execute until ``max_instructions`` have retired.

        The program restarts from its entry block whenever it halts, so any
        instruction budget can be filled (modelling repeated invocations of
        the same binary, which the paper's offline-training discussion makes
        an explicit part of the deployment scenario).
        """
        if max_instructions <= 0:
            raise ValueError("max_instructions must be positive")

        t_start = perf_counter()
        prog = self.program
        compiled = self._compiled
        entry_idx = prog.block_index[prog.entry]

        regs = [0] * NUM_REGISTERS
        mem = list(prog.initial_memory)
        mem_extra: Dict[int, int] = {}
        mem_size = len(mem)
        rng = random.Random(self.seed)
        call_stack: List[int] = []

        tracking = self.track_dataflow
        reg_taint: List[FrozenSet[int]] = [_EMPTY_TAINT] * NUM_REGISTERS
        mem_taint: Dict[int, FrozenSet[int]] = {}
        rand_origin = -1
        cond_events: Optional[List[ConditionBranchEvent]] = [] if tracking else None
        cond_seq = 0

        snap_ips = self.snapshot_ips
        snapshots: Optional[Dict[int, List[Tuple[int, ...]]]] = (
            {ip: [] for ip in snap_ips} if snap_ips else None
        )
        tracked = self.tracked_registers

        bbv_interval = self.bbv_interval
        bbvs: Optional[List[np.ndarray]] = [] if bbv_interval else None
        bbv_counts = np.zeros(len(prog.blocks), dtype=np.int64) if bbv_interval else None
        next_bbv_boundary = bbv_interval if bbv_interval else None

        out_ips: List[int] = []
        out_taken: List[int] = []
        out_targets: List[int] = []
        out_kinds: List[int] = []
        out_instr: List[int] = []

        icount = 0
        block_idx = entry_idx

        while icount < max_instructions:
            code, term, block_id = compiled[block_idx]

            if bbv_counts is not None:
                bbv_counts[block_id] += 1

            for ins in code:
                op = ins[0]
                if op == _OP_ALUI:
                    _, aop, dst, src, imm = ins
                    a = regs[src]
                    if aop == 0:
                        regs[dst] = (a + imm) & WORD_MASK
                    elif aop == 1:
                        regs[dst] = (a - imm) & WORD_MASK
                    elif aop == 2:
                        regs[dst] = a ^ imm
                    elif aop == 3:
                        regs[dst] = a & imm
                    elif aop == 4:
                        regs[dst] = a | imm
                    elif aop == 5:
                        regs[dst] = (a * imm) & WORD_MASK
                    elif aop == 6:
                        regs[dst] = (a << imm) & WORD_MASK
                    elif aop == 7:
                        regs[dst] = a >> imm
                    elif aop == 8:
                        regs[dst] = a % imm if imm else 0
                    elif aop == 9:
                        regs[dst] = a if a < imm else imm
                    else:
                        regs[dst] = a if a > imm else imm
                    if tracking:
                        reg_taint[dst] = reg_taint[src]
                elif op == _OP_ALU:
                    _, aop, dst, s1, s2 = ins
                    a = regs[s1]
                    b = regs[s2]
                    if aop == 0:
                        regs[dst] = (a + b) & WORD_MASK
                    elif aop == 1:
                        regs[dst] = (a - b) & WORD_MASK
                    elif aop == 2:
                        regs[dst] = a ^ b
                    elif aop == 3:
                        regs[dst] = a & b
                    elif aop == 4:
                        regs[dst] = a | b
                    elif aop == 5:
                        regs[dst] = (a * b) & WORD_MASK
                    elif aop == 6:
                        regs[dst] = (a << (b & 31)) & WORD_MASK
                    elif aop == 7:
                        regs[dst] = a >> (b & 31)
                    elif aop == 8:
                        regs[dst] = a % b if b else 0
                    elif aop == 9:
                        regs[dst] = a if a < b else b
                    else:
                        regs[dst] = a if a > b else b
                    if tracking:
                        t = reg_taint[s1] | reg_taint[s2]
                        if len(t) > _MAX_TAINT:
                            t = frozenset(sorted(t)[:_MAX_TAINT])
                        reg_taint[dst] = t
                elif op == _OP_LOAD:
                    _, dst, base, offset = ins
                    addr = (regs[base] + offset) & WORD_MASK
                    regs[dst] = (
                        mem[addr] if addr < mem_size else mem_extra.get(addr, 0)
                    )
                    if tracking:
                        t = mem_taint.get(addr)
                        reg_taint[dst] = t if t is not None else frozenset((addr,))
                elif op == _OP_STORE:
                    _, src, base, offset = ins
                    addr = (regs[base] + offset) & WORD_MASK
                    if addr < mem_size:
                        mem[addr] = regs[src]
                    else:
                        mem_extra[addr] = regs[src]
                    if tracking:
                        mem_taint[addr] = reg_taint[src]
                elif op == _OP_IMM:
                    _, dst, value = ins
                    regs[dst] = value
                    if tracking:
                        reg_taint[dst] = _EMPTY_TAINT
                elif op == _OP_RAND:
                    _, dst, lo, hi = ins
                    regs[dst] = rng.randrange(lo, hi)
                    if tracking:
                        rand_origin -= 1
                        reg_taint[dst] = frozenset((rand_origin,))
                # _OP_NOP: nothing to do

            icount += len(code) + 1
            term_op = term[0]

            if term_op == _T_BR:
                _, cond, s1, s2, t_idx, nt_idx, ip, t_ip, nt_ip = term
                a = regs[s1]
                b = regs[s2]
                if cond == 0:
                    taken = a == b
                elif cond == 1:
                    taken = a != b
                elif cond == 2:
                    taken = a < b
                elif cond == 3:
                    taken = a >= b
                elif cond == 4:
                    taken = a <= b
                else:
                    taken = a > b
                out_ips.append(ip)
                out_taken.append(1 if taken else 0)
                out_targets.append(t_ip if taken else nt_ip)
                out_kinds.append(0)  # BranchKind.CONDITIONAL
                out_instr.append(icount - 1)
                if tracking:
                    t = reg_taint[s1] | reg_taint[s2]
                    if len(t) > _MAX_TAINT:
                        t = frozenset(sorted(t)[:_MAX_TAINT])
                    cond_events.append(
                        ConditionBranchEvent(cond_seq, icount - 1, ip, taken, t)
                    )
                    cond_seq += 1
                if snapshots is not None and ip in snap_ips:
                    snapshots[ip].append(tuple(regs[r] for r in tracked))
                block_idx = t_idx if taken else nt_idx
            elif term_op == _T_JMP:
                _, t_idx, ip, t_ip = term
                out_ips.append(ip)
                out_taken.append(1)
                out_targets.append(t_ip)
                out_kinds.append(1)  # UNCONDITIONAL
                out_instr.append(icount - 1)
                block_idx = t_idx
            elif term_op == _T_CALL:
                _, t_idx, ret_idx, ip, t_ip = term
                out_ips.append(ip)
                out_taken.append(1)
                out_targets.append(t_ip)
                out_kinds.append(2)  # CALL
                out_instr.append(icount - 1)
                if len(call_stack) < _MAX_CALL_DEPTH:
                    call_stack.append(ret_idx)
                block_idx = t_idx
            elif term_op == _T_RET:
                _, ip = term
                out_ips.append(ip)
                out_taken.append(1)
                ret_idx = call_stack.pop() if call_stack else entry_idx
                out_targets.append(
                    self.program.block_base_ip[self.program.blocks[ret_idx].label]
                )
                out_kinds.append(3)  # RETURN
                out_instr.append(icount - 1)
                block_idx = ret_idx
            elif term_op == _T_SWITCH:
                _, idx_reg, target_idxs, ip = term
                sel = regs[idx_reg] % len(target_idxs)
                block_idx = target_idxs[sel]
                out_ips.append(ip)
                out_taken.append(1)
                out_targets.append(self.program.block_base_ip[self.program.blocks[block_idx].label])
                out_kinds.append(4)  # INDIRECT
                out_instr.append(icount - 1)
            else:  # _T_HALT: restart (next invocation of the binary)
                block_idx = entry_idx
                call_stack.clear()

            if next_bbv_boundary is not None and icount >= next_bbv_boundary:
                bbvs.append(bbv_counts.copy())
                bbv_counts[:] = 0
                next_bbv_boundary += bbv_interval

        elapsed = perf_counter() - t_start
        if obs.is_enabled():
            obs.observe_timer("exec.run", elapsed)
            obs.counter("exec.instructions", icount)
            obs.counter("exec.branches", len(out_ips))
            if elapsed > 0:
                obs.gauge("exec.instructions_per_sec", icount / elapsed)
        if _log.isEnabledFor(logging.INFO):
            _log.info(
                "executed %d instructions (%d branches) in %s (%s)",
                icount,
                len(out_ips),
                obs.format_duration(elapsed),
                obs.format_rate(icount, elapsed, " instr/s"),
            )

        trace = BranchTrace(
            ips=out_ips,
            taken=out_taken,
            targets=out_targets,
            kinds=out_kinds,
            instr_indices=out_instr,
            instr_count=icount,
        )
        bbv_array = None
        if bbvs is not None:
            if bbv_counts is not None and bbv_counts.any():
                bbvs.append(bbv_counts.copy())
            bbv_array = (
                np.stack(bbvs) if bbvs else np.zeros((0, len(prog.blocks)), dtype=np.int64)
            )
        return ExecutionResult(
            trace=trace,
            instr_count=icount,
            cond_branch_events=cond_events,
            register_snapshots=snapshots,
            bbvs=bbv_array,
        )


def _compile(program: Program) -> List[Tuple[Tuple[tuple, ...], tuple, int]]:
    """Lower a program to tuple bytecode with direct block indices."""
    index = program.block_index
    compiled: List[Tuple[Tuple[tuple, ...], tuple, int]] = []
    for block in program.blocks:
        code: List[tuple] = []
        for ins in block.instructions:
            if isinstance(ins, Imm):
                code.append((_OP_IMM, ins.dst, ins.value & WORD_MASK))
            elif isinstance(ins, Alu):
                code.append((_OP_ALU, int(ins.op), ins.dst, ins.src1, ins.src2))
            elif isinstance(ins, AluImm):
                code.append((_OP_ALUI, int(ins.op), ins.dst, ins.src, ins.imm & WORD_MASK))
            elif isinstance(ins, Load):
                code.append((_OP_LOAD, ins.dst, ins.base, ins.offset))
            elif isinstance(ins, Store):
                code.append((_OP_STORE, ins.src, ins.base, ins.offset))
            elif isinstance(ins, Rand):
                code.append((_OP_RAND, ins.dst, ins.lo, ins.hi))
            elif isinstance(ins, ArrayBase):
                arr = program.arrays.get(ins.name)
                if arr is None:
                    raise ValueError(f"unknown data array {ins.name!r}")
                code.append((_OP_IMM, ins.dst, (arr.base + ins.offset) & WORD_MASK))
            elif isinstance(ins, Nop):
                code.append((_OP_NOP,))
            else:
                raise TypeError(f"unknown instruction {ins!r}")

        term = block.terminator
        ip = program.terminator_ip(block.label)
        ct: tuple
        if isinstance(term, Br):
            ct = (
                _T_BR,
                int(term.cond),
                term.src1,
                term.src2,
                index[term.taken],
                index[term.not_taken],
                ip,
                program.block_base_ip[term.taken],
                program.block_base_ip[term.not_taken],
            )
        elif isinstance(term, Jmp):
            ct = (_T_JMP, index[term.target], ip, program.block_base_ip[term.target])
        elif isinstance(term, Call):
            ct = (
                _T_CALL,
                index[term.target],
                index[term.ret_to],
                ip,
                program.block_base_ip[term.target],
            )
        elif isinstance(term, Ret):
            ct = (_T_RET, ip)
        elif isinstance(term, Switch):
            ct = (_T_SWITCH, term.index, tuple(index[t] for t in term.targets), ip)
        elif isinstance(term, Halt):
            ct = (_T_HALT, ip)
        else:
            raise TypeError(f"unknown terminator {term!r}")
        compiled.append((tuple(code), ct, index[block.label]))
    return compiled
