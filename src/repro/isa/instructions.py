"""The synthetic mini-ISA.

The paper's analyses need more than an (IP, direction) stream: the
dependency-branch study (Sec. IV-A, Table III, Fig. 6) requires operand
dependency graphs between instructions, and the register-value study
(Fig. 10) requires architectural register state at branch time.  Real SPEC
traces carrying that information are proprietary, so we define a small
register machine whose executor produces all of those signals with ground
truth.

The ISA is deliberately minimal: 32-bit unsigned integer registers, a flat
word-addressed memory, ALU ops, loads/stores, an input-data source
(:class:`Rand`, modelling program input entering registers), and block
terminators (conditional branch, jump, call, return, indirect switch, halt).
Programs are control-flow graphs of :class:`~repro.isa.program.BasicBlock`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple, Union


WORD_MASK = 0xFFFFFFFF
NUM_REGISTERS = 64


class AluOp(enum.IntEnum):
    """Arithmetic/logic operations (all 32-bit unsigned)."""

    ADD = 0
    SUB = 1
    XOR = 2
    AND = 3
    OR = 4
    MUL = 5
    SHL = 6
    SHR = 7
    MOD = 8
    MIN = 9
    MAX = 10


class Cond(enum.IntEnum):
    """Branch comparison conditions (unsigned)."""

    EQ = 0
    NE = 1
    LT = 2
    GE = 3
    LE = 4
    GT = 5


def _check_reg(reg: int, what: str) -> None:
    if not 0 <= reg < NUM_REGISTERS:
        raise ValueError(f"{what} register {reg} out of range 0..{NUM_REGISTERS - 1}")


@dataclass(frozen=True)
class Imm:
    """``dst <- value`` (a compile-time constant; carries no data taint)."""

    dst: int
    value: int

    def __post_init__(self) -> None:
        _check_reg(self.dst, "destination")


@dataclass(frozen=True)
class Alu:
    """``dst <- op(src1, src2)``."""

    op: AluOp
    dst: int
    src1: int
    src2: int

    def __post_init__(self) -> None:
        _check_reg(self.dst, "destination")
        _check_reg(self.src1, "source")
        _check_reg(self.src2, "source")


@dataclass(frozen=True)
class AluImm:
    """``dst <- op(src, imm)``."""

    op: AluOp
    dst: int
    src: int
    imm: int

    def __post_init__(self) -> None:
        _check_reg(self.dst, "destination")
        _check_reg(self.src, "source")


@dataclass(frozen=True)
class Load:
    """``dst <- mem[reg[base] + offset]``."""

    dst: int
    base: int
    offset: int = 0

    def __post_init__(self) -> None:
        _check_reg(self.dst, "destination")
        _check_reg(self.base, "base")


@dataclass(frozen=True)
class Store:
    """``mem[reg[base] + offset] <- reg[src]``."""

    src: int
    base: int
    offset: int = 0

    def __post_init__(self) -> None:
        _check_reg(self.src, "source")
        _check_reg(self.base, "base")


@dataclass(frozen=True)
class Rand:
    """``dst <- uniform integer in [lo, hi)`` drawn from the input stream.

    Models fresh program input (file contents, network data, user input)
    entering a register.  Each draw is an independent dataflow origin, so
    branches conditioned on the same draw are ground-truth dependent.
    """

    dst: int
    lo: int = 0
    hi: int = 2

    def __post_init__(self) -> None:
        _check_reg(self.dst, "destination")
        if self.hi <= self.lo:
            raise ValueError("Rand range must be non-empty")


@dataclass(frozen=True)
class Nop:
    """Consumes one instruction slot (models non-branch filler work)."""


@dataclass(frozen=True)
class ArrayBase:
    """``dst <- base address of the named data array (+ offset)``.

    Resolved when the executor compiles the program, after data layout.
    """

    dst: int
    name: str
    offset: int = 0

    def __post_init__(self) -> None:
        _check_reg(self.dst, "destination")


Instruction = Union[Imm, Alu, AluImm, Load, Store, Rand, Nop, ArrayBase]


@dataclass(frozen=True)
class Br:
    """Conditional two-way terminator: ``if cond(src1, src2) goto taken``."""

    cond: Cond
    src1: int
    src2: int
    taken: str
    not_taken: str

    def __post_init__(self) -> None:
        _check_reg(self.src1, "source")
        _check_reg(self.src2, "source")


@dataclass(frozen=True)
class Jmp:
    """Unconditional jump."""

    target: str


@dataclass(frozen=True)
class Call:
    """Direct call; the return address (the successor block) is pushed."""

    target: str
    ret_to: str


@dataclass(frozen=True)
class Ret:
    """Return to the most recent call site."""


@dataclass(frozen=True)
class Switch:
    """Indirect multi-way branch: ``goto targets[reg[index] % len(targets)]``.

    Models indirect jumps through dispatch tables; the BPU sees these as
    indirect branches (no direction prediction) but they spread execution
    over many cold blocks, which is how the LCF workloads realize their
    rare-branch populations.
    """

    index: int
    targets: Tuple[str, ...]

    def __post_init__(self) -> None:
        _check_reg(self.index, "index")
        if not self.targets:
            raise ValueError("Switch needs at least one target")


@dataclass(frozen=True)
class Halt:
    """Ends the program (the executor restarts from the entry block if more
    instructions are requested, modelling repeated invocations)."""


Terminator = Union[Br, Jmp, Call, Ret, Switch, Halt]
