"""Program representation: control-flow graphs of basic blocks plus a data
segment, and a builder API the workload generators use.

A :class:`Program` is finalized once: every instruction gets a stable
instruction pointer (``block base + 4 * slot``), so that the same synthetic
benchmark traced over different inputs exposes identical static branch IPs —
the property the paper's cross-input H2P analysis (Table I) relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.isa.instructions import (
    Br,
    Call,
    Halt,
    Instruction,
    Jmp,
    Switch,
    Terminator,
)

_IP_STRIDE = 4
_BLOCK_ALIGN = 64


@dataclass
class BasicBlock:
    """A straight-line instruction sequence ending in one terminator."""

    label: str
    instructions: List[Instruction] = field(default_factory=list)
    terminator: Terminator = field(default_factory=Halt)

    @property
    def size(self) -> int:
        """Instruction count including the terminator."""
        return len(self.instructions) + 1


@dataclass(frozen=True)
class DataArray:
    """A named initialized region in the program's data segment."""

    name: str
    base: int
    length: int


class Program:
    """A finalized CFG with assigned IPs and an initial data segment."""

    def __init__(
        self,
        name: str,
        blocks: Sequence[BasicBlock],
        entry: str,
        data: Dict[str, np.ndarray],
    ) -> None:
        if not blocks:
            raise ValueError("a program needs at least one block")
        self.name = name
        self.blocks = list(blocks)
        self.block_index: Dict[str, int] = {}
        for i, block in enumerate(self.blocks):
            if block.label in self.block_index:
                raise ValueError(f"duplicate block label {block.label!r}")
            self.block_index[block.label] = i
        if entry not in self.block_index:
            raise ValueError(f"entry block {entry!r} not defined")
        self.entry = entry
        #: Memoized static-analysis bundle, owned by
        #: ``repro.staticcheck.engine.analyze_program`` (keyed on program
        #: identity: a finalized Program is immutable, so the first analysis
        #: is valid for the instance's whole lifetime).
        self.staticcheck_cache: Optional[object] = None
        self._assign_ips()
        self._layout_data(data)
        self._validate_targets()

    def _assign_ips(self) -> None:
        self.block_base_ip: Dict[str, int] = {}
        ip = 0x1000
        for block in self.blocks:
            self.block_base_ip[block.label] = ip
            ip += ((block.size * _IP_STRIDE + _BLOCK_ALIGN - 1) // _BLOCK_ALIGN) * _BLOCK_ALIGN

    def _layout_data(self, data: Dict[str, np.ndarray]) -> None:
        self.arrays: Dict[str, DataArray] = {}
        self.initial_memory: List[int] = []
        base = 0
        for name, values in data.items():
            arr = np.asarray(values, dtype=np.int64)
            self.arrays[name] = DataArray(name=name, base=base, length=len(arr))
            self.initial_memory.extend(int(v) & 0xFFFFFFFF for v in arr)
            base += len(arr)
        self.memory_size = base

    def _validate_targets(self) -> None:
        for block in self.blocks:
            for target in terminator_targets(block.terminator):
                if target not in self.block_index:
                    raise ValueError(
                        f"block {block.label!r} targets unknown block {target!r}"
                    )

    def terminator_ip(self, label: str) -> int:
        """IP of the terminator (the branch instruction) of a block."""
        block = self.blocks[self.block_index[label]]
        return self.block_base_ip[label] + len(block.instructions) * _IP_STRIDE

    def num_static_conditional_branches(self) -> int:
        return sum(1 for b in self.blocks if isinstance(b.terminator, Br))

    def num_static_blocks(self) -> int:
        return len(self.blocks)

    # -- CFG accessors (used by repro.staticcheck; no execution involved) --

    def block(self, label: str) -> BasicBlock:
        """The block with the given label (KeyError if undefined)."""
        return self.blocks[self.block_index[label]]

    def successors(self, label: str) -> Tuple[str, ...]:
        """Direct successor labels encoded in the block's terminator.

        ``Ret`` and ``Halt`` report no static successors here; the
        interprocedural edges (return sites, restart-at-entry) are a
        client-side policy — see ``repro.staticcheck.cfg``.
        """
        return tuple(terminator_targets(self.block(label).terminator))

    def conditional_branches(self) -> Iterator[Tuple[str, int, Br]]:
        """Yield ``(label, terminator_ip, Br)`` for every conditional branch."""
        for block in self.blocks:
            if isinstance(block.terminator, Br):
                yield block.label, self.terminator_ip(block.label), block.terminator


def terminator_targets(term: Terminator) -> Tuple[str, ...]:
    """Raw target labels of a terminator (``Ret``/``Halt`` have none)."""
    if isinstance(term, Br):
        return (term.taken, term.not_taken)
    if isinstance(term, Jmp):
        return (term.target,)
    if isinstance(term, Call):
        return (term.target, term.ret_to)
    if isinstance(term, Switch):
        return tuple(term.targets)
    return ()


class ProgramBuilder:
    """Incremental builder for synthetic programs.

    Workload generators allocate labelled blocks, fill them with
    instructions, wire terminators, and declare data arrays; ``build()``
    finalizes IPs and memory layout.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._blocks: List[BasicBlock] = []
        self._labels: Dict[str, BasicBlock] = {}
        self._data: Dict[str, np.ndarray] = {}
        self._entry: Optional[str] = None
        self._auto_label = 0

    def fresh_label(self, prefix: str = "bb") -> str:
        self._auto_label += 1
        return f"{prefix}_{self._auto_label}"

    def block(self, label: Optional[str] = None) -> BasicBlock:
        """Create (and register) a new empty block."""
        if label is None:
            label = self.fresh_label()
        if label in self._labels:
            raise ValueError(f"block {label!r} already defined")
        blk = BasicBlock(label=label)
        self._blocks.append(blk)
        self._labels[label] = blk
        if self._entry is None:
            self._entry = label
        return blk

    def get(self, label: str) -> BasicBlock:
        return self._labels[label]

    def set_entry(self, label: str) -> None:
        if label not in self._labels:
            raise ValueError(f"unknown entry block {label!r}")
        self._entry = label

    def data(self, name: str, values: Sequence[int]) -> str:
        """Declare a named initialized data array; returns the name."""
        if name in self._data:
            raise ValueError(f"data array {name!r} already defined")
        self._data[name] = np.asarray(values, dtype=np.int64)
        return name

    def num_blocks(self) -> int:
        return len(self._blocks)

    def build(self) -> Program:
        if self._entry is None:
            raise ValueError("program has no blocks")
        return Program(self.name, self._blocks, self._entry, self._data)
