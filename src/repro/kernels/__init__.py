"""``repro.kernels``: numpy-vectorized trace-driven simulation.

For *trace-driven* simulation the global and per-branch histories are fully
determined by the recorded ``taken`` stream, so history-indexed table
predictors (bimodal, gshare, two-level-local) and the oracle family reduce
to precomputed index streams followed by a grouped per-table-entry
saturating-counter replay — no per-branch Python dispatch.  Predictors
advertise a kernel via :meth:`repro.predictors.base.BranchPredictor.
vectorized_kernel`; :func:`repro.pipeline.simulator.simulate_trace` routes
to it when available and falls back to the scalar loop otherwise
(allocation-feedback predictors like TAGE/TAGE-SC-L stay scalar).

The vectorized path is **bit-identical** to the scalar path: same
:class:`~repro.core.metrics.BranchStats` contents and insertion order, same
slice lists, warmup semantics, and ``mispredict_positions``, and the
predictor's tables/history are left in the same final state.  Set
``REPRO_KERNELS=0`` to force the scalar loop everywhere.
"""

from __future__ import annotations

import os

from repro.kernels.engine import (
    VectorizedScore,
    cond_positions,
    plan_memo,
    score_predictions,
    score_with_kernel,
    signed_history_lists,
    signed_history_matrix,
    stream_bits,
)
from repro.kernels.scan import (
    CounterScan,
    LocalHistory,
    final_history,
    local_history,
    packed_bit_windows,
    packed_history,
    saturating_counter_scan,
)

__all__ = [
    "CounterScan",
    "LocalHistory",
    "VectorizedScore",
    "cond_positions",
    "final_history",
    "kernels_enabled",
    "local_history",
    "packed_bit_windows",
    "packed_history",
    "plan_memo",
    "saturating_counter_scan",
    "score_predictions",
    "score_with_kernel",
    "signed_history_lists",
    "signed_history_matrix",
    "stream_bits",
]


def kernels_enabled() -> bool:
    """Whether the vectorized fast path may be used (``REPRO_KERNELS``).

    Enabled by default; set ``REPRO_KERNELS=0`` (or ``false``/``no``/``off``)
    to force the scalar loop — the escape hatch restores the pre-kernel
    behavior byte-for-byte.
    """
    raw = os.environ.get("REPRO_KERNELS", "1").strip().lower()
    return raw not in ("0", "false", "no", "off")
