"""``repro.kernels``: numpy-vectorized trace-driven simulation.

For *trace-driven* simulation the global and per-branch histories are fully
determined by the recorded ``taken`` stream, so history-indexed table
predictors (bimodal, gshare, two-level-local) and the oracle family reduce
to precomputed index streams followed by a grouped per-table-entry
saturating-counter replay — no per-branch Python dispatch.  Predictors
advertise a kernel via :meth:`repro.predictors.base.BranchPredictor.
vectorized_kernel`; :func:`repro.pipeline.simulator.simulate_trace` routes
to it when available and falls back to the scalar loop otherwise
(allocation-feedback predictors like TAGE/TAGE-SC-L stay scalar).

The vectorized path is **bit-identical** to the scalar path: same
:class:`~repro.core.metrics.BranchStats` contents and insertion order, same
slice lists, warmup semantics, and ``mispredict_positions``, and the
predictor's tables/history are left in the same final state.  Set
``REPRO_KERNELS=0`` to force the scalar loop everywhere.
"""

from __future__ import annotations

import contextlib
import contextvars
import os
from typing import Iterator, Tuple

from repro.kernels.engine import (
    VectorizedScore,
    cond_positions,
    plan_memo,
    score_predictions,
    score_with_kernel,
    signed_history_lists,
    signed_history_matrix,
    stream_bits,
)
from repro.kernels.scan import (
    CounterScan,
    LocalHistory,
    final_history,
    local_history,
    packed_bit_windows,
    packed_history,
    saturating_counter_scan,
)

__all__ = [
    "CounterScan",
    "LocalHistory",
    "VectorizedScore",
    "cond_positions",
    "final_history",
    "kernels_disabled",
    "kernels_enabled",
    "kernels_override",
    "local_history",
    "packed_bit_windows",
    "packed_history",
    "plan_memo",
    "saturating_counter_scan",
    "score_predictions",
    "score_with_kernel",
    "signed_history_lists",
    "signed_history_matrix",
    "stream_bits",
]


#: Context-local override stack for :func:`kernels_enabled`.  ``None``
#: entries mean "no override"; the innermost non-``None`` entry wins.  A
#: context variable — not ``os.environ`` — so one request's scalar-path
#: measurement can never flip the flag under a concurrent request in
#: another thread or asyncio task.
_KERNELS_OVERRIDE: "contextvars.ContextVar[Tuple[bool, ...]]" = contextvars.ContextVar(
    "repro_kernels_override", default=()
)


def kernels_enabled() -> bool:
    """Whether the vectorized fast path may be used (``REPRO_KERNELS``).

    Enabled by default; set ``REPRO_KERNELS=0`` (or ``false``/``no``/``off``)
    to force the scalar loop — the escape hatch restores the pre-kernel
    behavior byte-for-byte.  A :func:`kernels_disabled` /
    :func:`kernels_override` block takes precedence over the environment,
    and only within the calling context.
    """
    stack = _KERNELS_OVERRIDE.get()
    if stack:
        return stack[-1]
    raw = os.environ.get("REPRO_KERNELS", "1").strip().lower()
    return raw not in ("0", "false", "no", "off")


@contextlib.contextmanager
def kernels_override(enabled: bool) -> "Iterator[None]":
    """Force the kernel dispatch decision to ``enabled`` inside the block.

    Reentrant (blocks nest; the innermost wins) and context-local: unlike
    the hand-rolled ``REPRO_KERNELS`` save/restore pattern it replaces,
    the override is invisible to concurrent threads/tasks and can never
    leak a flipped global flag past an exception.
    """
    token = _KERNELS_OVERRIDE.set(_KERNELS_OVERRIDE.get() + (enabled,))
    try:
        yield
    finally:
        _KERNELS_OVERRIDE.reset(token)


def kernels_disabled() -> "contextlib.AbstractContextManager[None]":
    """Force the scalar loop inside the block (see :func:`kernels_override`)."""
    return kernels_override(False)
