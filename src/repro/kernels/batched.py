"""Batched multi-config TAGE-SC-L replay (the fig. 7/8 heavy tail).

Scoring every storage preset of TAGE-SC-L over the same trace dominates the
wall clock of the limit-study experiments: the scalar loop re-derives folded
histories, the path hash, and corrector features branch by branch, per
preset.  Trace-driven simulation makes all of those *inputs* pure functions
of the recorded stream, so this module reconstructs them once, as arrays —

* the push-bit stream and its packed windows → every tagged table's folded
  index/tag stream (memoized on the trace, shared between presets that read
  the same geometric history lengths and fold widths),
* the 16-bit path register in closed form,
* the SC's global-history folds, per-IP local histories, and the IMLI
  count stream

— and then replays each preset with a lean sequential walk that touches
only what genuinely feeds back: tagged-table counters, usefulness bits,
allocation, the corrector's adaptive threshold, and the loop predictor.

The replay is bit-identical to the scalar path: same predictions, same
final predictor state (tables, histories, telemetry counters, and the
per-prediction scratch fields including their stale-value semantics), and
the same ``introspect_last`` attribution stream when asked to collect it.
``REPRO_KERNELS=0`` disables this path along with the per-predictor
kernels (the dispatch lives in ``repro.pipeline.simulator``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.types import BranchTrace
from repro.kernels.engine import cond_positions, plan_memo, stream_bits
from repro.kernels.scan import final_history, local_history, packed_history

if TYPE_CHECKING:  # imported lazily at runtime to avoid predictor cycles
    from repro.predictors.loop import ImliCounter
    from repro.predictors.tagescl import TageScL

_CHUNK = 1 << 16  # rows decoded to Python lists at a time (bounds memory)


@dataclass
class BatchedPrediction:
    """One preset's replay output.

    ``attrs`` carries the per-conditional-branch ``introspect_last``
    tuples (provider, used_alt, loop_used, sc_flipped) and is populated
    only when the replay was asked to collect introspection.
    """

    preds: np.ndarray
    attrs: Optional[List[Tuple[int, bool, bool, bool]]] = None


def batchable(predictor: Any) -> bool:
    """Whether the batched replay reproduces ``predictor`` exactly.

    Exact types only — a subclass may override behavior the replay would
    silently miss (same rule as the ``vectorized_kernel`` type guards).
    Plain :class:`~repro.predictors.tage.Tage` replays too (the composite
    stages are simply absent), so single-config TAGE runs also leave the
    scalar loop.
    """
    from repro.predictors.loop import ImliCounter, LoopPredictor
    from repro.predictors.statistical_corrector import StatisticalCorrector
    from repro.predictors.tage import Tage
    from repro.predictors.tagescl import TageScL

    if type(predictor) is Tage:
        return True
    if type(predictor) is not TageScL:
        return False
    if type(predictor.tage) is not Tage:
        return False
    if predictor.sc is not None and type(predictor.sc) is not StatisticalCorrector:
        return False
    if predictor.loop is not None and type(predictor.loop) is not LoopPredictor:
        return False
    if type(predictor.imli) is not ImliCounter:
        return False
    # ``predict_with_target`` threads IMLI differently; the simulator never
    # uses it, but a pending target would change the next update.
    return predictor._last_target is None


def replay_tagescl_batch(
    trace: BranchTrace,
    predictors: Sequence,
    collect_introspection: bool = False,
) -> List[BatchedPrediction]:
    """Replay every predictor (a TAGE-SC-L preset) over ``trace`` at once.

    Returns one :class:`BatchedPrediction` per predictor, in order, and
    leaves each predictor in exactly the state the scalar loop would.
    Callers score the prediction vectors with
    :func:`repro.kernels.engine.score_predictions` (one shared scoring
    plan per trace).
    """
    ips_c, taken_c, _ = trace.conditional_columns()
    # Decoded lists are memoized on the trace: batch-of-one dispatch calls
    # this once per preset per experiment, and the decode would otherwise
    # recur per call.
    ips_l = plan_memo(trace, ("cond_ips_list",), ips_c.tolist)
    taken_l = plan_memo(
        trace,
        ("cond_taken_list",),
        lambda: np.asarray(taken_c, dtype=bool).tolist(),
    )
    pos = cond_positions(trace)
    return [
        _replay_preset(p, trace, ips_c, taken_c, ips_l, taken_l, pos, collect_introspection)
        for p in predictors
    ]


# ---------------------------------------------------------------------------
# Shared feature streams (memoized on the trace's plan cache)


def _path_stream(trace: BranchTrace, init_path: int) -> np.ndarray:
    """The 16-bit path register before each record, in closed form.

    Each push folds in ``(ip & 0xFFF) << 2`` shifts, so only the newest 8
    records can still contribute; the warm register self-extinguishes the
    same way.
    """

    def build() -> np.ndarray:
        ips = np.asarray(trace.ips, dtype=np.int64) & 0xFFF
        n = len(ips)
        path = np.zeros(n + 1, dtype=np.int64)
        for a in range(1, 9):
            if a > n:
                break
            path[a:] ^= ips[: n + 1 - a] << (2 * (a - 1))
        path &= 0xFFFF
        if init_path:
            m = min(8, n + 1)
            path[:m] ^= (int(init_path) << (2 * np.arange(m, dtype=np.int64))) & 0xFFFF
        return path

    return plan_memo(trace, ("path_stream", int(init_path)), build)


def _ghist_stream(trace: BranchTrace, taken_c: np.ndarray, init: int) -> np.ndarray:
    """The SC's 32-bit conditional-outcome history before each branch."""
    return plan_memo(
        trace,
        ("ghist32", int(init)),
        lambda: packed_history(taken_c, 32, init=int(init)),
    )


def _imli_stream(
    trace: BranchTrace, ips_c: np.ndarray, taken_c: np.ndarray, imli: "ImliCounter"
) -> Tuple[np.ndarray, Optional[int], int]:
    """IMLI count before each conditional branch, plus the final state.

    The simulator path feeds the IMLI only taken conditionals (as backward
    branches of themselves), so the count is a saturated run-position over
    the taken subsequence's IPs — with the head run optionally continuing
    the warm counter.
    """
    init_count = int(imli.count)
    init_ip = imli._last_backward_ip
    key = ("imli_stream", init_count, init_ip, imli.max_count)

    def build() -> Tuple[np.ndarray, Optional[int], int]:
        t = np.asarray(taken_c, dtype=bool)
        t_ips = ips_c[t]
        m = len(t_ips)
        counts_after = np.empty(0, dtype=np.int64)
        if m:
            same = np.empty(m, dtype=bool)
            same[0] = init_ip is not None and int(t_ips[0]) == init_ip
            np.equal(t_ips[1:], t_ips[:-1], out=same[1:])
            head_continues = bool(same[0])
            starts = ~same
            starts[0] = True
            idx = np.arange(m, dtype=np.int64)
            seg_first = np.maximum.accumulate(np.where(starts, idx, 0))
            counts_after = idx - seg_first + 1
            if head_continues:
                nxt = np.flatnonzero(starts[1:])
                head_end = int(nxt[0]) + 1 if len(nxt) else m
                counts_after[:head_end] += init_count
            np.minimum(counts_after, imli.max_count - 1, out=counts_after)
        before_cnt = np.cumsum(t) - t
        before = np.concatenate(
            [np.array([init_count], dtype=np.int64), counts_after]
        )[before_cnt]
        final_ip = int(t_ips[-1]) if m else init_ip
        final_count = int(counts_after[-1]) if m else init_count
        return before, final_ip, final_count

    return plan_memo(trace, key, build)


# ---------------------------------------------------------------------------
# Per-preset replay


@dataclass
class _Precomp:
    """Everything array-shaped one preset's sequential walk consumes."""

    matrix: np.ndarray  # (n, 1 + T [+ sc]) int32: base | (idx<<16|tag)[T] | sc
    sc_packed: bool  # SC columns packed pairwise into three int32 columns
    ci_final: List[int]
    c0_final: List[int]
    c1_final: List[int]
    path_final: int
    local_touch_order: List[int]
    local_final: dict
    imli_final_ip: Optional[int]
    imli_final_count: int
    ghist_final: int


def _precompute(
    p: Any,
    trace: BranchTrace,
    ips_c: np.ndarray,
    taken_c: np.ndarray,
    pos: np.ndarray,
) -> _Precomp:
    from repro.predictors.gehl import folded_stream_history
    from repro.predictors.tagescl import TageScL

    ens = p if type(p) is TageScL else None
    tage = p.tage if ens is not None else p
    cfg = tage.config
    T = cfg.num_tables

    # Pre-trace push bits, oldest first, read out of the circular buffer.
    # The buffer retains max_history + 8 bits, so every bit a fold of
    # length <= max_history can see is genuine; cold buffers are all
    # zeros, which is also what the closed form assumes pre-power-on.
    pre = cfg.max_history
    size = tage._hist_size
    hist = np.asarray(tage._hist, dtype=np.uint8)
    ages = (tage._head + np.arange(pre, dtype=np.int64)) % size
    prefix = hist[ages][::-1].copy()
    prefix_key = prefix.tobytes()

    path = _path_stream(trace, tage._path)
    path_c = path[pos]
    ip11 = ips_c ^ (ips_c >> 11)
    cols = [(ips_c ^ (ips_c >> cfg.log_base_entries)) & tage._base_mask]
    ci_final: List[int] = []
    c0_final: List[int] = []
    c1_final: List[int] = []
    # Index and tag share one packed int32 column (``idx << 16 | tag``):
    # halving the TAGE column count halves the dominant matrix→list decode
    # cost, and the walk unpacks with constant shifts/masks.
    if max(cfg.log_entries) > 15 or max(cfg.tag_bits) > 16:
        raise ValueError("table geometry too large for packed batched replay")
    for t in range(T):
        length = tage.history_lengths[t]
        ci_f = folded_stream_history(trace, length, cfg.log_entries[t], prefix, prefix_key)
        c0_f = folded_stream_history(trace, length, cfg.tag_bits[t], prefix, prefix_key)
        c1_f = folded_stream_history(trace, length, cfg.tag_bits[t] - 1, prefix, prefix_key)
        idx_col = (
            ips_c ^ (ips_c >> tage._idx_shifts[t]) ^ ci_f[pos] ^ (path_c >> (t & 3))
        ) & tage._idx_masks[t]
        tag_col = (ip11 ^ c0_f[pos] ^ (c1_f[pos] << 1)) & tage._tag_masks[t]
        cols.append((idx_col << 16) | tag_col)
        ci_final.append(int(ci_f[-1]))
        c0_final.append(int(c0_f[-1]))
        c1_final.append(int(c1_f[-1]))

    # Composite-level feature streams: always replayed for final-state
    # writeback (when the composite exists); decoded into SC index columns
    # only when the SC exists.  Plain TAGE skips all of them.
    keys = np.empty(0, dtype=np.int64)
    imli_final_ip: Optional[int] = None
    imli_final_count = 0
    lh = None
    if ens is not None:
        keys = ips_c & ens._local_mask_entries
        init_tbl = np.zeros(ens._local_mask_entries + 1, dtype=np.int64)
        for k, v in ens._local.items():
            init_tbl[k] = v
        lh = local_history(keys, taken_c, ens._local_bits, init_tbl)
        imli_before, imli_final_ip, imli_final_count = _imli_stream(
            trace, ips_c, taken_c, ens.imli
        )

    sc = ens.sc if ens is not None else None
    sc_packed = False
    if sc is not None:
        g = _ghist_stream(trace, taken_c, ens._ghist_bits)
        comps = [sc._bias] + list(sc._ghist_components) + [sc._local, sc._imli]
        feats = [None] + [
            g & ((1 << fold) - 1) for fold in sc.history_folds
        ] + [lh.history, imli_before]
        sc_cols = []
        for comp, f in zip(comps, feats):
            base_v = (ips_c ^ (ips_c >> comp.log_entries)) & comp._mask
            if f is None:
                # Bias: feature is the TAGE prediction (0/1), folded in at
                # replay time as ``col ^ tp`` (bit 0 is inside the mask).
                sc_cols.append(base_v)
            else:
                sc_cols.append((base_v ^ f ^ (f >> 5)) & comp._mask)
        # The standard six-component shape packs pairwise into three
        # columns — (g1|g2), (g3|local), (bias|imli) — so the matrix
        # decode touches half the SC elements; the walk unpacks with
        # constant shifts.  Odd shapes keep one column per component.
        sc_packed = len(sc_cols) == 6 and all(c._mask <= 65535 for c in comps)
        if sc_packed:
            cols.append((sc_cols[1] << 16) | sc_cols[2])
            cols.append((sc_cols[3] << 16) | sc_cols[4])
            cols.append((sc_cols[0] << 16) | sc_cols[5])
        else:
            cols.extend(sc_cols)

    # Column-wise fill of a preallocated int32 matrix (cheaper than
    # stacking int64 intermediates and converting).
    matrix = np.empty((len(ips_c), len(cols)), dtype=np.int32)
    for j, col in enumerate(cols):
        matrix[:, j] = col

    touch_order: List[int] = []
    local_final: dict = {}
    if len(keys):
        uniq, first_idx = np.unique(keys, return_index=True)
        touch_order = uniq[np.argsort(first_idx, kind="stable")].tolist()
        local_final = dict(
            zip(lh.final_groups.tolist(), lh.final_registers.tolist())
        )

    return _Precomp(
        matrix=matrix,
        sc_packed=sc_packed,
        ci_final=ci_final,
        c0_final=c0_final,
        c1_final=c1_final,
        path_final=int(path[-1]),
        local_touch_order=touch_order,
        local_final=local_final,
        imli_final_ip=imli_final_ip,
        imli_final_count=imli_final_count,
        ghist_final=(
            final_history(taken_c, 32, init=ens._ghist_bits)
            if ens is not None
            else 0
        ),
    )


def _replay_preset(
    p: Any,
    trace: BranchTrace,
    ips_c: np.ndarray,
    taken_c: np.ndarray,
    ips_l: List[int],
    taken_l: List[bool],
    pos: np.ndarray,
    collect: bool,
) -> BatchedPrediction:
    from repro.predictors.tagescl import TageScL

    n = len(ips_c)
    ens = p if type(p) is TageScL else None
    tage = p.tage if ens is not None else p
    cfg = tage.config
    T = cfg.num_tables
    pre_c = _precompute(p, trace, ips_c, taken_c, pos)
    M = pre_c.matrix
    off_sc = 1 + T  # packed idx/tag columns end; sc columns follow

    # TAGE state, bound to locals (table lists are mutated in place).
    tags_l = tage._tags
    ctrs_l = tage._ctrs
    useful_l = tage._useful
    # Longest-match scan order, with the per-table list lookups hoisted
    # out of the per-branch walk: (table, packed column, tags, ctrs,
    # useful) from the longest history down.
    tables_rev = tuple(
        (t, 1 + t, tags_l[t], ctrs_l[t], useful_l[t])
        for t in range(cfg.num_tables - 1, -1, -1)
    )
    base = tage._base
    ctr_lo, ctr_hi = tage._ctr_lo, tage._ctr_hi
    u_hi = tage._u_hi
    use_alt = tage._use_alt_on_na
    rand_state = tage._rand_state
    tick = tage._tick
    reset_period = cfg.useful_reset_period
    alloc_stats = tage.allocation_stats
    alloc_record = alloc_stats.record if alloc_stats is not None else None
    alloc_count = tage.alloc_count
    evict_count = tage.evict_count
    alloc_fail = tage.alloc_fail_count
    n_provider = tage.pred_provider_count
    n_alt = tage.pred_alt_count
    n_base = tage.pred_base_count

    # Per-prediction scratch: ``idx``/``provider_pred`` only move on the
    # provider path, exactly like the scalar fields they mirror.
    p_idx = tage._p_idx
    p_provider_pred = tage._p_provider_pred

    sc = ens.sc if ens is not None else None
    sc_on = sc is not None
    if sc_on:
        comps = [sc._bias] + list(sc._ghist_components) + [sc._local, sc._imli]
        comp_tables = [c.table for c in comps]
        n_comp = len(comps)
        sc_lo, sc_hi = sc._bias._lo, sc._bias._hi
        sc_threshold = sc.threshold
        sc_tc = sc._threshold_counter
        tage_w = sc._tage_weight
        # The standard shape (bias + 3 ghist folds + local + IMLI) gets an
        # unrolled walk body over the packed columns; any other fold count
        # takes the generic loop over one column per component.
        sc6 = pre_c.sc_packed
        if sc6:
            tb0, tb1, tb2, tb3, tb4, tb5 = comp_tables
            oB, oC = off_sc + 1, off_sc + 2
        si1 = si2 = si3 = si4 = si5 = 0

    # Loop predictor, decomposed into parallel field lists: the dataclass
    # entries cost two method calls plus attribute chains per branch in the
    # scalar path; the walk reads/writes flat lists and the entry objects
    # are refilled at the end (values, not identities, are the contract).
    lp = ens.loop if ens is not None else None
    loop_on = lp is not None
    if loop_on:
        l_tag = [e.tag for e in lp._table]
        l_past = [e.past_iter for e in lp._table]
        l_cur = [e.current_iter for e in lp._table]
        l_conf = [e.confidence for e in lp._table]
        l_age = [e.age for e in lp._table]
        l_dir = [e.direction for e in lp._table]
        l_mask = lp._mask
        l_tagmask = lp._tag_mask
        l_log = lp.log_entries
        l_rand = lp._rand_state
        l_confident = lp.is_confident
        l_lastpred = lp._last_pred
        l_have = lp._last_entry is not None
        l_slot = 0
    pred_loop_count = ens.pred_loop_count if ens is not None else 0

    preds: List[bool] = []
    preds_append = preds.append
    attrs: Optional[List[Tuple[int, bool, bool, bool]]] = [] if collect else None
    attrs_append = attrs.append if attrs is not None else None

    # Loop locals that outlive the walk feed the final-state writeback.
    provider = tage._p_provider
    tage_pred = tage._p_pred
    alt_pred = tage._p_alt_pred
    weak = tage._p_weak
    pred = ens._last_pred if ens is not None else tage._p_pred
    sc_flipped = ens._last_sc_flipped if ens is not None else False
    loop_used = ens._last_loop_used if ens is not None else False
    row = None
    s = 0
    bi0 = 0

    i0 = 0
    while i0 < n:
        i1 = min(n, i0 + _CHUNK)
        for row, tk, ip in zip(M[i0:i1].tolist(), taken_l[i0:i1], ips_l[i0:i1]):
            # ---- TAGE predict: longest/second-longest tag match.
            provider = -1
            alt = -1
            pv = 0
            for t, col, tags_t, ctrs_t, useful_t in tables_rev:
                v = row[col]
                if tags_t[v >> 16] == v & 65535:
                    if provider < 0:
                        provider = t
                        pv = v
                        ctrs_p = ctrs_t
                        useful_p = useful_t
                    else:
                        alt = t
                        alt_ctrs = ctrs_t
                        break
            if provider < 0:
                base_pred = base[row[0]] >= 0
                n_base += 1
                tage_pred = base_pred
                alt_pred = base_pred
                weak = False
            else:
                idx = pv >> 16
                ctr = ctrs_p[idx]
                provider_pred = ctr >= 0
                alt_pred = (
                    alt_ctrs[v >> 16] >= 0
                    if alt >= 0
                    else base[row[0]] >= 0
                )
                weak = (ctr == 0 or ctr == -1) and useful_p[idx] == 0
                if weak and use_alt >= 0:
                    tage_pred = alt_pred
                    n_alt += 1
                else:
                    tage_pred = provider_pred
                    n_provider += 1
                p_idx = idx
                p_provider_pred = provider_pred

            # ---- SC classify.
            pred = tage_pred
            if sc_on:
                tp = 1 if tage_pred else 0
                if sc6:
                    va = row[off_sc]
                    vb = row[oB]
                    vc = row[oC]
                    si1 = va >> 16
                    si2 = va & 65535
                    si3 = vb >> 16
                    si4 = vb & 65535
                    si5 = vc & 65535
                    bi0 = (vc >> 16) ^ tp
                    ssum = (
                        tb0[bi0]
                        + tb1[si1]
                        + tb2[si2]
                        + tb3[si3]
                        + tb4[si4]
                        + tb5[si5]
                    )
                else:
                    bi0 = row[off_sc] ^ tp
                    ssum = comp_tables[0][bi0]
                    for j in range(1, n_comp):
                        ssum += comp_tables[j][row[off_sc + j]]
                s = 2 * ssum + n_comp
                if tage_pred:
                    s += tage_w
                    if provider >= 0 and not weak:
                        s += tage_w
                else:
                    s -= tage_w
                    if provider >= 0 and not weak:
                        s -= tage_w
                if (s >= 0) != tage_pred:
                    abs_s = s if s >= 0 else -s
                    if abs_s >= sc_threshold:
                        pred = not tage_pred
            sc_flipped = pred != tage_pred

            # ---- Loop-predictor override.
            loop_used = False
            if loop_on:
                l_slot = (ip ^ (ip >> l_log)) & l_mask
                l_have = l_tag[l_slot] == (ip >> 2) & l_tagmask
                if l_have and l_conf[l_slot] >= 3 and l_past[l_slot] >= 2:
                    l_confident = True
                    l_lastpred = (
                        (not l_dir[l_slot])
                        if l_cur[l_slot] + 1 >= l_past[l_slot]
                        else l_dir[l_slot]
                    )
                    pred = l_lastpred
                    loop_used = True
                    pred_loop_count += 1
                else:
                    l_confident = False
                    l_lastpred = True

            preds_append(pred)
            if attrs_append is not None:
                attrs_append(
                    (
                        provider,
                        provider >= 0 and weak and use_alt >= 0,
                        loop_used,
                        sc_flipped,
                    )
                )

            # ---- SC train.
            if sc_on:
                sc_pred = s >= 0
                abs_s = s if s >= 0 else -s
                if sc_pred != tk or abs_s < (sc_threshold << 2):
                    d = 1 if tk else -1
                    if sc6:
                        v = tb0[bi0] + d
                        tb0[bi0] = sc_hi if v > sc_hi else (sc_lo if v < sc_lo else v)
                        v = tb1[si1] + d
                        tb1[si1] = sc_hi if v > sc_hi else (sc_lo if v < sc_lo else v)
                        v = tb2[si2] + d
                        tb2[si2] = sc_hi if v > sc_hi else (sc_lo if v < sc_lo else v)
                        v = tb3[si3] + d
                        tb3[si3] = sc_hi if v > sc_hi else (sc_lo if v < sc_lo else v)
                        v = tb4[si4] + d
                        tb4[si4] = sc_hi if v > sc_hi else (sc_lo if v < sc_lo else v)
                        v = tb5[si5] + d
                        tb5[si5] = sc_hi if v > sc_hi else (sc_lo if v < sc_lo else v)
                    else:
                        v = comp_tables[0][bi0] + d
                        comp_tables[0][bi0] = (
                            sc_hi if v > sc_hi else (sc_lo if v < sc_lo else v)
                        )
                        for j in range(1, n_comp):
                            tbl = comp_tables[j]
                            ii = row[off_sc + j]
                            v = tbl[ii] + d
                            tbl[ii] = sc_hi if v > sc_hi else (sc_lo if v < sc_lo else v)
                if sc_pred != tk:
                    if abs_s >= sc_threshold:
                        sc_tc += 1
                        if sc_tc >= 32:
                            sc_tc = 0
                            if sc_threshold < 128:
                                sc_threshold += 1
                elif abs_s < sc_threshold:
                    sc_tc -= 1
                    if sc_tc <= -32:
                        sc_tc = 0
                        if sc_threshold > 4:
                            sc_threshold -= 1

            # ---- Loop-predictor train (gated on the composite's miss).
            if loop_on:
                if l_have:
                    if tk == l_dir[l_slot]:
                        ci = l_cur[l_slot] + 1
                        if ci > 16383:
                            ci = 16383
                        l_cur[l_slot] = ci
                        if ci > l_past[l_slot] and l_conf[l_slot] == 3:
                            l_conf[l_slot] = 0
                            l_past[l_slot] = 0
                    else:
                        observed = l_cur[l_slot] + 1
                        if observed == l_past[l_slot]:
                            if l_conf[l_slot] < 3:
                                l_conf[l_slot] += 1
                            if l_age[l_slot] < 7:
                                l_age[l_slot] += 1
                        else:
                            l_past[l_slot] = observed
                            l_conf[l_slot] = 0
                        l_cur[l_slot] = 0
                elif pred != tk:
                    x = l_rand
                    x ^= (x << 13) & 0xFFFFFFFF
                    x ^= x >> 17
                    x ^= (x << 5) & 0xFFFFFFFF
                    l_rand = x
                    if x & 7 == 0:
                        if l_tag[l_slot] == -1 or l_age[l_slot] == 0:
                            l_tag[l_slot] = (ip >> 2) & l_tagmask
                            l_past[l_slot] = 0
                            l_cur[l_slot] = 0
                            l_conf[l_slot] = 0
                            l_age[l_slot] = 3
                            l_dir[l_slot] = not tk
                        else:
                            l_age[l_slot] -= 1

            # ---- TAGE train.
            if provider >= 0:
                if weak and p_provider_pred != alt_pred:
                    if alt_pred == tk:
                        if use_alt < 7:
                            use_alt += 1
                    elif use_alt > -8:
                        use_alt -= 1
                if p_provider_pred != alt_pred:
                    u = useful_p[idx]
                    if p_provider_pred == tk:
                        if u < u_hi:
                            useful_p[idx] = u + 1
                    elif u > 0:
                        useful_p[idx] = u - 1
                c = ctrs_p[idx] + (1 if tk else -1)
                if c > ctr_hi:
                    c = ctr_hi
                elif c < ctr_lo:
                    c = ctr_lo
                ctrs_p[idx] = c
                if useful_p[idx] == 0 and (c == 0 or c == -1):
                    bi = row[0]
                    b = base[bi] + (1 if tk else -1)
                    base[bi] = 1 if b > 1 else (-2 if b < -2 else b)
            else:
                bi = row[0]
                b = base[bi] + (1 if tk else -1)
                base[bi] = 1 if b > 1 else (-2 if b < -2 else b)

            # ---- Allocation on a TAGE miss (TAGE's own prediction).
            if tage_pred != tk and provider < T - 1:
                x = rand_state
                x ^= (x << 13) & 0xFFFFFFFF
                x ^= x >> 17
                x ^= (x << 5) & 0xFFFFFFFF
                rand_state = x
                start = provider + 1
                if (x & 3) == 0 and start + 1 < T:
                    start += 1
                allocated = False
                t = start
                while t < T:
                    v = row[1 + t]
                    aidx = v >> 16
                    if useful_l[t][aidx] == 0:
                        if tags_l[t][aidx] != -1:
                            evict_count += 1
                        tags_l[t][aidx] = v & 65535
                        ctrs_l[t][aidx] = 0 if tk else -1
                        alloc_count += 1
                        if alloc_record is not None:
                            alloc_record(ip, t, aidx)
                        allocated = True
                        break
                    t += 1
                if not allocated:
                    alloc_fail += 1
                    for t in range(start, T):
                        aidx = row[1 + t] >> 16
                        u = useful_l[t][aidx]
                        if u > 0:
                            useful_l[t][aidx] = u - 1
                tick += 1
                if tick >= reset_period:
                    tick = 0
                    for t in range(T):
                        ul = useful_l[t]
                        for j2 in range(len(ul)):
                            ul[j2] >>= 1
        i0 = i1

    # ---- Final-state writeback: TAGE registers and telemetry.
    tage._use_alt_on_na = use_alt
    tage._rand_state = rand_state
    tage._tick = tick
    tage.alloc_count = alloc_count
    tage.evict_count = evict_count
    tage.alloc_fail_count = alloc_fail
    tage.pred_provider_count = n_provider
    tage.pred_alt_count = n_alt
    tage.pred_base_count = n_base
    tage._p_provider = provider
    tage._p_idx = p_idx
    tage._p_pred = tage_pred
    tage._p_provider_pred = p_provider_pred
    tage._p_alt_pred = alt_pred
    tage._p_weak = weak
    if row is not None:
        packed = row[1:off_sc]
        tage._p_indices[:] = [v >> 16 for v in packed]
        tage._p_tags[:] = [v & 65535 for v in packed]

    # History advances on every record (note_branch pushes too), so the
    # registers move even when the trace had no conditional branches.
    N = len(trace)
    if N:
        bits = stream_bits(trace)
        size = tage._hist_size
        head = (tage._head - N) % size
        m = min(N, size)
        idxs = (head + np.arange(m, dtype=np.int64)) % size
        hist_arr = np.asarray(tage._hist, dtype=np.int64)
        hist_arr[idxs] = bits[N - m :][::-1]
        tage._hist = hist_arr.tolist()
        tage._head = head
        tage._ci[:] = pre_c.ci_final
        tage._c0[:] = pre_c.c0_final
        tage._c1[:] = pre_c.c1_final
        tage._path = pre_c.path_final

    # ---- Composite-level writeback.
    if sc_on:
        sc.threshold = sc_threshold
        sc._threshold_counter = sc_tc
        if n:
            sc._last_sum = s
            sc._last_tage_pred = tage_pred
            if sc6:
                va = row[off_sc]
                vb = row[oB]
                vc = row[oC]
                tail = [va >> 16, va & 65535, vb >> 16, vb & 65535, vc & 65535]
            else:
                tail = [row[off_sc + j] for j in range(1, n_comp)]
            last_indices = [(comps[0], bi0)]
            for comp, ii in zip(comps[1:], tail):
                last_indices.append((comp, ii))
            sc._last_indices = last_indices
    if loop_on:
        for e, tg, pi, cu, cf, ag, dr in zip(
            lp._table, l_tag, l_past, l_cur, l_conf, l_age, l_dir
        ):
            e.tag = tg
            e.past_iter = pi
            e.current_iter = cu
            e.confidence = cf
            e.age = ag
            e.direction = dr
        lp._rand_state = l_rand
        if n:
            lp.is_confident = l_confident
            lp._last_pred = l_lastpred
            lp._last_entry = lp._table[l_slot] if l_have else None
    if ens is not None:
        ens.pred_loop_count = pred_loop_count
        if n:
            ens._last_pred = pred
            ens._last_sc_flipped = sc_flipped
            ens._last_loop_used = loop_used
            ens._ghist_bits = pre_c.ghist_final
            for k in pre_c.local_touch_order:
                ens._local[k] = pre_c.local_final[k]
            ens.imli.count = pre_c.imli_final_count
            ens.imli._last_backward_ip = pre_c.imli_final_ip

    return BatchedPrediction(preds=np.array(preds, dtype=bool), attrs=attrs)
