"""Vectorized scoring: kernel predictions → the scalar loop's outputs.

:func:`score_with_kernel` reproduces, without per-branch Python, everything
the scalar ``simulate_trace`` loop accumulates: aggregate and per-slice
:class:`~repro.core.metrics.BranchStats` (including the scalar loop's
insertion order, so downstream float reductions see the same operand
order), warmup exclusion, empty-slice emission at boundary crossings, and
the recorded mispredict positions.  The equivalence suite in
``tests/pipeline/test_kernels.py`` holds the two paths bit-identical.

Scoring splits into a *plan* — every grouping that depends only on
``(trace, warmup, slice length)``: unique IPs, execution counts, stats
insertion orders, slice keys — and the per-call part that depends on the
predictor's predictions (the misprediction bincounts).  The plan is built
once and memoized on the trace, so the normal experiment shape (many
predictors over one trace) pays the sorts once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Tuple

import numpy as np

from repro.core.metrics import BranchStats
from repro.core.types import BranchTrace

#: A trace kernel: (conditional ips, conditional taken) -> predicted
#: directions.  The arrays cover exactly the conditional subsequence of the
#: trace, in temporal order; the kernel must treat them as read-only and is
#: responsible for leaving the predictor's own state (tables, histories) as
#: the scalar loop would.
#:
#: A kernel with a truthy ``wants_trace`` attribute is instead invoked as
#: ``kernel(ips_c, taken_c, trace)`` — the full trace lets predictors whose
#: ``note_branch`` is *not* a no-op (path/global-history predictors that
#: observe unconditional branches) reconstruct their history streams.
TraceKernel = Callable[..., np.ndarray]


@dataclass
class VectorizedScore:
    """What the vectorized path accumulated for one (trace, predictor).

    The ``intro_*`` arrays (the scored mispredictions' IPs and instruction
    positions) are populated only when scoring was asked to collect
    introspection data; normal callers see ``None``.
    """

    stats: BranchStats
    slice_stats: Optional[List[BranchStats]]
    mispredict_positions: Optional[np.ndarray]
    cond_branches: int
    intro_mis_ips: Optional[np.ndarray] = None
    intro_mis_pos: Optional[np.ndarray] = None


@dataclass(frozen=True)
class _ScoringPlan:
    """Predictor-independent grouping for one (trace, warmup, slice length).

    Aggregate fields list the scored static branches in the scalar loop's
    dict insertion order (first appearance in the scored stream); ``inv``
    recodes each scored branch to its 0-based rank in sorted-unique IP
    order, exactly like ``np.unique``'s inverse, for the per-call
    misprediction bincount.  Slice fields do the same per
    ``(slice, branch)`` key.
    """

    agg_ips: List[int]  # unique IPs, insertion order
    agg_exec: List[int]  # executions per IP, same order
    agg_pick: np.ndarray  # insertion order -> code, to index bincounts
    inv: np.ndarray  # scored stream recoded to 0..width-1
    width: int
    n_closed: int  # closed slices (boundary crossings)
    key_inv: Optional[np.ndarray]  # scored stream -> slice-key rank
    key_slice: Optional[List[int]]  # per key (insertion order): slice index
    key_ips: Optional[List[int]]  # per key: IP
    key_exec: Optional[List[int]]  # per key: executions
    key_pick: Optional[np.ndarray]  # insertion order -> key rank


def _build_plan(
    trace: BranchTrace, w: int, slice_instructions: Optional[int]
) -> _ScoringPlan:
    all_uniq, codes = trace.conditional_ip_codes()
    s_codes = codes[w:]
    s_pos = trace.conditional_columns()[2][w:]

    agg_ips: List[int] = []
    agg_exec: List[int] = []
    agg_pick = np.empty(0, dtype=np.int64)
    inv = np.empty(0, dtype=np.int32)
    width = 0
    present_ips = np.empty(0, dtype=np.int64)  # scored unique IPs, sorted
    if len(s_codes):
        # The int64 IP sort is memoized on the trace; grouping here works
        # on the small int32 codes (radix-sorted inside np.unique).
        present, first_idx = np.unique(s_codes, return_index=True)
        executions = np.bincount(s_codes, minlength=len(all_uniq))[present]
        order = np.argsort(first_idx, kind="stable")
        agg_pick = order
        present_ips = all_uniq[present]
        agg_ips = present_ips[order].tolist()
        agg_exec = executions[order].tolist()
        width = len(present)
        if width == len(all_uniq):
            inv = s_codes
        else:
            # Warmup can hide some static branches entirely; recode the
            # survivors to 0..width-1 like np.unique's inverse would.
            remap = np.zeros(len(all_uniq), dtype=np.int32)
            remap[present] = np.arange(width, dtype=np.int32)
            inv = remap[s_codes]

    n_closed = 0
    key_inv = key_pick = None
    key_slice = key_ips = key_exec = None
    if slice_instructions is not None:
        # The scalar loop closes a slice whenever *any* branch record (of
        # any kind) crosses the boundary, so the number of in-loop slices
        # is set by the last record's instruction index; the trailing
        # partial slice is kept only if it scored something (or the list
        # would otherwise be empty).
        n_closed = (
            int(trace.instr_indices[-1]) // slice_instructions if len(trace) else 0
        )
        if len(s_codes):
            s_slice = s_pos // slice_instructions
            keys = s_slice * width + inv
            if (int(s_slice[-1]) + 1) * width < (1 << 31):
                # int32 keys sort via radix inside np.unique.
                keys = keys.astype(np.int32)
            kuniq, kfirst, key_inv = np.unique(
                keys, return_index=True, return_inverse=True
            )
            key_inv = key_inv.astype(np.int32, copy=False).reshape(keys.shape)
            kexec = np.bincount(key_inv, minlength=len(kuniq))
            korder = np.argsort(kfirst, kind="stable")
            # First-appearance order across the whole stream is also
            # first-appearance order within each slice (positions are
            # nondecreasing), matching the scalar record() sequence.
            key_pick = korder
            kslice, kip = np.divmod(kuniq[korder].astype(np.int64), width)
            key_slice = kslice.tolist()
            key_ips = present_ips[kip].tolist()
            key_exec = kexec[korder].tolist()

    return _ScoringPlan(
        agg_ips=agg_ips,
        agg_exec=agg_exec,
        agg_pick=agg_pick,
        inv=inv,
        width=width,
        n_closed=n_closed,
        key_inv=key_inv,
        key_slice=key_slice,
        key_ips=key_ips,
        key_exec=key_exec,
        key_pick=key_pick,
    )


def _plan_for(
    trace: BranchTrace, w: int, slice_instructions: Optional[int]
) -> _ScoringPlan:
    cache = trace._plan_cache
    if cache is None:
        cache = trace._plan_cache = {}
    key: Tuple[int, Optional[int]] = (w, slice_instructions)
    plan = cache.get(key)
    if plan is None:
        plan = cache[key] = _build_plan(trace, w, slice_instructions)
    return plan


def score_with_kernel(
    trace: BranchTrace,
    kernel: TraceKernel,
    slice_instructions: Optional[int] = None,
    record_mispredict_positions: bool = False,
    warmup_branches: int = 0,
    collect_introspection: bool = False,
) -> VectorizedScore:
    """Drive ``kernel`` over ``trace`` and score it like the scalar loop.

    ``collect_introspection`` additionally exposes the mispredicted
    branches' IPs and positions (``intro_mis_ips``/``intro_mis_pos``) —
    nearly free here, since the wrongness mask already exists — without
    changing the scored result.
    """
    ips_c, taken_c, _ = trace.conditional_columns()
    preds = (
        kernel(ips_c, taken_c, trace)
        if getattr(kernel, "wants_trace", False)
        else kernel(ips_c, taken_c)
    )
    return score_predictions(
        trace,
        preds,
        slice_instructions=slice_instructions,
        record_mispredict_positions=record_mispredict_positions,
        warmup_branches=warmup_branches,
        collect_introspection=collect_introspection,
    )


def score_predictions(
    trace: BranchTrace,
    preds: np.ndarray,
    slice_instructions: Optional[int] = None,
    record_mispredict_positions: bool = False,
    warmup_branches: int = 0,
    collect_introspection: bool = False,
) -> VectorizedScore:
    """Score a ready-made vector of per-conditional-branch predictions.

    The predictor-independent half of :func:`score_with_kernel`, shared
    with the batched multi-config replay (``repro.kernels.batched``) whose
    one pass over the trace produces a prediction vector per preset.
    """
    if slice_instructions is not None and slice_instructions <= 0:
        raise ValueError("slice_instructions must be positive")
    ips_c, taken_c, pos_c = trace.conditional_columns()

    preds = np.asarray(preds, dtype=bool)
    if preds.shape != taken_c.shape:
        raise ValueError(
            f"kernel returned {preds.shape} predictions for "
            f"{taken_c.shape} conditional branches"
        )

    w = max(0, warmup_branches)
    s_wrong = preds[w:] != taken_c[w:]
    plan = _plan_for(trace, w, slice_instructions)

    stats = BranchStats()
    if plan.width:
        wrong = np.bincount(plan.inv[s_wrong], minlength=plan.width)
        wrong_by_ip = wrong[plan.agg_pick].tolist()
        record = stats.record_bulk
        for ip, ex, wr in zip(plan.agg_ips, plan.agg_exec, wrong_by_ip):
            record(ip, ex, wr)

    slice_list: Optional[List[BranchStats]] = None
    if slice_instructions is not None:
        slice_list = [BranchStats() for _ in range(plan.n_closed)]
        trailing = BranchStats()
        if plan.key_inv is not None:
            kwrong = np.bincount(
                plan.key_inv[s_wrong], minlength=len(plan.key_exec)
            )
            kwrong_ordered = kwrong[plan.key_pick].tolist()
            n_closed = plan.n_closed
            for sl, ip, ex, wr in zip(
                plan.key_slice, plan.key_ips, plan.key_exec, kwrong_ordered
            ):
                target = slice_list[sl] if sl < n_closed else trailing
                target.record_bulk(ip, ex, wr)
        if len(trailing) or plan.n_closed == 0:
            slice_list.append(trailing)

    mis_positions: Optional[np.ndarray] = None
    if record_mispredict_positions:
        mis_positions = pos_c[w:][s_wrong].astype(np.int64, copy=True)

    intro_mis_ips = intro_mis_pos = None
    if collect_introspection:
        intro_mis_ips = ips_c[w:][s_wrong]
        intro_mis_pos = pos_c[w:][s_wrong]

    return VectorizedScore(
        stats=stats,
        slice_stats=slice_list,
        mispredict_positions=mis_positions,
        cond_branches=int(len(ips_c)),
        intro_mis_ips=intro_mis_ips,
        intro_mis_pos=intro_mis_pos,
    )


# ---------------------------------------------------------------------------
# Per-trace memoized reconstructions
#
# Kernels for history predictors all start from the same raw materials —
# the trace's push-bit stream, its conditional positions, a signed-history
# window matrix — so these live on the same per-trace cache as the scoring
# plan.  The normal experiment shape (several predictors / presets replayed
# over one trace) pays each reconstruction once.


def plan_memo(trace: BranchTrace, key: Tuple, build: Callable[[], Any]) -> Any:
    """Memoize ``build()`` on ``trace._plan_cache`` under ``key``.

    Cached values are shared across predictors and must be treated as
    immutable by every consumer.
    """
    cache = trace._plan_cache
    if cache is None:
        cache = trace._plan_cache = {}
    val = cache.get(key)
    if val is None:
        val = cache[key] = build()
    return val


def cond_positions(trace: BranchTrace) -> np.ndarray:
    """Full-stream record index of each conditional branch (memoized)."""
    return plan_memo(
        trace,
        ("cond_positions",),
        lambda: np.flatnonzero(trace.conditional_mask),
    )


def stream_bits(trace: BranchTrace) -> np.ndarray:
    """The full-stream history push bits, as ``note_branch``-style
    predictors see them: conditional records push their outcome,
    every other kind pushes 1 (memoized, uint8)."""

    def build() -> np.ndarray:
        cond = trace.conditional_mask
        bits = np.ones(len(trace), dtype=np.uint8)
        np.copyto(bits, trace.taken != 0, where=cond)
        return bits

    return plan_memo(trace, ("stream_bits",), build)


def signed_history_matrix(
    trace: BranchTrace,
    h: int,
    init_signs: Tuple[int, ...],
    full_stream: bool = False,
) -> np.ndarray:
    """The rolling ±1 history matrix for dot-product predictors (memoized).

    Row ``i`` describes conditional branch ``i`` *before* it resolves:
    column 0 is the bias (+1), column ``j+1`` the sign of the ``j``-th
    newest history entry.  ``init_signs[j]`` seeds entries older than the
    trace (sign of the predictor's ``j``-th newest pre-trace entry; length
    ``h``).  With ``full_stream`` the history advances on *every* record —
    unconditional kinds contribute +1, matching ``note_branch`` pushes —
    instead of only on conditional outcomes.
    """
    init_signs = tuple(init_signs)
    if len(init_signs) != h:
        raise ValueError(f"init_signs must have length {h}")

    def build() -> np.ndarray:
        one, neg = np.int8(1), np.int8(-1)
        if full_stream:
            signs = np.where(
                trace.conditional_mask, np.where(trace.taken != 0, one, neg), one
            )
            pos = cond_positions(trace)
        else:
            signs = np.where(trace.conditional_columns()[1], one, neg)
            pos = np.arange(len(signs))
        # ext[p + h - a] is the sign ``a`` steps back from record ``p``;
        # the init block is oldest-first so a > p reads pre-trace signs.
        ext = np.concatenate([np.asarray(init_signs, dtype=np.int8)[::-1], signs])
        X = np.empty((len(pos), h + 1), dtype=np.int8)
        X[:, 0] = 1
        if h:
            offsets = (h - 1 - np.arange(h))[None, :]
            X[:, 1:] = ext[pos[:, None] + offsets]
        return X

    return plan_memo(trace, ("signed_hist", h, init_signs, bool(full_stream)), build)


def signed_history_lists(
    trace: BranchTrace,
    h: int,
    init_signs: Tuple[int, ...],
    full_stream: bool = False,
) -> List[List[int]]:
    """:func:`signed_history_matrix` decoded to plain lists (memoized).

    The sequential parts of the dot-product kernels walk the matrix row by
    row, where list indexing beats ndarray access; decoding is O(n·h), so
    replays of the same trace share one conversion.
    """
    init_signs = tuple(init_signs)
    return plan_memo(
        trace,
        ("signed_hist_list", h, init_signs, bool(full_stream)),
        lambda: signed_history_matrix(trace, h, init_signs, full_stream).tolist(),
    )
