"""Segmented numpy primitives for vectorized predictor replay.

The interesting problem is replaying a table of saturating counters over a
recorded branch stream without visiting branches one at a time.  A ±1
saturating counter is a clamped running sum, and a clamped-addition step

    f(x) = min(c, max(b, x + a))

is closed under composition: composing two such steps yields a third of the
same three-parameter shape.  That makes the per-table-entry replay a
*segmented inclusive prefix scan* over an associative operator, computable
with Hillis–Steele doubling in ``O(log max-run-length)`` vectorized passes:
sort the stream by table index (stable, so each entry's branches stay in
temporal order), scan within segments, and read each branch's pre-update
counter state — the value ``predict()`` would have seen — straight out of
the shifted scan.

The history helpers cover the other half of the reduction: for trace-driven
simulation the global history register (gshare) and the per-entry local
history registers (two-level-local) are pure functions of the recorded
``taken`` array, so the full index stream is computable up front with a few
shift-and-add passes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

import numpy as np

_INT = np.int64


@dataclass(frozen=True)
class CounterScan:
    """Result of replaying grouped saturating counters over a stream.

    Attributes:
        states_before: per-branch counter value *before* that branch's
            update, in the original stream order (what ``predict()`` sees).
        final_groups: the distinct group ids that were touched.
        final_states: the counter value of each touched group after the
            whole stream (for writing the table back).
    """

    states_before: np.ndarray
    final_groups: np.ndarray
    final_states: np.ndarray


@dataclass(frozen=True)
class LocalHistory:
    """Per-branch local-history values plus final register contents."""

    history: np.ndarray  # pattern before each branch, original order
    final_groups: np.ndarray  # touched first-level entries
    final_registers: np.ndarray  # their history registers after the stream


def _segment_starts(sorted_groups: np.ndarray) -> np.ndarray:
    """Boolean mask marking the first element of each group run."""
    n = len(sorted_groups)
    starts = np.empty(n, dtype=bool)
    if n:
        starts[0] = True
        np.not_equal(sorted_groups[1:], sorted_groups[:-1], out=starts[1:])
    return starts


def saturating_counter_scan(
    groups: np.ndarray,
    taken: np.ndarray,
    lo: int,
    hi: int,
    init: Union[int, np.ndarray],
) -> CounterScan:
    """Replay one ±1 saturating counter per group over a branch stream.

    Args:
        groups: table index of each branch (temporal order).
        taken: resolved direction of each branch (the counter trains up on
            taken, down on not-taken, clamped to ``[lo, hi]``).
        init: starting counter value — a scalar, or a per-branch array
            giving each branch its group's starting value (must be constant
            within a group; pass ``table[groups]`` for a warm table).

    Exactly equivalent to the scalar ``counter_update`` loop, including for
    non-zero starting tables.
    """
    n = len(groups)
    if n == 0:
        empty = np.empty(0, dtype=_INT)
        return CounterScan(empty, empty.copy(), empty.copy())
    # Sort by (run length, group): stable, so each group's branches keep
    # temporal order, and groups stay contiguous (equal group => equal
    # length => equal key).  Length-major ordering lets each doubling round
    # drop the prefix of already-finished segments — a position's composed
    # map is complete once ``d`` reaches its segment length — so total work
    # is ~sum(len * log len) per segment instead of n * log(longest run).
    counts = np.bincount(groups)
    lengths = counts[groups]
    key = lengths * (len(counts) + 1) + groups
    if int(key.max()) < (1 << 31):
        key = key.astype(np.int32)  # int32 stable argsort is radix-based
    order = np.argsort(key, kind="stable")
    g = groups[order]
    t = np.asarray(taken, dtype=bool)[order]
    sorted_lengths = lengths[order]
    init_arr = (
        np.asarray(init, dtype=_INT)[order]
        if isinstance(init, np.ndarray)
        else np.full(n, int(init), dtype=_INT)
    )

    starts = _segment_starts(g)
    start_idx = np.flatnonzero(starts)
    max_run = int(sorted_lengths[-1])

    # Each position starts as its own one-step map (a, b, c) with
    # f(x) = min(c, max(b, x + a)); doubling composes runs of them.  The
    # loop is memory-bound, so map parameters live in int32 (|a| <= n and
    # |b|, |c| <= |lo| + |hi| + 2n, far inside int32 for any real trace)
    # and each round writes into preallocated buffers.
    step = np.int32 if n < (1 << 30) else _INT
    gs = g.astype(step, copy=False) if g.dtype != step else g
    a = np.where(t, step(1), step(-1))
    b = np.full(n, lo, dtype=step)
    c = np.full(n, hi, dtype=step)
    buf_a = np.empty(n, dtype=step)
    buf_b = np.empty(n, dtype=step)
    buf_c = np.empty(n, dtype=step)
    buf_m = np.empty(n, dtype=bool)

    d = 1
    while d < max_run:
        # Positions in segments of length <= d already hold their full
        # prefix map; they still serve as read-only composition sources.
        first = max(int(np.searchsorted(sorted_lengths, d, side="right")), d)
        if first >= n:
            break
        m = n - first
        same = np.equal(gs[first:], gs[first - d : n - d], out=buf_m[:m])
        # Compose: later map (this position) after earlier map (d back);
        # positions whose source lies in another segment keep their map.
        ae, be, ce = a[first - d : n - d], b[first - d : n - d], c[first - d : n - d]
        al, bl, cl = a[first:], b[first:], c[first:]
        na = np.add(ae, al, out=buf_a[:m])
        nc = np.add(ce, al, out=buf_c[:m])
        np.maximum(bl, nc, out=nc)
        np.minimum(cl, nc, out=nc)
        nb = np.add(be, al, out=buf_b[:m])
        np.maximum(bl, nb, out=nb)
        np.copyto(al, na, where=same)
        np.copyto(cl, nc, where=same)
        np.copyto(bl, nb, where=same)
        d <<= 1

    states_after = np.minimum(c, np.maximum(b, init_arr + a))
    states_before = np.empty(n, dtype=_INT)
    states_before[0] = init_arr[0]
    states_before[1:] = states_after[:-1]
    states_before[starts] = init_arr[starts]

    out = np.empty(n, dtype=_INT)
    out[order] = states_before

    end_idx = np.append(start_idx[1:] - 1, n - 1)
    return CounterScan(out, g[start_idx], states_after[end_idx])


def packed_history(taken: np.ndarray, bits: int, init: int = 0) -> np.ndarray:
    """Global-history register value seen by each branch.

    ``h[i]`` is the masked shift register *before* branch ``i`` trains it:
    outcome ``i-1`` in the LSB, back through outcome ``i-bits``.  ``init``
    seeds the register (a warm predictor), contributing the high bits of
    the first ``bits`` positions.
    """
    n = len(taken)
    h = np.zeros(n, dtype=_INT)
    t = np.asarray(taken, dtype=_INT)
    for k in range(1, min(bits, n) + 1):
        h[k:] += t[:-k] << (k - 1)
    if init:
        mask = (1 << bits) - 1
        m = min(bits, n)
        h[:m] |= (int(init) << np.arange(m, dtype=_INT)) & mask
    return h


def final_history(taken: np.ndarray, bits: int, init: int = 0) -> int:
    """Register value after training on the whole stream (for writeback)."""
    n = len(taken)
    mask = (1 << bits) - 1
    t = np.asarray(taken, dtype=_INT)
    m = min(bits, n)
    packed = 0
    for j in range(m):
        packed |= int(t[n - 1 - j]) << j
    if n < bits:
        packed |= int(init) << n
    return packed & mask


def local_history(
    groups: np.ndarray,
    taken: np.ndarray,
    bits: int,
    init_table: np.ndarray,
) -> LocalHistory:
    """Per-branch local-history patterns for a two-level predictor.

    Each first-level entry (``groups``) keeps a ``bits``-wide shift
    register of its own branches' outcomes; ``history[i]`` is the register
    value branch ``i``'s ``predict()``/``update()`` read (i.e. *excluding*
    branch ``i`` itself).  ``init_table`` supplies warm register contents.
    """
    n = len(groups)
    if n == 0:
        empty = np.empty(0, dtype=_INT)
        return LocalHistory(empty, empty.copy(), empty.copy())
    mask = (1 << bits) - 1
    order = np.argsort(groups, kind="stable")
    g = groups[order]
    t = np.asarray(taken, dtype=_INT)[order]

    starts = _segment_starts(g)
    positions = np.arange(n, dtype=_INT)
    seg_first = np.maximum.accumulate(np.where(starts, positions, 0))

    h = np.zeros(n, dtype=_INT)
    for k in range(1, min(bits, n) + 1):
        in_seg = positions[k:] - k >= seg_first[k:]
        h[k:] += np.where(in_seg, t[:-k] << (k - 1), 0)
    # Warm registers: bits the stream has not yet displaced.  At within-run
    # offset o the initial register contributes (init << o) & mask, which
    # self-extinguishes once o >= bits.
    offset = positions - seg_first
    init_vals = np.asarray(init_table, dtype=_INT)[g]
    h += (init_vals << np.minimum(offset, bits)) & mask

    out = np.empty(n, dtype=_INT)
    out[order] = h

    start_idx = np.flatnonzero(starts)
    end_idx = np.append(start_idx[1:] - 1, n - 1)
    final_regs = ((h[end_idx] << 1) | t[end_idx]) & mask
    return LocalHistory(out, g[start_idx], final_regs)


def packed_bit_windows(bits: np.ndarray, width: int) -> np.ndarray:
    """Sliding ``width``-bit windows over a 0/1 stream, packed LSB-first.

    ``P[m] = sum_{u < width} bits[m-1-u] << u`` — the ``width`` newest bits
    *before* position ``m``, newest in the LSB; positions before the stream
    read as 0.  One such array per distinct compressed length is all a
    folded-history reconstruction needs: the fold register of a
    geometric-history predictor before record ``k`` is the XOR of masked
    chunks ``P[k - q*width]`` (see ``repro.kernels.batched``).
    """
    n = len(bits)
    P = np.zeros(n + 1, dtype=_INT)
    b = np.asarray(bits, dtype=_INT)
    for u in range(width):
        if u >= n:
            break
        P[u + 1 :] += b[: n - u] << u
    return P


def first_appearance_counts(
    keys: np.ndarray, weights_mask: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Group a stream by key, preserving first-appearance order.

    Returns ``(unique_keys, executions, flagged, order)`` where ``order``
    ranks the unique keys by their first occurrence in the stream —
    exactly the insertion order a scalar accumulation would produce —
    and ``flagged`` counts stream elements with ``weights_mask`` set.
    """
    uniq, first_idx, inv = np.unique(keys, return_index=True, return_inverse=True)
    executions = np.bincount(inv, minlength=len(uniq))
    flagged = np.bincount(inv[weights_mask], minlength=len(uniq))
    order = np.argsort(first_idx, kind="stable")
    return uniq, executions, flagged, order
