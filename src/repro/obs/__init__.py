"""``repro.obs``: observability for the reproduction's runtime layers.

Three coordinated facilities, all process-wide and all off by default so
the hot loops pay (at most) one attribute check:

* a **metrics registry** — counters, gauges, and timing histograms
  (``obs.counter("lab.sim.cache_miss")``, ``with obs.timer("sim.trace"):``)
  with a no-op fast path when disabled and optional sampling for timers
  that would otherwise fire in hot loops;
* **span tracing** — nested ``with obs.span("fig7", storage_kib=64):``
  blocks producing a per-experiment span tree with wall-time and
  child/self attribution;
* **structured logging** — a ``repro.*`` logger hierarchy configured from
  ``--log-level`` / ``REPRO_LOG_LEVEL`` (default WARNING, so the library
  stays silent unless asked).

Exporters render the registry as a human summary (:func:`render_summary`)
or a JSON document (:func:`write_metrics_json`, schema documented in
``docs/observability.md``).  Enable collection with :func:`enable` or
``REPRO_METRICS=1``; the experiment runner does this automatically when
``--metrics-out`` is passed.

Two further opt-in channels build on the same no-op-when-disabled
discipline: **timeline tracing** (:mod:`repro.obs.trace` — Chrome
trace-event export of spans, worker lanes, and fault/recovery instants,
enabled by ``--trace-out`` / ``REPRO_TRACE_OUT``) and **prediction
introspection** (:mod:`repro.obs.introspect` — per-static-branch
mispredict streams and TAGE provider attribution, enabled by
``REPRO_INTROSPECT=1``).
"""

from repro.obs.export import (
    METRICS_SCHEMA_VERSION,
    READABLE_SCHEMA_VERSIONS,
    read_metrics_json,
    render_summary,
    snapshot,
    write_metrics_json,
)
from repro.obs.introspect import (
    INTROSPECT_SCHEMA_VERSION,
    disable_introspection,
    enable_introspection,
    write_introspect_json,
)
from repro.obs.logconfig import configure_logging, get_logger
from repro.obs.registry import (
    counter,
    disable,
    enable,
    gauge,
    is_enabled,
    merge_snapshot,
    observe_timer,
    registry,
    reset,
    timer,
)
from repro.obs.runmeta import run_metadata
from repro.obs.spans import Span, current_span, span, span_trees
from repro.obs.trace import (
    disable_tracing,
    enable_tracing,
    is_tracing,
    write_trace_json,
)
from repro.obs.util import format_duration, format_rate

__all__ = [
    "INTROSPECT_SCHEMA_VERSION",
    "METRICS_SCHEMA_VERSION",
    "READABLE_SCHEMA_VERSIONS",
    "Span",
    "configure_logging",
    "counter",
    "current_span",
    "disable",
    "disable_introspection",
    "disable_tracing",
    "enable",
    "enable_introspection",
    "enable_tracing",
    "format_duration",
    "format_rate",
    "gauge",
    "get_logger",
    "is_enabled",
    "is_tracing",
    "merge_snapshot",
    "observe_timer",
    "read_metrics_json",
    "registry",
    "render_summary",
    "reset",
    "run_metadata",
    "snapshot",
    "span",
    "span_trees",
    "timer",
    "write_metrics_json",
    "write_introspect_json",
    "write_trace_json",
]
