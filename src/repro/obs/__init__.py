"""``repro.obs``: observability for the reproduction's runtime layers.

Three coordinated facilities, all process-wide and all off by default so
the hot loops pay (at most) one attribute check:

* a **metrics registry** — counters, gauges, and timing histograms
  (``obs.counter("lab.sim.cache_miss")``, ``with obs.timer("sim.trace"):``)
  with a no-op fast path when disabled and optional sampling for timers
  that would otherwise fire in hot loops;
* **span tracing** — nested ``with obs.span("fig7", storage_kib=64):``
  blocks producing a per-experiment span tree with wall-time and
  child/self attribution;
* **structured logging** — a ``repro.*`` logger hierarchy configured from
  ``--log-level`` / ``REPRO_LOG_LEVEL`` (default WARNING, so the library
  stays silent unless asked).

Exporters render the registry as a human summary (:func:`render_summary`)
or a JSON document (:func:`write_metrics_json`, schema documented in
``docs/observability.md``).  Enable collection with :func:`enable` or
``REPRO_METRICS=1``; the experiment runner does this automatically when
``--metrics-out`` is passed.
"""

from repro.obs.export import (
    METRICS_SCHEMA_VERSION,
    render_summary,
    snapshot,
    write_metrics_json,
)
from repro.obs.logconfig import configure_logging, get_logger
from repro.obs.registry import (
    counter,
    disable,
    enable,
    gauge,
    is_enabled,
    merge_snapshot,
    observe_timer,
    registry,
    reset,
    timer,
)
from repro.obs.spans import Span, current_span, span, span_trees
from repro.obs.util import format_duration, format_rate

__all__ = [
    "METRICS_SCHEMA_VERSION",
    "Span",
    "configure_logging",
    "counter",
    "current_span",
    "disable",
    "enable",
    "format_duration",
    "format_rate",
    "gauge",
    "get_logger",
    "is_enabled",
    "merge_snapshot",
    "observe_timer",
    "registry",
    "render_summary",
    "reset",
    "snapshot",
    "span",
    "span_trees",
    "timer",
    "write_metrics_json",
]
