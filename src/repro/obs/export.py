"""Exporters: human end-of-run summary and JSON metrics dump.

The JSON schema (``repro.obs/v2``) is documented in
``docs/observability.md``; briefly::

    {
      "schema": "repro.obs/v2",
      "meta":     {"git_sha": "...", "date": "...", "tier": "quick",
                   "seed": 0, "python": "...", "numpy": "...", ...},
      "counters": {"sim.branches": 123, ...},
      "gauges":   {"sim.branches_per_sec": 1.2e6, ...},
      "timers":   {"sim.trace": {"calls":..,"count":..,"total_s":..,
                                 "est_total_s":..,"min_s":..,"max_s":..,
                                 "mean_s":..,"p50_s":..,"p90_s":..}, ...},
      "spans":    [{"name":"table1","duration_s":..,"self_s":..,
                    "attrs":{...},"children":[...]}, ...]
    }

v1 files (no ``meta`` header) are still readable: :func:`read_metrics_json`
accepts both versions and returns a v2-shaped document (v1 gets an empty
``meta``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.obs.registry import registry
from repro.obs.runmeta import run_metadata
from repro.obs.spans import span_trees
from repro.obs.util import format_duration

METRICS_SCHEMA_VERSION = "repro.obs/v2"

#: Schema versions :func:`read_metrics_json` accepts.
READABLE_SCHEMA_VERSIONS = ("repro.obs/v1", "repro.obs/v2")


def snapshot(extra: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """JSON-serializable view of every collected metric and span tree."""
    reg = registry()
    doc: Dict[str, Any] = {
        "schema": METRICS_SCHEMA_VERSION,
        "meta": run_metadata(),
        "counters": reg.counters_dict(),
        "gauges": reg.gauges_dict(),
        "timers": reg.timers_dict(),
        "spans": span_trees(),
    }
    if extra:
        doc.update(extra)
    return doc


def read_metrics_json(path) -> Dict[str, Any]:
    """Load a metrics file written by any supported schema version.

    v1 files (pre run-metadata) are upgraded in memory to the v2 shape:
    they gain an empty ``meta`` dict, so readers can rely on the key being
    present.  Unknown schemas raise ``ValueError``.
    """
    with open(path) as f:
        doc = json.load(f)
    schema = doc.get("schema")
    if schema not in READABLE_SCHEMA_VERSIONS:
        raise ValueError(
            f"unsupported metrics schema {schema!r} in {path}; "
            f"expected one of {READABLE_SCHEMA_VERSIONS}"
        )
    doc.setdefault("meta", {})
    return doc


def write_metrics_json(path, extra: Optional[Dict[str, Any]] = None) -> Path:
    """Dump :func:`snapshot` to ``path`` (parent dirs created)."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    with open(out, "w") as f:
        json.dump(snapshot(extra), f, indent=2, sort_keys=True)
        f.write("\n")
    return out


def _render_span(sp: Dict[str, Any], depth: int, lines: List[str]) -> None:
    attrs = sp.get("attrs")
    attr_text = (
        " [" + ", ".join(f"{k}={v}" for k, v in attrs.items()) + "]" if attrs else ""
    )
    lines.append(
        f"  {'  ' * depth}{sp['name']}{attr_text}: "
        f"{format_duration(sp['duration_s'])} "
        f"(self {format_duration(sp['self_s'])})"
    )
    for child in sp.get("children", ()):
        _render_span(child, depth + 1, lines)


def render_summary(doc: Optional[Dict[str, Any]] = None) -> str:
    """Human-readable end-of-run summary of the registry and span trees."""
    doc = doc or snapshot()
    lines: List[str] = ["-- metrics " + "-" * 61]
    counters = doc.get("counters") or {}
    gauges = doc.get("gauges") or {}
    timers = doc.get("timers") or {}
    spans = doc.get("spans") or []

    if counters:
        width = max(len(n) for n in counters)
        lines.append("counters:")
        lines.extend(f"  {n:<{width}}  {v:>14,}" for n, v in counters.items())
    if gauges:
        width = max(len(n) for n in gauges)
        lines.append("gauges:")
        lines.extend(f"  {n:<{width}}  {v:>14,.3f}" for n, v in gauges.items())
    if timers:
        width = max(len(n) for n in timers)
        lines.append("timers:")
        for n, t in timers.items():
            sampled = (
                f" ({t['count']}/{t['calls']} sampled)"
                if t["count"] != t["calls"]
                else ""
            )
            lines.append(
                f"  {n:<{width}}  calls={t['calls']:<6} "
                f"total={format_duration(t['est_total_s']):<8} "
                f"mean={format_duration(t['mean_s']):<8} "
                f"p90={format_duration(t['p90_s'])}{sampled}"
            )
    if spans:
        lines.append("spans:")
        for sp in spans:
            _render_span(sp, 0, lines)
    if len(lines) == 1:
        lines.append("  (no metrics collected — is obs enabled?)")
    lines.append("-" * 72)
    return "\n".join(lines)
