"""Per-static-branch prediction introspection (``repro.obs.introspect/v1``).

The paper is a measurement study: its Table III and Fig. 6 come from asking,
*per static branch*, where TAGE-SC-L's predictions came from and where its
mispredictions cluster.  Aggregate counters (``tage.pred.provider`` etc.)
can't answer that, so this channel records — during ``simulate_trace`` —

* per-IP execution and misprediction counts,
* a (sampled, bounded) stream of mispredict instruction positions,
* TAGE provider attribution: bimodal base vs. alternate vs. which tagged
  table, plus loop-predictor overrides and SC flips (via the predictor's
  optional ``introspect_last()`` hook),
* per-slice mispredict counts (the H2P heatmap's raw data), and
* allocation churn per IP when the predictor tracks allocations.

Gating mirrors the rest of ``repro.obs``: off by default, enabled with
``REPRO_INTROSPECT=1`` or :func:`enable_introspection`; the simulator
checks :func:`is_enabled` **once per call** and the disabled hot loop is
untouched.  Introspection is observation-only — simulation statistics are
bit-identical with it on or off (asserted in ``tests/obs/test_introspect.py``
across the scalar, kernel, and parallel paths).

Knobs (environment): ``REPRO_INTROSPECT_SAMPLE`` keeps every Nth mispredict
position per branch (default 1 = all), ``REPRO_INTROSPECT_STREAM`` caps the
retained positions per branch (default 256), ``REPRO_INTROSPECT_TOPK``
bounds the per-branch entries in the exported report (default 128, by
misprediction count).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.config import (
    H2P_ACCURACY_THRESHOLD,
    H2P_MIN_EXECUTIONS,
    H2P_MIN_MISPREDICTIONS,
)

INTROSPECT_SCHEMA_VERSION = "repro.obs.introspect/v1"

_DEFAULT_STREAM_CAP = 256
_DEFAULT_TOPK = 128

#: Programmatic override; ``None`` defers to ``REPRO_INTROSPECT``.
_ENABLED: Optional[bool] = None
_REPORTS: List[Dict[str, Any]] = []
_CONTEXT: Dict[str, Any] = {}


def is_enabled() -> bool:
    """Whether introspection is on (checked once per ``simulate_trace``)."""
    if _ENABLED is not None:
        return _ENABLED
    return os.environ.get("REPRO_INTROSPECT", "") not in ("", "0", "false")


def enable_introspection() -> None:
    global _ENABLED
    _ENABLED = True


def disable_introspection() -> None:
    global _ENABLED
    _ENABLED = False


def set_context(workload: Optional[str] = None, input_name: Optional[Any] = None) -> None:
    """Label subsequent reports with the workload/input being simulated
    (the Lab sets this; cleared by passing ``None``)."""
    if workload is None:
        _CONTEXT.pop("workload", None)
    else:
        _CONTEXT["workload"] = workload
    if input_name is None:
        _CONTEXT.pop("input", None)
    else:
        _CONTEXT["input"] = input_name


def reports() -> List[Dict[str, Any]]:
    """All reports collected in this process (one per simulated trace)."""
    return list(_REPORTS)


def reset_introspection() -> None:
    """Drop collected reports and context (enabled state unchanged)."""
    _REPORTS.clear()
    _CONTEXT.clear()


class _IpIntro:
    """What the channel accumulates for one static branch."""

    __slots__ = (
        "execs",
        "mis",
        "stream_seen",
        "stream",
        "dropped",
        "providers",
        "loop_used",
        "sc_flipped",
        "slice_mis",
    )

    def __init__(self) -> None:
        self.execs = 0
        self.mis = 0
        self.stream_seen = 0  # sampling counter, separate from ``mis``
        self.stream: List[int] = []
        self.dropped = 0
        self.providers: Dict[str, int] = {}
        self.loop_used = 0
        self.sc_flipped = 0
        self.slice_mis: Dict[int, int] = {}


def _provider_key(provider: int, used_alt: bool) -> str:
    if provider < 0:
        return "base"
    if used_alt:
        return "alt"
    return f"table{provider}"


class BranchIntrospector:
    """Recorder for one ``simulate_trace`` call.

    The scalar loop calls :meth:`record` per scored conditional branch;
    the kernel path calls :meth:`record_kernel` once with the bulk arrays.
    Either way :func:`finish` turns the accumulated state into a report.
    """

    def __init__(
        self,
        predictor_name: str,
        slice_instructions: Optional[int],
        path: str,
    ) -> None:
        self.predictor_name = predictor_name
        self.slice_instructions = slice_instructions
        self.path = path
        self.sample = max(1, int(os.environ.get("REPRO_INTROSPECT_SAMPLE", "1") or 1))
        self.stream_cap = max(
            0, int(os.environ.get("REPRO_INTROSPECT_STREAM", _DEFAULT_STREAM_CAP) or 0)
        )
        self._ips: Dict[int, _IpIntro] = {}

    # -- scalar path -------------------------------------------------------

    def record(
        self,
        ip: int,
        pos: int,
        correct: bool,
        attr: Optional[Tuple[int, bool, bool, bool]],
    ) -> None:
        """One scored conditional branch; ``attr`` is the predictor's
        ``introspect_last()`` tuple (provider, used_alt, loop, sc) or None."""
        rec = self._ips.get(ip)
        if rec is None:
            rec = self._ips[ip] = _IpIntro()
        rec.execs += 1
        if attr is not None:
            provider, used_alt, loop_used, sc_flipped = attr
            key = _provider_key(provider, used_alt)
            rec.providers[key] = rec.providers.get(key, 0) + 1
            if loop_used:
                rec.loop_used += 1
            if sc_flipped:
                rec.sc_flipped += 1
        if not correct:
            rec.mis += 1
            self._note_mispredict(rec, pos)

    # -- kernel path -------------------------------------------------------

    def record_kernel(self, stats, mis_ips, mis_pos) -> None:
        """Bulk recording from the vectorized path: per-IP totals from the
        scored :class:`~repro.core.metrics.BranchStats`, streams from the
        mispredicted-branch ip/position arrays."""
        for ip, counts in stats.items():
            rec = self._ips.get(ip)
            if rec is None:
                rec = self._ips[ip] = _IpIntro()
            rec.execs += counts.executions
            rec.mis += counts.mispredictions
        if mis_ips is None:
            return
        ips_list = mis_ips.tolist()
        pos_list = mis_pos.tolist()
        get = self._ips.get
        for ip, pos in zip(ips_list, pos_list):
            rec = get(ip)
            if rec is None:  # defensive: stats and arrays share a source
                rec = self._ips[ip] = _IpIntro()
            self._note_mispredict(rec, pos)

    # -- shared ------------------------------------------------------------

    def _note_mispredict(self, rec: _IpIntro, pos: int) -> None:
        rec.stream_seen += 1
        if self.slice_instructions is not None:
            si = pos // self.slice_instructions
            rec.slice_mis[si] = rec.slice_mis.get(si, 0) + 1
        if (rec.stream_seen - 1) % self.sample:
            return
        if len(rec.stream) < self.stream_cap:
            rec.stream.append(pos)
        else:
            rec.dropped += 1

    def finish(self, predictor=None) -> Dict[str, Any]:
        """Build the report (pulling allocation stats off the predictor if
        it tracked them), append it to the process-wide list, return it."""
        alloc = getattr(predictor, "allocation_stats", None)
        topk = max(1, int(os.environ.get("REPRO_INTROSPECT_TOPK", _DEFAULT_TOPK) or 1))
        ranked = sorted(
            self._ips.items(), key=lambda kv: (-kv[1].mis, kv[0])
        )
        branches: List[Dict[str, Any]] = []
        for ip, rec in ranked[:topk]:
            accuracy = 1.0 - rec.mis / rec.execs if rec.execs else 1.0
            entry: Dict[str, Any] = {
                "ip": ip,
                "executions": rec.execs,
                "mispredictions": rec.mis,
                "accuracy": accuracy,
                "h2p": (
                    accuracy < H2P_ACCURACY_THRESHOLD
                    and rec.execs >= H2P_MIN_EXECUTIONS
                    and rec.mis >= H2P_MIN_MISPREDICTIONS
                ),
            }
            if rec.providers:
                entry["provider"] = dict(sorted(rec.providers.items()))
            if rec.loop_used:
                entry["loop_used"] = rec.loop_used
            if rec.sc_flipped:
                entry["sc_flipped"] = rec.sc_flipped
            if rec.stream:
                entry["mispredict_positions"] = list(rec.stream)
            if rec.dropped:
                entry["positions_dropped"] = rec.dropped
            if rec.slice_mis:
                entry["slice_mispredicts"] = {
                    str(k): v for k, v in sorted(rec.slice_mis.items())
                }
            if alloc is not None:
                entry["allocations"] = alloc.allocations_for(ip)
                entry["unique_entries"] = alloc.unique_entries_for(ip)
            branches.append(entry)

        report: Dict[str, Any] = {
            "predictor": self.predictor_name,
            "path": self.path,
            "slice_instructions": self.slice_instructions,
            "sample": self.sample,
            "stream_cap": self.stream_cap,
            "static_branches": len(self._ips),
            "cond_branches": sum(r.execs for r in self._ips.values()),
            "mispredictions": sum(r.mis for r in self._ips.values()),
            "branches": branches,
        }
        if len(self._ips) > topk:
            report["branches_truncated"] = len(self._ips) - topk
        if alloc is not None:
            report["total_allocations"] = alloc.total_allocations
        report.update(_CONTEXT)
        _REPORTS.append(report)
        return report


def begin(
    predictor_name: str, slice_instructions: Optional[int], path: str
) -> BranchIntrospector:
    """Open a recorder for one simulation (caller checked :func:`is_enabled`)."""
    return BranchIntrospector(predictor_name, slice_instructions, path)


def write_introspect_json(path) -> Path:
    """Dump every collected report as a schema-versioned JSON document."""
    from repro.obs.runmeta import run_metadata

    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    doc = {
        "schema": INTROSPECT_SCHEMA_VERSION,
        "meta": run_metadata(),
        "reports": reports(),
    }
    with open(out, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    return out
