"""Structured logging for the ``repro.*`` logger hierarchy.

Every module logs through ``obs.get_logger("lab")`` → ``repro.lab`` etc.,
so one call to :func:`configure_logging` (driven by ``--log-level`` or
``REPRO_LOG_LEVEL``) controls the whole reproduction.  The library never
configures logging on import — silent by default, like any library.
"""

from __future__ import annotations

import logging
import os
import sys
from typing import Optional

#: Root of the hierarchy; every repro logger is a child of this.
ROOT_LOGGER_NAME = "repro"

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
_DATE_FORMAT = "%H:%M:%S"

#: Marker attribute identifying the handler we installed (idempotence).
_HANDLER_FLAG = "_repro_obs_handler"


def get_logger(name: str = "") -> logging.Logger:
    """Logger under the ``repro.*`` hierarchy.

    ``get_logger("lab")`` → ``repro.lab``; names already rooted at
    ``repro`` are used as-is; the empty string returns the root.
    """
    if not name:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if name == ROOT_LOGGER_NAME or name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def resolve_level(level: Optional[str] = None) -> int:
    """Numeric level from an explicit name, ``REPRO_LOG_LEVEL``, or WARNING."""
    name = level or os.environ.get("REPRO_LOG_LEVEL") or "warning"
    resolved = logging.getLevelName(str(name).upper())
    if not isinstance(resolved, int):
        raise ValueError(f"unknown log level {name!r}")
    return resolved


def is_configured() -> bool:
    """Whether :func:`configure_logging` has installed our handler (used to
    decide if worker processes should replicate the logging setup)."""
    root = logging.getLogger(ROOT_LOGGER_NAME)
    return any(getattr(h, _HANDLER_FLAG, False) for h in root.handlers)


def configure_logging(
    level: Optional[str] = None, stream=None
) -> logging.Logger:
    """Attach a stream handler to the ``repro`` root logger and set level.

    Idempotent: re-invocation updates the level (and stream, if given)
    rather than stacking handlers.  Returns the configured root logger.
    """
    root = logging.getLogger(ROOT_LOGGER_NAME)
    root.setLevel(resolve_level(level))
    root.propagate = False

    existing = [h for h in root.handlers if getattr(h, _HANDLER_FLAG, False)]
    if existing and stream is None:
        return root
    for h in existing:
        root.removeHandler(h)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(logging.Formatter(_FORMAT, datefmt=_DATE_FORMAT))
    setattr(handler, _HANDLER_FLAG, True)
    root.addHandler(handler)
    return root
