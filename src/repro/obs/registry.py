"""Process-wide metrics registry: counters, gauges, timing histograms.

The registry is designed around one invariant: **when disabled, every
entry point costs a single attribute check and returns immediately**, so
instrumented hot loops (the simulator scores ~1M branches/s in pure
Python) are unaffected unless the user opts in.

Timers additionally support *sampling*: ``timer(name, sample=64)`` counts
every call but only measures wall-time for one call in 64, keeping
``perf_counter`` overhead out of tight loops while still estimating the
total (``est_total_s = mean_sampled * calls``).
"""

from __future__ import annotations

import os
import threading
from time import perf_counter
from typing import Dict, List, Optional

#: Ring-buffer capacity for per-timer duration samples (percentiles).
_TIMER_RING = 256


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time numeric metric (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Timer:
    """Aggregated wall-time observations for one named operation.

    Tracks every *call* but only aggregates *sampled* durations; a ring
    buffer of recent samples supports percentile estimates without
    unbounded growth.
    """

    __slots__ = ("name", "calls", "count", "total_s", "min_s", "max_s", "_ring")

    def __init__(self, name: str) -> None:
        self.name = name
        self.calls = 0  # every entry, sampled or not
        self.count = 0  # measured entries
        self.total_s = 0.0
        self.min_s = float("inf")
        self.max_s = 0.0
        self._ring: List[float] = []

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total_s += seconds
        if seconds < self.min_s:
            self.min_s = seconds
        if seconds > self.max_s:
            self.max_s = seconds
        ring = self._ring
        if len(ring) < _TIMER_RING:
            ring.append(seconds)
        else:
            ring[self.count % _TIMER_RING] = seconds

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    @property
    def est_total_s(self) -> float:
        """Estimated wall-time across *all* calls (sampling-corrected)."""
        return self.mean_s * self.calls

    def percentile(self, q: float) -> float:
        """Approximate percentile (0..1) over the retained sample ring."""
        if not self._ring:
            return 0.0
        ordered = sorted(self._ring)
        idx = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[idx]

    def to_dict(self) -> Dict[str, float]:
        return {
            "calls": self.calls,
            "count": self.count,
            "total_s": self.total_s,
            "est_total_s": self.est_total_s,
            "min_s": self.min_s if self.count else 0.0,
            "max_s": self.max_s,
            "mean_s": self.mean_s,
            "p50_s": self.percentile(0.50),
            "p90_s": self.percentile(0.90),
        }


class _TimerContext:
    """Context manager measuring one timer entry."""

    __slots__ = ("_timer", "_registry", "_extra", "_t0", "elapsed_s")

    def __init__(self, timer: Timer, registry: "MetricsRegistry", extra=()) -> None:
        self._timer = timer
        self._registry = registry
        self._extra = extra  # extra timer names receiving the same duration
        self.elapsed_s = 0.0

    def __enter__(self) -> "_TimerContext":
        self._t0 = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        dt = perf_counter() - self._t0
        self.elapsed_s = dt
        self._timer.observe(dt)
        for name in self._extra:
            t = self._registry.timer(name)
            t.calls += 1
            t.observe(dt)


class _NoopContext:
    """Shared do-nothing context manager (disabled / unsampled path)."""

    __slots__ = ()
    elapsed_s = 0.0

    def __enter__(self) -> "_NoopContext":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NOOP = _NoopContext()


class MetricsRegistry:
    """Holds every metric for one process; normally used via the module
    singleton (:func:`registry`) and the module-level helpers."""

    def __init__(self, enabled: Optional[bool] = None) -> None:
        if enabled is None:
            enabled = os.environ.get("REPRO_METRICS", "") not in ("", "0", "false")
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._timers: Dict[str, Timer] = {}

    # -- metric accessors (create on first use) ---------------------------

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            with self._lock:
                c = self._counters.setdefault(name, Counter(name))
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            with self._lock:
                g = self._gauges.setdefault(name, Gauge(name))
        return g

    def timer(self, name: str) -> Timer:
        t = self._timers.get(name)
        if t is None:
            with self._lock:
                t = self._timers.setdefault(name, Timer(name))
        return t

    # -- recording (no-op when disabled) ----------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        if not self.enabled:
            return
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        self.gauge(name).set(value)

    def time(self, name: str, sample: int = 1, extra=()) -> "_TimerContext | _NoopContext":
        if not self.enabled:
            return _NOOP
        t = self.timer(name)
        t.calls += 1
        if sample > 1 and t.calls % sample:
            return _NOOP
        return _TimerContext(t, self, extra)

    def observe(self, name: str, seconds: float) -> None:
        if not self.enabled:
            return
        t = self.timer(name)
        t.calls += 1
        t.observe(seconds)

    # -- cross-process aggregation ----------------------------------------

    def snapshot_for_merge(self) -> Dict[str, object]:
        """Mergeable view of this registry: counters, gauges, and timer
        aggregates plus the (bounded) duration-sample ring, so percentiles
        survive cross-process merges instead of collapsing to zero."""
        return {
            "counters": self.counters_dict(),
            "gauges": self.gauges_dict(),
            "timers": {
                name: {
                    "calls": t.calls,
                    "count": t.count,
                    "total_s": t.total_s,
                    "min_s": t.min_s if t.count else 0.0,
                    "max_s": t.max_s,
                    "samples": list(t._ring),
                }
                for name, t in sorted(self._timers.items())
            },
        }

    def merge_snapshot(self, snap: Dict[str, object]) -> None:
        """Fold another registry's :meth:`snapshot_for_merge` into this one
        (aggregating worker-process metrics into the parent).  Counters and
        timer aggregates add; gauges are last-write-wins.  No-op when
        disabled."""
        if not self.enabled:
            return
        for name, value in (snap.get("counters") or {}).items():
            self.counter(name).inc(value)
        for name, value in (snap.get("gauges") or {}).items():
            self.gauge(name).set(value)
        for name, agg in (snap.get("timers") or {}).items():
            t = self.timer(name)
            t.calls += agg.get("calls", 0)
            count = agg.get("count", 0)
            if count:
                t.count += count
                t.total_s += agg.get("total_s", 0.0)
                if agg.get("min_s", 0.0) < t.min_s:
                    t.min_s = agg["min_s"]
                if agg.get("max_s", 0.0) > t.max_s:
                    t.max_s = agg["max_s"]
                ring = t._ring
                slot = t.count
                for seconds in agg.get("samples", ()):
                    if len(ring) < _TIMER_RING:
                        ring.append(seconds)
                    else:
                        ring[slot % _TIMER_RING] = seconds
                        slot += 1

    # -- introspection ----------------------------------------------------

    def counters_dict(self) -> Dict[str, int]:
        return {name: c.value for name, c in sorted(self._counters.items())}

    def gauges_dict(self) -> Dict[str, float]:
        return {name: g.value for name, g in sorted(self._gauges.items())}

    def timers_dict(self) -> Dict[str, Dict[str, float]]:
        return {name: t.to_dict() for name, t in sorted(self._timers.items())}

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._timers.clear()


#: The process-wide registry instance.
_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide :class:`MetricsRegistry` singleton."""
    return _REGISTRY


def enable() -> None:
    """Turn metric (and span) collection on for this process."""
    _REGISTRY.enabled = True


def disable() -> None:
    """Turn metric (and span) collection off (fast no-op paths resume)."""
    _REGISTRY.enabled = False


def is_enabled() -> bool:
    return _REGISTRY.enabled


def reset() -> None:
    """Clear all collected metrics, spans, trace events, and introspection
    reports (enabled states unchanged)."""
    from repro.obs import introspect, spans, trace  # local: avoid cycles

    _REGISTRY.reset()
    spans.reset_spans()
    trace.reset_trace()
    introspect.reset_introspection()


def counter(name: str, amount: int = 1) -> None:
    """Increment counter ``name`` by ``amount`` (no-op when disabled)."""
    if not _REGISTRY.enabled:
        return
    _REGISTRY.counter(name).inc(amount)


def gauge(name: str, value: float) -> None:
    """Set gauge ``name`` to ``value`` (no-op when disabled)."""
    if not _REGISTRY.enabled:
        return
    _REGISTRY.gauge(name).set(value)


def timer(name: str, sample: int = 1, extra=()):
    """Context manager timing a block into timer ``name``.

    ``sample=N`` measures only one call in N (all calls are still counted);
    ``extra`` names additional timers that receive the same duration (e.g.
    a per-predictor breakdown alongside the aggregate).
    """
    return _REGISTRY.time(name, sample=sample, extra=extra)


def observe_timer(name: str, seconds: float) -> None:
    """Record an externally measured duration into timer ``name``."""
    _REGISTRY.observe(name, seconds)


def merge_snapshot(snap: Dict[str, object]) -> None:
    """Fold a :meth:`MetricsRegistry.snapshot_for_merge` dict (typically
    from a worker process) into the process-wide registry."""
    _REGISTRY.merge_snapshot(snap)
