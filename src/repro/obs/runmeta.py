"""Run metadata embedded in every exported artifact.

Metrics files, timeline traces, introspection reports, and benchmark
results from different PRs are only comparable if each one records *what*
produced it.  :func:`run_metadata` gathers that provenance once per
process — git SHA, ISO date, config tier, seed, interpreter and numpy
versions, host — and every exporter embeds it verbatim.

The git lookup shells out once and caches; outside a git checkout (e.g.
an installed wheel or an exported tarball) the SHA fields degrade to
``None`` rather than failing.
"""

from __future__ import annotations

import os
import platform
import subprocess
import sys
from datetime import datetime, timezone
from typing import Any, Dict, Optional, Tuple

_git_cache: Optional[Tuple[Optional[str], bool]] = None


def _git_state(fresh: bool = False) -> Tuple[Optional[str], bool]:
    """``(sha, dirty)`` for the enclosing git checkout, cached per process.

    ``fresh=True`` bypasses (and refreshes) the cache: long-lived
    processes that commit mid-run — or benchmark harnesses whose import
    happened before a checkout moved — must resolve HEAD at export time,
    not replay whatever the first artifact export saw.
    """
    global _git_cache
    if _git_cache is not None and not fresh:
        return _git_cache
    sha: Optional[str] = None
    dirty = False
    try:
        repo_dir = os.path.dirname(os.path.abspath(__file__))
        sha = (
            subprocess.run(
                ["git", "rev-parse", "HEAD"],
                cwd=repo_dir,
                capture_output=True,
                text=True,
                timeout=10,
                check=True,
            ).stdout.strip()
            or None
        )
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=repo_dir,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout
        dirty = bool(status.strip())
    except (OSError, subprocess.SubprocessError):
        sha = None
        dirty = False
    _git_cache = (sha, dirty)
    return _git_cache


def _numpy_version() -> Optional[str]:
    try:
        import numpy

        return numpy.__version__
    except Exception:
        return None


def run_metadata(fresh: bool = False) -> Dict[str, Any]:
    """Provenance header for exported artifacts (fresh timestamp each call).

    ``fresh=True`` re-resolves the git state instead of reusing the
    per-process cache — pass it when the artifact must pin the HEAD *at
    export time* (e.g. ``repro.bench`` writing ``BENCH_core.json``).
    """
    from repro.config import active_tier

    sha, dirty = _git_state(fresh=fresh)
    return {
        "git_sha": sha,
        "git_dirty": dirty,
        "date": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "tier": active_tier().name,
        "seed": int(os.environ.get("REPRO_SEED", "0") or 0),
        "python": platform.python_version(),
        "numpy": _numpy_version(),
        "host": platform.node(),
        "platform": sys.platform,
    }
