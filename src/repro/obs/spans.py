"""Span tracing: nested timed blocks forming per-experiment trees.

A span is a named, attributed interval of wall-time; spans nest via a
thread-local stack, so ``with obs.span("fig7"):`` around an experiment and
``with obs.span("lab.simulate", workload=...):`` inside the lab yield a
tree whose root is the experiment.  Each span knows its total duration and
its *self time* (total minus direct children), which is what makes the
trees useful for attribution: a ``fig7`` root whose children account for
95% of its time says the experiment driver itself is cheap.

Spans always measure themselves (the context manager yields a live
:class:`Span` either way, so callers can read ``elapsed_s``), but they are
only linked into the exported tree when collection is enabled — keeping
the disabled path allocation-light and the exported data opt-in.
"""

from __future__ import annotations

import threading
from time import perf_counter
from typing import Any, Dict, List, Optional

from repro.obs import trace
from repro.obs.registry import is_enabled


class Span:
    """One timed, attributed, possibly-nested interval."""

    __slots__ = ("name", "attrs", "children", "start_s", "end_s", "_recorded")

    def __init__(self, name: str, attrs: Optional[Dict[str, Any]] = None) -> None:
        self.name = name
        self.attrs = attrs or {}
        self.children: List["Span"] = []
        self.start_s = 0.0
        self.end_s: Optional[float] = None
        self._recorded = False

    @property
    def duration_s(self) -> float:
        end = self.end_s if self.end_s is not None else perf_counter()
        return end - self.start_s

    #: Alias used by callers that only care about the measured time.
    elapsed_s = duration_s

    @property
    def self_s(self) -> float:
        """Wall-time not attributed to direct children."""
        return max(0.0, self.duration_s - sum(c.duration_s for c in self.children))

    def to_dict(self) -> Dict[str, Any]:
        d: Dict[str, Any] = {
            "name": self.name,
            "duration_s": self.duration_s,
            "self_s": self.self_s,
        }
        if self.attrs:
            d["attrs"] = dict(self.attrs)
        if self.children:
            d["children"] = [c.to_dict() for c in self.children]
        return d


class _SpanContext:
    """Context manager running one span (recording decided at entry)."""

    __slots__ = ("_span",)

    def __init__(self, span: Span) -> None:
        self._span = span

    def __enter__(self) -> Span:
        sp = self._span
        if is_enabled():
            sp._recorded = True
            stack = _stack()
            if stack:
                stack[-1].children.append(sp)
            stack.append(sp)
        sp.start_s = perf_counter()
        return sp

    def __exit__(self, exc_type, exc, tb) -> None:
        sp = self._span
        sp.end_s = perf_counter()
        if not sp._recorded:
            return
        stack = _stack()
        # Tolerate enable/disable mid-flight: pop only our own frame.
        if stack and stack[-1] is sp:
            stack.pop()
        elif sp in stack:
            stack.remove(sp)
        if not stack:
            with _ROOTS_LOCK:
                _ROOTS.append(sp)
        # Mirror the finished interval onto the timeline (no-op fast path
        # inside when tracing is off).
        trace.span_event(sp.name, sp.start_s, sp.end_s, sp.attrs)


_LOCAL = threading.local()
_ROOTS: List[Span] = []
_ROOTS_LOCK = threading.Lock()


def _stack() -> List[Span]:
    stack = getattr(_LOCAL, "stack", None)
    if stack is None:
        stack = _LOCAL.stack = []
    return stack


def span(name: str, **attrs: Any) -> _SpanContext:
    """Open a span named ``name`` with the given attributes.

    Example::

        with obs.span("fig7", storage_kib=64) as sp:
            ...
        print(sp.duration_s)
    """
    return _SpanContext(Span(name, attrs))


def current_span() -> Optional[Span]:
    """The innermost open recorded span on this thread, if any."""
    stack = _stack()
    return stack[-1] if stack else None


def span_trees() -> List[Dict[str, Any]]:
    """Completed root spans (this thread and others), as nested dicts."""
    with _ROOTS_LOCK:
        return [s.to_dict() for s in _ROOTS]


def reset_spans() -> None:
    """Drop all completed spans and any open stack on this thread."""
    with _ROOTS_LOCK:
        _ROOTS.clear()
    _LOCAL.stack = []
