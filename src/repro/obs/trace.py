"""Timeline trace export in the Chrome trace-event format.

Where the metrics registry answers "how much" and span trees answer "what
nested inside what", a *timeline* answers "when, and on which lane": a
``table1 --jobs 4`` run renders as one lane per worker process plus the
parent's experiment spans, with queue wait, retries, pool rebuilds, serial
fallbacks, and injected faults visible as events.  The exported file is
plain `Chrome trace-event JSON`__ — open it directly in ``chrome://tracing``
or https://ui.perfetto.dev.

__ https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

Collection follows the ``repro.obs`` contract: **off by default, one
attribute check when disabled**.  Enable with :func:`enable_tracing` (the
runner does this for ``--trace-out`` / ``REPRO_TRACE_OUT``); events
accumulate in memory and :func:`write_trace_json` renders them.

Event sources
-------------

* every recorded **span** becomes a complete (``ph: "X"``) event on its
  thread's lane;
* the parallel scheduler emits one complete event per **worker job** on a
  per-worker-process lane (plus a ``queue_wait`` event covering submit →
  start), reconstructed in the parent from each job's
  :class:`~repro.parallel.jobs.WorkerReport` — workers never write to the
  collector themselves;
* **instant** (``ph: "i"``) events mark scheduler recoveries (retry, pool
  rebuild, job timeout, serial fallback) and every injected fault from
  :mod:`repro.resilience.faults`.

Two clocks feed the timeline: spans carry ``perf_counter`` timestamps,
worker reports carry ``monotonic`` ones.  Both epochs are captured at
:func:`enable_tracing` time and each event kind is converted against its
own epoch (on Linux the two clocks share CLOCK_MONOTONIC, so the lanes
line up exactly).
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from time import monotonic, perf_counter
from typing import Any, Dict, List, Optional

#: Hard cap on retained events; a runaway sweep degrades to dropping
#: events (counted in ``dropped_events``) instead of exhausting memory.
MAX_TRACE_EVENTS = 200_000

#: Lane (``tid``) reserved for the main thread.
MAIN_LANE = 0


class TraceCollector:
    """In-memory store of trace events for one process."""

    def __init__(self) -> None:
        self.enabled = False
        self._lock = threading.Lock()
        self._events: List[Dict[str, Any]] = []
        self._lanes: Dict[str, int] = {}
        self._next_lane = 1
        self._pc0 = 0.0
        self._mono0 = 0.0
        self._pid = 0
        self.dropped_events = 0
        self._main_thread = threading.main_thread().ident

    # -- lifecycle ---------------------------------------------------------

    def enable(self) -> None:
        """Start collecting; both clock epochs are captured now."""
        self._pc0 = perf_counter()
        self._mono0 = monotonic()
        self._pid = os.getpid()
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        with self._lock:
            self._events.clear()
            self._lanes.clear()
            self._next_lane = 1
            self.dropped_events = 0

    # -- lanes -------------------------------------------------------------

    def lane(self, name: str) -> int:
        """Stable ``tid`` for a named lane (allocated on first use)."""
        with self._lock:
            tid = self._lanes.get(name)
            if tid is None:
                tid = self._lanes[name] = self._next_lane
                self._next_lane += 1
            return tid

    def _thread_lane(self) -> int:
        ident = threading.get_ident()
        if ident == self._main_thread:
            return MAIN_LANE
        return self.lane(f"thread-{ident}")

    # -- event recording ---------------------------------------------------

    def _append(self, event: Dict[str, Any]) -> None:
        with self._lock:
            if len(self._events) >= MAX_TRACE_EVENTS:
                self.dropped_events += 1
                return
            self._events.append(event)

    def complete_pc(
        self,
        name: str,
        start_pc: float,
        end_pc: float,
        tid: Optional[int] = None,
        args: Optional[Dict[str, Any]] = None,
        cat: str = "span",
    ) -> None:
        """Complete event from ``perf_counter`` timestamps."""
        if not self.enabled:
            return
        event: Dict[str, Any] = {
            "name": name,
            "ph": "X",
            "cat": cat,
            "ts": (start_pc - self._pc0) * 1e6,
            "dur": max(0.0, (end_pc - start_pc)) * 1e6,
            "pid": self._pid,
            "tid": self._thread_lane() if tid is None else tid,
        }
        if args:
            event["args"] = args
        self._append(event)

    def complete_monotonic(
        self,
        name: str,
        start_mono: float,
        end_mono: float,
        lane: str,
        args: Optional[Dict[str, Any]] = None,
        cat: str = "job",
    ) -> None:
        """Complete event from ``monotonic`` timestamps on a named lane."""
        if not self.enabled:
            return
        event: Dict[str, Any] = {
            "name": name,
            "ph": "X",
            "cat": cat,
            "ts": (start_mono - self._mono0) * 1e6,
            "dur": max(0.0, (end_mono - start_mono)) * 1e6,
            "pid": self._pid,
            "tid": self.lane(lane),
        }
        if args:
            event["args"] = args
        self._append(event)

    def instant(
        self,
        name: str,
        lane: Optional[str] = None,
        args: Optional[Dict[str, Any]] = None,
        cat: str = "event",
    ) -> None:
        """Instant event stamped "now"; global scope unless a lane is given."""
        if not self.enabled:
            return
        event: Dict[str, Any] = {
            "name": name,
            "ph": "i",
            "cat": cat,
            "ts": (perf_counter() - self._pc0) * 1e6,
            "pid": self._pid,
            "tid": self._thread_lane() if lane is None else self.lane(lane),
            "s": "g" if lane is None else "t",
        }
        if args:
            event["args"] = args
        self._append(event)

    # -- export ------------------------------------------------------------

    def events(self) -> List[Dict[str, Any]]:
        """Copy of the collected events plus lane-name metadata events."""
        with self._lock:
            events = list(self._events)
            lanes = dict(self._lanes)
        meta: List[Dict[str, Any]] = [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": self._pid,
                "tid": MAIN_LANE,
                "args": {"name": "main"},
            }
        ]
        for lane_name, tid in sorted(lanes.items(), key=lambda kv: kv[1]):
            meta.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": self._pid,
                    "tid": tid,
                    "args": {"name": lane_name},
                }
            )
        return meta + events

    def document(self, extra: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """The full trace-event JSON document (``traceEvents`` container)."""
        from repro.obs.runmeta import run_metadata

        other: Dict[str, Any] = dict(run_metadata())
        if self.dropped_events:
            other["dropped_events"] = self.dropped_events
        if extra:
            other.update(extra)
        return {
            "traceEvents": self.events(),
            "displayTimeUnit": "ms",
            "otherData": other,
        }


#: The process-wide collector instance.
_COLLECTOR = TraceCollector()


def collector() -> TraceCollector:
    """The process-wide :class:`TraceCollector` singleton."""
    return _COLLECTOR


def enable_tracing() -> None:
    """Start timeline collection for this process."""
    _COLLECTOR.enable()


def disable_tracing() -> None:
    """Stop timeline collection (collected events are kept until reset)."""
    _COLLECTOR.disable()


def is_tracing() -> bool:
    return _COLLECTOR.enabled


def reset_trace() -> None:
    """Drop all collected events and lane assignments."""
    _COLLECTOR.reset()


def trace_out_path() -> Optional[str]:
    """The ``REPRO_TRACE_OUT`` destination, if configured."""
    path = os.environ.get("REPRO_TRACE_OUT", "").strip()
    return path or None


# -- emit helpers (each starts with the one-attribute disabled check) ------


def span_event(name: str, start_pc: float, end_pc: float, attrs=None) -> None:
    """Record a completed span interval on the calling thread's lane."""
    if not _COLLECTOR.enabled:
        return
    _COLLECTOR.complete_pc(name, start_pc, end_pc, args=attrs or None, cat="span")


def worker_job_event(
    name: str, worker_pid: int, t_start: float, t_end: float, args=None
) -> None:
    """Record one worker job on its worker-process lane (monotonic clock)."""
    if not _COLLECTOR.enabled:
        return
    _COLLECTOR.complete_monotonic(
        name, t_start, t_end, lane=f"worker-{worker_pid}", args=args, cat="job"
    )


def queue_wait_event(worker_pid: int, t_submit: float, t_start: float, args=None) -> None:
    """Record submit → start queue wait on the worker's lane."""
    if not _COLLECTOR.enabled:
        return
    if t_start < t_submit:  # cross-clock skew: drop rather than lie
        return
    _COLLECTOR.complete_monotonic(
        "queue_wait", t_submit, t_start, lane=f"worker-{worker_pid}",
        args=args, cat="queue",
    )


def serial_job_event(name: str, t_start: float, t_end: float, args=None) -> None:
    """Record a degraded in-process job on the dedicated fallback lane."""
    if not _COLLECTOR.enabled:
        return
    _COLLECTOR.complete_monotonic(
        name, t_start, t_end, lane="serial-fallback", args=args, cat="job"
    )


def instant_event(name: str, args=None, lane: Optional[str] = None) -> None:
    """Record an instant marker (retry, rebuild, fault, fallback...)."""
    if not _COLLECTOR.enabled:
        return
    _COLLECTOR.instant(name, lane=lane, args=args)


def write_trace_json(path, extra: Optional[Dict[str, Any]] = None) -> Path:
    """Dump the collected timeline to ``path`` (parent dirs created)."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    with open(out, "w") as f:
        json.dump(_COLLECTOR.document(extra), f, indent=1)
        f.write("\n")
    return out
