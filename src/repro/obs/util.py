"""Small formatting helpers shared by exporters and the CLI."""

from __future__ import annotations


def format_duration(seconds: float) -> str:
    """Adaptive human duration: ms below 1s, one decimal below 10s.

    >>> format_duration(0.0412), format_duration(3.21), format_duration(45.2)
    ('41ms', '3.2s', '45s')
    """
    if seconds < 0:
        return f"-{format_duration(-seconds)}"
    if seconds < 1.0:
        ms = seconds * 1000.0
        return f"{ms:.1f}ms" if ms < 10 else f"{ms:.0f}ms"
    if seconds < 10.0:
        return f"{seconds:.1f}s"
    if seconds < 120.0:
        return f"{seconds:.0f}s"
    return f"{seconds / 60.0:.1f}min"


def format_rate(count: float, seconds: float, unit: str = "/s") -> str:
    """Human rate with k/M scaling: ``format_rate(2_400_000, 2)`` → '1.2M/s'."""
    if seconds <= 0:
        return f"?{unit}"
    rate = count / seconds
    if rate >= 1e6:
        return f"{rate / 1e6:.2f}M{unit}"
    if rate >= 1e3:
        return f"{rate / 1e3:.1f}k{unit}"
    return f"{rate:.1f}{unit}"
