"""``repro.parallel``: process-pool fan-out for the simulation engine.

The paper's methodology is embarrassingly parallel — every table and
figure aggregates independent (workload, input, predictor) simulations —
so the :class:`~repro.experiments.lab.Lab` plans each experiment's full
request set up front (:mod:`repro.experiments.plans`), dedupes it against
its caches, and hands the remainder to a :class:`ParallelScheduler` that
fans jobs out across worker processes.  Workers rebuild workloads and
predictors from names via the existing registries; only small
:class:`SimJob` tuples and ``SimulationResult`` payloads cross the
process boundary, and all simulation is seeded, so parallel runs are
bit-identical to serial ones.

Select the worker count with ``--jobs/-j`` on the CLI, ``jobs=`` on
``Lab``, or ``$REPRO_JOBS`` (default 1 = exact serial behavior; <= 0
means all cores).  See ``docs/performance.md``.
"""

from repro.parallel.jobs import SimJob, WorkerReport, run_sim_job, worker_init
from repro.parallel.scheduler import ParallelScheduler, resolve_jobs

__all__ = [
    "ParallelScheduler",
    "SimJob",
    "WorkerReport",
    "resolve_jobs",
    "run_sim_job",
    "worker_init",
]
