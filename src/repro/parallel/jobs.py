"""Job specs and the worker-process entry point for parallel simulation.

Only small, picklable values cross the process boundary: a :class:`SimJob`
names its workload and predictor, and the worker rebuilds both from the
existing registries (:data:`repro.experiments.lab.PREDICTOR_FACTORIES`,
:func:`repro.experiments.lab.workload_spec`).  Everything simulated is
seeded per (workload, input) and per predictor construction, so a worker
produces byte-identical :class:`SimulationResult`s to the serial path.

Workers keep a small per-process LRU of generated traces so the jobs for
one (workload, input) pair — e.g. the six storage presets of Fig. 7 —
share a single trace generation when they land on the same worker.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass
from time import monotonic
from typing import Any, Dict, Optional, Tuple

#: Traces retained per worker process (override: ``REPRO_WORKER_TRACE_CACHE``).
TRACE_CACHE_CAP = max(1, int(os.environ.get("REPRO_WORKER_TRACE_CACHE", "4") or 4))


@dataclass(frozen=True)
class SimJob:
    """One simulation request, fully described by names and sizes."""

    workload: str
    input_index: int
    instructions: int
    predictor: str
    slice_instructions: int

    def key(self) -> Tuple[str, int, int, str, int]:
        """The Lab's simulation-cache key for this job."""
        return (
            self.workload,
            self.input_index,
            self.instructions,
            self.predictor,
            self.slice_instructions,
        )


@dataclass(frozen=True)
class BatchSimJob:
    """A multi-configuration simulation request: one trace, many predictors.

    The worker replays all ``predictors`` over a single trace pass via
    :func:`repro.pipeline.simulator.simulate_trace_batch` (the batched
    TAGE-SC-L kernel shares history reconstruction and folded-history
    index streams across configurations) and returns one
    :class:`SimulationResult` per label, in order.  Each result lands in
    the Lab's cache under the same per-predictor key an equivalent
    :class:`SimJob` would have used, so render paths stay oblivious.
    """

    workload: str
    input_index: int
    instructions: int
    predictors: Tuple[str, ...]
    slice_instructions: int

    @property
    def predictor(self) -> str:
        """Synthetic label for logs and timeline lanes."""
        return "batch[" + "+".join(self.predictors) + "]"

    def key(self) -> Tuple[str, int, int, Tuple[str, ...], int]:
        """Scheduling-dedup key (not a Lab cache key; see sim_keys)."""
        return (
            self.workload,
            self.input_index,
            self.instructions,
            self.predictors,
            self.slice_instructions,
        )

    def sim_keys(self) -> Tuple[Tuple[str, int, int, str, int], ...]:
        """The per-predictor Lab cache keys this job populates."""
        return tuple(
            (self.workload, self.input_index, self.instructions, p,
             self.slice_instructions)
            for p in self.predictors
        )


#: Relative per-branch cost of the batched TAGE family walk vs. a fully
#: vectorized kernel predictor.  The exact ratio varies with preset size
#: and trace shape; scheduling only needs the order of magnitude so the
#: longest-job-first sort puts TAGE work ahead of kernel work.
TAGE_FAMILY_WEIGHT = 25.0


def predictor_weight(name: str) -> float:
    """Relative per-instruction simulation cost of a predictor label.

    TAGE / TAGE-SC-L replays (batched or scalar) dominate every other
    predictor by more than an order of magnitude, so a coarse two-level
    weight is enough to keep a straggler off the tail of a batch.
    """
    return TAGE_FAMILY_WEIGHT if name.startswith("tage") else 1.0


def estimated_cost(job: "SimJob | BatchSimJob") -> float:
    """Scheduling estimate: instructions × summed predictor weight.

    Used by :class:`repro.parallel.scheduler.ParallelScheduler` to order
    submissions longest-first.  A :class:`BatchSimJob` pays once per
    member configuration (the shared trace pass is cheap next to the
    per-preset walks).
    """
    members = job.predictors if isinstance(job, BatchSimJob) else (job.predictor,)
    return job.instructions * sum(predictor_weight(p) for p in members)


@dataclass(frozen=True)
class WorkerReport:
    """Timing and metrics a worker returns alongside its result.

    Timestamps are ``time.monotonic()`` values; on Linux that clock is
    system-wide, so the parent can difference them against its own submit
    times to estimate queue wait.  ``metrics`` is a
    :meth:`MetricsRegistry.snapshot_for_merge` dict (or ``None`` when
    collection is disabled) covering exactly this job.  ``pid`` names the
    executing worker process — the parent's timeline export keys one lane
    per worker off it.
    """

    t_start: float
    t_end: float
    metrics: Optional[Dict[str, Any]] = None
    pid: int = 0

    @property
    def busy_s(self) -> float:
        return self.t_end - self.t_start


_worker_obs_enabled = False
_worker_trace_store: Optional[Any] = None
_trace_cache: "OrderedDict[Tuple[str, int, int], Any]" = OrderedDict()


def worker_init(
    obs_enabled: bool,
    log_level: Optional[str],
    trace_store_dir: Optional[str] = None,
    faults_spec: Optional[str] = None,
) -> None:
    """Initialize one worker process to mirror the parent's observability.

    Start-method agnostic: under ``fork`` this re-applies inherited state,
    under ``spawn`` it creates it.  ``log_level`` is a level *name* (or
    ``None`` when the parent never configured logging).  When the parent
    Lab has a cache directory, ``trace_store_dir`` points the worker at
    the shared on-disk trace store.  ``faults_spec`` replicates the
    parent's programmatically installed fault plan (worker-side storage
    fault sites count opportunities per process).
    """
    global _worker_obs_enabled, _worker_trace_store
    from repro import obs

    _worker_obs_enabled = bool(obs_enabled)
    if _worker_obs_enabled:
        obs.enable()
    else:
        obs.disable()
    # Timeline collection is parent-only: the parent reconstructs worker
    # lanes from WorkerReports, so any collector state inherited via fork
    # is discarded (a worker writing its own file would race the parent's).
    obs.disable_tracing()
    obs.reset()
    if log_level is not None:
        obs.configure_logging(log_level)
    if faults_spec is not None:
        from repro.resilience import faults

        faults.install(faults_spec)
    if trace_store_dir is not None:
        from repro.workloads.trace_store import TraceStore

        _worker_trace_store = TraceStore(trace_store_dir)
    else:
        _worker_trace_store = None


def _worker_trace(workload: str, input_index: int, instructions: int):
    """Per-process LRU over generated traces, read through the shared
    on-disk trace store when the parent Lab configured one."""
    from repro import obs
    from repro.core.types import WorkloadTrace
    from repro.experiments.lab import workload_spec
    from repro.workloads import trace_workload

    key = (workload, input_index, instructions)
    cached = _trace_cache.get(key)
    if cached is not None:
        _trace_cache.move_to_end(key)
        obs.counter("lab.parallel.worker.trace_cache_hit")
        return cached
    if _worker_trace_store is not None:
        stored = _worker_trace_store.load(workload, input_index, instructions)
        if stored is not None:
            spec = workload_spec(workload)
            # Workers only ever feed ``.trace`` to the simulator, so the
            # program is not rebuilt here (unlike Lab.trace store hits).
            cached = WorkloadTrace(
                benchmark=spec.name,
                input_name=spec.input_name(input_index),
                trace=stored,
                metadata={"instructions": instructions, "from_trace_store": True},
            )
            _trace_cache[key] = cached
            while len(_trace_cache) > TRACE_CACHE_CAP:
                _trace_cache.popitem(last=False)
            return cached
    obs.counter("lab.parallel.worker.trace_build")
    trace = trace_workload(workload_spec(workload), input_index, instructions=instructions)
    if _worker_trace_store is not None:
        _worker_trace_store.store(workload, input_index, instructions, trace.trace)
    _trace_cache[key] = trace
    while len(_trace_cache) > TRACE_CACHE_CAP:
        _trace_cache.popitem(last=False)
    return trace


def run_sim_job(job: SimJob, fault: Optional[Any] = None):
    """Worker entry point: rebuild by name, simulate, snapshot metrics.

    Returns ``(job, SimulationResult, WorkerReport)``.  When metrics are
    enabled the worker registry is reset before the job, so the returned
    snapshot is exactly this job's delta (workers execute jobs serially).
    ``fault`` is a parent-side :class:`repro.resilience.InjectedFault`
    decision (crash/raise/delay) applied before the simulation starts.
    """
    from repro import obs
    from repro.experiments.lab import PREDICTOR_FACTORIES
    from repro.pipeline.simulator import simulate_trace, simulate_trace_batch

    t_start = monotonic()
    if _worker_obs_enabled:
        obs.reset()
    if fault is not None:
        from repro.resilience.faults import apply_worker_fault

        apply_worker_fault(fault)
    trace = _worker_trace(job.workload, job.input_index, job.instructions)
    if isinstance(job, BatchSimJob):
        result = simulate_trace_batch(
            trace.trace,
            [PREDICTOR_FACTORIES[p]() for p in job.predictors],
            slice_instructions=job.slice_instructions,
        )
    else:
        predictor = PREDICTOR_FACTORIES[job.predictor]()
        result = simulate_trace(
            trace.trace, predictor, slice_instructions=job.slice_instructions
        )
    metrics = obs.registry().snapshot_for_merge() if _worker_obs_enabled else None
    return job, result, WorkerReport(
        t_start=t_start, t_end=monotonic(), metrics=metrics, pid=os.getpid()
    )


def run_job_inline(job: SimJob, trace_store_dir: Optional[str] = None):
    """Serial-fallback execution of one job in the *calling* process.

    Used when the worker pool has failed past its retry budget.  Unlike
    :func:`run_sim_job` it never touches the worker-process globals or
    resets the metrics registry (which in the parent would wipe the run's
    collected metrics).  Traces read through the shared on-disk store
    when one is configured; simulation is deterministic, so the result is
    bit-identical to what a healthy worker would have produced.
    """
    from repro.experiments.lab import PREDICTOR_FACTORIES, workload_spec
    from repro.pipeline.simulator import simulate_trace, simulate_trace_batch
    from repro.workloads import trace_workload

    trace_cols = None
    store = None
    if trace_store_dir is not None:
        from repro.workloads.trace_store import TraceStore

        store = TraceStore(trace_store_dir)
        trace_cols = store.load(job.workload, job.input_index, job.instructions)
    if trace_cols is None:
        generated = trace_workload(
            workload_spec(job.workload), job.input_index, instructions=job.instructions
        )
        trace_cols = generated.trace
        if store is not None:
            store.store(job.workload, job.input_index, job.instructions, trace_cols)
    if isinstance(job, BatchSimJob):
        return simulate_trace_batch(
            trace_cols,
            [PREDICTOR_FACTORIES[p]() for p in job.predictors],
            slice_instructions=job.slice_instructions,
        )
    return simulate_trace(
        trace_cols,
        PREDICTOR_FACTORIES[job.predictor](),
        slice_instructions=job.slice_instructions,
    )
