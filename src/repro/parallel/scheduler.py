"""Process-pool scheduler: dispatch :class:`SimJob`s, fold metrics back.

The scheduler owns a lazily created :class:`ProcessPoolExecutor` — pinned
to an explicit multiprocessing context (``fork`` where available,
``spawn`` otherwise) — that survives across batches (experiments running
under one Lab reuse the same warm workers).  Per batch it records the
``lab.parallel.*`` metrics — jobs dispatched/completed/failed, queue
wait, worker busy time, batch wall time, and worker utilization — and
merges each worker's own metric snapshot into the parent registry, so
``--metrics-out`` reports one coherent view of the whole run.

Failure policy (``docs/resilience.md``):

* **Deterministic job exceptions** fail fast: the job is logged, counted
  under ``lab.parallel.jobs.failed``, and dropped — the serial path
  recomputes it synchronously and surfaces the error in context.
* **Infrastructure faults** — a broken pool (worker crash/OOM-kill),
  a transient ``OSError``, or a per-job timeout — trigger a pool rebuild
  and an in-batch resubmit of every unfinished job, up to ``retries``
  attempts with exponential backoff (``lab.parallel.retries`` /
  ``lab.parallel.timeouts`` / ``lab.parallel.jobs.resubmitted``).
* When the retry budget is exhausted the scheduler **degrades to serial
  in-process execution** for the remaining jobs
  (``lab.parallel.serial_fallback``) — slower, but the batch still
  completes with bit-identical results.

Simulation is deterministic, so none of these paths can change outputs:
a recovered batch produces exactly the stats of a clean serial run.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from time import monotonic, sleep
from typing import Callable, Dict, List, Optional

from repro import obs
from repro.obs import trace as obstrace
from repro.obs.logconfig import ROOT_LOGGER_NAME, is_configured
from repro.parallel.jobs import (
    SimJob,
    estimated_cost,
    run_job_inline,
    run_sim_job,
    worker_init,
)
from repro.resilience import faults

_log = obs.get_logger("parallel")

#: Default resubmit budget for infrastructure faults (env: REPRO_RETRIES).
DEFAULT_RETRIES = 2

#: Default backoff base in seconds (env: REPRO_RETRY_BACKOFF); attempt k
#: sleeps ``backoff * 2**(k-1)``.
DEFAULT_BACKOFF_S = 0.5


def resolve_jobs(jobs: Optional[int]) -> int:
    """Worker-count policy: explicit value, else ``$REPRO_JOBS``, else 1.

    Values <= 0 mean "all cores" (``os.cpu_count()``).
    """
    if jobs is None:
        raw = os.environ.get("REPRO_JOBS", "").strip()
        try:
            jobs = int(raw) if raw else 1
        except ValueError:
            raise ValueError(f"REPRO_JOBS must be an integer, got {raw!r}") from None
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return jobs


def _env_float(name: str) -> Optional[float]:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        return float(raw)
    except ValueError:
        raise ValueError(f"{name} must be a number, got {raw!r}") from None


def _env_int(name: str) -> Optional[int]:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"{name} must be an integer, got {raw!r}") from None


def _is_transient(exc: BaseException) -> bool:
    """Infrastructure faults worth a resubmit (vs. deterministic bugs)."""
    return isinstance(exc, (BrokenProcessPool, OSError))


@dataclass
class _AttemptOutcome:
    """What one pool pass over a job list produced."""

    failed: int = 0  # deterministic failures (dropped)
    busy_s: float = 0.0  # summed worker busy time
    broken: bool = False  # the pool must be torn down before reuse
    retry: List[SimJob] = field(default_factory=list)  # unfinished, retryable


class ParallelScheduler:
    """Fan :class:`SimJob`s out over a persistent worker pool."""

    def __init__(
        self,
        jobs: int,
        trace_store_dir: Optional[str] = None,
        *,
        retries: Optional[int] = None,
        backoff_s: Optional[float] = None,
        timeout_s: Optional[float] = None,
        start_method: Optional[str] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("scheduler needs at least one worker")
        self.jobs = jobs
        self.trace_store_dir = trace_store_dir
        if retries is None:
            retries = _env_int("REPRO_RETRIES")
        self.retries = DEFAULT_RETRIES if retries is None else max(0, retries)
        if backoff_s is None:
            backoff_s = _env_float("REPRO_RETRY_BACKOFF")
        self.backoff_s = DEFAULT_BACKOFF_S if backoff_s is None else max(0.0, backoff_s)
        if timeout_s is None:
            timeout_s = _env_float("REPRO_JOB_TIMEOUT")
        self.timeout_s = timeout_s if timeout_s and timeout_s > 0 else None
        if start_method is None:
            # The docs promise a fork-based pool (cheap worker startup,
            # inherited registries); platforms without fork (macOS default
            # since 3.8 is spawn, Windows always) fall back explicitly
            # instead of relying on the platform default.
            available = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in available else "spawn"
        self.start_method = start_method
        self._pool: Optional[ProcessPoolExecutor] = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            # Workers mirror the parent's logging configuration (when the
            # parent configured any), metrics-enabled state, and any
            # programmatically installed fault plan.
            level_name = (
                logging.getLevelName(logging.getLogger(ROOT_LOGGER_NAME).level)
                if is_configured()
                else None
            )
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                mp_context=multiprocessing.get_context(self.start_method),
                initializer=worker_init,
                initargs=(
                    obs.is_enabled(),
                    level_name,
                    self.trace_store_dir,
                    faults.active_spec(),
                ),
            )
        return self._pool

    # -- batch execution ---------------------------------------------------

    def run(
        self,
        jobs: List[SimJob],
        on_result: Callable[[SimJob, object], None],
    ) -> int:
        """Run one batch; invoke ``on_result(job, result)`` per success.

        Returns the number of jobs that failed *deterministically* (their
        cache entries stay empty; the serial path recomputes them and
        surfaces the error in context).  Infrastructure faults are retried
        per the scheduler's budget and, past it, executed serially
        in-process — see the module docstring.  Results are delivered in
        completion order — callers key their caches by job, so ordering
        never affects outputs.

        Jobs are submitted **longest-first** by estimated cost
        (instructions × predictor weight, :func:`estimated_cost`): a
        straggler TAGE-SC-L job dispatched last would otherwise run alone
        after every cheap kernel job has drained, capping the speedup at
        1x no matter how many workers are idle.  The sort is stable, so
        equal-cost jobs keep their plan order and scheduling stays
        deterministic.
        """
        if not jobs:
            return 0
        t_batch = monotonic()
        obs.counter("lab.parallel.batches")
        obs.counter("lab.parallel.jobs.dispatched", len(jobs))
        remaining = sorted(jobs, key=estimated_cost, reverse=True)
        obs.counter("lab.parallel.schedule.jobs", len(remaining))
        obs.counter(
            "lab.parallel.schedule.est_cost",
            int(sum(estimated_cost(j) for j in remaining)),
        )
        obs.gauge(
            "lab.parallel.schedule.est_cost_max",
            float(estimated_cost(remaining[0])),
        )
        failed = 0
        busy_s = 0.0
        attempt = 0
        while remaining:
            outcome = self._run_attempt(remaining, on_result)
            failed += outcome.failed
            busy_s += outcome.busy_s
            if outcome.broken:
                self._abort_pool()
            remaining = outcome.retry
            if not remaining:
                break
            if attempt >= self.retries:
                _log.warning(
                    "worker pool kept failing after %d attempt(s); degrading "
                    "to serial in-process execution for %d job(s)",
                    attempt + 1, len(remaining),
                )
                obs.counter("lab.parallel.serial_fallback", len(remaining))
                obstrace.instant_event(
                    "parallel.serial_fallback", args={"jobs": len(remaining)}
                )
                failed += self._run_serial(remaining, on_result)
                remaining = []
                break
            attempt += 1
            delay = self.backoff_s * (2 ** (attempt - 1))
            obs.counter("lab.parallel.retries")
            obs.counter("lab.parallel.jobs.resubmitted", len(remaining))
            obstrace.instant_event(
                "parallel.retry",
                args={"attempt": attempt, "jobs": len(remaining)},
            )
            _log.warning(
                "pool fault: resubmitting %d job(s), attempt %d/%d%s",
                len(remaining), attempt, self.retries,
                f" after {delay:.2f}s backoff" if delay else "",
            )
            if delay:
                sleep(delay)
        wall_s = monotonic() - t_batch
        obs.observe_timer("lab.parallel.batch", wall_s)
        if wall_s > 0:
            obs.gauge("lab.parallel.worker_utilization", busy_s / (self.jobs * wall_s))
        return failed

    def _run_attempt(
        self,
        jobs: List[SimJob],
        on_result: Callable[[SimJob, object], None],
    ) -> _AttemptOutcome:
        """One pool pass: submit everything, harvest until done/broken."""
        outcome = _AttemptOutcome()
        pool = self._ensure_pool()
        futures: Dict[Future, SimJob] = {}
        submit_t: Dict[Future, float] = {}
        for i, job in enumerate(jobs):
            fault = faults.next_worker_fault()
            try:
                fut = pool.submit(run_sim_job, job, fault)
            except (BrokenProcessPool, RuntimeError):
                # The pool died while we were still submitting; everything
                # not yet submitted is retryable as-is.
                outcome.broken = True
                outcome.retry.extend(jobs[i:])
                break
            futures[fut] = job
            submit_t[fut] = monotonic()
        pending = set(futures)
        while pending:
            timeout = self._next_timeout(pending, submit_t)
            done, pending = wait(pending, timeout=timeout, return_when=FIRST_COMPLETED)
            for fut in done:
                job = futures[fut]
                try:
                    _job, result, report = fut.result()
                except Exception as exc:
                    if _is_transient(exc):
                        outcome.broken = outcome.broken or isinstance(
                            exc, BrokenProcessPool
                        )
                        outcome.retry.append(job)
                        _log.warning(
                            "parallel job %s hit an infrastructure fault "
                            "(%s: %s); it will be resubmitted",
                            job, type(exc).__name__, exc,
                        )
                    else:
                        outcome.failed += 1
                        obs.counter("lab.parallel.jobs.failed")
                        _log.warning(
                            "parallel job %s failed (%s: %s); the serial path "
                            "will recompute it and surface the error in context",
                            job, type(exc).__name__, exc,
                        )
                    continue
                outcome.busy_s += report.busy_s
                obs.observe_timer("lab.parallel.worker_busy", report.busy_s)
                self._record_queue_wait(report.t_start - submit_t[fut])
                if report.metrics:
                    obs.merge_snapshot(report.metrics)
                obs.counter("lab.parallel.jobs.completed")
                # Timeline lanes: one per worker pid, job + queue-wait
                # intervals reconstructed from the report's monotonic
                # timestamps (no-op fast path when tracing is off).
                job_args = {"workload": job.workload, "input": job.input_index,
                            "predictor": job.predictor}
                obstrace.worker_job_event(
                    f"{job.workload}/{job.predictor}",
                    report.pid, report.t_start, report.t_end, args=job_args,
                )
                obstrace.queue_wait_event(report.pid, submit_t[fut], report.t_start)
                on_result(job, result)
            if pending and self._expire_overdue(pending, submit_t, futures, outcome):
                break
        return outcome

    def _next_timeout(
        self, pending: set, submit_t: Dict[Future, float]
    ) -> Optional[float]:
        """Seconds until the earliest pending job's deadline (None = none)."""
        if self.timeout_s is None:
            return None
        earliest = min(submit_t[f] for f in pending)
        return max(0.0, earliest + self.timeout_s - monotonic())

    def _expire_overdue(
        self,
        pending: set,
        submit_t: Dict[Future, float],
        futures: Dict[Future, SimJob],
        outcome: _AttemptOutcome,
    ) -> bool:
        """Mark jobs past their deadline; a hung pool must be torn down.

        Returns True when the attempt should stop: every unfinished job
        (overdue or merely sharing the doomed pool) becomes retryable.
        """
        if self.timeout_s is None:
            return False
        now = monotonic()
        overdue = [f for f in pending if now - submit_t[f] >= self.timeout_s]
        if not overdue:
            return False
        for fut in overdue:
            obs.counter("lab.parallel.timeouts")
            obstrace.instant_event(
                "parallel.timeout", args={"job": str(futures[fut])}
            )
            _log.warning(
                "parallel job %s exceeded its %.1fs timeout; rebuilding the "
                "pool and resubmitting every unfinished job",
                futures[fut], self.timeout_s,
            )
        # A running future cannot be cancelled under ProcessPoolExecutor:
        # the only way to reclaim the worker is to tear the pool down.
        outcome.broken = True
        outcome.retry.extend(futures[f] for f in pending)
        return True

    def _record_queue_wait(self, delta_s: float) -> None:
        """Queue-wait bookkeeping; monotonic() is system-wide on Linux, but
        on platforms where parent and worker clocks are not comparable a
        negative delta is *counted* (``lab.parallel.clock_skew``) and
        excluded from the timer rather than recorded as a fake zero."""
        if delta_s < 0:
            obs.counter("lab.parallel.clock_skew")
            return
        obs.observe_timer("lab.parallel.queue_wait", delta_s)

    def _run_serial(
        self,
        jobs: List[SimJob],
        on_result: Callable[[SimJob, object], None],
    ) -> int:
        """Last-resort degradation: run jobs in-process, bit-identically."""
        failed = 0
        for job in jobs:
            t_job = monotonic()
            try:
                result = run_job_inline(job, self.trace_store_dir)
            except Exception as exc:
                failed += 1
                obs.counter("lab.parallel.jobs.failed")
                _log.warning(
                    "parallel job %s failed (%s: %s); the serial path will "
                    "recompute it and surface the error in context",
                    job, type(exc).__name__, exc,
                )
                continue
            obs.counter("lab.parallel.jobs.completed")
            obstrace.serial_job_event(
                f"{job.workload}/{job.predictor}",
                t_job,
                monotonic(),
                args={"workload": job.workload, "input": job.input_index,
                      "predictor": job.predictor},
            )
            on_result(job, result)
        return failed

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Shut the pool down cleanly (idempotent), waiting for workers.

        Waiting on the clean path is what guarantees no child process
        outlives the owning :class:`Lab`; the no-wait/cancel teardown is
        reserved for broken or hung pools (:meth:`_abort_pool`).

        Queued-but-unstarted futures are *cancelled* first: after a
        ``KeyboardInterrupt``/SIGTERM mid-``run`` the pool still holds the
        rest of the batch, and a plain waiting shutdown would silently
        execute all of it before returning — teardown must only wait for
        the jobs already on a worker, then join every child.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def _abort_pool(self) -> None:
        """Tear down a broken/hung pool without waiting; kill stragglers.

        Cancels queued work and terminates any worker still alive (a hung
        worker never finishes its task, so a waiting shutdown would block
        forever), then joins them so no children are left behind.
        """
        pool = self._pool
        if pool is None:
            return
        self._pool = None
        _log.warning("worker pool broke; recreating it for the next batch")
        obstrace.instant_event("parallel.pool_rebuild")
        procs = list(getattr(pool, "_processes", {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        for proc in procs:
            proc.join(timeout=5.0)
