"""Process-pool scheduler: dispatch :class:`SimJob`s, fold metrics back.

The scheduler owns a lazily created :class:`ProcessPoolExecutor` that
survives across batches (experiments running under one Lab reuse the same
warm workers).  Per batch it records the ``lab.parallel.*`` metrics —
jobs dispatched/completed/failed, queue wait, worker busy time, batch
wall time, and worker utilization — and merges each worker's own metric
snapshot into the parent registry, so ``--metrics-out`` reports one
coherent view of the whole run.

A job that fails in a worker is logged and *dropped*: its cache entry
stays empty, and the serial path recomputes it synchronously, surfacing
the error in context.  Simulation is deterministic, so the retry fails
identically — nothing is silently lost.
"""

from __future__ import annotations

import logging
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from time import monotonic
from typing import Callable, List, Optional

from repro import obs
from repro.obs.logconfig import ROOT_LOGGER_NAME, is_configured
from repro.parallel.jobs import SimJob, run_sim_job, worker_init

_log = obs.get_logger("parallel")


def resolve_jobs(jobs: Optional[int]) -> int:
    """Worker-count policy: explicit value, else ``$REPRO_JOBS``, else 1.

    Values <= 0 mean "all cores" (``os.cpu_count()``).
    """
    import os

    if jobs is None:
        raw = os.environ.get("REPRO_JOBS", "").strip()
        try:
            jobs = int(raw) if raw else 1
        except ValueError:
            raise ValueError(f"REPRO_JOBS must be an integer, got {raw!r}") from None
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return jobs


class ParallelScheduler:
    """Fan :class:`SimJob`s out over a persistent worker pool."""

    def __init__(self, jobs: int, trace_store_dir: Optional[str] = None) -> None:
        if jobs < 1:
            raise ValueError("scheduler needs at least one worker")
        self.jobs = jobs
        self.trace_store_dir = trace_store_dir
        self._pool: Optional[ProcessPoolExecutor] = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            # Workers mirror the parent's logging configuration (when the
            # parent configured any) and metrics-enabled state.
            level_name = (
                logging.getLevelName(logging.getLogger(ROOT_LOGGER_NAME).level)
                if is_configured()
                else None
            )
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=worker_init,
                initargs=(obs.is_enabled(), level_name, self.trace_store_dir),
            )
        return self._pool

    def run(
        self,
        jobs: List[SimJob],
        on_result: Callable[[SimJob, object], None],
    ) -> int:
        """Run one batch; invoke ``on_result(job, result)`` per success.

        Returns the number of failed jobs.  Results are delivered in
        completion order — callers key their caches by job, so ordering
        never affects outputs.
        """
        if not jobs:
            return 0
        pool = self._ensure_pool()
        t_batch = monotonic()
        obs.counter("lab.parallel.batches")
        obs.counter("lab.parallel.jobs.dispatched", len(jobs))
        futures = {}
        submit_t = {}
        for job in jobs:
            fut = pool.submit(run_sim_job, job)
            futures[fut] = job
            submit_t[fut] = monotonic()
        busy_s = 0.0
        failed = 0
        broken = False
        for fut in as_completed(futures):
            job = futures[fut]
            try:
                _job, result, report = fut.result()
            except Exception as exc:
                failed += 1
                broken = broken or isinstance(exc, BrokenProcessPool)
                obs.counter("lab.parallel.jobs.failed")
                _log.warning(
                    "parallel job %s failed (%s: %s); the serial path will "
                    "recompute it and surface the error in context",
                    job, type(exc).__name__, exc,
                )
                continue
            busy_s += report.busy_s
            obs.observe_timer("lab.parallel.worker_busy", report.busy_s)
            # monotonic() is system-wide on Linux; clamp for platforms
            # where worker and parent clocks are not comparable.
            obs.observe_timer(
                "lab.parallel.queue_wait", max(0.0, report.t_start - submit_t[fut])
            )
            if report.metrics:
                obs.merge_snapshot(report.metrics)
            obs.counter("lab.parallel.jobs.completed")
            on_result(job, result)
        wall_s = monotonic() - t_batch
        obs.observe_timer("lab.parallel.batch", wall_s)
        if wall_s > 0:
            obs.gauge("lab.parallel.worker_utilization", busy_s / (self.jobs * wall_s))
        if broken:
            # A dead worker poisons the whole executor; rebuild on next use.
            _log.warning("worker pool broke; recreating it for the next batch")
            self.close()
        return failed

    def close(self) -> None:
        """Shut the pool down (idempotent); a later batch recreates it."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
