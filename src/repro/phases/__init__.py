"""SimPoint-style phase analysis: BBV collection and k-means clustering."""

from repro.phases.bbv import normalize_bbvs, prepare_bbvs, random_project
from repro.phases.simpoint import PhaseClustering, cluster_phases

__all__ = [
    "PhaseClustering",
    "cluster_phases",
    "normalize_bbvs",
    "prepare_bbvs",
    "random_project",
]
