"""Basic-block vector (BBV) collection and normalization.

SimPoint's input is one basic-block execution-count vector per
fixed-instruction interval.  The executor collects the raw counts
(``Executor(bbv_interval=...)``); this module normalizes and
dimensionality-reduces them (random projection, as in the SimPoint tool)
before clustering.
"""

from __future__ import annotations


import numpy as np


def normalize_bbvs(bbvs: np.ndarray) -> np.ndarray:
    """Row-normalize raw block counts to frequency vectors.

    Rows that executed nothing (possible only for a trailing partial
    interval) become zero vectors.
    """
    bbvs = np.asarray(bbvs, dtype=float)
    if bbvs.ndim != 2:
        raise ValueError("bbvs must be 2-D (intervals x blocks)")
    sums = bbvs.sum(axis=1, keepdims=True)
    sums[sums == 0] = 1.0
    return bbvs / sums


def random_project(
    vectors: np.ndarray, dimensions: int = 15, seed: int = 42
) -> np.ndarray:
    """Project BBVs to a low dimension with a fixed random matrix.

    SimPoint projects to 15 dimensions by default; the projection matrix is
    seeded so results are reproducible.
    """
    vectors = np.asarray(vectors, dtype=float)
    if vectors.ndim != 2:
        raise ValueError("vectors must be 2-D")
    if dimensions < 1:
        raise ValueError("dimensions must be >= 1")
    if vectors.shape[1] <= dimensions:
        return vectors.copy()
    rng = np.random.default_rng(seed)
    projection = rng.uniform(-1.0, 1.0, size=(vectors.shape[1], dimensions))
    return vectors @ projection


def prepare_bbvs(
    raw_bbvs: np.ndarray, dimensions: int = 15, seed: int = 42
) -> np.ndarray:
    """Normalize then project: the standard SimPoint preprocessing."""
    return random_project(normalize_bbvs(raw_bbvs), dimensions=dimensions, seed=seed)
