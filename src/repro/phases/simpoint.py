"""SimPoint-style phase clustering (Sherwood et al., ASPLOS 2002).

k-means over projected basic-block vectors with BIC-based model selection:
cluster the slices for k = 1..max_k, score each clustering with the Bayesian
Information Criterion, and keep the smallest k within a fraction of the best
score (the SimPoint rule).  Each cluster is a *phase*; the slice closest to
its cluster centroid is the phase's representative SimPoint.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np


@dataclass(frozen=True)
class PhaseClustering:
    """Result of clustering one workload's slices."""

    labels: np.ndarray  # phase id per slice
    centroids: np.ndarray
    num_phases: int
    bic_scores: Tuple[float, ...]  # per candidate k (1-based)
    simpoints: Tuple[int, ...]  # representative slice index per phase

    def phase_sizes(self) -> np.ndarray:
        return np.bincount(self.labels, minlength=self.num_phases)


def _kmeans(
    data: np.ndarray, k: int, seed: int, max_iters: int = 100
) -> Tuple[np.ndarray, np.ndarray, float]:
    """Lloyd's algorithm with k-means++ seeding; returns (labels, centroids,
    total within-cluster sum of squared distances)."""
    n = len(data)
    rng = np.random.default_rng(seed)
    # k-means++ initialization.
    centroids = np.empty((k, data.shape[1]))
    centroids[0] = data[rng.integers(n)]
    d2 = ((data - centroids[0]) ** 2).sum(axis=1)
    for j in range(1, k):
        total = d2.sum()
        if total <= 1e-12:
            centroids[j:] = data[rng.integers(n, size=k - j)]
            break
        probs = d2 / total
        centroids[j] = data[rng.choice(n, p=probs)]
        d2 = np.minimum(d2, ((data - centroids[j]) ** 2).sum(axis=1))

    labels = np.zeros(n, dtype=int)
    for _ in range(max_iters):
        dists = ((data[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        new_labels = dists.argmin(axis=1)
        if np.array_equal(new_labels, labels) and _ > 0:
            break
        labels = new_labels
        for j in range(k):
            members = data[labels == j]
            centroids[j] = (
                members.mean(axis=0) if len(members) else data[rng.integers(n)]
            )
    wcss = float(
        ((data - centroids[labels]) ** 2).sum()
    )
    return labels, centroids, wcss


def _bic(data: np.ndarray, labels: np.ndarray, centroids: np.ndarray) -> float:
    """BIC under a spherical-Gaussian mixture (Pelleg & Moore's X-means
    formulation, as used by SimPoint)."""
    n, d = data.shape
    k = len(centroids)
    if n <= k:
        return -math.inf
    wcss = ((data - centroids[labels]) ** 2).sum()
    variance = wcss / max(n - k, 1) / d
    if variance <= 1e-12:
        variance = 1e-12
    log_likelihood = 0.0
    for j in range(k):
        nj = int((labels == j).sum())
        if nj == 0:
            continue
        log_likelihood += (
            nj * math.log(nj / n)
            - 0.5 * nj * d * math.log(2 * math.pi * variance)
            - 0.5 * (nj - k_effective_dof(nj)) * d
        )
    num_params = k * (d + 1)
    return log_likelihood - 0.5 * num_params * math.log(n)


def k_effective_dof(nj: int) -> int:
    """Degrees-of-freedom correction per cluster (1 for the centroid)."""
    return 1


def cluster_phases(
    vectors: np.ndarray,
    max_k: int = 10,
    bic_threshold: float = 0.9,
    seed: int = 7,
) -> PhaseClustering:
    """Cluster slices into phases with BIC model selection.

    Args:
        vectors: projected BBVs, one row per slice.
        max_k: largest candidate phase count.
        bic_threshold: keep the smallest k whose BIC reaches this fraction
            of the best BIC (the SimPoint heuristic).
    """
    vectors = np.asarray(vectors, dtype=float)
    if vectors.ndim != 2 or len(vectors) == 0:
        raise ValueError("vectors must be a non-empty 2-D array")
    n = len(vectors)
    max_k = max(1, min(max_k, n))

    results = []
    scores: List[float] = []
    for k in range(1, max_k + 1):
        labels, centroids, _ = _kmeans(vectors, k, seed=seed + k)
        score = _bic(vectors, labels, centroids)
        results.append((labels, centroids))
        scores.append(score)

    finite = [s for s in scores if math.isfinite(s)]
    if not finite:
        best_k = 1
    else:
        best = max(finite)
        # Scores can be negative; "within a fraction of the best" uses the
        # span between the worst and best candidate scores.
        worst = min(finite)
        span = best - worst
        best_k = 1
        for k, s in enumerate(scores, start=1):
            if math.isfinite(s) and (span == 0 or (s - worst) / span >= bic_threshold):
                best_k = k
                break

    labels, centroids = results[best_k - 1]
    # Representative slice per phase: nearest to the centroid.
    simpoints = []
    for j in range(best_k):
        members = np.where(labels == j)[0]
        if len(members) == 0:
            continue
        dists = ((vectors[members] - centroids[j]) ** 2).sum(axis=1)
        simpoints.append(int(members[dists.argmin()]))
    return PhaseClustering(
        labels=labels,
        centroids=centroids,
        num_phases=len(set(labels.tolist())),
        bic_scores=tuple(scores),
        simpoints=tuple(simpoints),
    )
