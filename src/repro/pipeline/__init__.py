"""Pipeline IPC models and the trace-driven prediction simulator."""

from repro.pipeline.config import SCALING_FACTORS, SKYLAKE_LIKE, PipelineConfig
from repro.pipeline.model import (
    EventFrontEndModel,
    FetchBreakModel,
    IntervalIpcModel,
    IpcResult,
    ipc_gap_closed,
    relative_ipc,
)
from repro.pipeline.simulator import SimulationResult, simulate_trace

__all__ = [
    "EventFrontEndModel",
    "FetchBreakModel",
    "IntervalIpcModel",
    "IpcResult",
    "PipelineConfig",
    "SCALING_FACTORS",
    "SKYLAKE_LIKE",
    "SimulationResult",
    "ipc_gap_closed",
    "relative_ipc",
    "simulate_trace",
]
