"""Pipeline configuration and capacity scaling.

The paper evaluates on "an execution pipeline based on Intel Skylake" in
ChampSim and scales "pipeline capacity (i.e., fetch, decode, execution,
load/store buffer, ROB, scheduler, and retire resources)" by 1x-32x.  We
model that with a parameterized interval model (see
:mod:`repro.pipeline.model`); this module defines the structural parameters
and how they scale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Tuple

#: The pipeline capacity scaling factors swept in Figs. 1, 5, and 7.
SCALING_FACTORS: Tuple[int, ...] = (1, 2, 4, 8, 16, 32)


@dataclass(frozen=True)
class PipelineConfig:
    """A Skylake-like core configuration under capacity scaling.

    The CPI-component parameters are calibrated (see
    ``tests/pipeline/test_calibration.py``) so that the SPECint-like branch
    misprediction rates produce the paper's headline numbers: mispredictions
    are an ~18.5% IPC opportunity at 1x and grow to ~55% at 4x, while perfect
    branch prediction at 32x yields roughly 2.8-3x the baseline IPC.

    Attributes:
        scale: capacity scaling factor (1.0 = baseline Skylake).
        base_width: baseline fetch/issue width in instructions/cycle.
        base_rob: baseline reorder-buffer capacity.
        issue_cpi_1x: CPI component limited by issue bandwidth at 1x; shrinks
            linearly with scale.
        mem_cpi_1x: CPI component from the memory hierarchy at 1x; shrinks as
            ``scale ** -mem_scaling_exponent`` (larger load/store queues and
            ROB expose more memory-level parallelism, sub-linearly).
        mem_scaling_exponent: see above.
        serial_cpi: scale-independent CPI floor from serial dependency chains
            (the reason even Perfect BP saturates at high scale).
        flush_penalty_1x: cycles lost per branch misprediction at 1x
            (pipeline flush + refill), calibrated jointly with the synthetic
            workloads' misprediction rates against the paper's headline
            opportunity numbers.
        flush_penalty_scale_slope: the penalty grows by this fraction per
            doubling of scale (wider/deeper machines lose more work per
            flush).
    """

    name: str = "skylake-like"
    scale: float = 1.0
    base_width: int = 4
    base_rob: int = 224
    issue_cpi_1x: float = 0.25
    mem_cpi_1x: float = 0.20
    mem_scaling_exponent: float = 0.75
    serial_cpi: float = 0.22
    flush_penalty_1x: float = 14.0
    flush_penalty_scale_slope: float = 0.10

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        if self.base_width <= 0 or self.base_rob <= 0:
            raise ValueError("base_width and base_rob must be positive")

    def scaled(self, scale: float) -> "PipelineConfig":
        """This configuration at a different capacity scaling factor."""
        return replace(self, scale=float(scale))

    @property
    def width(self) -> float:
        """Effective fetch/issue width at this scale."""
        return self.base_width * self.scale

    @property
    def rob(self) -> int:
        return int(self.base_rob * self.scale)

    @property
    def issue_cpi(self) -> float:
        return self.issue_cpi_1x / self.scale

    @property
    def mem_cpi(self) -> float:
        return self.mem_cpi_1x / (self.scale**self.mem_scaling_exponent)

    @property
    def flush_penalty(self) -> float:
        """Cycles lost per misprediction at this scale."""
        return self.flush_penalty_1x * (
            1.0 + self.flush_penalty_scale_slope * math.log2(self.scale)
            if self.scale >= 1.0
            else 1.0
        )

    @property
    def base_cpi(self) -> float:
        """CPI with perfect branch prediction."""
        return self.issue_cpi + self.mem_cpi + self.serial_cpi


#: Default baseline configuration used across experiments.
SKYLAKE_LIKE = PipelineConfig()
