"""IPC models mapping misprediction counts to performance.

Two models close the loop from prediction accuracy to core IPC, standing in
for ChampSim:

* :class:`IntervalIpcModel` — classic interval analysis: CPI is the sum of a
  perfect-BP base (issue + memory + serial components) and a branch term
  ``(mispredictions / instructions) * flush_penalty``.  Fast, and exact for
  aggregate counts.
* :class:`EventFrontEndModel` — walks the positions of individual
  mispredictions and charges each inter-misprediction segment separately,
  adding a front-end ramp cost for segments too short to fill the window.
  Captures burstiness that the interval model averages away; used in the
  cross-validation ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.pipeline.config import PipelineConfig


@dataclass(frozen=True)
class IpcResult:
    """IPC estimate for one (workload, predictor, pipeline) combination."""

    instructions: int
    mispredictions: int
    cycles: float
    config: PipelineConfig

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles > 0 else 0.0

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def mpki(self) -> float:
        return 1000.0 * self.mispredictions / self.instructions if self.instructions else 0.0


class IntervalIpcModel:
    """Interval-analysis IPC model."""

    def __init__(self, config: PipelineConfig) -> None:
        self.config = config

    def cycles(self, instructions: int, mispredictions: int) -> float:
        if instructions <= 0:
            raise ValueError("instructions must be positive")
        if mispredictions < 0 or mispredictions > instructions:
            raise ValueError("mispredictions out of range")
        cfg = self.config
        return instructions * cfg.base_cpi + mispredictions * cfg.flush_penalty

    def evaluate(self, instructions: int, mispredictions: int) -> IpcResult:
        return IpcResult(
            instructions=instructions,
            mispredictions=mispredictions,
            cycles=self.cycles(instructions, mispredictions),
            config=self.config,
        )

    def ipc(self, instructions: int, mispredictions: int) -> float:
        return instructions / self.cycles(instructions, mispredictions)


class EventFrontEndModel:
    """Segment-level model over individual misprediction positions.

    Each misprediction flushes the front end: the following segment restarts
    from an empty window, so its first ``ramp`` instructions issue at half
    throughput in addition to the flush penalty itself.
    """

    def __init__(self, config: PipelineConfig, ramp_instructions: Optional[int] = None) -> None:
        self.config = config
        # By default the ramp is one ROB-fill of instructions.
        self.ramp_instructions = (
            ramp_instructions if ramp_instructions is not None else config.rob // 2
        )

    def cycles(
        self, instructions: int, mispredict_positions: Sequence[int]
    ) -> float:
        """Total cycles given the instruction indices of mispredictions."""
        if instructions <= 0:
            raise ValueError("instructions must be positive")
        cfg = self.config
        positions = np.asarray(mispredict_positions, dtype=np.int64)
        if len(positions) and (positions.min() < 0 or positions.max() >= instructions):
            raise ValueError("mispredict positions out of trace range")
        positions = np.sort(positions)

        base_cpi = cfg.base_cpi
        total = instructions * base_cpi + len(positions) * cfg.flush_penalty

        # Ramp cost: instructions at the head of each post-flush segment
        # execute at reduced throughput.
        if len(positions):
            seg_lengths = np.diff(
                np.concatenate([positions, [instructions]])
            )
            ramped = np.minimum(seg_lengths, self.ramp_instructions)
            total += float(ramped.sum()) * base_cpi  # half throughput => x2 time
        return float(total)

    def evaluate(
        self, instructions: int, mispredict_positions: Sequence[int]
    ) -> IpcResult:
        return IpcResult(
            instructions=instructions,
            mispredictions=len(mispredict_positions),
            cycles=self.cycles(instructions, mispredict_positions),
            config=self.config,
        )


def relative_ipc(
    config: PipelineConfig,
    scale: float,
    instructions: int,
    mispredictions: int,
    baseline_scale: float = 1.0,
    baseline_mispredictions: Optional[int] = None,
) -> float:
    """IPC at ``scale`` relative to the baseline configuration.

    This is the y-axis of Figs. 1 and 5: IPC of (predictor, scale) divided by
    IPC of the baseline predictor at 1x.  ``baseline_mispredictions`` defaults
    to ``mispredictions`` (same predictor at both scales).
    """
    if baseline_mispredictions is None:
        baseline_mispredictions = mispredictions
    target = IntervalIpcModel(config.scaled(scale)).ipc(instructions, mispredictions)
    base = IntervalIpcModel(config.scaled(baseline_scale)).ipc(
        instructions, baseline_mispredictions
    )
    return target / base


def ipc_gap_closed(
    config: PipelineConfig,
    scale: float,
    instructions: int,
    baseline_mispredictions: int,
    improved_mispredictions: int,
) -> float:
    """Fraction of the baseline→perfect IPC gap closed by an improvement.

    The y-axis of Fig. 7: with TAGE-SC-L 8KB as the baseline and perfect
    prediction as the ceiling, how much of the IPC opportunity does a larger
    predictor capture?
    """
    model = IntervalIpcModel(config.scaled(scale))
    base = model.ipc(instructions, baseline_mispredictions)
    perfect = model.ipc(instructions, 0)
    improved = model.ipc(instructions, improved_mispredictions)
    if perfect <= base:
        return 0.0
    return (improved - base) / (perfect - base)


class FetchBreakModel:
    """Trace-structure-aware front-end model.

    Real fetch units deliver at most one *fetch block* per cycle: fetch
    stops at every taken control-flow instruction (taken conditionals,
    jumps, calls, returns, indirect branches).  This model charges
    ``ceil(block / width)`` cycles per taken-branch-delimited block, plus
    the memory/serial CPI components and the per-misprediction flush
    penalty — so unlike :class:`IntervalIpcModel` it is sensitive to the
    *taken-branch density* of the actual trace, one of the structural
    effects ChampSim captures.
    """

    def __init__(self, config: PipelineConfig) -> None:
        self.config = config

    def cycles(self, trace, mispredictions: int) -> float:
        """Total cycles for a :class:`~repro.core.types.BranchTrace`."""
        from repro.core.types import BranchKind

        cfg = self.config
        n = trace.instr_count
        if n <= 0:
            raise ValueError("trace has no instructions")
        if mispredictions < 0:
            raise ValueError("mispredictions must be non-negative")
        taken_mask = trace.taken.astype(bool)
        # Non-conditional control flow always redirects fetch.
        taken_mask |= trace.kinds != int(BranchKind.CONDITIONAL)
        boundaries = trace.instr_indices[taken_mask]
        # Fetch-block lengths between consecutive taken branches.
        starts = np.concatenate([[-1], boundaries])
        ends = np.concatenate([boundaries, [n - 1]])
        lengths = ends - starts
        lengths = lengths[lengths > 0]
        width = cfg.width
        fetch_cycles = float(np.ceil(lengths / width).sum())
        other = n * (cfg.mem_cpi + cfg.serial_cpi)
        return fetch_cycles + other + mispredictions * cfg.flush_penalty

    def evaluate(self, trace, mispredictions: int) -> IpcResult:
        return IpcResult(
            instructions=trace.instr_count,
            mispredictions=mispredictions,
            cycles=self.cycles(trace, mispredictions),
            config=self.config,
        )
