"""Trace-driven branch prediction simulation.

This is the CBP-style driver: it feeds a recorded dynamic branch stream to a
predictor (IP, type, target in; direction out), scores the predictions, and
accumulates per-static-branch statistics — in aggregate and per
fixed-instruction-length slice, matching the paper's methodology of
collecting statistics "across all 30M-instruction slices of each workload
trace".
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from time import perf_counter
from typing import List, Optional

import numpy as np

from repro import obs
from repro.core.metrics import BranchStats
from repro.core.types import BranchKind, BranchTrace
from repro.kernels import kernels_enabled
from repro.kernels.engine import TraceKernel, score_predictions, score_with_kernel
from repro.obs import introspect
from repro.predictors.base import BranchPredictor

_COND = int(BranchKind.CONDITIONAL)
# Enum construction is surprisingly costly in the hot loop; index instead.
_KINDS = {int(k): k for k in BranchKind}

_log = obs.get_logger("sim")


@dataclass
class SimulationResult:
    """Outcome of driving one predictor over one trace."""

    predictor_name: str
    stats: BranchStats
    instr_count: int
    slice_stats: Optional[List[BranchStats]] = None
    mispredict_positions: Optional[np.ndarray] = None

    @property
    def accuracy(self) -> float:
        return self.stats.accuracy

    @property
    def mispredictions(self) -> int:
        return self.stats.total_mispredictions

    @property
    def mpki(self) -> float:
        return self.stats.mpki(self.instr_count)


def simulate_trace(
    trace: BranchTrace,
    predictor: BranchPredictor,
    slice_instructions: Optional[int] = None,
    record_mispredict_positions: bool = False,
    warmup_branches: int = 0,
) -> SimulationResult:
    """Run ``predictor`` over ``trace`` and score it.

    Args:
        trace: the dynamic branch stream.
        slice_instructions: if set, also accumulate one
            :class:`BranchStats` per slice of this many instructions.
        record_mispredict_positions: capture the instruction index of every
            misprediction (needed by the event-level IPC model).
        warmup_branches: number of initial conditional branches excluded
            from scoring (the predictor still trains on them).

    The predictor is *not* reset; callers own lifecycle (this allows
    deliberate cross-slice training, as on real hardware).

    When the predictor advertises a :meth:`~repro.predictors.base.
    BranchPredictor.vectorized_kernel` (and ``REPRO_KERNELS`` is not
    disabled), the trace is scored through the numpy kernel path instead of
    the per-branch loop.  A :func:`~repro.kernels.batched.batchable`
    predictor (TAGE / TAGE-SC-L) without a kernel dispatches through the
    multi-config replay engine as a batch of one, reusing the trace's
    memoized feature streams.  Results are bit-identical on every path.
    """
    if slice_instructions is not None and slice_instructions <= 0:
        raise ValueError("slice_instructions must be positive")

    # One introspection check per call: the disabled hot loops below stay
    # exactly as they are; enabling routes through dedicated paths that
    # observe without changing any simulated outcome.
    introspecting = introspect.is_enabled()

    if kernels_enabled():
        kernel = predictor.vectorized_kernel()
        if kernel is not None:
            return _simulate_with_kernel(
                trace,
                predictor,
                kernel,
                slice_instructions,
                record_mispredict_positions,
                warmup_branches,
                introspecting,
            )
        from repro.kernels.batched import batchable

        if batchable(predictor):
            # Batch of one: same replay engine as the fig. 7/8 sweeps; the
            # precomputed feature streams are shared through the trace's
            # plan cache, so single-config TAGE-SC-L runs (table1, fig1,
            # h2p, introspect) skip the scalar loop entirely.
            return simulate_trace_batch(
                trace,
                [predictor],
                slice_instructions=slice_instructions,
                record_mispredict_positions=record_mispredict_positions,
                warmup_branches=warmup_branches,
            )[0]
    if introspecting:
        return _simulate_scalar_introspect(
            trace,
            predictor,
            slice_instructions,
            record_mispredict_positions,
            warmup_branches,
        )

    stats = BranchStats()
    slice_list: Optional[List[BranchStats]] = None
    cur_slice: Optional[BranchStats] = None
    next_boundary = None
    if slice_instructions is not None:
        slice_list = []
        cur_slice = BranchStats()
        next_boundary = slice_instructions

    mis_positions: Optional[List[int]] = [] if record_mispredict_positions else None

    # Observability: one enabled-check up front; per-branch work stays
    # uninstrumented (counters are published in bulk after the loop) and the
    # slice-boundary heartbeat only fires on the already-rare boundary path.
    heartbeat = _log.isEnabledFor(logging.INFO) and slice_instructions is not None
    t_start = perf_counter()

    # Decoded once per trace (and memoized on it): list indexing beats
    # ndarray indexing in the loop, and ``taken`` arrives as Python bools.
    ips, taken_arr, targets, kinds, instr_idx = trace.columns_as_lists()

    set_outcome = getattr(predictor, "set_outcome", None)
    predict = predictor.predict
    update = predictor.update
    note = predictor.note_branch
    stats_record = stats.record
    cur_slice_record = cur_slice.record if cur_slice is not None else None
    # An infinite boundary keeps the per-branch test a plain comparison when
    # slicing is off (the while body is unreachable then).
    boundary = next_boundary if next_boundary is not None else float("inf")
    seen_cond = 0

    # The loop body exists twice, specialized on whether the predictor wants
    # the resolved outcome before predict() (only the oracle family does);
    # the common case pays no per-branch set_outcome check.  Keep the two
    # bodies in sync.
    if set_outcome is None:
        for i in range(len(ips)):
            kind = kinds[i]
            ip = ips[i]
            taken = taken_arr[i]
            pos = instr_idx[i]

            while pos >= boundary:
                if heartbeat:
                    _log.info(
                        "%s: slice %d done (%d instructions, %d branches, "
                        "acc so far %.4f)",
                        predictor.name,
                        len(slice_list),
                        boundary,
                        i,
                        stats.accuracy,
                    )
                slice_list.append(cur_slice)
                cur_slice = BranchStats()
                cur_slice_record = cur_slice.record
                boundary += slice_instructions

            if kind != _COND:
                note(ip, targets[i], _KINDS[kind], taken)
                continue

            pred = predict(ip)
            update(ip, taken)
            seen_cond += 1
            if seen_cond <= warmup_branches:
                continue
            correct = pred == taken
            stats_record(ip, correct)
            if cur_slice_record is not None:
                cur_slice_record(ip, correct)
            if not correct and mis_positions is not None:
                mis_positions.append(pos)
    else:
        for i in range(len(ips)):
            kind = kinds[i]
            ip = ips[i]
            taken = taken_arr[i]
            pos = instr_idx[i]

            while pos >= boundary:
                if heartbeat:
                    _log.info(
                        "%s: slice %d done (%d instructions, %d branches, "
                        "acc so far %.4f)",
                        predictor.name,
                        len(slice_list),
                        boundary,
                        i,
                        stats.accuracy,
                    )
                slice_list.append(cur_slice)
                cur_slice = BranchStats()
                cur_slice_record = cur_slice.record
                boundary += slice_instructions

            if kind != _COND:
                note(ip, targets[i], _KINDS[kind], taken)
                continue

            set_outcome(taken)
            pred = predict(ip)
            update(ip, taken)
            seen_cond += 1
            if seen_cond <= warmup_branches:
                continue
            correct = pred == taken
            stats_record(ip, correct)
            if cur_slice_record is not None:
                cur_slice_record(ip, correct)
            if not correct and mis_positions is not None:
                mis_positions.append(pos)

    if slice_list is not None and (len(cur_slice) or not slice_list):
        slice_list.append(cur_slice)

    elapsed = perf_counter() - t_start
    if obs.is_enabled():
        obs.observe_timer("sim.trace", elapsed)
        obs.observe_timer(f"sim.predictor.{predictor.name}", elapsed)
        obs.counter("sim.branches", len(ips))
        obs.counter("sim.cond_branches", seen_cond)
        obs.counter("sim.instructions", trace.instr_count)
        obs.counter("sim.mispredictions", stats.total_mispredictions)
        obs.counter("kernels.fallback_scalar", seen_cond)
        obs.counter(f"kernels.fallback_scalar.{predictor.name}", seen_cond)
        if elapsed > 0:
            obs.gauge("sim.branches_per_sec", len(ips) / elapsed)
        publish = getattr(predictor, "publish_obs_counters", None)
        if publish is not None:
            publish()
    if _log.isEnabledFor(logging.INFO):
        _log.info(
            "%s: %d branches in %s (%s), accuracy %.4f, mpki %.2f",
            predictor.name,
            len(ips),
            obs.format_duration(elapsed),
            obs.format_rate(len(ips), elapsed, "/s"),
            stats.accuracy,
            stats.mpki(trace.instr_count),
        )

    return SimulationResult(
        predictor_name=predictor.name,
        stats=stats,
        instr_count=trace.instr_count,
        slice_stats=slice_list,
        mispredict_positions=(
            np.asarray(mis_positions, dtype=np.int64) if mis_positions is not None else None
        ),
    )


def _simulate_scalar_introspect(
    trace: BranchTrace,
    predictor: BranchPredictor,
    slice_instructions: Optional[int],
    record_mispredict_positions: bool,
    warmup_branches: int,
) -> SimulationResult:
    """Scalar loop with per-branch introspection recording.

    A separate (generic, unspecialized) loop so the normal scalar paths pay
    nothing for introspection.  Every accumulation feeding the returned
    :class:`SimulationResult` matches the plain loops exactly — the channel
    only *observes* — so results stay bit-identical with telemetry on.
    """
    stats = BranchStats()
    slice_list: Optional[List[BranchStats]] = None
    cur_slice: Optional[BranchStats] = None
    if slice_instructions is not None:
        slice_list = []
        cur_slice = BranchStats()
    mis_positions: Optional[List[int]] = [] if record_mispredict_positions else None

    chan = introspect.begin(predictor.name, slice_instructions, path="scalar")
    t_start = perf_counter()

    ips, taken_arr, targets, kinds, instr_idx = trace.columns_as_lists()

    set_outcome = getattr(predictor, "set_outcome", None)
    introspect_last = getattr(predictor, "introspect_last", None)
    predict = predictor.predict
    update = predictor.update
    note = predictor.note_branch
    stats_record = stats.record
    cur_slice_record = cur_slice.record if cur_slice is not None else None
    record = chan.record
    boundary = slice_instructions if slice_instructions is not None else float("inf")
    seen_cond = 0

    for i in range(len(ips)):
        kind = kinds[i]
        ip = ips[i]
        taken = taken_arr[i]
        pos = instr_idx[i]

        while pos >= boundary:
            slice_list.append(cur_slice)
            cur_slice = BranchStats()
            cur_slice_record = cur_slice.record
            boundary += slice_instructions

        if kind != _COND:
            note(ip, targets[i], _KINDS[kind], taken)
            continue

        if set_outcome is not None:
            set_outcome(taken)
        pred = predict(ip)
        attr = introspect_last() if introspect_last is not None else None
        update(ip, taken)
        seen_cond += 1
        if seen_cond <= warmup_branches:
            continue
        correct = pred == taken
        stats_record(ip, correct)
        if cur_slice_record is not None:
            cur_slice_record(ip, correct)
        if not correct and mis_positions is not None:
            mis_positions.append(pos)
        record(ip, pos, correct, attr)

    if slice_list is not None and (len(cur_slice) or not slice_list):
        slice_list.append(cur_slice)

    elapsed = perf_counter() - t_start
    chan.finish(predictor)
    if obs.is_enabled():
        obs.observe_timer("sim.trace", elapsed)
        obs.observe_timer(f"sim.predictor.{predictor.name}", elapsed)
        obs.counter("sim.branches", len(ips))
        obs.counter("sim.cond_branches", seen_cond)
        obs.counter("sim.instructions", trace.instr_count)
        obs.counter("sim.mispredictions", stats.total_mispredictions)
        obs.counter("kernels.fallback_scalar", seen_cond)
        obs.counter(f"kernels.fallback_scalar.{predictor.name}", seen_cond)
        if elapsed > 0:
            obs.gauge("sim.branches_per_sec", len(ips) / elapsed)
        publish = getattr(predictor, "publish_obs_counters", None)
        if publish is not None:
            publish()

    return SimulationResult(
        predictor_name=predictor.name,
        stats=stats,
        instr_count=trace.instr_count,
        slice_stats=slice_list,
        mispredict_positions=(
            np.asarray(mis_positions, dtype=np.int64) if mis_positions is not None else None
        ),
    )


def _simulate_with_kernel(
    trace: BranchTrace,
    predictor: BranchPredictor,
    kernel: TraceKernel,
    slice_instructions: Optional[int],
    record_mispredict_positions: bool,
    warmup_branches: int,
    introspecting: bool = False,
) -> SimulationResult:
    """Score ``predictor``'s vectorized kernel over ``trace``.

    Publishes the same observability surface as the scalar loop (plus the
    ``kernels.branches`` counter) and returns a bit-identical result.
    """
    t_start = perf_counter()
    score = score_with_kernel(
        trace,
        kernel,
        slice_instructions=slice_instructions,
        record_mispredict_positions=record_mispredict_positions,
        warmup_branches=warmup_branches,
        collect_introspection=introspecting,
    )
    elapsed = perf_counter() - t_start
    if introspecting:
        chan = introspect.begin(predictor.name, slice_instructions, path="kernel")
        chan.record_kernel(score.stats, score.intro_mis_ips, score.intro_mis_pos)
        chan.finish(predictor)

    if obs.is_enabled():
        obs.observe_timer("sim.trace", elapsed)
        obs.observe_timer(f"sim.predictor.{predictor.name}", elapsed)
        obs.counter("sim.branches", len(trace))
        obs.counter("sim.cond_branches", score.cond_branches)
        obs.counter("sim.instructions", trace.instr_count)
        obs.counter("sim.mispredictions", score.stats.total_mispredictions)
        obs.counter("kernels.branches", score.cond_branches)
        if elapsed > 0:
            obs.gauge("sim.branches_per_sec", len(trace) / elapsed)
        publish = getattr(predictor, "publish_obs_counters", None)
        if publish is not None:
            publish()
    if _log.isEnabledFor(logging.INFO):
        _log.info(
            "%s: %d branches in %s (%s, vectorized), accuracy %.4f, mpki %.2f",
            predictor.name,
            len(trace),
            obs.format_duration(elapsed),
            obs.format_rate(len(trace), elapsed, "/s"),
            score.stats.accuracy,
            score.stats.mpki(trace.instr_count),
        )

    return SimulationResult(
        predictor_name=predictor.name,
        stats=score.stats,
        instr_count=trace.instr_count,
        slice_stats=score.slice_stats,
        mispredict_positions=score.mispredict_positions,
    )


def simulate_trace_batch(
    trace: BranchTrace,
    predictors: List[BranchPredictor],
    slice_instructions: Optional[int] = None,
    record_mispredict_positions: bool = False,
    warmup_branches: int = 0,
) -> List[SimulationResult]:
    """Simulate several predictors over one trace, sharing one replay pass.

    When every predictor is a batchable TAGE-SC-L configuration (see
    :func:`repro.kernels.batched.batchable`) and kernels are enabled, the
    multi-config replay reconstructs the trace's history/feature streams
    once and replays all presets against them — the fig. 7/8 shape, where
    the same workload is scored at every storage budget.  Results (and
    each predictor's final state) are bit-identical to running
    :func:`simulate_trace` per predictor; with ``REPRO_KERNELS=0`` or any
    non-batchable predictor in the list, that is literally what happens.
    """
    if not predictors:
        return []
    from repro.kernels.batched import batchable, replay_tagescl_batch

    if not kernels_enabled() or not all(batchable(p) for p in predictors):
        return [
            simulate_trace(
                trace,
                p,
                slice_instructions=slice_instructions,
                record_mispredict_positions=record_mispredict_positions,
                warmup_branches=warmup_branches,
            )
            for p in predictors
        ]

    introspecting = introspect.is_enabled()
    t_start = perf_counter()
    replays = replay_tagescl_batch(
        trace, predictors, collect_introspection=introspecting
    )
    results: List[SimulationResult] = []
    for predictor, rep in zip(predictors, replays):
        score = score_predictions(
            trace,
            rep.preds,
            slice_instructions=slice_instructions,
            record_mispredict_positions=record_mispredict_positions,
            warmup_branches=warmup_branches,
        )
        results.append(
            SimulationResult(
                predictor_name=predictor.name,
                stats=score.stats,
                instr_count=trace.instr_count,
                slice_stats=score.slice_stats,
                mispredict_positions=score.mispredict_positions,
            )
        )
    elapsed = perf_counter() - t_start

    if introspecting:
        # Mirror the scalar loop's per-branch attribution recording; the
        # replay collected the ``introspect_last`` tuples in stream order.
        ips_c, taken_c, pos_c = trace.conditional_columns()
        w = max(0, warmup_branches)
        ips_lw = ips_c[w:].tolist()
        pos_lw = pos_c[w:].tolist()
        for predictor, rep in zip(predictors, replays):
            chan = introspect.begin(
                predictor.name, slice_instructions, path="batched"
            )
            record = chan.record
            correct_lw = (rep.preds[w:] == taken_c[w:]).tolist()
            for ip, pos, correct, attr in zip(
                ips_lw, pos_lw, correct_lw, rep.attrs[w:]
            ):
                record(ip, pos, correct, attr)
            chan.finish(predictor)

    if obs.is_enabled():
        obs.observe_timer("sim.trace", elapsed)
        per_pred = elapsed / len(predictors)
        for predictor, res in zip(predictors, results):
            obs.observe_timer(f"sim.predictor.{predictor.name}", per_pred)
            cond = int(len(trace.conditional_columns()[0]))
            obs.counter("sim.branches", len(trace))
            obs.counter("sim.cond_branches", cond)
            obs.counter("sim.instructions", trace.instr_count)
            obs.counter("sim.mispredictions", res.stats.total_mispredictions)
            obs.counter("kernels.branches", cond)
            obs.counter("kernels.batched", cond)
            publish = getattr(predictor, "publish_obs_counters", None)
            if publish is not None:
                publish()
        if elapsed > 0:
            obs.gauge(
                "sim.branches_per_sec", len(trace) * len(predictors) / elapsed
            )
    if _log.isEnabledFor(logging.INFO):
        _log.info(
            "batched %d presets: %d branches in %s (%s), first %s acc %.4f",
            len(predictors),
            len(trace),
            obs.format_duration(elapsed),
            obs.format_rate(len(trace) * len(predictors), elapsed, "/s"),
            results[0].predictor_name,
            results[0].stats.accuracy,
        )

    return results
