"""Branch predictors: baselines, the TAGE-SC-L family, oracles, helpers."""

from repro.predictors.base import BranchPredictor
from repro.predictors.cnn_helper import (
    CnnHelperConfig,
    CnnHelperPredictor,
    HelperAugmentedPredictor,
    extract_branch_dataset,
    train_helper,
)
from repro.predictors.gehl import OGehl
from repro.predictors.loop import ImliCounter, LoopPredictor
from repro.predictors.oracle import Perfect, PerfectFilter
from repro.predictors.perceptron import PathPerceptron, Perceptron
from repro.predictors.phase_aware import PhaseBiasHelper, PhaseRecognizer
from repro.predictors.ppm import PPM
from repro.predictors.simple import (
    AlwaysTaken,
    Bimodal,
    GShare,
    NeverTaken,
    TwoLevelLocal,
)
from repro.predictors.statistical_corrector import StatisticalCorrector
from repro.predictors.targets import (
    BranchTargetBuffer,
    Ittage,
    ReturnAddressStack,
    TargetSimulationResult,
    simulate_targets,
)
from repro.predictors.tage import (
    AllocationStats,
    Tage,
    TageConfig,
    geometric_history_lengths,
)
from repro.predictors.tagescl import STORAGE_PRESETS_KIB, TageScL, make_tage_sc_l
from repro.predictors.tournament import Tournament
from repro.predictors.wormhole import Wormhole, WormholeAugmentedPredictor

__all__ = [
    "AllocationStats",
    "CnnHelperConfig",
    "CnnHelperPredictor",
    "HelperAugmentedPredictor",
    "OGehl",
    "PhaseBiasHelper",
    "PhaseRecognizer",
    "Tournament",
    "Wormhole",
    "WormholeAugmentedPredictor",
    "extract_branch_dataset",
    "train_helper",
    "AlwaysTaken",
    "Bimodal",
    "BranchTargetBuffer",
    "Ittage",
    "ReturnAddressStack",
    "TargetSimulationResult",
    "simulate_targets",
    "BranchPredictor",
    "GShare",
    "ImliCounter",
    "LoopPredictor",
    "NeverTaken",
    "PPM",
    "PathPerceptron",
    "Perceptron",
    "Perfect",
    "PerfectFilter",
    "STORAGE_PRESETS_KIB",
    "StatisticalCorrector",
    "Tage",
    "TageConfig",
    "TageScL",
    "TwoLevelLocal",
    "geometric_history_lengths",
    "make_tage_sc_l",
]
