"""Predictor interface and shared primitives.

All predictors follow the CBP2016 deployment contract the paper describes
(Sec. II): the simulator feeds them the IP, instruction type, target, and the
resolved direction of conditional branches.  For each *conditional* branch
the driver calls :meth:`BranchPredictor.predict` then
:meth:`BranchPredictor.update` with the outcome; other control-flow
instructions arrive via :meth:`BranchPredictor.note_branch` so predictors can
keep path history consistent.  ``storage_bits()`` reports the hardware
budget the configuration would occupy, which the paper's limit studies vary
from 8KB to 1024KB.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Optional

from repro.core.types import BranchKind

if TYPE_CHECKING:
    from repro.kernels.engine import TraceKernel


def saturate(value: int, lo: int, hi: int) -> int:
    """Clamp ``value`` into [lo, hi]."""
    if value < lo:
        return lo
    if value > hi:
        return hi
    return value


def counter_update(value: int, taken: bool, lo: int, hi: int) -> int:
    """Move a saturating counter one step toward the outcome."""
    return saturate(value + (1 if taken else -1), lo, hi)


class BranchPredictor(abc.ABC):
    """Abstract direction predictor."""

    name: str = "abstract"

    @abc.abstractmethod
    def predict(self, ip: int) -> bool:
        """Predict the direction of the conditional branch at ``ip``.

        Implementations may stash per-prediction state; the driver guarantees
        that :meth:`update` for the same branch is the next call.
        """

    @abc.abstractmethod
    def update(self, ip: int, taken: bool) -> None:
        """Train on the resolved direction and advance speculative state."""

    def note_branch(
        self, ip: int, target: int, kind: BranchKind, taken: bool = True
    ) -> None:
        """Observe a non-conditional control-flow instruction.

        Default: ignored.  Predictors with path histories override this.
        """

    def vectorized_kernel(self) -> "Optional[TraceKernel]":
        """Optional numpy fast path for trace-driven simulation.

        A predictor may return a :data:`repro.kernels.engine.TraceKernel` —
        a callable mapping the trace's conditional (ips, taken) columns to
        the exact prediction sequence the scalar predict/update loop would
        emit — and ``simulate_trace`` will use it instead of the per-branch
        loop (unless ``REPRO_KERNELS=0``).

        The contract is strict: the kernel must be bit-identical to the
        scalar path and must leave the predictor's state (tables,
        histories) as the scalar loop would.  A plain kernel only sees the
        conditional columns, which is sound when ``note_branch`` is a
        no-op; predictors whose histories advance on unconditional
        branches (path perceptron, GEHL) set ``wants_trace = True`` on the
        kernel, which is then invoked as ``kernel(ips, taken, trace)`` and
        reconstructs its full-stream history from the trace.
        Implementations should also refuse to serve subclasses
        (``type(self) is not Cls``) so an overridden ``predict``/``update``
        silently falls back to the scalar loop.
        Default: ``None`` (scalar loop).
        """
        return None

    @abc.abstractmethod
    def storage_bits(self) -> int:
        """Hardware storage footprint of this configuration, in bits."""

    def storage_kib(self) -> float:
        return self.storage_bits() / 8192.0

    def reset(self) -> None:
        """Restore the predictor to its power-on state.

        Default implementation re-runs ``__init__`` state via subclass
        override; subclasses with cheap state should override.
        """
        raise NotImplementedError(f"{type(self).__name__} does not support reset")
