"""Offline-trained CNN helper predictors (paper Sec. V-C).

The paper proposes training powerful per-branch "helper" predictors offline
on multi-input trace libraries and deploying them alongside TAGE-SC-L; its
companion paper (Tarsa et al., "Improving Branch Prediction By Modeling
Global History with Convolutional Neural Networks") uses low-precision CNNs
over an encoded global history.  This module implements that design in
numpy:

* each history record is a token ``(ip low bits, direction)``;
* tokens are embedded, a width-``w`` 1-D convolution with ReLU extracts
  position-robust patterns, sum-pooling aggregates them, and a linear layer
  emits the logit;
* after training, weights can be quantized to 2 bits (four levels), the
  deployment format the companion paper argues fits BPU constraints;
* :class:`HelperAugmentedPredictor` deploys trained helpers on top of a base
  predictor, overriding it only for their target branches — the paper's
  deployment model.

Helpers are trained per static branch (the paper's observation from Fig. 10:
value structure is branch-specific, so "we should focus on training
branch-specific predictors").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.types import BranchKind, BranchTrace
from repro.predictors.base import BranchPredictor

_TOKEN_BITS = 8  # 7 IP bits + 1 direction bit
_NUM_TOKENS = 1 << _TOKEN_BITS


def encode_token(ip: int, taken: bool) -> int:
    """Encode one history record as an 8-bit token."""
    return (((ip >> 2) & 0x7F) << 1) | int(taken)


def extract_branch_dataset(
    trace: BranchTrace, target_ip: int, history_length: int = 42
) -> Tuple[np.ndarray, np.ndarray]:
    """(histories, outcomes) for every dynamic execution of ``target_ip``.

    Histories are token arrays over the preceding ``history_length``
    conditional branches (newest last); executions with insufficient history
    are skipped.
    """
    if history_length < 1:
        raise ValueError("history_length must be >= 1")
    cond = trace.conditional_mask
    ips = trace.ips[cond]
    taken = trace.taken[cond]
    tokens = (((ips >> 2) & 0x7F) << 1 | taken).astype(np.uint8)
    idx = np.where(ips == target_ip)[0]
    idx = idx[idx >= history_length]
    n = len(idx)
    histories = np.zeros((n, history_length), dtype=np.uint8)
    for row, i in enumerate(idx):
        histories[row] = tokens[i - history_length : i]
    outcomes = taken[idx].astype(np.int8)
    return histories, outcomes


@dataclass(frozen=True)
class CnnHelperConfig:
    """Hyperparameters of a helper CNN."""

    history_length: int = 42
    embed_dim: int = 8
    conv_width: int = 3
    num_filters: int = 16
    epochs: int = 12
    batch_size: int = 64
    learning_rate: float = 0.05
    seed: int = 0

    def __post_init__(self) -> None:
        if self.history_length < self.conv_width:
            raise ValueError("history shorter than the convolution width")
        if min(self.embed_dim, self.conv_width, self.num_filters) < 1:
            raise ValueError("invalid network shape")


class CnnHelperPredictor:
    """A per-branch helper CNN, trained offline."""

    def __init__(self, target_ip: int, config: Optional[CnnHelperConfig] = None) -> None:
        self.target_ip = target_ip
        self.config = config or CnnHelperConfig()
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        scale = 0.2
        self.embedding = rng.normal(0, scale, (_NUM_TOKENS, cfg.embed_dim))
        self.conv_w = rng.normal(
            0, scale, (cfg.conv_width * cfg.embed_dim, cfg.num_filters)
        )
        self.conv_b = np.zeros(cfg.num_filters)
        self.out_w = rng.normal(0, scale, cfg.num_filters)
        self.out_b = 0.0
        self.quantized = False

    # -- forward ---------------------------------------------------------

    def _windows(self, histories: np.ndarray) -> np.ndarray:
        """Stack sliding windows: (N, H-w+1, w*E)."""
        cfg = self.config
        emb = self.embedding[histories]  # (N, H, E)
        pieces = [
            emb[:, j : histories.shape[1] - cfg.conv_width + 1 + j, :]
            for j in range(cfg.conv_width)
        ]
        return np.concatenate(pieces, axis=2)

    def _forward(self, histories: np.ndarray):
        windows = self._windows(histories)  # (N, P, wE)
        pre = windows @ self.conv_w + self.conv_b  # (N, P, F)
        act = np.maximum(pre, 0.0)
        pooled = act.sum(axis=1)  # (N, F)
        logits = pooled @ self.out_w + self.out_b
        return windows, pre, act, pooled, logits

    def predict_proba(self, histories: np.ndarray) -> np.ndarray:
        """Taken-probability per history."""
        _, _, _, _, logits = self._forward(np.asarray(histories, dtype=np.uint8))
        return 1.0 / (1.0 + np.exp(-np.clip(logits, -30, 30)))

    def predict_batch(self, histories: np.ndarray) -> np.ndarray:
        return self.predict_proba(histories) >= 0.5

    def accuracy(self, histories: np.ndarray, outcomes: np.ndarray) -> float:
        preds = self.predict_batch(histories)
        return float((preds == np.asarray(outcomes, dtype=bool)).mean())

    # -- training --------------------------------------------------------

    def train(
        self,
        histories: np.ndarray,
        outcomes: np.ndarray,
        verbose: bool = False,
        epochs: Optional[int] = None,
        train_embedding: bool = True,
        train_conv: bool = True,
    ) -> List[float]:
        """SGD on binary cross-entropy; returns per-epoch training loss.

        ``train_embedding`` / ``train_conv`` freeze stages during the
        quantization-aware fine-tuning passes of :meth:`quantize`.
        """
        cfg = self.config
        num_epochs = epochs if epochs is not None else cfg.epochs
        histories = np.asarray(histories, dtype=np.uint8)
        y = np.asarray(outcomes, dtype=float)
        if len(histories) != len(y) or len(y) == 0:
            raise ValueError("empty or mismatched training data")
        rng = np.random.default_rng(cfg.seed + 1)
        n = len(y)
        losses: List[float] = []
        for epoch in range(num_epochs):
            order = rng.permutation(n)
            lr = cfg.learning_rate / (1.0 + 0.3 * epoch)
            epoch_loss = 0.0
            for start in range(0, n, cfg.batch_size):
                batch = order[start : start + cfg.batch_size]
                hb, yb = histories[batch], y[batch]
                windows, pre, act, pooled, logits = self._forward(hb)
                probs = 1.0 / (1.0 + np.exp(-np.clip(logits, -30, 30)))
                eps = 1e-9
                epoch_loss += float(
                    -(yb * np.log(probs + eps) + (1 - yb) * np.log(1 - probs + eps)).sum()
                )
                dlogit = (probs - yb) / len(batch)  # (B,)
                # Output layer.
                grad_out_w = pooled.T @ dlogit
                grad_out_b = dlogit.sum()
                # Through pooling into conv activations.
                dact = dlogit[:, None, None] * self.out_w[None, None, :]
                dpre = dact * (pre > 0)
                grad_conv_w = np.einsum("npw,npf->wf", windows, dpre)
                grad_conv_b = dpre.sum(axis=(0, 1))
                # Into the embeddings.
                dwindows = dpre @ self.conv_w.T  # (B, P, wE)
                E, W = cfg.embed_dim, cfg.conv_width
                demb = np.zeros((len(batch), hb.shape[1], E))
                P = dwindows.shape[1]
                for j in range(W):
                    demb[:, j : j + P, :] += dwindows[:, :, j * E : (j + 1) * E]
                self.out_w -= lr * grad_out_w
                self.out_b -= lr * grad_out_b
                if train_conv:
                    self.conv_w -= lr * grad_conv_w
                    self.conv_b -= lr * grad_conv_b
                if train_embedding:
                    np.subtract.at(
                        self.embedding,
                        hb.reshape(-1),
                        lr * demb.reshape(-1, E),
                    )
            losses.append(epoch_loss / n)
            if verbose:
                print(f"epoch {epoch}: loss {losses[-1]:.4f}")
        return losses

    # -- quantization ----------------------------------------------------

    @staticmethod
    def _quantize_tensor(w: np.ndarray, bits: int, axis: int) -> np.ndarray:
        levels = (1 << bits) - 1
        scale = np.abs(w).max(axis=axis, keepdims=True)
        scale = np.where(scale == 0, 1.0, scale)
        step = 2 * scale / levels
        return np.round((w + scale) / step) * step - scale

    def quantize(
        self,
        bits: int = 2,
        finetune_histories: Optional[np.ndarray] = None,
        finetune_outcomes: Optional[np.ndarray] = None,
        finetune_epochs: int = 4,
    ) -> None:
        """Quantize the weight matrices to ``bits`` per weight.

        2-bit quantization (four levels) is the companion paper's deployment
        format; inference then needs only narrow adds.  Scales are
        per-channel (one per embedding dimension / conv filter), which the
        hardware realizes as a handful of shared shift-add constants; the
        few biases and the final layer keep 8-bit precision.

        When fine-tuning data is supplied, quantization is staged the way
        quantization-aware training does it: quantize the embeddings, retrain
        the float stages, quantize the convolution, retrain the output layer.
        """
        if bits < 1 or bits > 8:
            raise ValueError("bits must be in 1..8")
        can_finetune = finetune_histories is not None and finetune_outcomes is not None

        self.embedding = self._quantize_tensor(self.embedding, bits, axis=0)
        if can_finetune:
            self.train(
                finetune_histories,
                finetune_outcomes,
                epochs=finetune_epochs,
                train_embedding=False,
                train_conv=True,
            )
        self.conv_w = self._quantize_tensor(self.conv_w, bits, axis=0)
        self.conv_b = self._quantize_tensor(self.conv_b[None, :], bits, axis=1)[0]
        if can_finetune:
            self.train(
                finetune_histories,
                finetune_outcomes,
                epochs=finetune_epochs,
                train_embedding=False,
                train_conv=False,
            )
        self.out_w = self._quantize_tensor(self.out_w[None, :], 8, axis=1)[0]
        self.quantized = True

    def storage_bits(self, weight_bits: int = 2) -> int:
        """Deployment footprint at the given weight precision."""
        n_weights = (
            self.embedding.size + self.conv_w.size + self.conv_b.size
            + self.out_w.size + 1
        )
        return n_weights * weight_bits


def train_helper(
    trace: BranchTrace,
    target_ip: int,
    config: Optional[CnnHelperConfig] = None,
) -> CnnHelperPredictor:
    """Convenience: extract the dataset from a trace and train a helper."""
    cfg = config or CnnHelperConfig()
    histories, outcomes = extract_branch_dataset(trace, target_ip, cfg.history_length)
    helper = CnnHelperPredictor(target_ip, cfg)
    helper.train(histories, outcomes)
    return helper


class HelperAugmentedPredictor(BranchPredictor):
    """A base predictor plus deployed per-branch helpers (Sec. V-D).

    Helpers own their target branches; every other branch goes to the base
    predictor.  The base still trains on all branches (it must stay warm in
    case a helper is unloaded).  The online global-history window the
    helpers consume is maintained here, mirroring what the OS-loaded helper
    hardware would see.
    """

    def __init__(
        self,
        base: BranchPredictor,
        helpers: Iterable[CnnHelperPredictor],
        label: Optional[str] = None,
    ) -> None:
        self.base = base
        self.helpers: Dict[int, CnnHelperPredictor] = {
            h.target_ip: h for h in helpers
        }
        if not self.helpers:
            raise ValueError("need at least one helper")
        self._hist_len = max(h.config.history_length for h in self.helpers.values())
        self._tokens = np.zeros(self._hist_len, dtype=np.uint8)
        self._filled = 0
        self.name = label or f"{base.name}+cnn-helpers"

    def predict(self, ip: int) -> bool:
        base_pred = self.base.predict(ip)
        helper = self.helpers.get(ip)
        if helper is None or self._filled < helper.config.history_length:
            return base_pred
        h = helper.config.history_length
        window = self._tokens[self._hist_len - h :][None, :]
        return bool(helper.predict_batch(window)[0])

    def update(self, ip: int, taken: bool) -> None:
        self.base.update(ip, taken)
        self._tokens[:-1] = self._tokens[1:]
        self._tokens[-1] = encode_token(ip, taken)
        if self._filled < self._hist_len:
            self._filled += 1

    def note_branch(
        self, ip: int, target: int, kind: BranchKind, taken: bool = True
    ) -> None:
        self.base.note_branch(ip, target, kind, taken)

    def storage_bits(self) -> int:
        return self.base.storage_bits() + sum(
            h.storage_bits() for h in self.helpers.values()
        )

    def reset(self) -> None:
        self.base.reset()
        self._tokens[:] = 0
        self._filled = 0
