"""O-GEHL: Optimized GEometric History Length predictor (Seznec 2005).

The bridge between perceptrons and TAGE in the lineage the paper sketches:
several tables of signed counters, each indexed by the IP hashed with a
*geometrically growing* slice of global history; the prediction is the sign
of the summed counter votes, trained perceptron-style against an adaptive
threshold.  Unlike TAGE there are no tags — aliasing is fought statistically
rather than by exact matching — which makes it an informative ablation
partner for TAGE's tagged tables.
"""

from __future__ import annotations

from typing import List

from repro.core.types import BranchKind
from repro.predictors.base import BranchPredictor, saturate
from repro.predictors.tage import geometric_history_lengths


class OGehl(BranchPredictor):
    """O-GEHL with adaptive threshold (simplified)."""

    name = "o-gehl"

    def __init__(
        self,
        num_tables: int = 8,
        log_entries: int = 10,
        min_history: int = 3,
        max_history: int = 200,
        counter_bits: int = 5,
    ) -> None:
        if num_tables < 2 or log_entries <= 0 or counter_bits < 2:
            raise ValueError("invalid O-GEHL shape")
        self.num_tables = num_tables
        self.log_entries = log_entries
        self.counter_bits = counter_bits
        # Table 0 is indexed by IP alone (bias); the rest use history.
        self.history_lengths = [0] + geometric_history_lengths(
            min_history, max_history, num_tables - 1
        )
        self._mask = (1 << log_entries) - 1
        self._lo = -(1 << (counter_bits - 1))
        self._hi = (1 << (counter_bits - 1)) - 1
        self._tables: List[List[int]] = [
            [0] * (1 << log_entries) for _ in range(num_tables)
        ]
        self._history = 0  # packed global history, newest bit = LSB
        self._max_history = max_history
        self.threshold = num_tables
        self._tc = 0  # threshold-training counter
        self._last_indices: List[int] = [0] * num_tables
        self._last_sum = 0

    def _fold(self, length: int) -> int:
        bits = self._history & ((1 << length) - 1)
        folded = 0
        while bits:
            folded ^= bits & self._mask
            bits >>= self.log_entries
        return folded

    def predict(self, ip: int) -> bool:
        s = 0
        for t in range(self.num_tables):
            h = self.history_lengths[t]
            idx = (ip ^ (ip >> (t + 1)) ^ self._fold(h)) & self._mask if h else (
                ip ^ (ip >> self.log_entries)
            ) & self._mask
            self._last_indices[t] = idx
            s += 2 * self._tables[t][idx] + 1
        self._last_sum = s
        return s >= 0

    def update(self, ip: int, taken: bool) -> None:
        s = self._last_sum
        pred = s >= 0
        if pred != taken or abs(s) < self.threshold:
            for t in range(self.num_tables):
                idx = self._last_indices[t]
                self._tables[t][idx] = saturate(
                    self._tables[t][idx] + (1 if taken else -1),
                    self._lo, self._hi,
                )
        # Adaptive threshold (Seznec's TC scheme).
        if pred != taken:
            self._tc += 1
            if self._tc >= 64:
                self._tc = 0
                self.threshold = min(self.threshold + 1, 4 * self.num_tables)
        elif abs(s) < self.threshold:
            self._tc -= 1
            if self._tc <= -64:
                self._tc = 0
                self.threshold = max(self.threshold - 1, 1)
        self._history = ((self._history << 1) | int(taken)) & (
            (1 << self._max_history) - 1
        )

    def note_branch(
        self, ip: int, target: int, kind: BranchKind, taken: bool = True
    ) -> None:
        self._history = ((self._history << 1) | 1) & ((1 << self._max_history) - 1)

    def storage_bits(self) -> int:
        return (
            self.num_tables * (1 << self.log_entries) * self.counter_bits
            + self._max_history
            + 16
        )

    def reset(self) -> None:
        for table in self._tables:
            for i in range(len(table)):
                table[i] = 0
        self._history = 0
        self._tc = 0
        self.threshold = self.num_tables
