"""O-GEHL: Optimized GEometric History Length predictor (Seznec 2005).

The bridge between perceptrons and TAGE in the lineage the paper sketches:
several tables of signed counters, each indexed by the IP hashed with a
*geometrically growing* slice of global history; the prediction is the sign
of the summed counter votes, trained perceptron-style against an adaptive
threshold.  Unlike TAGE there are no tags — aliasing is fought statistically
rather than by exact matching — which makes it an informative ablation
partner for TAGE's tagged tables.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.types import BranchKind, BranchTrace
from repro.predictors.base import BranchPredictor, saturate
from repro.predictors.tage import geometric_history_lengths


class OGehl(BranchPredictor):
    """O-GEHL with adaptive threshold (simplified)."""

    name = "o-gehl"

    def __init__(
        self,
        num_tables: int = 8,
        log_entries: int = 10,
        min_history: int = 3,
        max_history: int = 200,
        counter_bits: int = 5,
    ) -> None:
        if num_tables < 2 or log_entries <= 0 or counter_bits < 2:
            raise ValueError("invalid O-GEHL shape")
        self.num_tables = num_tables
        self.log_entries = log_entries
        self.counter_bits = counter_bits
        # Table 0 is indexed by IP alone (bias); the rest use history.
        self.history_lengths = [0] + geometric_history_lengths(
            min_history, max_history, num_tables - 1
        )
        self._mask = (1 << log_entries) - 1
        self._lo = -(1 << (counter_bits - 1))
        self._hi = (1 << (counter_bits - 1)) - 1
        self._tables: List[List[int]] = [
            [0] * (1 << log_entries) for _ in range(num_tables)
        ]
        self._history = 0  # packed global history, newest bit = LSB
        self._max_history = max_history
        self.threshold = num_tables
        self._tc = 0  # threshold-training counter
        self._last_indices: List[int] = [0] * num_tables
        self._last_sum = 0

    def _fold(self, length: int) -> int:
        bits = self._history & ((1 << length) - 1)
        folded = 0
        while bits:
            folded ^= bits & self._mask
            bits >>= self.log_entries
        return folded

    def predict(self, ip: int) -> bool:
        s = 0
        for t in range(self.num_tables):
            h = self.history_lengths[t]
            idx = (ip ^ (ip >> (t + 1)) ^ self._fold(h)) & self._mask if h else (
                ip ^ (ip >> self.log_entries)
            ) & self._mask
            self._last_indices[t] = idx
            s += 2 * self._tables[t][idx] + 1
        self._last_sum = s
        return s >= 0

    def update(self, ip: int, taken: bool) -> None:
        s = self._last_sum
        pred = s >= 0
        if pred != taken or abs(s) < self.threshold:
            for t in range(self.num_tables):
                idx = self._last_indices[t]
                self._tables[t][idx] = saturate(
                    self._tables[t][idx] + (1 if taken else -1),
                    self._lo, self._hi,
                )
        # Adaptive threshold (Seznec's TC scheme).
        if pred != taken:
            self._tc += 1
            if self._tc >= 64:
                self._tc = 0
                self.threshold = min(self.threshold + 1, 4 * self.num_tables)
        elif abs(s) < self.threshold:
            self._tc -= 1
            if self._tc <= -64:
                self._tc = 0
                self.threshold = max(self.threshold - 1, 1)
        self._history = ((self._history << 1) | int(taken)) & (
            (1 << self._max_history) - 1
        )

    def note_branch(
        self, ip: int, target: int, kind: BranchKind, taken: bool = True
    ) -> None:
        self._history = ((self._history << 1) | 1) & ((1 << self._max_history) - 1)

    def storage_bits(self) -> int:
        return (
            self.num_tables * (1 << self.log_entries) * self.counter_bits
            + self._max_history
            + 16
        )

    def reset(self) -> None:
        for table in self._tables:
            for i in range(len(table)):
                table[i] = 0
        self._history = 0
        self._tc = 0
        self.threshold = self.num_tables

    def vectorized_kernel(self) -> Optional[object]:
        if type(self) is not OGehl:
            return None

        def kernel(ips: np.ndarray, taken: np.ndarray, trace: BranchTrace):
            return _replay_ogehl(self, ips, taken, trace)

        kernel.wants_trace = True  # type: ignore[attr-defined]
        return kernel


def folded_stream_history(
    trace: BranchTrace,
    length: int,
    width: int,
    prefix_bits: "np.ndarray",
    prefix_key: object,
) -> np.ndarray:
    """Folded global history before each record, for the whole stream.

    ``out[k]`` equals ``fold(history, length)`` — the low ``length`` bits of
    the packed push-bit history, XOR-compressed in ``width``-bit chunks —
    as a predictor that pushed ``prefix_bits`` (oldest first) before the
    trace and then the trace's own push bits would see it before record
    ``k`` (``out[n]`` is the post-trace value).  Chunk ``q`` of the fold is
    just the masked ``width``-bit window ending ``q*width`` bits back, so
    the whole stream costs one memoized packed-window pass per ``width``
    plus ``ceil(length/width)`` XORs; the fold arrays themselves are
    memoized per ``(length, width, prefix)`` and shared across predictors
    reading the same geometric history lengths.
    """
    from repro.kernels import packed_bit_windows, plan_memo, stream_bits

    pre = len(prefix_bits)
    if length > pre:
        raise ValueError("prefix must cover the longest folded history")

    def build_windows() -> np.ndarray:
        ext = np.concatenate(
            [np.asarray(prefix_bits, dtype=np.uint8), stream_bits(trace)]
        )
        return packed_bit_windows(ext, width)

    windows = plan_memo(
        trace, ("packed_windows", width, pre, prefix_key), build_windows
    )

    def build_fold() -> np.ndarray:
        n = len(trace)
        q_total = -(-length // width)
        # Window values are already ``width``-bit packed, so only the last
        # (oldest, possibly partial) chunk needs masking; the full-width
        # chunks XOR-reduce in one pass over a backward-strided view.
        rem = length - (q_total - 1) * width
        full = q_total if rem == width else q_total - 1
        if full:
            base = windows[pre - (full - 1) * width :]
            s = windows.strides[0]
            view = np.lib.stride_tricks.as_strided(
                base, shape=(full, n + 1), strides=(width * s, s),
                writeable=False,
            )
            fold = np.bitwise_xor.reduce(view, axis=0)
        else:
            fold = np.zeros(n + 1, dtype=np.int64)
        if rem != width:
            lo = pre - (q_total - 1) * width
            fold ^= windows[lo : lo + n + 1] & ((1 << rem) - 1)
        return fold

    return plan_memo(
        trace, ("folded_stream", length, width, pre, prefix_key), build_fold
    )


def _replay_ogehl(
    p: "OGehl", ips: np.ndarray, taken: np.ndarray, trace: BranchTrace
) -> np.ndarray:
    """O-GEHL replay: vectorized index streams, sequential vote loop.

    The scalar loop's cost is dominated by re-folding geometric history
    slices per table per branch; here every table's full index stream is
    reconstructed up front from memoized packed-bit windows (shared across
    replays of this trace), leaving a lean per-branch walk over plain
    lists for the sequential part that actually feeds back — counter
    votes, training, and the adaptive threshold.
    """
    from repro.kernels import cond_positions

    n = len(ips)
    num_tables = p.num_tables
    pre = p._max_history
    # Pre-trace history bits, oldest first: prefix[pre - a] is the bit
    # pushed ``a`` records before the trace began.
    prefix = np.zeros(pre, dtype=np.uint8)
    hbits = p._history  # arbitrary-precision: may exceed 64 bits
    a = 1
    while hbits and a <= pre:
        prefix[pre - a] = hbits & 1
        hbits >>= 1
        a += 1
    prefix_key = p._history

    if n:
        pos = cond_positions(trace)
        width = p.log_entries
        idx_cols = []
        for t in range(num_tables):
            h = p.history_lengths[t]
            if h:
                fold = folded_stream_history(trace, h, width, prefix, prefix_key)
                col = (ips ^ (ips >> (t + 1)) ^ fold[pos]) & p._mask
            else:
                col = (ips ^ (ips >> p.log_entries)) & p._mask
            idx_cols.append(col)
        indices = np.stack(idx_cols, axis=1).tolist()
        taken_l = np.asarray(taken, dtype=bool).tolist()

        tables = p._tables
        lo, hi = p._lo, p._hi
        threshold, tc = p.threshold, p._tc
        tc_hi = 4 * num_tables
        preds: List[bool] = []
        append = preds.append
        s = 0
        for i in range(n):
            row = indices[i]
            s = num_tables
            for t in range(num_tables):
                s += 2 * tables[t][row[t]]
            pred = s >= 0
            append(pred)
            tk = taken_l[i]
            mag = s if s >= 0 else -s
            if pred != tk:
                for t in range(num_tables):
                    idx = row[t]
                    v = tables[t][idx] + (1 if tk else -1)
                    if v > hi:
                        v = hi
                    elif v < lo:
                        v = lo
                    tables[t][idx] = v
                tc += 1
                if tc >= 64:
                    tc = 0
                    if threshold < tc_hi:
                        threshold += 1
            elif mag < threshold:
                for t in range(num_tables):
                    idx = row[t]
                    v = tables[t][idx] + (1 if tk else -1)
                    if v > hi:
                        v = hi
                    elif v < lo:
                        v = lo
                    tables[t][idx] = v
                tc -= 1
                if tc <= -64:
                    tc = 0
                    if threshold > 1:
                        threshold = threshold - 1
        p.threshold, p._tc = threshold, tc
        p._last_indices = indices[-1]
        p._last_sum = s
        out = np.array(preds, dtype=bool)
    else:
        out = np.zeros(0, dtype=bool)

    # History advances on every record (note_branch pushes 1s).
    n_full = len(trace)
    if n_full:
        from repro.kernels import stream_bits

        bits = stream_bits(trace)
        m = min(pre, n_full)
        packed = 0
        for j in range(m):
            packed |= int(bits[n_full - 1 - j]) << j
        if n_full < pre:
            packed |= (p._history << n_full) & ((1 << pre) - 1)
        p._history = packed
    return out
