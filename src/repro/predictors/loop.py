"""Loop termination predictor and the IMLI counter.

Domain-specific models from the paper's Sec. II: the loop predictor (the
"L" of TAGE-SC-L) learns iteration counts of regular loops and predicts the
exit with high confidence; the Inner-Most Loop Iteration (IMLI) counter
(Seznec et al., MICRO 2015) exposes the current iteration number of the
innermost loop as a feature for the statistical corrector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.predictors.base import BranchPredictor, saturate


@dataclass
class _LoopEntry:
    tag: int = -1
    past_iter: int = 0  # learned trip count
    current_iter: int = 0
    confidence: int = 0  # saturates at _CONF_MAX
    age: int = 0
    direction: bool = True  # the "looping" direction


_CONF_MAX = 3
_AGE_MAX = 7
_ITER_BITS = 14


class LoopPredictor(BranchPredictor):
    """Predicts loop-exit branches after a stable trip count is observed.

    An entry becomes confident after the same iteration count is seen
    ``_CONF_MAX`` consecutive times; it then predicts the looping direction
    until ``current_iter == past_iter``, at which point it predicts the exit.
    ``is_confident`` after a :meth:`predict` tells the composite predictor
    whether to override the main prediction.
    """

    name = "loop"

    def __init__(self, log_entries: int = 6, tag_bits: int = 14) -> None:
        if log_entries <= 0 or tag_bits <= 0:
            raise ValueError("invalid loop table shape")
        self.log_entries = log_entries
        self.tag_bits = tag_bits
        self._mask = (1 << log_entries) - 1
        self._tag_mask = (1 << tag_bits) - 1
        self._table: List[_LoopEntry] = [
            _LoopEntry() for _ in range(1 << log_entries)
        ]
        self.is_confident = False
        self._last_entry: Optional[_LoopEntry] = None
        self._last_pred = True
        self._rand_state = 0x2F73C159

    def _lookup(self, ip: int) -> Optional[_LoopEntry]:
        entry = self._table[(ip ^ (ip >> self.log_entries)) & self._mask]
        if entry.tag == ((ip >> 2) & self._tag_mask):
            return entry
        return None

    def predict(self, ip: int) -> bool:
        entry = self._lookup(ip)
        self._last_entry = entry
        # past_iter < 2 is degenerate: such an "entry" just predicts a
        # constant direction, adds nothing over the main predictor, and can
        # be fabricated by a single cold misprediction — never override.
        if entry is None or entry.confidence < _CONF_MAX or entry.past_iter < 2:
            self.is_confident = False
            self._last_pred = True
            return True
        # Predict the exit direction on the final expected iteration.
        exiting = entry.current_iter + 1 >= entry.past_iter
        pred = (not entry.direction) if exiting else entry.direction
        self.is_confident = True
        self._last_pred = pred
        return pred

    def update(self, ip: int, taken: bool, mispredicted: bool = False) -> None:
        """Train on the outcome.  ``mispredicted`` gates allocation: new loop
        entries are only worth creating for branches the composite predictor
        got wrong (otherwise every easy branch thrashes the small table)."""
        entry = self._last_entry
        if entry is None:
            # Rate-limit allocations (1 in 8 mispredictions, as the CBP
            # implementations do): the small table would otherwise be
            # thrashed by every hard branch in the stream.
            if mispredicted and self._rand() & 7 == 0:
                self._maybe_allocate(ip, taken)
            return
        if taken == entry.direction:
            entry.current_iter = saturate(
                entry.current_iter + 1, 0, (1 << _ITER_BITS) - 1
            )
            if entry.current_iter > entry.past_iter and entry.confidence == _CONF_MAX:
                # Trip count changed; restart learning.
                entry.confidence = 0
                entry.past_iter = 0
        else:
            # Exit observed: compare against the learned trip count.
            observed = entry.current_iter + 1
            if observed == entry.past_iter:
                entry.confidence = saturate(entry.confidence + 1, 0, _CONF_MAX)
                entry.age = saturate(entry.age + 1, 0, _AGE_MAX)
            else:
                entry.past_iter = observed
                entry.confidence = 0
            entry.current_iter = 0

    def _rand(self) -> int:
        x = self._rand_state
        x ^= (x << 13) & 0xFFFFFFFF
        x ^= x >> 17
        x ^= (x << 5) & 0xFFFFFFFF
        self._rand_state = x
        return x

    def _maybe_allocate(self, ip: int, taken: bool) -> None:
        slot = (ip ^ (ip >> self.log_entries)) & self._mask
        entry = self._table[slot]
        if entry.tag == -1 or entry.age == 0:
            # Allocation happens on a misprediction, which for a regular
            # loop is the *exit*: the looping direction is the opposite of
            # the direction just observed.
            self._table[slot] = _LoopEntry(
                tag=(ip >> 2) & self._tag_mask,
                direction=not taken,
                age=_AGE_MAX // 2,
            )
        else:
            entry.age -= 1

    def storage_bits(self) -> int:
        per_entry = self.tag_bits + 2 * _ITER_BITS + 2 + 3 + 1
        return len(self._table) * per_entry

    def reset(self) -> None:
        self._table = [_LoopEntry() for _ in range(len(self._table))]
        self.is_confident = False
        self._last_entry = None


class ImliCounter:
    """Inner-Most Loop Iteration counter (Seznec/San Miguel/Albericio).

    Counts consecutive taken executions of the same backward branch — a
    cheap proxy for the innermost loop's iteration number, used as an input
    modality by the statistical corrector.
    """

    def __init__(self, max_count: int = 1 << 10) -> None:
        if max_count <= 0:
            raise ValueError("max_count must be positive")
        self.max_count = max_count
        self.count = 0
        self._last_backward_ip: Optional[int] = None

    def observe(self, ip: int, target: int, taken: bool) -> None:
        """Feed a resolved conditional branch."""
        if taken and target < ip:  # backward taken: loop iteration
            if ip == self._last_backward_ip:
                if self.count < self.max_count - 1:
                    self.count += 1
            else:
                self._last_backward_ip = ip
                self.count = 1
        elif not taken and ip == self._last_backward_ip:
            # The loop exited.
            self.count = 0

    def reset(self) -> None:
        self.count = 0
        self._last_backward_ip = None

    def storage_bits(self) -> int:
        return 10 + 64  # counter + last backward IP register
