"""Oracle predictors for the paper's limit studies.

* :class:`Perfect` — never mispredicts: the "Perfect BP" ceiling of Figs 1/5.
* :class:`PerfectFilter` — wraps a real predictor but forces correct
  predictions for a chosen set of static branches ("Perfect H2Ps" in Figs
  1/5) or for branches selected by a dynamic-execution-count rule (the
  ">1000 / >100 execs" study of Fig. 8).

The filter variants run the underlying predictor normally (including its
training), so its tables see the same stream; only the *emitted* prediction
is overridden, which mirrors how the paper idealizes a subset of branches
inside ChampSim.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, FrozenSet, Iterable, Optional

import numpy as np

from repro.core.types import BranchKind
from repro.predictors.base import BranchPredictor

if TYPE_CHECKING:
    from repro.kernels.engine import TraceKernel


class Perfect(BranchPredictor):
    """Always predicts correctly (needs the outcome; trace-driven only)."""

    name = "perfect"

    def __init__(self) -> None:
        self._next_outcome: Optional[bool] = None

    def set_outcome(self, taken: bool) -> None:
        """The simulator supplies the resolved direction before predict()."""
        self._next_outcome = taken

    def predict(self, ip: int) -> bool:
        if self._next_outcome is None:
            raise RuntimeError("Perfect.predict() requires set_outcome() first")
        return self._next_outcome

    def update(self, ip: int, taken: bool) -> None:
        self._next_outcome = None

    def vectorized_kernel(self) -> "Optional[TraceKernel]":
        if type(self) is not Perfect:
            return None

        def kernel(ips: np.ndarray, taken: np.ndarray) -> np.ndarray:
            # The scalar loop's final update() leaves no pending outcome.
            self._next_outcome = None
            return np.asarray(taken, dtype=bool).copy()

        return kernel

    def storage_bits(self) -> int:
        return 0

    def reset(self) -> None:
        self._next_outcome = None


class PerfectFilter(BranchPredictor):
    """Idealizes a subset of branches on top of a real predictor.

    Args:
        inner: the real predictor (trained on every branch as usual).
        perfect_ips: static branch IPs predicted perfectly.
        predicate: alternative to ``perfect_ips`` — called with the IP and
            returns True if the branch should be idealized.
    """

    def __init__(
        self,
        inner: BranchPredictor,
        perfect_ips: Optional[Iterable[int]] = None,
        predicate: Optional[Callable[[int], bool]] = None,
        label: Optional[str] = None,
    ) -> None:
        if (perfect_ips is None) == (predicate is None):
            raise ValueError("provide exactly one of perfect_ips / predicate")
        self.inner = inner
        self._perfect: FrozenSet[int] = frozenset(perfect_ips or ())
        self._predicate = predicate
        self._next_outcome: Optional[bool] = None
        self.name = label or f"perfect-filter({inner.name})"

    def set_outcome(self, taken: bool) -> None:
        self._next_outcome = taken

    def _is_perfect(self, ip: int) -> bool:
        if self._predicate is not None:
            return self._predicate(ip)
        return ip in self._perfect

    def predict(self, ip: int) -> bool:
        inner_pred = self.inner.predict(ip)
        if self._is_perfect(ip):
            if self._next_outcome is None:
                raise RuntimeError(
                    "PerfectFilter.predict() on an idealized branch requires set_outcome()"
                )
            return self._next_outcome
        return inner_pred

    def update(self, ip: int, taken: bool) -> None:
        self.inner.update(ip, taken)
        self._next_outcome = None

    def note_branch(
        self, ip: int, target: int, kind: BranchKind, taken: bool = True
    ) -> None:
        self.inner.note_branch(ip, target, kind, taken)

    def vectorized_kernel(self) -> "Optional[TraceKernel]":
        # Composes with the inner predictor's kernel: the inner kernel
        # trains on (and predicts) every branch exactly as scalar
        # PerfectFilter.update does, and the idealized subset's emitted
        # predictions are overridden afterwards.  Predicate-based filters
        # stay scalar (the callable may be arbitrary Python).
        if type(self) is not PerfectFilter or self._predicate is not None:
            return None
        inner_kernel = self.inner.vectorized_kernel()
        if inner_kernel is None:
            return None

        def kernel(ips: np.ndarray, taken: np.ndarray) -> np.ndarray:
            inner_preds = np.asarray(inner_kernel(ips, taken), dtype=bool)
            perfect = np.fromiter(
                self._perfect, dtype=np.int64, count=len(self._perfect)
            )
            self._next_outcome = None
            return np.where(
                np.isin(ips, perfect), np.asarray(taken, dtype=bool), inner_preds
            )

        return kernel

    def storage_bits(self) -> int:
        return self.inner.storage_bits()

    def reset(self) -> None:
        self.inner.reset()
        self._next_outcome = None
