"""Perceptron branch predictors (Jiménez & Lin, HPCA 2001; MICRO 2003).

The paper's Sec. II singles perceptrons out as the family that "mitigates a
shortcoming of PPM's exact pattern matching by learning weights on different
history positions".  Two variants are provided: the classic global-history
perceptron and a path-based variant that hashes recent branch IPs into the
feature vector.
"""

from __future__ import annotations

from typing import List

from repro.core.types import BranchKind
from repro.predictors.base import BranchPredictor, saturate


class Perceptron(BranchPredictor):
    """Global-history perceptron predictor.

    One weight vector per (hashed) IP; features are the signed recent global
    directions.  Training uses the classic threshold rule
    ``theta = 1.93 * h + 14``.
    """

    name = "perceptron"

    def __init__(
        self,
        log_entries: int = 9,
        history_length: int = 32,
        weight_bits: int = 8,
    ) -> None:
        if log_entries <= 0 or history_length <= 0 or weight_bits <= 1:
            raise ValueError("invalid perceptron shape")
        self.log_entries = log_entries
        self.history_length = history_length
        self.weight_bits = weight_bits
        self._mask = (1 << log_entries) - 1
        self._wlo = -(1 << (weight_bits - 1))
        self._whi = (1 << (weight_bits - 1)) - 1
        self.theta = int(1.93 * history_length + 14)
        # weights[i] is [bias, w_1..w_h]
        self._weights: List[List[int]] = [
            [0] * (history_length + 1) for _ in range(1 << log_entries)
        ]
        self._history: List[int] = [0] * history_length  # +/-1 signed, newest first
        self._last_sum = 0
        self._last_index = 0

    def _index(self, ip: int) -> int:
        return (ip ^ (ip >> self.log_entries)) & self._mask

    def predict(self, ip: int) -> bool:
        i = self._index(ip)
        w = self._weights[i]
        s = w[0]
        hist = self._history
        for j in range(self.history_length):
            if hist[j] > 0:
                s += w[j + 1]
            else:
                s -= w[j + 1]
        self._last_sum = s
        self._last_index = i
        return s >= 0

    def update(self, ip: int, taken: bool) -> None:
        s = self._last_sum
        correct = (s >= 0) == taken
        if not correct or abs(s) <= self.theta:
            w = self._weights[self._last_index]
            t = 1 if taken else -1
            w[0] = saturate(w[0] + t, self._wlo, self._whi)
            hist = self._history
            for j in range(self.history_length):
                delta = t if hist[j] > 0 else -t
                w[j + 1] = saturate(w[j + 1] + delta, self._wlo, self._whi)
        self._push_history(taken)

    def _push_history(self, taken: bool) -> None:
        self._history.insert(0, 1 if taken else -1)
        self._history.pop()

    def storage_bits(self) -> int:
        return (
            len(self._weights) * (self.history_length + 1) * self.weight_bits
            + self.history_length
        )

    def reset(self) -> None:
        for w in self._weights:
            for j in range(len(w)):
                w[j] = 0
        self._history = [0] * self.history_length


class PathPerceptron(BranchPredictor):
    """Path-based neural predictor (Jiménez, MICRO 2003), simplified.

    Instead of indexing one weight vector by the current IP, each history
    position's weight is selected by the IP of the branch that occupied that
    position, capturing path information.
    """

    name = "path-perceptron"

    def __init__(
        self,
        log_entries: int = 10,
        history_length: int = 24,
        weight_bits: int = 8,
    ) -> None:
        if log_entries <= 0 or history_length <= 0 or weight_bits <= 1:
            raise ValueError("invalid predictor shape")
        self.log_entries = log_entries
        self.history_length = history_length
        self.weight_bits = weight_bits
        self._mask = (1 << log_entries) - 1
        self._wlo = -(1 << (weight_bits - 1))
        self._whi = (1 << (weight_bits - 1)) - 1
        self.theta = int(2.14 * (history_length + 1) + 20.58)
        # One weight column per history position; rows indexed by hashed IP.
        self._weights: List[List[int]] = [
            [0] * (history_length + 1) for _ in range(1 << log_entries)
        ]
        self._dir_history: List[int] = [0] * history_length  # +/-1, newest first
        self._path: List[int] = [0] * history_length  # hashed IPs, newest first
        self._last_sum = 0
        self._last_rows: List[int] = []

    def _hash(self, ip: int, position: int) -> int:
        return (ip ^ (ip >> 4) ^ (position * 0x9E37)) & self._mask

    def predict(self, ip: int) -> bool:
        rows = [self._hash(ip, 0)]
        s = self._weights[rows[0]][0]
        for j in range(self.history_length):
            row = self._hash(self._path[j], j + 1)
            rows.append(row)
            w = self._weights[row][j + 1]
            s += w if self._dir_history[j] > 0 else -w
        self._last_sum = s
        self._last_rows = rows
        return s >= 0

    def update(self, ip: int, taken: bool) -> None:
        s = self._last_sum
        if ((s >= 0) != taken) or abs(s) <= self.theta:
            t = 1 if taken else -1
            rows = self._last_rows
            w0 = self._weights[rows[0]]
            w0[0] = saturate(w0[0] + t, self._wlo, self._whi)
            for j in range(self.history_length):
                row_w = self._weights[rows[j + 1]]
                delta = t if self._dir_history[j] > 0 else -t
                row_w[j + 1] = saturate(row_w[j + 1] + delta, self._wlo, self._whi)
        self._dir_history.insert(0, 1 if taken else -1)
        self._dir_history.pop()
        self._path.insert(0, ip)
        self._path.pop()

    def note_branch(
        self, ip: int, target: int, kind: BranchKind, taken: bool = True
    ) -> None:
        # Calls/returns/jumps contribute to the path but not the direction
        # history (they are always taken).
        self._path.insert(0, ip)
        self._path.pop()
        self._dir_history.insert(0, 1)
        self._dir_history.pop()

    def storage_bits(self) -> int:
        return (
            len(self._weights) * (self.history_length + 1) * self.weight_bits
            + self.history_length * 17  # direction bit + 16-bit path hash
        )

    def reset(self) -> None:
        for w in self._weights:
            for j in range(len(w)):
                w[j] = 0
        self._dir_history = [0] * self.history_length
        self._path = [0] * self.history_length
