"""Perceptron branch predictors (Jiménez & Lin, HPCA 2001; MICRO 2003).

The paper's Sec. II singles perceptrons out as the family that "mitigates a
shortcoming of PPM's exact pattern matching by learning weights on different
history positions".  Two variants are provided: the classic global-history
perceptron and a path-based variant that hashes recent branch IPs into the
feature vector.
"""

from __future__ import annotations

import operator
from typing import List, Optional

import numpy as np

from repro.core.types import BranchKind, BranchTrace
from repro.predictors.base import BranchPredictor, saturate


class Perceptron(BranchPredictor):
    """Global-history perceptron predictor.

    One weight vector per (hashed) IP; features are the signed recent global
    directions.  Training uses the classic threshold rule
    ``theta = 1.93 * h + 14``.
    """

    name = "perceptron"

    def __init__(
        self,
        log_entries: int = 9,
        history_length: int = 32,
        weight_bits: int = 8,
    ) -> None:
        if log_entries <= 0 or history_length <= 0 or weight_bits <= 1:
            raise ValueError("invalid perceptron shape")
        self.log_entries = log_entries
        self.history_length = history_length
        self.weight_bits = weight_bits
        self._mask = (1 << log_entries) - 1
        self._wlo = -(1 << (weight_bits - 1))
        self._whi = (1 << (weight_bits - 1)) - 1
        self.theta = int(1.93 * history_length + 14)
        # weights[i] is [bias, w_1..w_h]
        self._weights: List[List[int]] = [
            [0] * (history_length + 1) for _ in range(1 << log_entries)
        ]
        self._history: List[int] = [0] * history_length  # +/-1 signed, newest first
        self._last_sum = 0
        self._last_index = 0

    def _index(self, ip: int) -> int:
        return (ip ^ (ip >> self.log_entries)) & self._mask

    def predict(self, ip: int) -> bool:
        i = self._index(ip)
        w = self._weights[i]
        s = w[0]
        hist = self._history
        for j in range(self.history_length):
            if hist[j] > 0:
                s += w[j + 1]
            else:
                s -= w[j + 1]
        self._last_sum = s
        self._last_index = i
        return s >= 0

    def update(self, ip: int, taken: bool) -> None:
        s = self._last_sum
        correct = (s >= 0) == taken
        if not correct or abs(s) <= self.theta:
            w = self._weights[self._last_index]
            t = 1 if taken else -1
            w[0] = saturate(w[0] + t, self._wlo, self._whi)
            hist = self._history
            for j in range(self.history_length):
                delta = t if hist[j] > 0 else -t
                w[j + 1] = saturate(w[j + 1] + delta, self._wlo, self._whi)
        self._push_history(taken)

    def _push_history(self, taken: bool) -> None:
        self._history.insert(0, 1 if taken else -1)
        self._history.pop()

    def storage_bits(self) -> int:
        return (
            len(self._weights) * (self.history_length + 1) * self.weight_bits
            + self.history_length
        )

    def reset(self) -> None:
        for w in self._weights:
            for j in range(len(w)):
                w[j] = 0
        self._history = [0] * self.history_length

    def vectorized_kernel(self) -> Optional[object]:
        if type(self) is not Perceptron:
            return None

        def kernel(ips: np.ndarray, taken: np.ndarray, trace: BranchTrace):
            return _replay_perceptron(self, ips, taken, trace)

        kernel.wants_trace = True  # type: ignore[attr-defined]
        return kernel


def _replay_perceptron(
    p: "Perceptron", ips: np.ndarray, taken: np.ndarray, trace: BranchTrace
) -> np.ndarray:
    """Row-parallel perceptron replay, bit-identical to the scalar loop.

    A perceptron's prediction depends only on its own weight row and the
    (predictor-independent) signed history, so branches mapping to
    *distinct* rows never interact.  Replay therefore proceeds in rounds:
    round ``k`` scores the ``k``-th occurrence of every row at once — a
    gather, one fused dot product, a masked training scatter — and the
    per-row occurrence order preserves the scalar update sequence exactly.
    """
    from repro.kernels import signed_history_matrix

    n = len(ips)
    h = p.history_length
    init_signs = tuple(1 if v > 0 else -1 for v in p._history)
    if n == 0:
        return np.zeros(0, dtype=bool)
    X = signed_history_matrix(trace, h, init_signs)

    rows = ((ips ^ (ips >> p.log_entries)) & p._mask).astype(np.int64)
    taken_b = np.asarray(taken, dtype=bool)
    t_sign = np.where(taken_b, np.int32(1), np.int32(-1))
    W = np.array(p._weights, dtype=np.int32)
    sums = np.empty(n, dtype=np.int64)

    order = np.argsort(rows, kind="stable")
    sorted_rows = rows[order]
    starts = np.flatnonzero(np.r_[True, sorted_rows[1:] != sorted_rows[:-1]])
    counts = np.diff(np.r_[starts, n])

    # Wide rounds amortize beautifully, but a few hot rows would leave a
    # long tail of near-empty rounds whose numpy dispatch overhead exceeds
    # the work; once the active set narrows, the surviving rows finish
    # with a per-row scalar walk over plain lists (rows are independent,
    # so per-row occurrence order is the only order that matters).
    round_min = 64
    k = 0
    max_occ = int(counts.max())
    while k < max_occ:
        live = counts > k
        if int(live.sum()) < round_min:
            break
        idx = order[starts[live] + k]
        r = rows[idx]
        x = X[idx].astype(np.int32)
        s = np.einsum("ij,ij->i", W[r], x)
        sums[idx] = s
        train = ((s >= 0) != taken_b[idx]) | (np.abs(s) <= p.theta)
        if train.any():
            sel = train.nonzero()[0]
            rt = r[sel]
            updated = W[rt] + t_sign[idx[sel]][:, None] * x[sel]
            np.clip(updated, p._wlo, p._whi, out=updated)
            W[rt] = updated
        k += 1

    if k < max_occ:
        from repro.kernels import signed_history_lists

        x_list = signed_history_lists(trace, h, init_signs)
        theta, wlo, whi = p.theta, p._wlo, p._whi
        width = h + 1
        taken_list = taken_b.tolist()
        mul = operator.mul
        for g in np.flatnonzero(counts > k):
            occ = order[starts[g] + k : starts[g] + counts[g]].tolist()
            r = int(sorted_rows[starts[g]])
            w = W[r].tolist()
            for oi in occ:
                x = x_list[oi]
                s = sum(map(mul, w, x))
                sums[oi] = s
                tk = taken_list[oi]
                if ((s >= 0) != tk) or (s if s >= 0 else -s) <= theta:
                    t = 1 if tk else -1
                    for j in range(width):
                        v = w[j] + t * x[j]
                        if v > whi:
                            v = whi
                        elif v < wlo:
                            v = wlo
                        w[j] = v
            W[r] = w

    p._weights = W.tolist()
    pushed = [1 if b else -1 for b in taken_b[::-1][:h].tolist()]
    p._history = pushed + p._history[: h - len(pushed)]
    p._last_sum = int(sums[-1])
    p._last_index = int(rows[-1])
    return sums >= 0


class PathPerceptron(BranchPredictor):
    """Path-based neural predictor (Jiménez, MICRO 2003), simplified.

    Instead of indexing one weight vector by the current IP, each history
    position's weight is selected by the IP of the branch that occupied that
    position, capturing path information.
    """

    name = "path-perceptron"

    def __init__(
        self,
        log_entries: int = 10,
        history_length: int = 24,
        weight_bits: int = 8,
    ) -> None:
        if log_entries <= 0 or history_length <= 0 or weight_bits <= 1:
            raise ValueError("invalid predictor shape")
        self.log_entries = log_entries
        self.history_length = history_length
        self.weight_bits = weight_bits
        self._mask = (1 << log_entries) - 1
        self._wlo = -(1 << (weight_bits - 1))
        self._whi = (1 << (weight_bits - 1)) - 1
        self.theta = int(2.14 * (history_length + 1) + 20.58)
        # One weight column per history position; rows indexed by hashed IP.
        self._weights: List[List[int]] = [
            [0] * (history_length + 1) for _ in range(1 << log_entries)
        ]
        self._dir_history: List[int] = [0] * history_length  # +/-1, newest first
        self._path: List[int] = [0] * history_length  # hashed IPs, newest first
        self._last_sum = 0
        self._last_rows: List[int] = []

    def _hash(self, ip: int, position: int) -> int:
        return (ip ^ (ip >> 4) ^ (position * 0x9E37)) & self._mask

    def predict(self, ip: int) -> bool:
        rows = [self._hash(ip, 0)]
        s = self._weights[rows[0]][0]
        for j in range(self.history_length):
            row = self._hash(self._path[j], j + 1)
            rows.append(row)
            w = self._weights[row][j + 1]
            s += w if self._dir_history[j] > 0 else -w
        self._last_sum = s
        self._last_rows = rows
        return s >= 0

    def update(self, ip: int, taken: bool) -> None:
        s = self._last_sum
        if ((s >= 0) != taken) or abs(s) <= self.theta:
            t = 1 if taken else -1
            rows = self._last_rows
            w0 = self._weights[rows[0]]
            w0[0] = saturate(w0[0] + t, self._wlo, self._whi)
            for j in range(self.history_length):
                row_w = self._weights[rows[j + 1]]
                delta = t if self._dir_history[j] > 0 else -t
                row_w[j + 1] = saturate(row_w[j + 1] + delta, self._wlo, self._whi)
        self._dir_history.insert(0, 1 if taken else -1)
        self._dir_history.pop()
        self._path.insert(0, ip)
        self._path.pop()

    def note_branch(
        self, ip: int, target: int, kind: BranchKind, taken: bool = True
    ) -> None:
        # Calls/returns/jumps contribute to the path but not the direction
        # history (they are always taken).
        self._path.insert(0, ip)
        self._path.pop()
        self._dir_history.insert(0, 1)
        self._dir_history.pop()

    def storage_bits(self) -> int:
        return (
            len(self._weights) * (self.history_length + 1) * self.weight_bits
            + self.history_length * 17  # direction bit + 16-bit path hash
        )

    def reset(self) -> None:
        for w in self._weights:
            for j in range(len(w)):
                w[j] = 0
        self._dir_history = [0] * self.history_length
        self._path = [0] * self.history_length

    def vectorized_kernel(self) -> Optional[object]:
        if type(self) is not PathPerceptron:
            return None

        def kernel(ips: np.ndarray, taken: np.ndarray, trace: BranchTrace):
            return _replay_path_perceptron(self, ips, taken, trace)

        kernel.wants_trace = True  # type: ignore[attr-defined]
        return kernel


def _replay_path_perceptron(
    p: "PathPerceptron", ips: np.ndarray, taken: np.ndarray, trace: BranchTrace
) -> np.ndarray:
    """Path-perceptron replay with vectorized feature extraction.

    Unlike the global perceptron, one branch's weights spread over many
    rows (one per path position), so nearby branches can share table cells
    and the training order matters.  The expensive part — hashing every
    path position of every branch — is hoisted into numpy: ``R`` holds the
    per-position weight rows, ``D`` the ±1 direction signs, both derived
    from the full record stream (``note_branch`` pushes calls/jumps into
    the path).  The remaining sequential walk is a flat gather / dot /
    conditional scatter per branch over distinct cells ``row*(h+1)+col``,
    preserving scalar training order exactly.
    """
    from repro.kernels import cond_positions, plan_memo, signed_history_lists

    h = p.history_length
    ncols = h + 1
    n = len(ips)
    n_full = len(trace)
    mask = p._mask

    if n:
        init_signs = tuple(1 if v > 0 else -1 for v in p._dir_history)
        signs = signed_history_lists(trace, h, init_signs, full_stream=True)
        path_init = tuple(p._path)

        def build_cells() -> List[List[int]]:
            pos = cond_positions(trace)
            ext = np.concatenate(
                [np.asarray(path_init[::-1], dtype=np.int64), trace.ips]
            )
            R = np.empty((n, ncols), dtype=np.int64)
            R[:, 0] = (ips ^ (ips >> 4)) & mask
            if h:
                offsets = (h - 1 - np.arange(h))[None, :]
                path_ips = ext[pos[:, None] + offsets]
                mixes = (np.arange(1, ncols, dtype=np.int64) * 0x9E37)[None, :]
                R[:, 1:] = (path_ips ^ (path_ips >> 4) ^ mixes) & mask
            return (R * ncols + np.arange(ncols, dtype=np.int64)[None, :]).tolist()

        cells = plan_memo(
            trace, ("path_cells", p.log_entries, h, path_init), build_cells
        )
        taken_l = np.asarray(taken, dtype=bool).tolist()

        flat = [w for row in p._weights for w in row]
        lo, hi, theta = p._wlo, p._whi, p.theta
        preds: List[bool] = []
        append = preds.append
        mul = operator.mul
        getter = operator.itemgetter
        s = 0
        ci: List[int] = []
        for ci, di, tk in zip(cells, signs, taken_l):
            s = sum(map(mul, getter(*ci)(flat), di))
            pred = s >= 0
            append(pred)
            if pred != tk or (s if s >= 0 else -s) <= theta:
                t = 1 if tk else -1
                for f, d in zip(ci, di):
                    v = flat[f] + (t if d > 0 else -t)
                    if v > hi:
                        v = hi
                    elif v < lo:
                        v = lo
                    flat[f] = v
        p._weights = [flat[r * ncols : (r + 1) * ncols] for r in range(len(p._weights))]
        p._last_sum = s
        p._last_rows = [c // ncols for c in ci]
        out = np.array(preds, dtype=bool)
    else:
        out = np.zeros(0, dtype=bool)

    # The path and direction histories advance on *every* record.
    m = min(h, n_full)
    if m:
        cond = trace.conditional_mask
        sign_full = np.where(
            cond, np.where(trace.taken != 0, 1, -1), 1
        )
        p._dir_history = sign_full[::-1][:m].tolist() + p._dir_history[: h - m]
        p._path = trace.ips[::-1][:m].tolist() + p._path[: h - m]
    return out
