"""On-chip phase learning for rare branches (paper Sec. V-B direction).

The paper observes that rare branches recur on phase-like timescales
(Fig. 9) and proposes exploiting phase information to "track long-term
statistics for rare branches" that the BPU's short-term structures keep
forgetting.  This module implements that direction:

* :class:`PhaseRecognizer` — lightweight online phase detection from branch
  IP footprints: every window of branches is summarized as a Bloom-filter
  signature and matched (by Jaccard similarity) against stored phase
  signatures, echoing the counter-based phase recognition of the works the
  paper cites.
* :class:`PhaseBiasHelper` — a wrapper predictor that keeps per-(phase,
  branch) direction statistics with confidence, and overrides the base
  predictor only for branches whose within-phase behaviour it has seen
  consistently.  When a phase recurs, the statistics learned during its last
  occurrence are immediately live again — exactly the long-term reuse an
  online-only predictor cannot provide.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.types import BranchKind
from repro.predictors.base import BranchPredictor, saturate

_SIGNATURE_BITS = 1024


class PhaseRecognizer:
    """Online phase detection from branch-footprint signatures."""

    def __init__(
        self,
        window: int = 512,
        similarity_threshold: float = 0.5,
        max_phases: int = 32,
    ) -> None:
        if window < 16:
            raise ValueError("window too small")
        if not 0 < similarity_threshold < 1:
            raise ValueError("similarity_threshold must be in (0, 1)")
        self.window = window
        self.similarity_threshold = similarity_threshold
        self.max_phases = max_phases
        self._signatures: List[int] = []
        self._current_sig = 0
        self._count = 0
        self.current_phase = 0
        self.transitions = 0

    @staticmethod
    def _bit(ip: int) -> int:
        # Knuth multiplicative hashing: take the *top* bits of the product
        # so that high IP bits (the code-region bits that distinguish
        # phases) influence the signature.
        h = ((ip * 0x9E3779B1) & 0xFFFFFFFF) >> 22
        return 1 << (h % _SIGNATURE_BITS)

    @staticmethod
    def _jaccard(a: int, b: int) -> float:
        union = bin(a | b).count("1")
        if union == 0:
            return 1.0
        return bin(a & b).count("1") / union

    def observe(self, ip: int) -> None:
        """Feed one executed branch; phase decisions happen per window."""
        self._current_sig |= self._bit(ip)
        self._count += 1
        if self._count < self.window:
            return
        self._classify()
        self._current_sig = 0
        self._count = 0

    def _classify(self) -> None:
        sig = self._current_sig
        best, best_sim = -1, 0.0
        for phase, stored in enumerate(self._signatures):
            sim = self._jaccard(sig, stored)
            if sim > best_sim:
                best, best_sim = phase, sim
        if best >= 0 and best_sim >= self.similarity_threshold:
            # Refresh the stored signature (exponential union decay).
            self._signatures[best] = (self._signatures[best] & sig) | sig
            if best != self.current_phase:
                self.transitions += 1
            self.current_phase = best
            return
        if len(self._signatures) < self.max_phases:
            self._signatures.append(sig)
            new_phase = len(self._signatures) - 1
        else:
            new_phase = self.current_phase  # table full: stay put
        if new_phase != self.current_phase:
            self.transitions += 1
        self.current_phase = new_phase

    @property
    def num_phases(self) -> int:
        return max(1, len(self._signatures))

    def storage_bits(self) -> int:
        return self.max_phases * _SIGNATURE_BITS + _SIGNATURE_BITS + 16


class PhaseBiasHelper(BranchPredictor):
    """Base predictor + per-phase long-term direction statistics.

    A table of (direction counter, confidence) pairs indexed by
    ``hash(phase, ip)``.  The helper overrides the base only when its entry
    is confident; confidence builds when the entry's direction repeatedly
    matches the outcome and collapses on a contradiction.  Entries persist
    across phase transitions, so statistics learned in a phase's previous
    occurrence apply instantly when it returns — the reuse opportunity the
    paper says online-trained predictors leave on the table.
    """

    def __init__(
        self,
        base: BranchPredictor,
        recognizer: Optional[PhaseRecognizer] = None,
        log_entries: int = 14,
        confidence_max: int = 3,
        label: Optional[str] = None,
    ) -> None:
        if log_entries <= 0:
            raise ValueError("log_entries must be positive")
        self.base = base
        self.recognizer = recognizer or PhaseRecognizer()
        self.log_entries = log_entries
        self.confidence_max = confidence_max
        self._mask = (1 << log_entries) - 1
        self._dir: List[int] = [0] * (1 << log_entries)  # 3-bit signed
        self._conf: List[int] = [0] * (1 << log_entries)
        # Utility: how often overriding here beat the base.  Overrides are
        # enabled per entry only after the base has been caught wrong where
        # the phase statistics were right (mirrors SC usefulness filtering).
        self._util: List[int] = [0] * (1 << log_entries)
        self.overrides = 0
        self.override_correct = 0
        self._last_index = 0
        self._last_used_helper = False
        self._last_pred = False
        self._last_base_pred = False
        self.name = label or f"{base.name}+phase-bias"

    def _index(self, ip: int) -> int:
        phase = self.recognizer.current_phase
        return (ip ^ (ip >> 9) ^ (phase * 0x85EBCA6B)) & self._mask

    def predict(self, ip: int) -> bool:
        base_pred = self.base.predict(ip)
        i = self._index(ip)
        self._last_index = i
        self._last_base_pred = base_pred
        if self._conf[i] >= self.confidence_max and self._util[i] >= 2:
            pred = self._dir[i] >= 0
            self._last_used_helper = pred != base_pred
            if self._last_used_helper:
                self.overrides += 1
                self._last_pred = pred
                return pred
        self._last_used_helper = False
        self._last_pred = base_pred
        return base_pred

    def update(self, ip: int, taken: bool) -> None:
        self.base.update(ip, taken)
        i = self._last_index
        entry_dir = self._dir[i] >= 0
        self._conf[i] = (
            saturate(self._conf[i] + 1, 0, self.confidence_max)
            if entry_dir == taken
            else 0
        )
        if entry_dir == taken and self._last_base_pred != taken:
            self._util[i] = saturate(self._util[i] + 1, 0, 7)
        elif entry_dir != taken:
            self._util[i] = saturate(self._util[i] - 2, 0, 7)
        self._dir[i] = saturate(self._dir[i] + (1 if taken else -1), -4, 3)
        if self._last_used_helper and self._last_pred == taken:
            self.override_correct += 1
        self.recognizer.observe(ip)

    def note_branch(
        self, ip: int, target: int, kind: BranchKind, taken: bool = True
    ) -> None:
        self.base.note_branch(ip, target, kind, taken)

    def storage_bits(self) -> int:
        return (
            self.base.storage_bits()
            + len(self._dir) * (3 + 2 + 3)
            + self.recognizer.storage_bits()
        )

    def reset(self) -> None:
        self.base.reset()
        self._dir = [0] * len(self._dir)
        self._conf = [0] * len(self._conf)
        self._util = [0] * len(self._util)
        self.recognizer = PhaseRecognizer(
            window=self.recognizer.window,
            similarity_threshold=self.recognizer.similarity_threshold,
            max_phases=self.recognizer.max_phases,
        )
        self.overrides = 0
        self.override_correct = 0
