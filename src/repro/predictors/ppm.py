"""Partial Pattern Matching (PPM) predictor.

The paper (Sec. II) describes PPM as the root of the TAGE family: hash the
global history over several lookback windows into tagged tables and return
the longest exact match.  This implementation keeps the structure explicit
(one tagged table per history length, longest-match-wins) and serves both as
a baseline and as the pedagogical stepping stone to :mod:`repro.predictors.tage`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.predictors.base import BranchPredictor, counter_update


class _PpmTable:
    """One tagged table tracking a fixed history length."""

    __slots__ = ("history_length", "log_entries", "tag_bits", "_mask", "_tag_mask",
                 "tags", "ctrs")

    def __init__(self, history_length: int, log_entries: int, tag_bits: int) -> None:
        self.history_length = history_length
        self.log_entries = log_entries
        self.tag_bits = tag_bits
        self._mask = (1 << log_entries) - 1
        self._tag_mask = (1 << tag_bits) - 1
        self.tags: List[int] = [-1] * (1 << log_entries)
        self.ctrs: List[int] = [0] * (1 << log_entries)

    def index_and_tag(self, ip: int, history: int) -> Tuple[int, int]:
        h = history & ((1 << self.history_length) - 1)
        # Fold the history window into index/tag widths.
        folded_idx, folded_tag, bits = 0, 0, h
        while bits:
            folded_idx ^= bits & self._mask
            folded_tag ^= bits & self._tag_mask
            bits >>= self.log_entries
        idx = (ip ^ (ip >> self.log_entries) ^ folded_idx) & self._mask
        tag = (ip ^ (folded_tag << 1) ^ (ip >> 7)) & self._tag_mask
        return idx, tag

    def storage_bits(self) -> int:
        return (1 << self.log_entries) * (self.tag_bits + 3)


class PPM(BranchPredictor):
    """Longest-match PPM predictor over geometric history lengths."""

    name = "ppm"

    def __init__(
        self,
        history_lengths: Sequence[int] = (2, 4, 8, 16, 32, 64),
        log_entries: int = 9,
        tag_bits: int = 9,
        log_base_entries: int = 12,
    ) -> None:
        if not history_lengths:
            raise ValueError("need at least one history length")
        if list(history_lengths) != sorted(set(history_lengths)):
            raise ValueError("history_lengths must be strictly increasing")
        self.tables = [
            _PpmTable(h, log_entries, tag_bits) for h in history_lengths
        ]
        self.log_base_entries = log_base_entries
        self._base_mask = (1 << log_base_entries) - 1
        self._base: List[int] = [0] * (1 << log_base_entries)
        self._history = 0
        self._max_hist = max(history_lengths)
        self._last: Optional[Tuple[Optional[int], int, int]] = None

    def _base_index(self, ip: int) -> int:
        return (ip ^ (ip >> self.log_base_entries)) & self._base_mask

    def predict(self, ip: int) -> bool:
        provider: Optional[int] = None
        idx = tag = 0
        for t in range(len(self.tables) - 1, -1, -1):
            table = self.tables[t]
            i, g = table.index_and_tag(ip, self._history)
            if table.tags[i] == g:
                provider, idx, tag = t, i, g
                break
        pred = (
            self._base[self._base_index(ip)] >= 0
            if provider is None
            else self.tables[provider].ctrs[idx] >= 0
        )
        self._last = (provider, idx, tag)
        return pred

    def update(self, ip: int, taken: bool) -> None:
        if self._last is None:
            raise RuntimeError("update() called before predict()")
        provider, idx, _ = self._last
        mispredicted: bool
        if provider is None:
            bi = self._base_index(ip)
            mispredicted = (self._base[bi] >= 0) != taken
            self._base[bi] = counter_update(self._base[bi], taken, -2, 1)
        else:
            table = self.tables[provider]
            mispredicted = (table.ctrs[idx] >= 0) != taken
            table.ctrs[idx] = counter_update(table.ctrs[idx], taken, -4, 3)
        if mispredicted:
            self._allocate(ip, taken, provider)
        self._history = ((self._history << 1) | int(taken)) & (
            (1 << self._max_hist) - 1
        )
        self._last = None

    def _allocate(self, ip: int, taken: bool, provider: Optional[int]) -> None:
        start = 0 if provider is None else provider + 1
        for t in range(start, len(self.tables)):
            table = self.tables[t]
            i, g = table.index_and_tag(ip, self._history)
            # PPM (unlike TAGE) allocates unconditionally in the next length.
            table.tags[i] = g
            table.ctrs[i] = 0 if taken else -1
            break

    def storage_bits(self) -> int:
        bits = (1 << self.log_base_entries) * 2 + self._max_hist
        for table in self.tables:
            bits += table.storage_bits()
        return bits

    def reset(self) -> None:
        for table in self.tables:
            table.tags = [-1] * len(table.tags)
            table.ctrs = [0] * len(table.ctrs)
        self._base = [0] * len(self._base)
        self._history = 0
        self._last = None
