"""Static and single-table baseline predictors.

These are the historical baselines the richer predictors are measured
against: static heuristics, the bimodal table, and gshare (global history
XOR-indexed counters, McFarling 1993).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

import numpy as np

from repro.kernels.scan import (
    final_history,
    local_history,
    packed_history,
    saturating_counter_scan,
)
from repro.predictors.base import BranchPredictor, counter_update

if TYPE_CHECKING:
    from repro.kernels.engine import TraceKernel


class AlwaysTaken(BranchPredictor):
    """Predicts every conditional branch taken (zero storage)."""

    name = "always-taken"

    def predict(self, ip: int) -> bool:
        return True

    def update(self, ip: int, taken: bool) -> None:
        pass

    def vectorized_kernel(self) -> "Optional[TraceKernel]":
        if type(self) is not AlwaysTaken:
            return None
        return lambda ips, taken: np.ones(len(ips), dtype=bool)

    def storage_bits(self) -> int:
        return 0

    def reset(self) -> None:
        pass


class NeverTaken(BranchPredictor):
    """Predicts every conditional branch not taken (zero storage)."""

    name = "never-taken"

    def predict(self, ip: int) -> bool:
        return False

    def update(self, ip: int, taken: bool) -> None:
        pass

    def vectorized_kernel(self) -> "Optional[TraceKernel]":
        if type(self) is not NeverTaken:
            return None
        return lambda ips, taken: np.zeros(len(ips), dtype=bool)

    def storage_bits(self) -> int:
        return 0

    def reset(self) -> None:
        pass


class Bimodal(BranchPredictor):
    """Per-IP 2-bit saturating counters (Smith predictor)."""

    name = "bimodal"

    def __init__(self, log_entries: int = 12, counter_bits: int = 2) -> None:
        if log_entries <= 0 or counter_bits <= 0:
            raise ValueError("log_entries and counter_bits must be positive")
        self.log_entries = log_entries
        self.counter_bits = counter_bits
        self._mask = (1 << log_entries) - 1
        self._lo = -(1 << (counter_bits - 1))
        self._hi = (1 << (counter_bits - 1)) - 1
        self._table: List[int] = [0] * (1 << log_entries)

    def _index(self, ip: int) -> int:
        return (ip ^ (ip >> self.log_entries)) & self._mask

    def predict(self, ip: int) -> bool:
        return self._table[self._index(ip)] >= 0

    def update(self, ip: int, taken: bool) -> None:
        i = self._index(ip)
        self._table[i] = counter_update(self._table[i], taken, self._lo, self._hi)

    def vectorized_kernel(self) -> "Optional[TraceKernel]":
        if type(self) is not Bimodal:
            return None

        def kernel(ips: np.ndarray, taken: np.ndarray) -> np.ndarray:
            idx = (ips ^ (ips >> self.log_entries)) & self._mask
            table = np.asarray(self._table, dtype=np.int64)
            scan = saturating_counter_scan(
                idx, taken, self._lo, self._hi, table[idx]
            )
            table[scan.final_groups] = scan.final_states
            self._table = table.tolist()
            return scan.states_before >= 0

        return kernel

    def storage_bits(self) -> int:
        return len(self._table) * self.counter_bits

    def reset(self) -> None:
        self._table = [0] * len(self._table)


class GShare(BranchPredictor):
    """Global-history XOR-indexed 2-bit counters (McFarling)."""

    name = "gshare"

    def __init__(self, log_entries: int = 13, history_bits: int = 13) -> None:
        if log_entries <= 0:
            raise ValueError("log_entries must be positive")
        if history_bits <= 0 or history_bits > log_entries:
            raise ValueError("history_bits must be in 1..log_entries")
        self.log_entries = log_entries
        self.history_bits = history_bits
        self._mask = (1 << log_entries) - 1
        self._hist_mask = (1 << history_bits) - 1
        self._table: List[int] = [0] * (1 << log_entries)
        self._history = 0

    def _index(self, ip: int) -> int:
        return ((ip ^ (ip >> self.log_entries)) ^ (self._history & self._hist_mask)) & self._mask

    def predict(self, ip: int) -> bool:
        return self._table[self._index(ip)] >= 0

    def update(self, ip: int, taken: bool) -> None:
        i = self._index(ip)
        self._table[i] = counter_update(self._table[i], taken, -2, 1)
        self._history = ((self._history << 1) | int(taken)) & self._hist_mask

    def vectorized_kernel(self) -> "Optional[TraceKernel]":
        if type(self) is not GShare:
            return None

        def kernel(ips: np.ndarray, taken: np.ndarray) -> np.ndarray:
            # History before each branch is a pure function of the recorded
            # outcomes, so the whole index stream exists before the scan.
            hist = packed_history(taken, self.history_bits, init=self._history)
            idx = ((ips ^ (ips >> self.log_entries)) ^ hist) & self._mask
            table = np.asarray(self._table, dtype=np.int64)
            scan = saturating_counter_scan(idx, taken, -2, 1, table[idx])
            table[scan.final_groups] = scan.final_states
            self._table = table.tolist()
            self._history = final_history(
                taken, self.history_bits, init=self._history
            )
            return scan.states_before >= 0

        return kernel

    def storage_bits(self) -> int:
        return len(self._table) * 2 + self.history_bits

    def reset(self) -> None:
        self._table = [0] * len(self._table)
        self._history = 0


class TwoLevelLocal(BranchPredictor):
    """Yeh-Patt two-level adaptive predictor with per-branch local history.

    A first-level table of per-IP history registers selects into a
    second-level pattern table of 2-bit counters.
    """

    name = "two-level-local"

    def __init__(self, log_l1_entries: int = 10, local_bits: int = 10) -> None:
        if log_l1_entries <= 0 or local_bits <= 0:
            raise ValueError("table shapes must be positive")
        self.log_l1_entries = log_l1_entries
        self.local_bits = local_bits
        self._l1_mask = (1 << log_l1_entries) - 1
        self._hist_mask = (1 << local_bits) - 1
        self._l1: List[int] = [0] * (1 << log_l1_entries)
        self._l2: List[int] = [0] * (1 << local_bits)

    def _l1_index(self, ip: int) -> int:
        return (ip ^ (ip >> self.log_l1_entries)) & self._l1_mask

    def predict(self, ip: int) -> bool:
        hist = self._l1[self._l1_index(ip)]
        return self._l2[hist] >= 0

    def update(self, ip: int, taken: bool) -> None:
        i1 = self._l1_index(ip)
        hist = self._l1[i1]
        self._l2[hist] = counter_update(self._l2[hist], taken, -2, 1)
        self._l1[i1] = ((hist << 1) | int(taken)) & self._hist_mask

    def vectorized_kernel(self) -> "Optional[TraceKernel]":
        if type(self) is not TwoLevelLocal:
            return None

        def kernel(ips: np.ndarray, taken: np.ndarray) -> np.ndarray:
            i1 = (ips ^ (ips >> self.log_l1_entries)) & self._l1_mask
            l1 = np.asarray(self._l1, dtype=np.int64)
            # Each L1 register's content is a pure function of its own
            # branches' outcomes, so the L2 pattern stream (what each
            # predict/update pair indexes with) is computable up front; the
            # shared L2 counters then replay as one grouped scan.
            lh = local_history(i1, taken, self.local_bits, l1)
            l2 = np.asarray(self._l2, dtype=np.int64)
            scan = saturating_counter_scan(
                lh.history, taken, -2, 1, l2[lh.history]
            )
            l2[scan.final_groups] = scan.final_states
            l1[lh.final_groups] = lh.final_registers
            self._l1 = l1.tolist()
            self._l2 = l2.tolist()
            return scan.states_before >= 0

        return kernel

    def storage_bits(self) -> int:
        return len(self._l1) * self.local_bits + len(self._l2) * 2

    def reset(self) -> None:
        self._l1 = [0] * len(self._l1)
        self._l2 = [0] * len(self._l2)
