"""Statistical Corrector (the "SC" of TAGE-SC-L).

A GEHL-style perceptron ensemble that decides whether to *invert* TAGE's
prediction.  Components index small tables of signed counters with hashes of
the IP combined with different data modalities (short global-history folds,
the local history, the IMLI count, and a per-IP bias conditioned on the TAGE
prediction).  The weighted vote is compared against an adaptively-trained
threshold; only a confident disagreement overrides TAGE.  This implements
the ensemble/boosting role the paper ascribes to the SC in Sec. II.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.predictors.base import saturate


class _ScComponent:
    """One GEHL table: signed counters indexed by hash(ip, feature)."""

    __slots__ = ("log_entries", "counter_bits", "_mask", "_lo", "_hi", "table")

    def __init__(self, log_entries: int, counter_bits: int = 6) -> None:
        self.log_entries = log_entries
        self.counter_bits = counter_bits
        self._mask = (1 << log_entries) - 1
        self._lo = -(1 << (counter_bits - 1))
        self._hi = (1 << (counter_bits - 1)) - 1
        self.table: List[int] = [0] * (1 << log_entries)

    def index(self, ip: int, feature: int) -> int:
        return (ip ^ (ip >> self.log_entries) ^ feature ^ (feature >> 5)) & self._mask

    def vote(self, idx: int) -> int:
        return 2 * self.table[idx] + 1

    def train(self, idx: int, taken: bool) -> None:
        self.table[idx] = saturate(
            self.table[idx] + (1 if taken else -1), self._lo, self._hi
        )

    def storage_bits(self) -> int:
        return len(self.table) * self.counter_bits


class StatisticalCorrector:
    """Perceptron-style corrector over multiple feature modalities.

    Used by :class:`repro.predictors.tagescl.TageScL`; can also be studied
    standalone.  The caller supplies the feature values each prediction (the
    composite owns the histories).
    """

    def __init__(
        self,
        log_entries: int = 9,
        history_folds: Sequence[int] = (4, 10, 16),
        counter_bits: int = 6,
        initial_threshold: int = 6,
    ) -> None:
        if initial_threshold <= 0:
            raise ValueError("initial_threshold must be positive")
        self.history_folds = tuple(history_folds)
        # Components: bias, one per history fold, local history, IMLI.
        self._bias = _ScComponent(log_entries, counter_bits)
        self._ghist_components = [
            _ScComponent(log_entries, counter_bits) for _ in self.history_folds
        ]
        self._local = _ScComponent(log_entries, counter_bits)
        self._imli = _ScComponent(log_entries, counter_bits)
        self.threshold = initial_threshold
        self._threshold_counter = 0  # adaptive threshold training (O-GEHL)
        self._tage_weight = 8

        self._last_sum = 0
        self._last_indices: List[Tuple[_ScComponent, int]] = []
        self._last_tage_pred = False

    def classify(
        self,
        ip: int,
        tage_pred: bool,
        tage_confident: bool,
        ghist_bits: int,
        local_hist: int,
        imli_count: int,
    ) -> bool:
        """Return the final direction after statistical correction."""
        indices: List[Tuple[_ScComponent, int]] = []
        s = 0

        idx = self._bias.index(ip, int(tage_pred))
        indices.append((self._bias, idx))
        s += self._bias.vote(idx)

        for comp, fold in zip(self._ghist_components, self.history_folds):
            feature = ghist_bits & ((1 << fold) - 1)
            idx = comp.index(ip, feature)
            indices.append((comp, idx))
            s += comp.vote(idx)

        idx = self._local.index(ip, local_hist)
        indices.append((self._local, idx))
        s += self._local.vote(idx)

        idx = self._imli.index(ip, imli_count)
        indices.append((self._imli, idx))
        s += self._imli.vote(idx)

        s += self._tage_weight if tage_pred else -self._tage_weight
        if tage_confident:
            s += self._tage_weight if tage_pred else -self._tage_weight

        self._last_sum = s
        self._last_indices = indices
        self._last_tage_pred = tage_pred

        sc_pred = s >= 0
        if sc_pred != tage_pred and abs(s) >= self.threshold:
            return sc_pred
        return tage_pred

    def train(self, taken: bool) -> None:
        """Train after the branch resolves (call once per classify)."""
        s = self._last_sum
        sc_pred = s >= 0
        if sc_pred != taken or abs(s) < self.threshold * 4:
            for comp, idx in self._last_indices:
                comp.train(idx, taken)
        # Adaptive threshold: grow when confident-but-wrong, shrink when
        # weakly correct (Seznec's TC counter).
        if sc_pred != taken and abs(s) >= self.threshold:
            self._threshold_counter += 1
            if self._threshold_counter >= 32:
                self._threshold_counter = 0
                self.threshold = min(self.threshold + 1, 128)
        elif sc_pred == taken and abs(s) < self.threshold:
            self._threshold_counter -= 1
            if self._threshold_counter <= -32:
                self._threshold_counter = 0
                self.threshold = max(self.threshold - 1, 4)

    def storage_bits(self) -> int:
        bits = self._bias.storage_bits() + self._local.storage_bits()
        bits += self._imli.storage_bits()
        for comp in self._ghist_components:
            bits += comp.storage_bits()
        bits += 8 + 8  # threshold + TC registers
        return bits

    def reset(self) -> None:
        for comp in [self._bias, self._local, self._imli, *self._ghist_components]:
            comp.table = [0] * len(comp.table)
        self._threshold_counter = 0
