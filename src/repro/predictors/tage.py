"""TAGE: TAgged GEometric-history-length predictor (Seznec & Michaud).

This is a from-scratch implementation of the PPM-like tagged predictor that
wins CBP2016 as part of TAGE-SC-L.  Structure:

* a bimodal base table;
* ``num_tables`` tagged tables, table *i* indexed by a hash of the IP with
  the most recent ``L_i`` global-history bits (folded) and the path history,
  where the ``L_i`` follow a geometric series;
* longest-match provider selection with an alternate prediction and the
  ``use_alt_on_newly_allocated`` policy;
* usefulness counters steering entry reallocation, with periodic aging.

Because the paper's Sec. IV-A measurement is about *how TAGE's storage is
spent* (allocations vs. unique entries per branch), the implementation can
record, per static branch, every allocation event and the set of distinct
table entries ever allocated — enable with ``track_allocations=True``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro import obs
from repro.core.types import BranchKind
from repro.predictors.base import BranchPredictor, counter_update, saturate


def geometric_history_lengths(
    min_history: int, max_history: int, num_tables: int
) -> List[int]:
    """The geometric series of history lengths L_1..L_n (shortest first)."""
    if num_tables < 1:
        raise ValueError("need at least one tagged table")
    if min_history < 1 or max_history < min_history:
        raise ValueError("invalid history range")
    if num_tables == 1:
        return [min_history]
    ratio = (max_history / min_history) ** (1.0 / (num_tables - 1))
    lengths = []
    for i in range(num_tables):
        length = int(round(min_history * ratio**i))
        if lengths and length <= lengths[-1]:
            length = lengths[-1] + 1
        lengths.append(length)
    return lengths


@dataclass(frozen=True)
class TageConfig:
    """Shape of a TAGE predictor.

    ``log_entries``/``tag_bits`` may be a single int applied to every tagged
    table or one value per table.
    """

    num_tables: int = 10
    log_entries: Tuple[int, ...] = (8,) * 10
    tag_bits: Tuple[int, ...] = (8, 8, 9, 9, 10, 10, 11, 11, 12, 12)
    min_history: int = 5
    max_history: int = 1000
    counter_bits: int = 3
    useful_bits: int = 2
    log_base_entries: int = 12
    useful_reset_period: int = 1 << 18
    seed: int = 12345

    def __post_init__(self) -> None:
        if len(self.log_entries) != self.num_tables:
            raise ValueError("log_entries must have one value per table")
        if len(self.tag_bits) != self.num_tables:
            raise ValueError("tag_bits must have one value per table")

    @staticmethod
    def uniform(
        num_tables: int,
        log_entries: int,
        min_history: int,
        max_history: int,
        tag_bits_lo: int = 8,
        tag_bits_hi: int = 12,
        **kwargs,
    ) -> "TageConfig":
        """Config with equal-size tables and tags widening toward long
        histories (longer histories alias more and need wider tags)."""
        tags = tuple(
            min(tag_bits_hi, tag_bits_lo + (i * (tag_bits_hi - tag_bits_lo + 1)) // num_tables)
            for i in range(num_tables)
        )
        return TageConfig(
            num_tables=num_tables,
            log_entries=(log_entries,) * num_tables,
            tag_bits=tags,
            min_history=min_history,
            max_history=max_history,
            **kwargs,
        )


class _Folded:
    """Incrementally folded history register (Michaud's trick)."""

    __slots__ = ("orig_length", "comp_length", "comp", "_outpoint", "_mask")

    def __init__(self, orig_length: int, comp_length: int) -> None:
        self.orig_length = orig_length
        self.comp_length = comp_length
        self.comp = 0
        self._outpoint = orig_length % comp_length
        self._mask = (1 << comp_length) - 1

    def update(self, inbit: int, outbit: int) -> None:
        comp = ((self.comp << 1) | inbit) ^ (outbit << self._outpoint)
        comp ^= comp >> self.comp_length
        self.comp = comp & self._mask


@dataclass
class AllocationStats:
    """Per-branch table-allocation bookkeeping (Sec. IV-A instrumentation)."""

    allocations: Dict[int, int] = field(default_factory=dict)
    unique_entries: Dict[int, Set[Tuple[int, int]]] = field(default_factory=dict)

    def record(self, ip: int, table: int, index: int) -> None:
        self.allocations[ip] = self.allocations.get(ip, 0) + 1
        self.unique_entries.setdefault(ip, set()).add((table, index))

    def allocations_for(self, ip: int) -> int:
        return self.allocations.get(ip, 0)

    def unique_entries_for(self, ip: int) -> int:
        return len(self.unique_entries.get(ip, ()))

    @property
    def total_allocations(self) -> int:
        return sum(self.allocations.values())


class Tage(BranchPredictor):
    """The TAGE predictor proper (no SC, no loop predictor)."""

    name = "tage"

    def __init__(
        self, config: Optional[TageConfig] = None, track_allocations: bool = False
    ) -> None:
        self.config = config or TageConfig()
        cfg = self.config
        self.history_lengths = geometric_history_lengths(
            cfg.min_history, cfg.max_history, cfg.num_tables
        )
        n = cfg.num_tables

        self._tags: List[List[int]] = [[-1] * (1 << cfg.log_entries[t]) for t in range(n)]
        self._ctrs: List[List[int]] = [[0] * (1 << cfg.log_entries[t]) for t in range(n)]
        self._useful: List[List[int]] = [[0] * (1 << cfg.log_entries[t]) for t in range(n)]
        self._idx_masks = [(1 << cfg.log_entries[t]) - 1 for t in range(n)]
        self._tag_masks = [(1 << cfg.tag_bits[t]) - 1 for t in range(n)]
        self._idx_shifts = [max(1, cfg.log_entries[t] - (t & 3)) for t in range(n)]

        self._ctr_lo = -(1 << (cfg.counter_bits - 1))
        self._ctr_hi = (1 << (cfg.counter_bits - 1)) - 1
        self._u_hi = (1 << cfg.useful_bits) - 1

        # Cold branches are predicted not-taken (init -1): matches real
        # front-ends and matters for rare never-taken checks (Fig. 3).
        self._base: List[int] = [-1] * (1 << cfg.log_base_entries)
        self._base_mask = (1 << cfg.log_base_entries) - 1

        # Circular global history buffer feeding the folded registers.
        self._hist_size = cfg.max_history + 8
        self._hist = [0] * self._hist_size
        self._head = 0

        self._folded_idx = [
            _Folded(self.history_lengths[t], cfg.log_entries[t]) for t in range(n)
        ]
        self._folded_tag0 = [
            _Folded(self.history_lengths[t], cfg.tag_bits[t]) for t in range(n)
        ]
        self._folded_tag1 = [
            _Folded(self.history_lengths[t], cfg.tag_bits[t] - 1) for t in range(n)
        ]
        # Hot-path mirrors of the folded registers as flat lists (one set
        # per register type): avoids ~3n bound-method calls per retired
        # branch in _push_history and attribute chains in the hash path.
        def _mirror(regs):
            return (
                [f.comp for f in regs],
                [f._outpoint for f in regs],
                [f.comp_length for f in regs],
                [f._mask for f in regs],
            )

        self._ci, self._oi, self._li, self._mi = _mirror(self._folded_idx)
        self._c0, self._o0, self._l0, self._m0 = _mirror(self._folded_tag0)
        self._c1, self._o1, self._l1, self._m1 = _mirror(self._folded_tag1)


        self._path = 0
        self._use_alt_on_na = 0  # [-8, 7]
        self._rand_state = cfg.seed | 1
        self._tick = 0

        self.allocation_stats = AllocationStats() if track_allocations else None

        # Lightweight telemetry: plain int adds on already-heavy paths,
        # harvested in bulk by publish_obs_counters() (see repro.obs).
        self.alloc_count = 0
        self.evict_count = 0
        self.alloc_fail_count = 0
        self.pred_provider_count = 0
        self.pred_alt_count = 0
        self.pred_base_count = 0

        # Per-prediction scratch (valid between predict() and update()).
        self._p_provider = -1
        self._p_idx = 0
        self._p_alt_pred = False
        self._p_pred = False
        self._p_provider_pred = False
        self._p_weak = False
        self._p_indices: List[int] = [0] * n
        self._p_tags: List[int] = [0] * n

    # -- hashing ---------------------------------------------------------

    def _compute_indices_tags(self, ip: int) -> None:
        path = self._path
        shifts = self._idx_shifts
        ci, c0, c1 = self._ci, self._c0, self._c1
        p_indices, p_tags = self._p_indices, self._p_tags
        idx_masks, tag_masks = self._idx_masks, self._tag_masks
        ip11 = ip ^ (ip >> 11)
        for t in range(len(shifts)):
            p_indices[t] = (
                ip ^ (ip >> shifts[t]) ^ ci[t] ^ (path >> (t & 3))
            ) & idx_masks[t]
            p_tags[t] = (ip11 ^ c0[t] ^ (c1[t] << 1)) & tag_masks[t]

    def _base_index(self, ip: int) -> int:
        return (ip ^ (ip >> self.config.log_base_entries)) & self._base_mask

    def _rand(self) -> int:
        # xorshift32; cheap deterministic randomness for allocation policy.
        x = self._rand_state
        x ^= (x << 13) & 0xFFFFFFFF
        x ^= x >> 17
        x ^= (x << 5) & 0xFFFFFFFF
        self._rand_state = x
        return x

    # -- prediction ------------------------------------------------------

    def predict(self, ip: int) -> bool:
        self._compute_indices_tags(ip)
        provider = -1
        alt = -1
        tags = self._tags
        for t in range(self.config.num_tables - 1, -1, -1):
            if tags[t][self._p_indices[t]] == self._p_tags[t]:
                if provider < 0:
                    provider = t
                else:
                    alt = t
                    break

        base_pred = self._base[self._base_index(ip)] >= 0
        if provider < 0:
            self.pred_base_count += 1
            self._p_provider = -1
            self._p_pred = base_pred
            self._p_alt_pred = base_pred
            self._p_weak = False
            return base_pred

        idx = self._p_indices[provider]
        ctr = self._ctrs[provider][idx]
        provider_pred = ctr >= 0
        alt_pred = self._ctrs[alt][self._p_indices[alt]] >= 0 if alt >= 0 else base_pred
        weak = ctr in (-1, 0) and self._useful[provider][idx] == 0
        if weak and self._use_alt_on_na >= 0:
            pred = alt_pred
            self.pred_alt_count += 1
        else:
            pred = provider_pred
            self.pred_provider_count += 1

        self._p_provider = provider
        self._p_idx = idx
        self._p_pred = pred
        self._p_provider_pred = provider_pred
        self._p_alt_pred = alt_pred
        self._p_weak = weak
        return pred

    # -- update ----------------------------------------------------------

    def update(self, ip: int, taken: bool) -> None:
        cfg = self.config
        provider = self._p_provider
        mispredicted = self._p_pred != taken

        if provider >= 0:
            idx = self._p_idx
            ctrs = self._ctrs[provider]
            useful = self._useful[provider]
            # Track whether the alternate beats newly-allocated entries.
            if self._p_weak and self._p_provider_pred != self._p_alt_pred:
                step = 1 if self._p_alt_pred == taken else -1
                self._use_alt_on_na = saturate(self._use_alt_on_na + step, -8, 7)
            if self._p_provider_pred != self._p_alt_pred:
                step = 1 if self._p_provider_pred == taken else -1
                useful[idx] = saturate(useful[idx] + step, 0, self._u_hi)
            ctrs[idx] = counter_update(ctrs[idx], taken, self._ctr_lo, self._ctr_hi)
            # Keep the base predictor warm when the provider is fresh.
            if self._useful[provider][idx] == 0 and abs(2 * ctrs[idx] + 1) <= 1:
                bi = self._base_index(ip)
                self._base[bi] = counter_update(self._base[bi], taken, -2, 1)
        else:
            bi = self._base_index(ip)
            self._base[bi] = counter_update(self._base[bi], taken, -2, 1)

        if mispredicted and provider < cfg.num_tables - 1:
            self._allocate(ip, taken, provider)

        self._push_history(ip, int(taken))

    def _allocate(self, ip: int, taken: bool, provider: int) -> None:
        cfg = self.config
        # Random skip: start 1 or 2 tables above the provider (Seznec).
        start = provider + 1
        if (self._rand() & 3) == 0 and start + 1 < cfg.num_tables:
            start += 1
        allocated = False
        for t in range(start, cfg.num_tables):
            idx = self._p_indices[t]
            if self._useful[t][idx] == 0:
                if self._tags[t][idx] != -1:
                    self.evict_count += 1
                self._tags[t][idx] = self._p_tags[t]
                self._ctrs[t][idx] = 0 if taken else -1
                self._useful[t][idx] = 0
                self.alloc_count += 1
                if self.allocation_stats is not None:
                    self.allocation_stats.record(ip, t, idx)
                allocated = True
                break
        if not allocated:
            self.alloc_fail_count += 1
            # No victim: age the candidates so a future allocation succeeds.
            for t in range(start, cfg.num_tables):
                idx = self._p_indices[t]
                u = self._useful[t][idx]
                if u > 0:
                    self._useful[t][idx] = u - 1

        self._tick += 1
        if self._tick >= cfg.useful_reset_period:
            self._tick = 0
            for t in range(cfg.num_tables):
                useful = self._useful[t]
                for i in range(len(useful)):
                    useful[i] >>= 1

    # -- history ---------------------------------------------------------

    def _push_history(self, ip: int, bit: int) -> None:
        head = (self._head - 1) % self._hist_size
        self._head = head
        hist = self._hist
        hist[head] = bit
        size = self._hist_size
        lengths = self.history_lengths
        ci, oi, li, mi = self._ci, self._oi, self._li, self._mi
        c0, o0, l0, m0 = self._c0, self._o0, self._l0, self._m0
        c1, o1, l1, m1 = self._c1, self._o1, self._l1, self._m1
        for t in range(len(lengths)):
            outbit = hist[(head + lengths[t]) % size]
            c = ((ci[t] << 1) | bit) ^ (outbit << oi[t])
            ci[t] = (c ^ (c >> li[t])) & mi[t]
            c = ((c0[t] << 1) | bit) ^ (outbit << o0[t])
            c0[t] = (c ^ (c >> l0[t])) & m0[t]
            c = ((c1[t] << 1) | bit) ^ (outbit << o1[t])
            c1[t] = (c ^ (c >> l1[t])) & m1[t]
        self._path = ((self._path << 2) ^ (ip & 0xFFF)) & 0xFFFF

    def note_branch(
        self, ip: int, target: int, kind: BranchKind, taken: bool = True
    ) -> None:
        # Non-conditional control flow contributes a taken bit + path update.
        self._push_history(ip, 1)

    # -- accounting ------------------------------------------------------

    def introspect_last(self) -> Tuple[int, bool, bool, bool]:
        """Attribution of the most recent :meth:`predict`, valid until
        :meth:`update` runs: ``(provider_table, used_alt, loop_used,
        sc_flipped)``.  ``provider_table`` is -1 for the bimodal base; the
        last two slots are always False for plain TAGE.  Derived entirely
        from existing per-prediction scratch, so the hot path is untouched.
        """
        used_alt = self._p_provider >= 0 and self._p_weak and self._use_alt_on_na >= 0
        return (self._p_provider, used_alt, False, False)

    def obs_counters(self) -> Dict[str, int]:
        """Current telemetry counter values, keyed by registry metric name."""
        return {
            "tage.alloc": self.alloc_count,
            "tage.evict": self.evict_count,
            "tage.alloc_fail": self.alloc_fail_count,
            "tage.pred.provider": self.pred_provider_count,
            "tage.pred.alt": self.pred_alt_count,
            "tage.pred.base": self.pred_base_count,
        }

    def reset_obs_counters(self) -> None:
        self.alloc_count = self.evict_count = self.alloc_fail_count = 0
        self.pred_provider_count = self.pred_alt_count = self.pred_base_count = 0

    def publish_obs_counters(self) -> None:
        """Flush telemetry into the obs registry and zero the local counts
        (so incremental publishes — e.g. once per simulated trace — sum)."""
        for name, value in self.obs_counters().items():
            if value:
                obs.counter(name, value)
        self.reset_obs_counters()

    def storage_bits(self) -> int:
        cfg = self.config
        bits = (1 << cfg.log_base_entries) * 2
        for t in range(cfg.num_tables):
            per_entry = cfg.tag_bits[t] + cfg.counter_bits + cfg.useful_bits
            bits += (1 << cfg.log_entries[t]) * per_entry
        bits += cfg.max_history  # global history buffer
        bits += 16 + 4 + 32  # path, use_alt, tick/random registers
        return bits

    def reset(self) -> None:
        self.__init__(self.config, track_allocations=self.allocation_stats is not None)
