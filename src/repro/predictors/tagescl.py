"""TAGE-SC-L: the CBP2016-winning ensemble (Seznec 2016), from scratch.

Combines:

* **TAGE** — PPM-style longest match over geometric history lengths;
* **SC** — statistical corrector arbitrating/boosting TAGE's output;
* **L** — loop predictor overriding on high-confidence regular loops.

Size presets follow the paper's limit studies: 8KB and 64KB (the CBP2016
budgets used throughout Figs. 1/5) and the extended 128/256/512/1024KB sweep
of Fig. 7.  ``storage_bits()`` accounts for every table so the presets can
be verified against their budgets (see ``tests/predictors/test_storage.py``).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro import obs
from repro.core.types import BranchKind
from repro.predictors.base import BranchPredictor
from repro.predictors.loop import ImliCounter, LoopPredictor
from repro.predictors.statistical_corrector import StatisticalCorrector
from repro.predictors.tage import AllocationStats, Tage, TageConfig


class TageScL(BranchPredictor):
    """The full TAGE-SC-L composite predictor."""

    name = "tage-sc-l"

    def __init__(
        self,
        tage_config: Optional[TageConfig] = None,
        sc_log_entries: int = 9,
        loop_log_entries: int = 6,
        local_history_entries_log: int = 10,
        local_history_bits: int = 11,
        enable_sc: bool = True,
        enable_loop: bool = True,
        track_allocations: bool = False,
        label: Optional[str] = None,
    ) -> None:
        self.tage = Tage(tage_config, track_allocations=track_allocations)
        self.sc = StatisticalCorrector(log_entries=sc_log_entries) if enable_sc else None
        self.loop = LoopPredictor(log_entries=loop_log_entries) if enable_loop else None
        self.imli = ImliCounter()
        self.enable_sc = enable_sc
        self.enable_loop = enable_loop

        self._local_mask_entries = (1 << local_history_entries_log) - 1
        self._local_bits_mask = (1 << local_history_bits) - 1
        self._local_entries_log = local_history_entries_log
        self._local_bits = local_history_bits
        self._local: Dict[int, int] = {}

        self._ghist_bits = 0  # short global history mirror for the SC
        self.pred_loop_count = 0  # telemetry: loop-predictor overrides
        self._last_loop_used = False
        self._last_sc_flipped = False
        self._last_pred = False
        self._last_target: Optional[int] = None
        if label:
            self.name = label

    @property
    def allocation_stats(self) -> Optional[AllocationStats]:
        return self.tage.allocation_stats

    def _local_hist(self, ip: int) -> int:
        return self._local.get(ip & self._local_mask_entries, 0)

    def predict(self, ip: int) -> bool:
        tage_pred = self.tage.predict(ip)
        # TAGE confidence: provider counter away from the weak region.
        provider = self.tage._p_provider
        confident = provider >= 0 and not self.tage._p_weak

        pred = tage_pred
        if self.sc is not None:
            pred = self.sc.classify(
                ip,
                tage_pred,
                confident,
                self._ghist_bits,
                self._local_hist(ip),
                self.imli.count,
            )
        self._last_sc_flipped = pred != tage_pred

        self._last_loop_used = False
        if self.loop is not None:
            loop_pred = self.loop.predict(ip)
            if self.loop.is_confident:
                pred = loop_pred
                self._last_loop_used = True
                self.pred_loop_count += 1

        self._last_pred = pred
        return pred

    def predict_with_target(self, ip: int, target: int) -> bool:
        """Variant that supplies the branch target (lets IMLI see backward
        branches).  The plain :meth:`predict` works without it."""
        self._last_target = target
        return self.predict(ip)

    def update(self, ip: int, taken: bool) -> None:
        if self.sc is not None:
            self.sc.train(taken)
        if self.loop is not None:
            self.loop.update(ip, taken, mispredicted=self._last_pred != taken)
        self.tage.update(ip, taken)

        if self._last_target is not None:
            self.imli.observe(ip, self._last_target, taken)
            self._last_target = None
        elif taken:
            # Without target information, treat every taken conditional as a
            # potential loop-back of the same branch.
            self.imli.observe(ip, ip - 4, taken)

        key = ip & self._local_mask_entries
        self._local[key] = ((self._local.get(key, 0) << 1) | int(taken)) & self._local_bits_mask
        self._ghist_bits = ((self._ghist_bits << 1) | int(taken)) & 0xFFFFFFFF

    def note_branch(
        self, ip: int, target: int, kind: BranchKind, taken: bool = True
    ) -> None:
        self.tage.note_branch(ip, target, kind, taken)

    def introspect_last(self) -> Tuple[int, bool, bool, bool]:
        """Attribution of the most recent :meth:`predict` (see
        :meth:`repro.predictors.tage.Tage.introspect_last`): the TAGE
        provider/alt slots plus whether the loop predictor overrode and
        whether the SC flipped TAGE's direction."""
        provider, used_alt, _, _ = self.tage.introspect_last()
        return (provider, used_alt, self._last_loop_used, self._last_sc_flipped)

    def obs_counters(self) -> Dict[str, int]:
        """TAGE telemetry plus ensemble-level counts (see ``repro.obs``)."""
        counters = self.tage.obs_counters()
        counters["tagescl.pred.loop"] = self.pred_loop_count
        return counters

    def reset_obs_counters(self) -> None:
        self.tage.reset_obs_counters()
        self.pred_loop_count = 0

    def publish_obs_counters(self) -> None:
        """Flush telemetry into the obs registry and zero the local counts."""
        for name, value in self.obs_counters().items():
            if value:
                obs.counter(name, value)
        self.reset_obs_counters()

    def storage_bits(self) -> int:
        bits = self.tage.storage_bits()
        if self.sc is not None:
            bits += self.sc.storage_bits()
        if self.loop is not None:
            bits += self.loop.storage_bits()
        bits += self.imli.storage_bits()
        bits += (1 << self._local_entries_log) * self._local_bits
        bits += 32  # short global-history mirror
        return bits

    def reset(self) -> None:
        self.tage.reset()
        if self.sc is not None:
            self.sc.reset()
        if self.loop is not None:
            self.loop.reset()
        self.imli.reset()
        self._local.clear()
        self._ghist_bits = 0
        self.pred_loop_count = 0


# -- Size presets ---------------------------------------------------------

#: Storage budgets (KiB) used across the paper's experiments.
STORAGE_PRESETS_KIB = (8, 64, 128, 256, 512, 1024)


# (num_tables, log_entries, max_history, log_base, sc_log, loop_log, local_log)
# calibrated so storage_bits() stays within each budget (see the storage
# tests); 8KB histories reach 1000, larger budgets 3000, matching the paper.
_PRESETS = {
    8: (10, 8, 1000, 12, 8, 6, 8),
    64: (12, 11, 3000, 13, 10, 7, 11),
    128: (12, 12, 3000, 14, 11, 7, 12),
    256: (12, 13, 3000, 15, 12, 8, 13),
    512: (12, 14, 3000, 16, 13, 8, 14),
    1024: (12, 15, 3000, 17, 14, 9, 15),
}


def _preset_params(budget_kib: int):
    """Table shapes per budget; nearest preset at/below the budget."""
    if budget_kib < 8:
        raise ValueError("smallest supported preset is 8KB")
    if budget_kib in _PRESETS:
        return _PRESETS[budget_kib]
    best = max(k for k in _PRESETS if k <= budget_kib)
    return _PRESETS[best]


def make_tage_sc_l(
    budget_kib: int, track_allocations: bool = False, **overrides
) -> TageScL:
    """Build a TAGE-SC-L sized for the given storage budget.

    ``budget_kib`` must be one of :data:`STORAGE_PRESETS_KIB` (other values
    work but are unvalidated).  The returned predictor's ``name`` embeds the
    budget (e.g. ``"tage-sc-l-8kb"``) for reporting.
    """
    num_tables, log_entries, max_history, log_base, sc_log, loop_log, local_log = (
        _preset_params(budget_kib)
    )
    cfg = TageConfig.uniform(
        num_tables=num_tables,
        log_entries=log_entries,
        min_history=5,
        max_history=max_history,
        log_base_entries=log_base,
    )
    params = dict(
        tage_config=cfg,
        sc_log_entries=sc_log,
        loop_log_entries=loop_log,
        local_history_entries_log=local_log,
        track_allocations=track_allocations,
        label=f"tage-sc-l-{budget_kib}kb",
    )
    params.update(overrides)
    return TageScL(**params)
