"""Branch *target* prediction: BTB, return-address stack, and ITTAGE.

The CBP/ChampSim deployment the paper builds on standardizes the branch
target as a BPU input, and its pipeline charges flushes for target
mispredictions exactly as for direction mispredictions.  The LCF synthetic
applications are dispatch-heavy — their handler selection is an *indirect*
branch with hundreds of possible targets — so a front-end substrate needs:

* :class:`BranchTargetBuffer` — a set-associative cache of last-seen
  targets, the baseline for every branch kind;
* :class:`ReturnAddressStack` — near-perfect prediction of ``Ret`` targets;
* :class:`Ittage` — the indirect-target cousin of TAGE (Seznec's ITTAGE):
  tagged tables over geometric history lengths whose entries store a full
  target and a confidence counter, with longest-match-wins selection and
  TAGE-style allocation.

:func:`simulate_targets` drives them over a trace and scores indirect/return
target predictions; the resulting misprediction counts can be added to the
direction mispredictions when modeling IPC (both flush the pipeline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.metrics import BranchStats
from repro.core.types import BranchKind, BranchTrace
from repro.predictors.base import saturate
from repro.predictors.tage import geometric_history_lengths


class BranchTargetBuffer:
    """Set-associative last-target cache with LRU replacement."""

    def __init__(self, sets_log2: int = 9, ways: int = 4, tag_bits: int = 16) -> None:
        if sets_log2 <= 0 or ways <= 0 or tag_bits <= 0:
            raise ValueError("invalid BTB shape")
        self.sets_log2 = sets_log2
        self.ways = ways
        self.tag_bits = tag_bits
        self._set_mask = (1 << sets_log2) - 1
        self._tag_mask = (1 << tag_bits) - 1
        # Per set: list of [tag, target] in LRU order (front = MRU).
        self._sets: List[List[List[int]]] = [
            [] for _ in range(1 << sets_log2)
        ]

    def _index(self, ip: int) -> int:
        return (ip >> 2) & self._set_mask

    def _tag(self, ip: int) -> int:
        return (ip >> (2 + self.sets_log2)) & self._tag_mask

    def predict(self, ip: int) -> Optional[int]:
        """Predicted target, or None on a BTB miss."""
        ways = self._sets[self._index(ip)]
        tag = self._tag(ip)
        for i, (t, target) in enumerate(ways):
            if t == tag:
                if i:
                    ways.insert(0, ways.pop(i))
                return target
        return None

    def update(self, ip: int, target: int) -> None:
        ways = self._sets[self._index(ip)]
        tag = self._tag(ip)
        for i, entry in enumerate(ways):
            if entry[0] == tag:
                entry[1] = target
                if i:
                    ways.insert(0, ways.pop(i))
                return
        ways.insert(0, [tag, target])
        if len(ways) > self.ways:
            ways.pop()

    def storage_bits(self) -> int:
        per_entry = self.tag_bits + 32
        return (1 << self.sets_log2) * self.ways * per_entry


class ReturnAddressStack:
    """A bounded RAS: push on calls, pop on returns."""

    def __init__(self, depth: int = 32) -> None:
        if depth <= 0:
            raise ValueError("depth must be positive")
        self.depth = depth
        self._stack: List[int] = []
        self.overflows = 0

    def push(self, return_address: int) -> None:
        self._stack.append(return_address)
        if len(self._stack) > self.depth:
            self._stack.pop(0)  # oldest entry lost (hardware wraps)
            self.overflows += 1

    def predict_and_pop(self) -> Optional[int]:
        if self._stack:
            return self._stack.pop()
        return None

    def storage_bits(self) -> int:
        return self.depth * 32


class Ittage:
    """Indirect-target TAGE (Seznec's ITTAGE, simplified).

    Tagged tables over geometric global-history lengths; entries hold a
    target and a 2-bit confidence.  The longest matching entry provides the
    prediction (falling back to a per-IP last-target base).  On a target
    mispredict, the provider's confidence decays (the target is replaced at
    zero) and a longer table allocates, exactly mirroring TAGE's dynamics.
    """

    def __init__(
        self,
        num_tables: int = 6,
        log_entries: int = 9,
        tag_bits: int = 10,
        min_history: int = 4,
        max_history: int = 256,
        log_base_entries: int = 11,
    ) -> None:
        if num_tables < 1:
            raise ValueError("need at least one table")
        self.num_tables = num_tables
        self.log_entries = log_entries
        self.tag_bits = tag_bits
        self.history_lengths = geometric_history_lengths(
            min_history, max_history, num_tables
        )
        self._mask = (1 << log_entries) - 1
        self._tag_mask = (1 << tag_bits) - 1
        self._tags = [[-1] * (1 << log_entries) for _ in range(num_tables)]
        self._targets = [[0] * (1 << log_entries) for _ in range(num_tables)]
        self._conf = [[0] * (1 << log_entries) for _ in range(num_tables)]
        self._useful = [[0] * (1 << log_entries) for _ in range(num_tables)]
        self.log_base_entries = log_base_entries
        self._base_mask = (1 << log_base_entries) - 1
        self._base_targets = [0] * (1 << log_base_entries)
        self._base_valid = [False] * (1 << log_base_entries)
        self._history = 0
        self._max_history = max_history
        self._rand_state = 0xB5297A4D
        self._p_indices = [0] * num_tables
        self._p_tags = [0] * num_tables
        self._p_provider = -1

    def _rand(self) -> int:
        x = self._rand_state
        x ^= (x << 13) & 0xFFFFFFFF
        x ^= x >> 17
        x ^= (x << 5) & 0xFFFFFFFF
        self._rand_state = x
        return x

    def _fold(self, length: int, width: int) -> int:
        bits = self._history & ((1 << length) - 1)
        folded = 0
        while bits:
            folded ^= bits & ((1 << width) - 1)
            bits >>= width
        return folded

    def _compute(self, ip: int) -> None:
        for t in range(self.num_tables):
            h = self.history_lengths[t]
            self._p_indices[t] = (
                ip ^ (ip >> (t + 2)) ^ self._fold(h, self.log_entries)
            ) & self._mask
            self._p_tags[t] = (
                ip ^ (ip >> 9) ^ self._fold(h, self.tag_bits)
            ) & self._tag_mask

    def _base_index(self, ip: int) -> int:
        return (ip >> 2) & self._base_mask

    def predict(self, ip: int) -> Optional[int]:
        """Predicted target (None if nothing is known yet)."""
        self._compute(ip)
        self._p_provider = -1
        for t in range(self.num_tables - 1, -1, -1):
            i = self._p_indices[t]
            if self._tags[t][i] == self._p_tags[t]:
                self._p_provider = t
                return self._targets[t][i]
        bi = self._base_index(ip)
        if self._base_valid[bi]:
            return self._base_targets[bi]
        return None

    def update(self, ip: int, target: int, predicted: Optional[int]) -> None:
        """Train on the resolved target (call after :meth:`predict`)."""
        correct = predicted == target
        provider = self._p_provider
        if provider >= 0:
            i = self._p_indices[provider]
            if self._targets[provider][i] == target:
                self._conf[provider][i] = saturate(
                    self._conf[provider][i] + 1, 0, 3
                )
                self._useful[provider][i] = saturate(
                    self._useful[provider][i] + (0 if correct else 0), 0, 3
                )
            else:
                if self._conf[provider][i] == 0:
                    self._targets[provider][i] = target
                else:
                    self._conf[provider][i] -= 1
        bi = self._base_index(ip)
        self._base_targets[bi] = target
        self._base_valid[bi] = True

        if not correct:
            self._allocate(ip, target, provider)
        # Push a couple of *informative* target bits into the history
        # (targets are block-aligned, so the low bits carry nothing).
        bits = ((target >> 6) ^ (target >> 10) ^ (ip >> 4)) & 0x3
        self._history = ((self._history << 2) | bits) & (
            (1 << self._max_history) - 1
        )

    def _allocate(self, ip: int, target: int, provider: int) -> None:
        start = provider + 1
        if start >= self.num_tables:
            return
        if (self._rand() & 1) and start + 1 < self.num_tables:
            start += 1
        for t in range(start, self.num_tables):
            i = self._p_indices[t]
            if self._useful[t][i] == 0 and self._conf[t][i] == 0:
                self._tags[t][i] = self._p_tags[t]
                self._targets[t][i] = target
                self._conf[t][i] = 1
                return
            self._conf[t][i] = max(0, self._conf[t][i] - 1)

    def note_direction(self, taken: bool) -> None:
        """Conditional-branch directions also feed the target history."""
        self._history = ((self._history << 1) | int(taken)) & (
            (1 << self._max_history) - 1
        )

    def storage_bits(self) -> int:
        per_entry = self.tag_bits + 32 + 2 + 2
        bits = self.num_tables * (1 << self.log_entries) * per_entry
        bits += (1 << self.log_base_entries) * 33
        bits += self._max_history
        return bits


@dataclass
class TargetSimulationResult:
    """Target-prediction statistics over a trace."""

    indirect_stats: BranchStats  # per indirect branch IP
    return_stats: BranchStats
    btb_misses: int
    ras_overflows: int

    @property
    def indirect_accuracy(self) -> float:
        return self.indirect_stats.accuracy

    @property
    def target_mispredictions(self) -> int:
        return (
            self.indirect_stats.total_mispredictions
            + self.return_stats.total_mispredictions
        )


def simulate_targets(
    trace: BranchTrace,
    indirect_predictor: Optional[Ittage] = None,
    btb: Optional[BranchTargetBuffer] = None,
    ras: Optional[ReturnAddressStack] = None,
) -> TargetSimulationResult:
    """Score target prediction for the indirect and return branches of a
    trace.  Direct jumps/calls hit the BTB after first sight and are not
    scored (their targets are static); conditional directions feed the
    ITTAGE history, as in real front-ends."""
    indirect_predictor = indirect_predictor or Ittage()
    btb = btb or BranchTargetBuffer()
    ras = ras or ReturnAddressStack()

    ind_stats = BranchStats()
    ret_stats = BranchStats()
    btb_misses = 0

    ips = trace.ips.tolist()
    taken = trace.taken.tolist()
    targets = trace.targets.tolist()
    kinds = trace.kinds.tolist()
    COND = int(BranchKind.CONDITIONAL)
    CALL = int(BranchKind.CALL)
    RET = int(BranchKind.RETURN)
    IND = int(BranchKind.INDIRECT)

    for i in range(len(ips)):
        kind = kinds[i]
        ip = ips[i]
        target = targets[i]
        if kind == COND:
            indirect_predictor.note_direction(bool(taken[i]))
            continue
        if btb.predict(ip) is None:
            btb_misses += 1
        btb.update(ip, target)
        if kind == CALL:
            # The mini-ISA's Call names its return block explicitly, so a
            # depth-correct RAS is address-correct by construction: push
            # the call site and score each Ret on whether its entry
            # survived (the only RAS failure modes are underflow and
            # overflow truncation, exactly as in hardware).
            ras.push(ip)
        elif kind == RET:
            pred = ras.predict_and_pop()
            ret_stats.record(ip, pred is not None)
        elif kind == IND:
            pred = indirect_predictor.predict(ip)
            ind_stats.record(ip, pred == target)
            indirect_predictor.update(ip, target, pred)

    return TargetSimulationResult(
        indirect_stats=ind_stats,
        return_stats=ret_stats,
        btb_misses=btb_misses,
        ras_overflows=ras.overflows,
    )

