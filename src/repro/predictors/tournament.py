"""Tournament (combining) predictor — McFarling 1993.

The earliest ensemble design the paper's Sec. II taxonomy descends from: two
component predictors (by default a local two-level and a global gshare) plus
a chooser table of 2-bit counters, indexed by IP, that learns which
component to trust per branch.  Useful both as a baseline and for ablating
the value of TAGE's tagged matching over simple chooser-based combining.
"""

from __future__ import annotations

from typing import Optional

from repro.core.types import BranchKind
from repro.predictors.base import BranchPredictor, counter_update
from repro.predictors.simple import GShare, TwoLevelLocal


class Tournament(BranchPredictor):
    """Chooser-combined pair of component predictors."""

    name = "tournament"

    def __init__(
        self,
        first: Optional[BranchPredictor] = None,
        second: Optional[BranchPredictor] = None,
        log_chooser_entries: int = 12,
    ) -> None:
        if log_chooser_entries <= 0:
            raise ValueError("log_chooser_entries must be positive")
        self.first = first if first is not None else TwoLevelLocal()
        self.second = second if second is not None else GShare()
        self._chooser = [0] * (1 << log_chooser_entries)
        self._mask = (1 << log_chooser_entries) - 1
        self._last_first = False
        self._last_second = False

    def _index(self, ip: int) -> int:
        return (ip ^ (ip >> 12)) & self._mask

    def predict(self, ip: int) -> bool:
        self._last_first = self.first.predict(ip)
        self._last_second = self.second.predict(ip)
        # Chooser >= 0 selects the second (global) component.
        if self._chooser[self._index(ip)] >= 0:
            return self._last_second
        return self._last_first

    def update(self, ip: int, taken: bool) -> None:
        first_correct = self._last_first == taken
        second_correct = self._last_second == taken
        if first_correct != second_correct:
            i = self._index(ip)
            self._chooser[i] = counter_update(
                self._chooser[i], second_correct, -2, 1
            )
        self.first.update(ip, taken)
        self.second.update(ip, taken)

    def note_branch(
        self, ip: int, target: int, kind: BranchKind, taken: bool = True
    ) -> None:
        self.first.note_branch(ip, target, kind, taken)
        self.second.note_branch(ip, target, kind, taken)

    def storage_bits(self) -> int:
        return (
            self.first.storage_bits()
            + self.second.storage_bits()
            + len(self._chooser) * 2
        )

    def reset(self) -> None:
        self.first.reset()
        self.second.reset()
        self._chooser = [0] * len(self._chooser)
