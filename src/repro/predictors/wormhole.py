"""Wormhole predictor (Albericio, San Miguel, Jerger, Moshovos — MICRO-47).

The last domain-specific model in the paper's Sec. II taxonomy: some
branches inside nested loops are *multidimensional* — their direction
depends on the inner-loop position and repeats (or correlates) across outer
iterations, e.g. ``if (A[j] > 0)`` scanned every outer iteration.  A global
or local history register folds this 2-D structure into a 1-D stream where
the pattern exceeds any practical history length, but storing the previous
outer iteration's outcome *row* makes the prediction trivial: predict the
bit at the same inner position.

This implementation keeps a small tagged table; each entry records the
outcome bits of the current and previous inner-loop sweeps, delimited by
the inner-loop iteration counter (an IMLI-style signal derived from a
designated loop-back branch or from the tracked branch's own recurrence).
Confidence counters gate the override, so non-multidimensional branches
fall back to the caller's base predictor (use it standalone or combined —
see :class:`WormholeAugmentedPredictor`).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.types import BranchKind
from repro.predictors.base import BranchPredictor, saturate

_MAX_ROW = 512  # longest inner-loop sweep tracked, in branch executions


class _WormholeEntry:
    __slots__ = ("tag", "prev_row", "cur_row", "position", "row_length",
                 "confidence")

    def __init__(self, tag: int = -1) -> None:
        self.tag = tag
        self.prev_row: List[int] = []
        self.cur_row: List[int] = []
        self.position = 0
        self.row_length = 0  # learned sweep length (0 = unknown)
        self.confidence = 0


class Wormhole(BranchPredictor):
    """Standalone wormhole predictor for multidimensional loop branches.

    Sweep boundaries are inferred per branch: when the branch's observed
    direction matches the *start* of the previous row poorly but a restart
    aligns well, the row wraps.  For robustness the default mode uses a
    fixed learned row length: the first two sweeps establish it via the
    ``row_marker`` (see :meth:`note_branch`) or, if none is configured, via
    direction-sequence periodicity detection.
    """

    name = "wormhole"

    def __init__(self, log_entries: int = 5, tag_bits: int = 12,
                 confidence_max: int = 3) -> None:
        if log_entries <= 0 or tag_bits <= 0:
            raise ValueError("invalid wormhole table shape")
        self.log_entries = log_entries
        self.tag_bits = tag_bits
        self.confidence_max = confidence_max
        self._mask = (1 << log_entries) - 1
        self._tag_mask = (1 << tag_bits) - 1
        self._table: List[_WormholeEntry] = [
            _WormholeEntry() for _ in range(1 << log_entries)
        ]
        self.is_confident = False
        self._last_entry: Optional[_WormholeEntry] = None
        self._last_pred = True

    def _slot(self, ip: int) -> int:
        return (ip ^ (ip >> self.log_entries)) & self._mask

    def _lookup(self, ip: int) -> Optional[_WormholeEntry]:
        entry = self._table[self._slot(ip)]
        if entry.tag == ((ip >> 2) & self._tag_mask):
            return entry
        return None

    def start_row(self, ip: int) -> None:
        """Signal that a new inner-loop sweep begins for ``ip``.

        Composite predictors call this when the enclosing loop's back-edge
        exits (e.g. from a loop predictor or IMLI reset); the wormhole entry
        then scores the finished row against the previous one and rotates.
        """
        entry = self._lookup(ip)
        if entry is None:
            return
        self._rotate(entry)

    def _rotate(self, entry: _WormholeEntry) -> None:
        if entry.prev_row and entry.cur_row:
            n = min(len(entry.prev_row), len(entry.cur_row))
            agree = sum(
                1 for a, b in zip(entry.prev_row, entry.cur_row) if a == b
            )
            rows_agree = (
                n and agree >= 0.9 * n
                and len(entry.prev_row) == len(entry.cur_row)
            )
            step = 1 if rows_agree else -1
            entry.confidence = saturate(
                entry.confidence + step, 0, self.confidence_max
            )
        if entry.cur_row:
            entry.row_length = len(entry.cur_row)
            entry.prev_row = entry.cur_row
        entry.cur_row = []
        entry.position = 0

    def predict(self, ip: int) -> bool:
        entry = self._lookup(ip)
        self._last_entry = entry
        if (
            entry is None
            or entry.confidence < self.confidence_max
            or entry.position >= len(entry.prev_row)
        ):
            self.is_confident = False
            self._last_pred = True
            return True
        self.is_confident = True
        pred = bool(entry.prev_row[entry.position])
        self._last_pred = pred
        return pred

    def update(self, ip: int, taken: bool) -> None:
        entry = self._last_entry
        if entry is None:
            self._allocate(ip)
            entry = self._lookup(ip)
            if entry is None:
                return
        if len(entry.cur_row) < _MAX_ROW:
            entry.cur_row.append(int(taken))
            entry.position += 1
        # Auto-rotation fallback: if the row length is known and reached,
        # rotate without an external marker.
        if entry.row_length and len(entry.cur_row) >= entry.row_length:
            self._rotate(entry)

    def _allocate(self, ip: int) -> None:
        slot = self._slot(ip)
        if self._table[slot].tag == -1:
            self._table[slot] = _WormholeEntry(tag=(ip >> 2) & self._tag_mask)

    def note_row_boundary(self, ip: int) -> None:
        """External sweep delimiter (e.g. the enclosing loop's exit)."""
        self.start_row(ip)

    def storage_bits(self) -> int:
        per_entry = self.tag_bits + 2 * _MAX_ROW + 10 + 10 + 2
        return len(self._table) * per_entry

    def reset(self) -> None:
        self._table = [_WormholeEntry() for _ in range(len(self._table))]
        self.is_confident = False
        self._last_entry = None


class WormholeAugmentedPredictor(BranchPredictor):
    """A base predictor with a wormhole side predictor.

    The wormhole overrides only when confident; every branch outcome feeds
    both.  Row boundaries are inferred from the base stream: a not-taken
    execution of a *backward* branch (a loop exit) delimits sweeps for the
    branches observed inside that loop since its last exit.
    """

    def __init__(self, base: BranchPredictor, wormhole: Optional[Wormhole] = None,
                 label: Optional[str] = None) -> None:
        self.base = base
        self.wormhole = wormhole or Wormhole()
        self._since_last_exit: List[int] = []
        self.overrides = 0
        self._wh_used = False
        self.name = label or f"{base.name}+wormhole"

    def predict(self, ip: int) -> bool:
        base_pred = self.base.predict(ip)
        wh_pred = self.wormhole.predict(ip)
        if self.wormhole.is_confident:
            self._wh_used = True
            if wh_pred != base_pred:
                self.overrides += 1
            return wh_pred
        self._wh_used = False
        return base_pred

    def update(self, ip: int, taken: bool) -> None:
        self.base.update(ip, taken)
        self.wormhole.update(ip, taken)
        self._since_last_exit.append(ip)
        if len(self._since_last_exit) > 4096:
            del self._since_last_exit[:2048]

    def note_branch(self, ip: int, target: int, kind: BranchKind,
                    taken: bool = True) -> None:
        self.base.note_branch(ip, target, kind, taken)

    def note_loop_exit(self) -> None:
        """Delimit a sweep for every branch seen since the previous exit."""
        for ip in set(self._since_last_exit):
            self.wormhole.note_row_boundary(ip)
        self._since_last_exit.clear()

    def storage_bits(self) -> int:
        return self.base.storage_bits() + self.wormhole.storage_bits()

    def reset(self) -> None:
        self.base.reset()
        self.wormhole.reset()
        self._since_last_exit.clear()
        self.overrides = 0
