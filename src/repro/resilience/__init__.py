"""``repro.resilience``: fault injection, quarantine, and checkpoint/resume.

The experiment engine's failure-handling toolkit (``docs/resilience.md``):

* :mod:`repro.resilience.faults` — a deterministic, seeded fault-injection
  harness (``REPRO_FAULTS`` or :func:`faults.install`) that can crash
  workers mid-job, raise transient/deterministic job errors, delay jobs,
  corrupt cache and trace-store entries, and fake ``ENOSPC`` on publish;
* :mod:`repro.resilience.quarantine` — corrupt/stale on-disk cache
  payloads are moved to a ``quarantine/`` subdirectory (counted under
  ``lab.cache.quarantined``) instead of being re-read every run;
* :mod:`repro.resilience.manifest` — an append-only checkpoint of
  completed simulation requests, letting an interrupted sweep restart
  with ``--resume`` and re-dispatch only the missing work.

Every recovery path preserves the engine's core invariant: recovered
runs produce **bit-identical** statistics to a clean serial run.
"""

from repro.resilience.faults import (
    CORRUPT_PAYLOAD,
    KNOWN_SITES,
    FaultPlan,
    FaultRule,
    InjectedFault,
)
from repro.resilience.faults import active as active_faults
from repro.resilience.faults import install as install_faults
from repro.resilience.faults import uninstall as uninstall_faults
from repro.resilience.manifest import MANIFEST_SCHEMA, ResumeManifest
from repro.resilience.quarantine import QUARANTINE_DIRNAME, quarantine_file

__all__ = [
    "CORRUPT_PAYLOAD",
    "KNOWN_SITES",
    "MANIFEST_SCHEMA",
    "QUARANTINE_DIRNAME",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "ResumeManifest",
    "active_faults",
    "install_faults",
    "quarantine_file",
    "uninstall_faults",
]
