"""Deterministic fault injection for resilience testing.

Long sweeps (Fig. 7's storage grid, Fig. 8's execution-count limit study)
must survive worker crashes, corrupt cache entries, and full disks.  This
module lets tests — and CI smoke runs — *inject* exactly those faults at
named sites, reproducibly, so recovery behavior can be asserted instead
of hoped for.

A :class:`FaultPlan` is a set of :class:`FaultRule`\\ s, one per site,
activated either programmatically (:func:`install`) or through the
``REPRO_FAULTS`` environment variable.  The spec grammar::

    REPRO_FAULTS="seed=42;worker.crash:n=1;job.delay:p=0.5:secs=0.2"

is ``;``-separated clauses; ``seed=N`` seeds the per-site PRNGs, every
other clause is a site name followed by ``:``-separated parameters:

``n=K``
    fire on the first K eligible opportunities (exact, deterministic);
``p=F``
    fire each opportunity with probability F (seeded, reproducible);
``after=K``
    skip the first K opportunities before the rule becomes eligible;
``secs=F``
    duration parameter (``job.delay`` sleep seconds).

A clause with neither ``n`` nor ``p`` fires on every opportunity.

Sites
-----

Worker-job faults are decided in the *parent* at submit time (one global,
deterministic sequence regardless of worker count) and shipped to the
worker as an :class:`InjectedFault`:

``worker.crash``     the worker process exits hard (``os._exit``) mid-job
``worker.oserror``   the job raises a transient ``OSError`` (retryable)
``job.error``        the job raises ``RuntimeError`` (deterministic, fail-fast)
``job.delay``        the job sleeps ``secs`` before simulating (timeouts)

Storage faults fire in whichever process performs the store, with
per-process opportunity counters:

``cache.corrupt``        a just-published sim/phase cache entry is overwritten
``cache.enospc``         the sim/phase cache write raises ``ENOSPC``
``trace_store.corrupt``  a just-published trace-store entry is overwritten
``trace_store.enospc``   the trace-store write raises ``ENOSPC``

Every injection is WARNING-logged and counted under
``resilience.faults.injected`` (plus a per-site counter), so a faulty run
is always distinguishable from a clean one in the metrics JSON.
"""

from __future__ import annotations

import errno
import os
import random
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Optional, Tuple, Union

from repro import obs

_log = obs.get_logger("resilience")

#: Bytes written over an entry by the ``*.corrupt`` sites.  Short enough to
#: truncate any real payload, and an invalid pickle/npz header.
CORRUPT_PAYLOAD = b"\x00REPRO-FAULT-CORRUPTED\x00"

#: Worker-job fault sites, in decision-priority order (parent-side).
WORKER_SITES: Tuple[str, ...] = (
    "worker.crash",
    "worker.oserror",
    "job.error",
    "job.delay",
)

#: Storage fault sites (decided in the storing process).
STORAGE_SITES: Tuple[str, ...] = (
    "cache.corrupt",
    "cache.enospc",
    "trace_store.corrupt",
    "trace_store.enospc",
)

KNOWN_SITES: Tuple[str, ...] = WORKER_SITES + STORAGE_SITES


@dataclass(frozen=True)
class FaultRule:
    """When (and how) one site misbehaves."""

    site: str
    times: Optional[int] = None  # fire on this many opportunities (None = no cap)
    probability: Optional[float] = None  # per-opportunity chance (None = certain)
    after: int = 0  # opportunities to skip before becoming eligible
    secs: float = 0.0  # duration parameter (job.delay)

    def to_clause(self) -> str:
        parts = [self.site]
        if self.times is not None:
            parts.append(f"n={self.times}")
        if self.probability is not None:
            parts.append(f"p={self.probability}")
        if self.after:
            parts.append(f"after={self.after}")
        if self.secs:
            parts.append(f"secs={self.secs}")
        return ":".join(parts)


@dataclass(frozen=True)
class InjectedFault:
    """A parent-side fault decision shipped to a worker with its job."""

    site: str
    secs: float = 0.0


class FaultPlan:
    """A seeded, thread-safe set of fault rules with per-site counters."""

    def __init__(self, rules: Iterable[FaultRule], seed: int = 0) -> None:
        self.seed = seed
        self._rules: Dict[str, FaultRule] = {}
        for rule in rules:
            if rule.site not in KNOWN_SITES:
                raise ValueError(
                    f"unknown fault site {rule.site!r}; choose from {KNOWN_SITES}"
                )
            if rule.site in self._rules:
                raise ValueError(f"duplicate fault site {rule.site!r}")
            self._rules[rule.site] = rule
        self._lock = threading.Lock()
        self._opportunities: Dict[str, int] = {s: 0 for s in self._rules}
        self._fired: Dict[str, int] = {s: 0 for s in self._rules}
        self._rngs: Dict[str, random.Random] = {
            s: random.Random(f"{seed}:{s}") for s in self._rules
        }

    # -- construction ------------------------------------------------------

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a ``REPRO_FAULTS`` spec string (see module docstring)."""
        seed = 0
        rules = []
        for clause in spec.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            if clause.startswith("seed="):
                seed = int(clause[len("seed="):])
                continue
            site, _, tail = clause.partition(":")
            site = site.strip()
            kwargs: Dict[str, Union[int, float]] = {}
            for param in tail.split(":") if tail else []:
                key, eq, value = param.partition("=")
                key = key.strip()
                if not eq:
                    raise ValueError(f"malformed fault parameter {param!r} in {clause!r}")
                if key == "n":
                    kwargs["times"] = int(value)
                elif key == "p":
                    kwargs["probability"] = float(value)
                elif key == "after":
                    kwargs["after"] = int(value)
                elif key == "secs":
                    kwargs["secs"] = float(value)
                else:
                    raise ValueError(f"unknown fault parameter {key!r} in {clause!r}")
            rules.append(FaultRule(site=site, **kwargs))  # type: ignore[arg-type]
        return cls(rules, seed=seed)

    def spec(self) -> str:
        """Re-serialize (counters excluded) — shippable to worker processes."""
        clauses = [f"seed={self.seed}"]
        clauses.extend(rule.to_clause() for rule in self._rules.values())
        return ";".join(clauses)

    # -- decisions ---------------------------------------------------------

    def decide(self, site: str) -> Optional[FaultRule]:
        """Count one opportunity at ``site``; return the rule iff it fires."""
        rule = self._rules.get(site)
        if rule is None:
            return None
        with self._lock:
            self._opportunities[site] += 1
            if self._opportunities[site] <= rule.after:
                return None
            if rule.times is not None and self._fired[site] >= rule.times:
                return None
            if (
                rule.probability is not None
                and self._rngs[site].random() >= rule.probability
            ):
                return None
            self._fired[site] += 1
        return rule

    def fired(self, site: str) -> int:
        """How many times ``site`` has fired in this process."""
        return self._fired.get(site, 0)


# -- process-wide activation ----------------------------------------------

_installed: Optional[FaultPlan] = None
_env_cache: Tuple[Optional[str], Optional[FaultPlan]] = (None, None)
_state_lock = threading.Lock()


def install(plan: Union[FaultPlan, str]) -> FaultPlan:
    """Activate a fault plan for this process (overrides ``REPRO_FAULTS``)."""
    global _installed
    if isinstance(plan, str):
        plan = FaultPlan.parse(plan)
    _installed = plan
    return plan


def uninstall() -> None:
    """Deactivate any installed plan (``REPRO_FAULTS`` applies again)."""
    global _installed, _env_cache
    _installed = None
    _env_cache = (None, None)


def active() -> Optional[FaultPlan]:
    """The in-effect plan: installed one, else parsed from ``REPRO_FAULTS``."""
    global _env_cache
    if _installed is not None:
        return _installed
    spec = os.environ.get("REPRO_FAULTS", "").strip()
    if not spec:
        return None
    with _state_lock:
        if _env_cache[0] != spec:
            _env_cache = (spec, FaultPlan.parse(spec))
        return _env_cache[1]


def active_spec() -> Optional[str]:
    """Serialized active plan (for shipping to spawned workers), or None."""
    plan = active()
    return plan.spec() if plan is not None else None


def fire(site: str) -> Optional[FaultRule]:
    """One opportunity at ``site``: returns the rule iff a fault fires
    (counted and WARNING-logged); None with no active plan."""
    plan = active()
    if plan is None:
        return None
    rule = plan.decide(site)
    if rule is not None:
        obs.counter("resilience.faults.injected")
        obs.counter(f"resilience.faults.{site}")
        _log.warning("injecting fault at site %s", site)
        # Instant marker on the timeline (no-op when tracing is off) so a
        # fault-injected run shows *where* each fault landed.
        from repro.obs import trace as obstrace

        obstrace.instant_event(f"fault.{site}")
    return rule


# -- instrumentation helpers ----------------------------------------------


def next_worker_fault() -> Optional[InjectedFault]:
    """Parent-side decision for one job submission (first firing site wins)."""
    plan = active()
    if plan is None:
        return None
    for site in WORKER_SITES:
        rule = fire(site)
        if rule is not None:
            return InjectedFault(site=site, secs=rule.secs)
    return None


def apply_worker_fault(fault: Optional[InjectedFault]) -> None:
    """Execute a shipped fault decision inside the worker process."""
    if fault is None:
        return
    if fault.site == "worker.crash":
        # A hard exit, not an exception: the parent sees BrokenProcessPool,
        # exactly like an OOM kill or segfault would look.
        os._exit(13)
    elif fault.site == "worker.oserror":
        raise OSError(errno.EIO, "injected transient I/O fault")
    elif fault.site == "job.error":
        raise RuntimeError("injected deterministic job fault")
    elif fault.site == "job.delay":
        time.sleep(fault.secs)


def check_enospc(site: str) -> None:
    """Raise ``OSError(ENOSPC)`` if a fault fires at ``site``."""
    if fire(site) is not None:
        raise OSError(errno.ENOSPC, "injected: no space left on device")


def corrupt_file(site: str, path: Union[str, Path]) -> bool:
    """Overwrite ``path`` with garbage if a fault fires at ``site``."""
    if fire(site) is None:
        return False
    with open(path, "wb") as f:
        f.write(CORRUPT_PAYLOAD)
    return True
