"""Checkpoint/resume manifest for interrupted experiment sweeps.

The paper's sweeps are hours of independent (workload, input, predictor)
simulations; a killed run should not forfeit the completed ones.  The
:class:`ResumeManifest` is an append-only JSONL file under the cache
directory recording every simulation request whose result was durably
published to the disk cache.  A restarted run (``--resume``) loads it and
plans those requests away during :meth:`Lab.prefetch`, so only the
missing work is re-dispatched — asserted in tests via the
``lab.parallel.jobs.dispatched`` counter.

Format (``repro.resilience.manifest/v1``)::

    {"schema": "repro.resilience.manifest/v1", "cache_version": 5}
    {"key": ["605.mcf_s", 0, 2000000, "tage-sc-l-8kb", 100000], "experiment": "table1"}
    ...

The header pins the Lab's :data:`~repro.experiments.lab.CACHE_VERSION`:
a manifest written against a different cache format is discarded (and
rewritten) rather than trusted.  Records are flushed per append, and a
truncated final line — the signature of a mid-write kill — is skipped on
load.  The manifest is advisory only: if a listed disk entry turns out
missing or corrupt, the serial path recomputes it, so resumed runs stay
bit-identical to clean ones.
"""

from __future__ import annotations

import contextlib
import json
from pathlib import Path
from typing import FrozenSet, Optional, Tuple, Union

from repro import obs

MANIFEST_SCHEMA = "repro.resilience.manifest/v1"

#: Default manifest filename inside a Lab cache directory.
MANIFEST_FILENAME = "resume_manifest.jsonl"

_log = obs.get_logger("resilience")

#: A Lab simulation-cache key: (workload, input, instructions, predictor,
#: slice_instructions).
SimKey = Tuple[str, int, int, str, int]


class ResumeManifest:
    """Append-only record of completed simulation requests."""

    def __init__(self, path: Union[str, Path], cache_version: int) -> None:
        self.path = Path(path)
        self.cache_version = cache_version
        self._completed: set = set()
        self._fh = None

    @classmethod
    def default_path(cls, cache_dir: Union[str, Path]) -> Path:
        return Path(cache_dir) / MANIFEST_FILENAME

    # -- loading -----------------------------------------------------------

    def load(self) -> int:
        """Read completed keys from disk; returns how many were loaded.

        Missing file, stale header, or a corrupt header line all reset the
        manifest (rewritten header, empty completed set).  Corrupt *record*
        lines — e.g. the torn tail of a killed append — are skipped.
        """
        self._completed.clear()
        lines = []
        with contextlib.suppress(OSError):
            lines = self.path.read_text().splitlines()
        header_ok = False
        if lines:
            try:
                header = json.loads(lines[0])
                header_ok = (
                    header.get("schema") == MANIFEST_SCHEMA
                    and header.get("cache_version") == self.cache_version
                )
            except (ValueError, AttributeError):
                header_ok = False
        if not header_ok:
            if lines:
                obs.counter("lab.resume.reset")
                _log.warning(
                    "discarding incompatible resume manifest %s "
                    "(want %s at cache version %d)",
                    self.path, MANIFEST_SCHEMA, self.cache_version,
                )
            self._rewrite_header()
            return 0
        for line in lines[1:]:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                key = tuple(record["key"])
            except (ValueError, KeyError, TypeError):
                # Torn tail from a killed writer: skip, keep the rest.
                obs.counter("lab.resume.invalid_line")
                continue
            self._completed.add(key)
        obs.counter("lab.resume.loaded", len(self._completed))
        _log.info(
            "resume manifest %s: %d completed requests", self.path, len(self._completed)
        )
        return len(self._completed)

    def _rewrite_header(self) -> None:
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "w") as f:
                f.write(
                    json.dumps(
                        {"schema": MANIFEST_SCHEMA, "cache_version": self.cache_version}
                    )
                    + "\n"
                )
        except OSError as exc:
            _log.warning("could not initialize resume manifest %s: %s", self.path, exc)

    # -- recording ---------------------------------------------------------

    def mark(self, key: SimKey, experiment: Optional[str] = None) -> None:
        """Record one completed request (idempotent, flushed per append)."""
        if key in self._completed:
            return
        self._completed.add(key)
        try:
            if self._fh is None:
                self._fh = open(self.path, "a")
            self._fh.write(
                json.dumps({"key": list(key), "experiment": experiment}) + "\n"
            )
            self._fh.flush()
        except OSError as exc:
            # Checkpointing is best-effort: a full disk costs resume
            # granularity, never the run.
            _log.warning("could not append to resume manifest %s: %s", self.path, exc)
            return
        obs.counter("lab.resume.marked")

    # -- queries -----------------------------------------------------------

    def __contains__(self, key: SimKey) -> bool:
        return key in self._completed

    def __len__(self) -> int:
        return len(self._completed)

    def completed(self) -> FrozenSet[SimKey]:
        return frozenset(self._completed)

    def close(self) -> None:
        if self._fh is not None:
            with contextlib.suppress(OSError):
                self._fh.close()
            self._fh = None
