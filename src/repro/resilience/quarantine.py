"""Quarantine for corrupt or stale on-disk cache entries.

A bad payload — torn write, foreign file, stale :data:`CACHE_VERSION` —
used to be WARNING-logged and left in place, so every subsequent run
re-read and re-warned about the same bytes.  Quarantining moves the file
into a ``quarantine/`` subdirectory of its cache root instead: the next
load is a clean miss, the evidence is preserved for inspection, and the
``lab.cache.quarantined`` counter makes the event visible in metrics.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional

from repro import obs

_log = obs.get_logger("resilience")

#: Subdirectory (under the cache root) holding quarantined entries.
QUARANTINE_DIRNAME = "quarantine"


def quarantine_file(path: Path, root: Path, reason: str = "") -> Optional[Path]:
    """Move a bad cache entry under ``root/quarantine/``; fail-soft.

    Returns the new path, or ``None`` when the move itself failed (the
    entry is left in place — a read-only cache directory must not break
    the run).  Same-named earlier quarantined files are overwritten: the
    latest corrupt payload is the interesting one.
    """
    qdir = root / QUARANTINE_DIRNAME
    try:
        qdir.mkdir(parents=True, exist_ok=True)
        dest = qdir / path.name
        os.replace(path, dest)
    except OSError as exc:
        _log.warning("could not quarantine %s: %s", path, exc)
        return None
    obs.counter("lab.cache.quarantined")
    _log.warning(
        "quarantined bad cache entry %s -> %s%s",
        path, dest, f" ({reason})" if reason else "",
    )
    return dest
