"""``repro.service``: prediction-as-a-service over one long-lived Lab.

The batch engine built by the earlier layers (prefetch planners, batched
TAGE-SC-L replay, the content-addressed trace store) answers exactly the
queries downstream H2P studies want to issue repeatedly — ``simulate``,
``h2p`` screens, Table I cells, ``staticcheck`` reports — but only as
one-shot processes that pay trace generation and kernel planning on every
invocation.  This package wraps a single :class:`~repro.experiments.lab.
Lab` in an asyncio JSON-over-socket daemon that keeps traces, kernel
plans, and the trace store warm across requests and serves many
concurrent clients:

* **request batching** — compatible ``simulate`` requests arriving within
  one dispatch window coalesce into a single
  :meth:`~repro.experiments.lab.Lab.simulate_batch` call, so a burst of
  TAGE-SC-L preset queries for one trace replays it once (the same
  machinery behind the fig. 7 sweep planners);
* **single-flight dedupe** — an identical request already in flight is
  joined, not recomputed (``service.singleflight``), on top of the Lab's
  own per-key single-flight;
* **admission control** — a bounded dispatch queue; requests beyond it
  are shed with a ``503``-style error (``service.shed``) instead of
  growing latency without bound;
* **graceful drain** — SIGTERM/SIGINT stops accepting work, finishes
  what is in flight, and closes the Lab (worker pool included).

Run the daemon with ``python -m repro.service`` and the matching load
harness with ``python -m repro.service.loadtest`` (which emits a
schema-versioned ``BENCH_service.json`` through the ``repro.bench``
machinery).  Protocol and ops knobs: ``docs/service.md``.
"""

from __future__ import annotations

import hashlib

from repro.pipeline.simulator import SimulationResult

#: Protocol identifier echoed by ``ping`` (bump on breaking changes).
PROTOCOL_VERSION = "repro.service/v1"

#: Error codes (HTTP-flavored so clients can pattern-match familiarly).
BAD_REQUEST = 400
NOT_FOUND = 404
INTERNAL_ERROR = 500
SHED = 503


class ServiceError(Exception):
    """A request-level failure, carried as ``{"code", "message"}`` on the
    wire.  Raised by :class:`~repro.service.client.ServiceClient` when the
    daemon answers ``ok: false``, and raised inside the daemon's handlers
    to produce exactly that answer."""

    def __init__(self, code: int, message: str) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message


def simulation_digest(result: SimulationResult) -> str:
    """Canonical digest of one simulation's complete scored statistics.

    Covers the instruction count, every per-branch (ip, executions,
    mispredictions) triple in insertion order, and the same for every
    slice — i.e. everything the render paths consume.  Two results are
    bit-identical iff their digests match, which is how the service's
    concurrency tests compare daemon responses against fresh serial
    :class:`~repro.experiments.lab.Lab` runs without shipping the full
    stats over the wire.
    """
    h = hashlib.sha256()
    h.update(f"{result.predictor_name}\x1f{result.instr_count}".encode())
    for ip, counts in result.stats.items():
        h.update(f";{ip}:{counts.executions}:{counts.mispredictions}".encode())
    for slice_stats in result.slice_stats or ():
        h.update(b"|")
        for ip, counts in slice_stats.items():
            h.update(f";{ip}:{counts.executions}:{counts.mispredictions}".encode())
    return h.hexdigest()


__all__ = [
    "BAD_REQUEST",
    "INTERNAL_ERROR",
    "NOT_FOUND",
    "PROTOCOL_VERSION",
    "SHED",
    "ServiceError",
    "simulation_digest",
]
