"""``python -m repro.service``: run the Lab daemon.

Prints one parseable line once the socket is bound::

    repro.service listening on 127.0.0.1:43817

(harnesses spawn the daemon with ``--port 0`` and scrape the bound port
from that line).  SIGTERM/SIGINT drain gracefully: in-flight requests
finish, responses flush, the Lab's worker pool shuts down, then the
process exits 0.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import List, Optional

from repro import obs
from repro.service.daemon import LabService, ServiceConfig


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="JSON-over-socket daemon around one long-lived Lab.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0, help="0 binds an ephemeral port (default)"
    )
    parser.add_argument(
        "--jobs", type=int, default=None, help="Lab worker processes (default REPRO_JOBS)"
    )
    parser.add_argument(
        "--cache-dir", default=None, help="Lab disk cache (default REPRO_CACHE_DIR)"
    )
    parser.add_argument(
        "--queue", type=int, default=None,
        help="admission bound before 503 shedding (default REPRO_SERVICE_QUEUE)",
    )
    parser.add_argument(
        "--window", type=float, default=None,
        help="batch dispatch window, seconds (default REPRO_SERVICE_WINDOW)",
    )
    parser.add_argument(
        "--threads", type=int, default=None,
        help="compute thread-pool width (default REPRO_SERVICE_THREADS)",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="enable the obs registry so the metrics method reports counters",
    )
    return parser


async def _serve(config: ServiceConfig) -> None:
    service = LabService(config)
    await service.start()
    host, port = service.address
    print(f"repro.service listening on {host}:{port}", flush=True)
    await service.wait_closed()


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.metrics:
        obs.enable()
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
    )
    if args.queue is not None:
        config.queue_limit = args.queue
    if args.window is not None:
        config.batch_window = args.window
    if args.threads is not None:
        config.threads = args.threads
    asyncio.run(_serve(config))
    return 0


if __name__ == "__main__":
    sys.exit(main())
