"""Blocking client for the Lab daemon.

Synchronous on purpose: callers are test threads, the load harness, and
small scripts — none of which want an event loop.  One client per thread;
instances are not thread-safe (each holds one socket and one read
buffer).  Requests may be pipelined with :meth:`ServiceClient.submit` /
:meth:`ServiceClient.result`; :meth:`ServiceClient.call` is the
submit-and-wait convenience.
"""

from __future__ import annotations

import itertools
import json
import socket
from typing import Any, Dict, Optional, Tuple

from repro.service import INTERNAL_ERROR, ServiceError
from repro.service.protocol import dump_line


class ServiceClient:
    def __init__(
        self, host: str, port: int, timeout: float = 120.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._rfile = self._sock.makefile("rb")
        self._ids = itertools.count(1)
        #: responses read from the socket but not yet claimed by result().
        self._responses: Dict[Any, Dict[str, Any]] = {}

    @classmethod
    def connect(cls, address: Tuple[str, int], timeout: float = 120.0) -> "ServiceClient":
        return cls(address[0], address[1], timeout=timeout)

    def submit(self, method: str, params: Optional[Dict[str, Any]] = None) -> int:
        """Send one request without waiting; returns its id (pipelining)."""
        rid = next(self._ids)
        self._sock.sendall(
            dump_line({"id": rid, "method": method, "params": params or {}})
        )
        return rid

    def result(self, rid: int) -> Any:
        """Wait for the response to ``rid``; raises ServiceError on ok=false."""
        while rid not in self._responses:
            line = self._rfile.readline()
            if not line:
                raise ConnectionError("server closed the connection")
            message = json.loads(line)
            self._responses[message.get("id")] = message
        message = self._responses.pop(rid)
        if message.get("ok"):
            return message.get("result")
        error = message.get("error") or {}
        raise ServiceError(
            error.get("code", INTERNAL_ERROR), error.get("message", "unknown error")
        )

    def call(self, method: str, params: Optional[Dict[str, Any]] = None) -> Any:
        return self.result(self.submit(method, params))

    def close(self) -> None:
        try:
            self._rfile.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = ["ServiceClient"]
