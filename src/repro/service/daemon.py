"""The Lab daemon: asyncio JSON-over-socket server around one warm Lab.

Wire protocol (newline-delimited JSON over TCP; see ``docs/service.md``):

    -> {"id": 7, "method": "simulate", "params": {"workload": "game", ...}}
    <- {"id": 7, "ok": true, "result": {...}}
    <- {"id": 8, "ok": false, "error": {"code": 503, "message": "..."}}

Requests on one connection may be pipelined; responses carry the request
``id`` and may arrive out of order.  The daemon owns exactly one
:class:`~repro.experiments.lab.Lab`, so every client shares its memory
caches, trace store, kernel-plan memo, and worker pool.

Concurrency model — a single dispatcher task pulls admitted requests off
a bounded queue, coalesces one *dispatch window* worth of them, groups
``simulate`` requests that share a trace into
:meth:`~repro.experiments.lab.Lab.simulate_batch` calls, and runs the
groups on a small thread pool.  While a batch computes, new requests
accumulate in the queue, so bursts batch naturally even with a zero
window.  Identical requests already in flight are joined
(``service.singleflight``) rather than re-enqueued; requests beyond the
queue bound are shed with a 503 (``service.shed``).  SIGTERM/SIGINT (or
the ``shutdown`` method) drains: stop accepting, finish the queue, flush
responses, close the Lab.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import os
import signal
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.analysis.h2p import screen_workload
from repro.config import SLICE_INSTRUCTIONS
from repro.experiments.lab import PREDICTOR_FACTORIES, Lab, workload_spec
from repro.service import (
    BAD_REQUEST,
    INTERNAL_ERROR,
    NOT_FOUND,
    PROTOCOL_VERSION,
    SHED,
    ServiceError,
    simulation_digest,
)
from repro.service.protocol import dump_line, parse_line


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    try:
        return int(raw) if raw else default
    except ValueError:
        return default


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "").strip()
    try:
        return float(raw) if raw else default
    except ValueError:
        return default


@dataclass
class ServiceConfig:
    """Daemon knobs; every default is overridable via ``REPRO_SERVICE_*``."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port is in Lab Service.address
    jobs: Optional[int] = None  # Lab worker processes (None = REPRO_JOBS)
    cache_dir: Optional[str] = None  # Lab disk cache (None = REPRO_CACHE_DIR)
    #: Admission bound: requests beyond this many queued are shed (503).
    queue_limit: int = field(
        default_factory=lambda: _env_int("REPRO_SERVICE_QUEUE", 64)
    )
    #: Seconds the dispatcher lingers collecting a batch after the first
    #: request.  Natural batching (requests piling up while a batch
    #: computes) usually dominates; the window just smooths cold bursts.
    batch_window: float = field(
        default_factory=lambda: _env_float("REPRO_SERVICE_WINDOW", 0.002)
    )
    #: Hard cap on requests dispatched per cycle.
    max_batch: int = field(
        default_factory=lambda: _env_int("REPRO_SERVICE_BATCH", 64)
    )
    #: Compute thread-pool width.  Threads matter for overlap (the Lab's
    #: per-key single-flight lets distinct keys progress independently),
    #: not parallel speedup — the work is GIL-bound.
    threads: int = field(
        default_factory=lambda: _env_int("REPRO_SERVICE_THREADS", 4)
    )


#: Dispatcher-queue sentinel: drain is complete once the dispatcher sees it.
_STOP = object()


@dataclass
class _Work:
    """One admitted request: resolved params plus the future fans-in wait on."""

    key: Tuple
    method: str
    params: Dict[str, Any]
    future: "asyncio.Future[Any]"


class LabService:
    """One Lab served over a socket.  See the module docstring."""

    def __init__(
        self, config: Optional[ServiceConfig] = None, lab: Optional[Lab] = None
    ) -> None:
        self.config = config or ServiceConfig()
        self.lab = lab or Lab(jobs=self.config.jobs, cache_dir=self.config.cache_dir)
        self._owns_lab = lab is None
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, self.config.threads),
            thread_name_prefix="repro-service",
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._queue: "asyncio.Queue[Any]" = asyncio.Queue(
            maxsize=max(1, self.config.queue_limit)
        )
        #: request key -> future; the single-flight fan-in table.
        self._inflight: Dict[Tuple, "asyncio.Future[Any]"] = {}
        self._tasks: "set[asyncio.Task]" = set()
        self._dispatcher: Optional[asyncio.Task] = None
        self._draining = False
        self._stopped = asyncio.Event()
        self.address: Tuple[str, int] = (self.config.host, self.config.port)

    # ------------------------------------------------------------------
    # lifecycle

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        sock = self._server.sockets[0]
        self.address = sock.getsockname()[:2]
        self._dispatcher = self._loop.create_task(self._dispatch_loop())
        for sig in (signal.SIGTERM, signal.SIGINT):
            # Unavailable off the main thread (tests run the daemon in a
            # background thread) — the shutdown method still drains there.
            with contextlib.suppress(NotImplementedError, RuntimeError, ValueError):
                self._loop.add_signal_handler(sig, self._begin_drain)

    async def wait_closed(self) -> None:
        """Block until a drain (signal or ``shutdown`` method) completes."""
        await self._stopped.wait()

    def request_shutdown(self) -> None:
        """Thread-safe drain trigger (used by in-process harnesses)."""
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._begin_drain)

    def _begin_drain(self) -> None:
        if self._draining:
            return
        self._draining = True
        obs.counter("service.drain")
        task = asyncio.get_running_loop().create_task(self._drain())
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _drain(self) -> None:
        # 1. Stop accepting connections; queued work keeps its place.
        assert self._server is not None
        self._server.close()
        await self._server.wait_closed()
        # 2. Let the dispatcher finish everything already admitted, then
        #    exit when it reaches the sentinel at the tail of the queue.
        await self._queue.put(_STOP)
        if self._dispatcher is not None:
            await self._dispatcher
        # 3. Flush outstanding response writes.
        pending = [t for t in self._tasks if t is not asyncio.current_task()]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        # 4. Release compute resources (worker pool included).
        self._executor.shutdown(wait=True)
        if self._owns_lab:
            self.lab.close()
        self._stopped.set()

    # ------------------------------------------------------------------
    # connection handling

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                await self._handle_line(line, writer, write_lock)
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass  # client went away mid-read; nothing to answer
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _handle_line(
        self, line: bytes, writer: asyncio.StreamWriter, write_lock: asyncio.Lock
    ) -> None:
        rid: Any = None
        try:
            rid, method, params = parse_line(line)
            obs.counter("service.request")
            obs.counter(f"service.request.{method}")
            if method == "ping":
                await self._send_ok(writer, write_lock, rid, self._ping())
                return
            if method == "metrics":
                await self._send_ok(writer, write_lock, rid, self._metrics())
                return
            if method == "shutdown":
                await self._send_ok(writer, write_lock, rid, {"draining": True})
                self._begin_drain()
                return
            if method not in _NORMALIZERS:
                raise ServiceError(NOT_FOUND, f"unknown method {method!r}")
            normalized = _NORMALIZERS[method](self, params)
        except ServiceError as exc:
            await self._send_error(writer, write_lock, rid, exc)
            return

        key = (method,) + tuple(sorted(normalized.items()))
        future = self._inflight.get(key)
        if future is None:
            if self._draining:
                obs.counter("service.shed")
                await self._send_error(
                    writer, write_lock, rid, ServiceError(SHED, "draining")
                )
                return
            future = asyncio.get_running_loop().create_future()
            work = _Work(key=key, method=method, params=normalized, future=future)
            try:
                self._queue.put_nowait(work)
            except asyncio.QueueFull:
                obs.counter("service.shed")
                await self._send_error(
                    writer,
                    write_lock,
                    rid,
                    ServiceError(SHED, "queue full; retry later"),
                )
                return
            self._inflight[key] = future
        else:
            obs.counter("service.singleflight")
        task = asyncio.get_running_loop().create_task(
            self._respond_when_done(future, writer, write_lock, rid)
        )
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _respond_when_done(
        self,
        future: "asyncio.Future[Any]",
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        rid: Any,
    ) -> None:
        try:
            result = await asyncio.shield(future)
        except ServiceError as exc:
            await self._send_error(writer, write_lock, rid, exc)
            return
        except Exception as exc:  # pragma: no cover - defensive
            await self._send_error(
                writer, write_lock, rid, ServiceError(INTERNAL_ERROR, str(exc))
            )
            return
        await self._send_ok(writer, write_lock, rid, result)

    async def _send_ok(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        rid: Any,
        result: Any,
    ) -> None:
        await self._send(writer, write_lock, {"id": rid, "ok": True, "result": result})

    async def _send_error(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        rid: Any,
        exc: ServiceError,
    ) -> None:
        obs.counter("service.error")
        await self._send(
            writer,
            write_lock,
            {
                "id": rid,
                "ok": False,
                "error": {"code": exc.code, "message": exc.message},
            },
        )

    async def _send(
        self, writer: asyncio.StreamWriter, write_lock: asyncio.Lock, payload: Dict
    ) -> None:
        # A vanished client is not an error; the computed result stays cached.
        with contextlib.suppress(ConnectionResetError, BrokenPipeError):
            async with write_lock:
                writer.write(dump_line(payload))
                await writer.drain()

    # ------------------------------------------------------------------
    # dispatcher

    async def _dispatch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        stopping = False
        while not stopping:
            first = await self._queue.get()
            if first is _STOP:
                break
            batch: List[_Work] = [first]
            deadline = loop.time() + max(0.0, self.config.batch_window)
            while len(batch) < self.config.max_batch:
                remaining = deadline - loop.time()
                try:
                    if remaining <= 0:
                        item = self._queue.get_nowait()
                    else:
                        item = await asyncio.wait_for(self._queue.get(), remaining)
                except (asyncio.QueueEmpty, asyncio.TimeoutError):
                    break
                if item is _STOP:
                    stopping = True
                    break
                batch.append(item)
            await self._run_batch(batch)

    async def _run_batch(self, batch: List[_Work]) -> None:
        """Group one dispatch cycle and run the groups on the thread pool."""
        obs.counter("service.batch.cycles")
        sim_groups: Dict[Tuple, List[_Work]] = {}
        singles: List[_Work] = []
        for work in batch:
            if work.method == "simulate":
                p = work.params
                group_key = (
                    p["workload"],
                    p["input"],
                    p["instructions"],
                    p["slice_instructions"],
                )
                sim_groups.setdefault(group_key, []).append(work)
            else:
                singles.append(work)

        runs: List = []
        for group in sim_groups.values():
            if len(group) > 1:
                # Requests beyond the first ride the shared trace replay.
                obs.counter("service.batch.coalesced", len(group) - 1)
                runs.append(self._run_group(group))
            else:
                singles.append(group[0])
        runs.extend(self._run_one(work) for work in singles)
        if runs:
            await asyncio.gather(*runs)

    async def _run_group(self, group: List[_Work]) -> None:
        loop = asyncio.get_running_loop()
        p = group[0].params
        predictors = [w.params["predictor"] for w in group]
        try:
            results = await loop.run_in_executor(
                self._executor,
                self._compute_simulate_batch,
                p["workload"],
                p["input"],
                predictors,
                p["instructions"],
                p["slice_instructions"],
            )
        except Exception as exc:
            error = _as_service_error(exc)
            for work in group:
                self._finish(work, error=error)
            return
        for work, result in zip(group, results):
            self._finish(work, result=result)

    async def _run_one(self, work: _Work) -> None:
        loop = asyncio.get_running_loop()
        try:
            result = await loop.run_in_executor(
                self._executor, _COMPUTE[work.method], self, work.params
            )
        except Exception as exc:
            self._finish(work, error=_as_service_error(exc))
            return
        self._finish(work, result=result)

    def _finish(
        self,
        work: _Work,
        result: Any = None,
        error: Optional[ServiceError] = None,
    ) -> None:
        self._inflight.pop(work.key, None)
        if work.future.done():  # pragma: no cover - defensive
            return
        if error is not None:
            work.future.set_exception(error)
        else:
            work.future.set_result(result)

    # ------------------------------------------------------------------
    # inline methods

    def _ping(self) -> Dict[str, Any]:
        return {
            "protocol": PROTOCOL_VERSION,
            "tier": self.lab.tier.name,
            "pid": os.getpid(),
            "draining": self._draining,
        }

    def _metrics(self) -> Dict[str, Any]:
        reg = obs.registry()
        return {
            "enabled": obs.is_enabled(),
            "counters": reg.counters_dict(),
            "gauges": reg.gauges_dict(),
        }

    # ------------------------------------------------------------------
    # compute methods (run on the thread pool)

    def _compute_simulate(self, params: Dict[str, Any]) -> Dict[str, Any]:
        with obs.timer("service.compute.simulate"):
            result = self.lab.simulate(
                params["workload"],
                params["input"],
                params["predictor"],
                instructions=params["instructions"],
                slice_instructions=params["slice_instructions"],
            )
        return _render_simulation(params, result)

    def _compute_simulate_batch(
        self,
        workload: str,
        input_index: int,
        predictors: Sequence[str],
        instructions: int,
        slice_instructions: int,
    ) -> List[Dict[str, Any]]:
        with obs.timer("service.compute.simulate"):
            results = self.lab.simulate_batch(
                workload,
                input_index,
                predictors,
                instructions=instructions,
                slice_instructions=slice_instructions,
            )
        return [
            _render_simulation(
                {
                    "workload": workload,
                    "input": input_index,
                    "predictor": predictor,
                    "instructions": instructions,
                    "slice_instructions": slice_instructions,
                },
                result,
            )
            for predictor, result in zip(predictors, results)
        ]

    def _compute_h2p(self, params: Dict[str, Any]) -> Dict[str, Any]:
        with obs.timer("service.compute.h2p"):
            result = self.lab.simulate(
                params["workload"],
                params["input"],
                params["predictor"],
                instructions=params["instructions"],
                slice_instructions=params["slice_instructions"],
            )
            spec = workload_spec(params["workload"])
            report = screen_workload(
                params["workload"],
                spec.input_name(params["input"]),
                result.slice_stats,
            )
        return {
            "workload": params["workload"],
            "input": params["input"],
            "predictor": params["predictor"],
            "slices": len(report.slices),
            "h2p_ips": sorted(report.union_h2p_ips),
            "h2ps": len(report.union_h2p_ips),
            "mean_h2ps_per_slice": report.mean_h2ps_per_slice,
            "mean_misprediction_share": report.mean_misprediction_share,
        }

    def _compute_table1_cell(self, params: Dict[str, Any]) -> Dict[str, Any]:
        from repro.experiments.table1 import compute_table1_row

        with obs.timer("service.compute.table1_cell"):
            row = compute_table1_row(
                self.lab, params["benchmark"], with_phases=params["with_phases"]
            )
        return dataclasses.asdict(row)

    def _compute_staticcheck(self, params: Dict[str, Any]) -> Dict[str, Any]:
        from repro.staticcheck.engine import lint_workload
        from repro.workloads.contracts import WORKLOAD_CONTRACTS

        with obs.timer("service.compute.staticcheck"):
            spec = workload_spec(params["workload"])
            footprint, diagnostics = lint_workload(
                spec,
                WORKLOAD_CONTRACTS.get(params["workload"]),
                predictability=params["predictability"],
            )
        rendered = [d.to_dict() for d in diagnostics]
        return {
            "workload": params["workload"],
            "footprint": footprint.as_dict() if footprint is not None else None,
            "diagnostics": rendered,
            "errors": sum(1 for d in rendered if d["severity"] == "error"),
            "warnings": sum(1 for d in rendered if d["severity"] == "warning"),
        }

    # ------------------------------------------------------------------
    # request normalization (runs on the event loop; must stay cheap)

    def _normalize_sim_like(self, params: Dict[str, Any]) -> Dict[str, Any]:
        allowed = {
            "workload", "input", "predictor", "instructions", "slice_instructions",
        }
        _reject_unknown(params, allowed)
        workload = _require_str(params, "workload")
        try:
            workload_spec(workload)
        except KeyError:
            raise ServiceError(NOT_FOUND, f"unknown workload {workload!r}") from None
        predictor = params.get("predictor", "tage-sc-l-8kb")
        if predictor not in PREDICTOR_FACTORIES:
            raise ServiceError(NOT_FOUND, f"unknown predictor {predictor!r}")
        input_index = _require_int(params, "input", default=0, minimum=0)
        # Defaults resolve *here* so an explicit request for the tier's
        # default length dedupes against the implicit one.
        instructions = _require_int(
            params,
            "instructions",
            default=self.lab.instructions_for(workload),
            minimum=1,
        )
        slice_instructions = _require_int(
            params, "slice_instructions", default=SLICE_INSTRUCTIONS, minimum=1
        )
        return {
            "workload": workload,
            "input": input_index,
            "predictor": predictor,
            "instructions": instructions,
            "slice_instructions": slice_instructions,
        }

    def _normalize_table1_cell(self, params: Dict[str, Any]) -> Dict[str, Any]:
        _reject_unknown(params, {"benchmark", "with_phases"})
        benchmark = _require_str(params, "benchmark")
        try:
            workload_spec(benchmark)
        except KeyError:
            raise ServiceError(NOT_FOUND, f"unknown benchmark {benchmark!r}") from None
        return {
            "benchmark": benchmark,
            "with_phases": _require_bool(params, "with_phases", default=True),
        }

    def _normalize_staticcheck(self, params: Dict[str, Any]) -> Dict[str, Any]:
        _reject_unknown(params, {"workload", "predictability"})
        workload = _require_str(params, "workload")
        try:
            workload_spec(workload)
        except KeyError:
            raise ServiceError(NOT_FOUND, f"unknown workload {workload!r}") from None
        return {
            "workload": workload,
            "predictability": _require_bool(params, "predictability", default=False),
        }


def _render_simulation(params: Dict[str, Any], result) -> Dict[str, Any]:
    return {
        "workload": params["workload"],
        "input": params["input"],
        "predictor": result.predictor_name,
        "instructions": result.instr_count,
        "accuracy": result.accuracy,
        "mpki": result.mpki,
        "static_branches": len(result.stats),
        "slices": len(result.slice_stats),
        "digest": simulation_digest(result),
    }


def _as_service_error(exc: Exception) -> ServiceError:
    if isinstance(exc, ServiceError):
        return exc
    return ServiceError(INTERNAL_ERROR, f"{type(exc).__name__}: {exc}")


def _reject_unknown(params: Dict[str, Any], allowed: "set[str]") -> None:
    unknown = set(params) - allowed
    if unknown:
        raise ServiceError(BAD_REQUEST, f"unknown params {sorted(unknown)}")


def _require_str(params: Dict[str, Any], name: str) -> str:
    value = params.get(name)
    if not isinstance(value, str) or not value:
        raise ServiceError(BAD_REQUEST, f"param {name!r} must be a non-empty string")
    return value


def _require_int(
    params: Dict[str, Any], name: str, default: int, minimum: int
) -> int:
    value = params.get(name, default)
    if value is None:
        value = default
    if not isinstance(value, int) or isinstance(value, bool) or value < minimum:
        raise ServiceError(
            BAD_REQUEST, f"param {name!r} must be an integer >= {minimum}"
        )
    return value


def _require_bool(params: Dict[str, Any], name: str, default: bool) -> bool:
    value = params.get(name, default)
    if not isinstance(value, bool):
        raise ServiceError(BAD_REQUEST, f"param {name!r} must be a boolean")
    return value


#: method -> normalizer (event loop) and compute (thread pool) tables.
_NORMALIZERS = {
    "simulate": LabService._normalize_sim_like,
    "h2p": LabService._normalize_sim_like,
    "table1_cell": LabService._normalize_table1_cell,
    "staticcheck": LabService._normalize_staticcheck,
}

_COMPUTE = {
    "simulate": LabService._compute_simulate,
    "h2p": LabService._compute_h2p,
    "table1_cell": LabService._compute_table1_cell,
    "staticcheck": LabService._compute_staticcheck,
}


class ServiceThread:
    """Run a :class:`LabService` on a background thread with its own loop.

    In-process harness for tests and the load harness's default mode: the
    daemon shares the process's obs registry, so assertions can read
    ``service.*`` counters directly.  ``stop()`` drains exactly like
    SIGTERM would.
    """

    def __init__(
        self, config: Optional[ServiceConfig] = None, lab: Optional[Lab] = None
    ) -> None:
        self._config = config or ServiceConfig()
        self._lab = lab
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self.service: Optional[LabService] = None
        self.address: Tuple[str, int] = ("", 0)

    def start(self) -> "ServiceThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-service-loop", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._startup_error is not None:
            raise RuntimeError("service failed to start") from self._startup_error
        if not self._ready.is_set():
            raise RuntimeError("service did not start within 30s")
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # pragma: no cover - startup failures
            self._startup_error = exc
            self._ready.set()

    async def _main(self) -> None:
        self.service = LabService(self._config, lab=self._lab)
        await self.service.start()
        self.address = self.service.address
        self._ready.set()
        await self.service.wait_closed()

    def stop(self, timeout: float = 30.0) -> None:
        if self.service is not None:
            self.service.request_shutdown()
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
