"""``python -m repro.service.loadtest``: the daemon's load harness.

Spawns a daemon (subprocess by default, ``--connect`` to target a running
one), warms it with one pass of the request mix, then drives closed-loop
client threads at each ``--clients`` level and reports p50/p99 latency
and requests/sec.  Results go to a schema-versioned ``repro.bench/v1``
document (default ``BENCH_service.json``) and compare against a baseline
with the same direction-aware machinery ``repro.bench`` uses.

The headline metric is ``service.speedup.c<hi>_over_c<lo>`` — warm-store
throughput at the highest client level over the lowest.  It is a ratio,
so it transfers across machines; absolute rps and latencies are recorded
as ``info`` metrics (never compared).  ``--check`` additionally gates the
speedup floor and a generous p99 budget for CI.
"""

from __future__ import annotations

import argparse
import os
import re
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.bench import (
    BENCH_SCHEMA_VERSION,
    REPO_ROOT,
    compare_to_baseline,
    load_bench_json,
    validate_bench_doc,
    write_bench_json,
)
from repro.service.client import ServiceClient

DEFAULT_OUT = REPO_ROOT / "BENCH_service.json"
DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "baseline_service.json"

_LISTEN_RE = re.compile(r"repro\.service listening on ([\w\.\-]+):(\d+)")


def default_mix(instructions: int, slice_instructions: int) -> List[Tuple[str, Dict]]:
    """The request mix: four predictors over one trace, plus an h2p screen.

    All five land in the Lab's memory caches after the warmup pass, so
    the measured regime is the one the daemon optimizes for — many
    clients hitting a warm store.
    """
    base = {
        "workload": "game",
        "input": 0,
        "instructions": instructions,
        "slice_instructions": slice_instructions,
    }
    mix: List[Tuple[str, Dict]] = [
        ("simulate", dict(base, predictor=p))
        for p in ("bimodal", "gshare", "two-level-local", "tage-sc-l-8kb")
    ]
    mix.append(("h2p", dict(base, predictor="tage-sc-l-8kb")))
    return mix


@dataclass
class LoadResult:
    clients: int
    requests: int
    seconds: float
    latencies_ms: List[float]
    errors: int

    @property
    def rps(self) -> float:
        return self.requests / self.seconds if self.seconds > 0 else 0.0

    def percentile_ms(self, q: float) -> float:
        if not self.latencies_ms:
            return 0.0
        data = sorted(self.latencies_ms)
        index = min(len(data) - 1, int(round(q * (len(data) - 1))))
        return data[index]


def run_load(
    address: Tuple[str, int],
    clients: int,
    requests_per_client: int,
    mix: Sequence[Tuple[str, Dict]],
    timeout: float = 120.0,
) -> LoadResult:
    """Closed-loop load: each client thread waits for every response."""
    barrier = threading.Barrier(clients + 1)
    latencies: List[List[float]] = [[] for _ in range(clients)]
    errors = [0] * clients

    def client_loop(slot: int) -> None:
        with ServiceClient(address[0], address[1], timeout=timeout) as client:
            barrier.wait()
            for i in range(requests_per_client):
                method, params = mix[(slot + i) % len(mix)]
                t0 = time.perf_counter()
                try:
                    client.call(method, params)
                except Exception:
                    errors[slot] += 1
                latencies[slot].append((time.perf_counter() - t0) * 1000.0)

    threads = [
        threading.Thread(target=client_loop, args=(slot,), daemon=True)
        for slot in range(clients)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    t0 = time.perf_counter()
    for t in threads:
        t.join()
    seconds = time.perf_counter() - t0
    return LoadResult(
        clients=clients,
        requests=clients * requests_per_client,
        seconds=seconds,
        latencies_ms=[ms for per_client in latencies for ms in per_client],
        errors=sum(errors),
    )


def spawn_daemon(
    extra_args: Sequence[str] = (), timeout: float = 60.0
) -> Tuple[subprocess.Popen, Tuple[str, int]]:
    """Start ``python -m repro.service --port 0`` and scrape its address."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.service", "--port", "0", *extra_args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    deadline = time.monotonic() + timeout
    assert proc.stdout is not None
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        match = _LISTEN_RE.search(line)
        if match:
            return proc, (match.group(1), int(match.group(2)))
    proc.kill()
    raise RuntimeError("daemon did not announce a listening address")


def stop_daemon(proc: subprocess.Popen, timeout: float = 60.0) -> int:
    """SIGTERM the daemon and wait for the graceful-drain exit."""
    proc.send_signal(signal.SIGTERM)
    try:
        return proc.wait(timeout=timeout)
    except subprocess.TimeoutExpired:
        proc.kill()
        return proc.wait()


def build_doc(
    results: Sequence[LoadResult],
    mix_size: int,
    requests_per_client: int,
    instructions: int,
) -> Dict[str, Any]:
    from repro.config import active_tier
    from repro.obs.runmeta import run_metadata

    metrics: Dict[str, Dict[str, Any]] = {}

    def metric(name: str, value: float, unit: str, direction: str) -> None:
        metrics[name] = {
            "value": float(value), "unit": unit, "direction": direction,
        }

    for r in results:
        tag = f"c{r.clients}"
        # Absolute throughput/latency are machine-bound: record, never compare.
        metric(f"service.rps.{tag}", r.rps, "req/s", "info")
        metric(f"service.p50_ms.{tag}", r.percentile_ms(0.50), "ms", "info")
        metric(f"service.p99_ms.{tag}", r.percentile_ms(0.99), "ms", "info")
        metric(f"service.errors.{tag}", r.errors, "count", "info")
    if len(results) >= 2:
        low, high = results[0], results[-1]
        speedup = high.rps / low.rps if low.rps > 0 else 0.0
        # The ratio is the transferable claim (batching + pipelining win).
        metric(
            f"service.speedup.c{high.clients}_over_c{low.clients}",
            speedup,
            "x",
            "higher",
        )
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "meta": run_metadata(fresh=True),
        "config": {
            "tier": active_tier().name,
            "clients": [r.clients for r in results],
            "requests_per_client": requests_per_client,
            "mix_size": mix_size,
            "instructions": instructions,
        },
        "scenario_seconds": {
            f"c{r.clients}": round(r.seconds, 3) for r in results
        },
        "metrics": metrics,
    }


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.loadtest",
        description="Drive the Lab daemon with concurrent clients.",
    )
    parser.add_argument(
        "--clients", default="1,8",
        help="comma-separated concurrency levels (default 1,8)",
    )
    parser.add_argument(
        "--requests", type=int, default=50, help="requests per client (default 50)"
    )
    parser.add_argument(
        "--instructions", type=int, default=20_000,
        help="trace length for the request mix (default 20000)",
    )
    parser.add_argument(
        "--slice-instructions", type=int, default=10_000,
        help="slice length for the request mix (default 10000)",
    )
    parser.add_argument(
        "--connect", default=None, metavar="HOST:PORT",
        help="use a running daemon instead of spawning one",
    )
    parser.add_argument(
        "--daemon-arg", action="append", default=[], metavar="ARG",
        help="extra argument for the spawned daemon (repeatable)",
    )
    parser.add_argument("--out", default=str(DEFAULT_OUT))
    parser.add_argument("--baseline", default=str(DEFAULT_BASELINE))
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero on baseline regressions or gate failures",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=2.0,
        help="--check floor for the high/low throughput ratio (default 2.0)",
    )
    parser.add_argument(
        "--p99-budget-ms", type=float, default=2000.0,
        help="--check ceiling for warm p99 latency at every level (default 2000)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    levels = sorted({int(c) for c in args.clients.split(",") if c.strip()})
    if not levels:
        print("no client levels given", file=sys.stderr)
        return 2
    mix = default_mix(args.instructions, args.slice_instructions)

    proc: Optional[subprocess.Popen] = None
    if args.connect:
        host, _, port = args.connect.rpartition(":")
        address: Tuple[str, int] = (host or "127.0.0.1", int(port))
    else:
        proc, address = spawn_daemon(args.daemon_arg)
        print(f"[loadtest] spawned daemon pid={proc.pid} at {address[0]}:{address[1]}")

    try:
        # Warmup: one serial pass populates the Lab's caches (and the
        # trace store, when the daemon has one) so every timed level
        # measures the same warm regime.
        with ServiceClient(address[0], address[1]) as client:
            for method, params in mix:
                client.call(method, params)
        print(f"[loadtest] warmed {len(mix)} request(s)")

        results: List[LoadResult] = []
        for level in levels:
            result = run_load(address, level, args.requests, mix)
            results.append(result)
            print(
                f"[loadtest] clients={level:2d} requests={result.requests} "
                f"rps={result.rps:8.1f} p50={result.percentile_ms(0.5):6.2f}ms "
                f"p99={result.percentile_ms(0.99):6.2f}ms errors={result.errors}"
            )
    finally:
        if proc is not None:
            code = stop_daemon(proc)
            print(f"[loadtest] daemon drained, exit code {code}")

    doc = build_doc(results, len(mix), args.requests, args.instructions)
    validate_bench_doc(doc)
    out = write_bench_json(doc, args.out)
    print(f"[loadtest] wrote {out}")

    failures: List[str] = []
    baseline_path = Path(args.baseline)
    if baseline_path.exists():
        regressions = compare_to_baseline(doc, load_bench_json(baseline_path))
        for r in regressions:
            line = (
                f"{r['metric']}: {r['current']:.3f} vs baseline "
                f"{r['baseline']:.3f} ({r['direction']} is better)"
            )
            print(f"[loadtest] REGRESSION {line}")
            failures.append(line)
        if not regressions:
            print(f"[loadtest] baseline comparison clean ({baseline_path})")
    else:
        print(f"[loadtest] no baseline at {baseline_path}; skipping comparison")

    if args.check:
        if any(r.errors for r in results):
            failures.append("request errors during load")
        speedups = [
            m["value"] for name, m in doc["metrics"].items()
            if name.startswith("service.speedup.")
        ]
        if speedups and speedups[0] < args.min_speedup:
            failures.append(
                f"speedup {speedups[0]:.2f}x under the {args.min_speedup:.2f}x floor"
            )
        for r in results:
            p99 = r.percentile_ms(0.99)
            if p99 > args.p99_budget_ms:
                failures.append(
                    f"p99 {p99:.1f}ms at {r.clients} client(s) over the "
                    f"{args.p99_budget_ms:.0f}ms budget"
                )
    if failures:
        for f in failures:
            print(f"[loadtest] FAIL {f}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
