"""Wire framing shared by the daemon and the client.

One JSON object per line, UTF-8, ``\\n``-terminated.  Requests are
``{"id", "method", "params"}``; responses are ``{"id", "ok", "result"}``
or ``{"id", "ok": false, "error": {"code", "message"}}``.  The ``id`` is
client-chosen and opaque to the server — it only has to be a JSON scalar
the client can match responses back with, so pipelined requests may be
answered out of order.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Tuple

from repro.service import BAD_REQUEST, ServiceError

#: Upper bound on one request line; anything larger is a protocol error
#: (the service's payloads are all far smaller — this bounds memory per
#: connection, it is not a tuning knob).
MAX_LINE_BYTES = 1 << 20


def parse_line(line: bytes) -> Tuple[Any, str, Dict[str, Any]]:
    """Parse one request line into ``(id, method, params)``.

    Raises :class:`~repro.service.ServiceError` (400) on malformed input;
    the request ``id`` is best-effort recovered so the error response can
    still be correlated.
    """
    if len(line) > MAX_LINE_BYTES:
        raise ServiceError(BAD_REQUEST, "request line too large")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ServiceError(BAD_REQUEST, f"invalid JSON: {exc}") from None
    if not isinstance(message, dict):
        raise ServiceError(BAD_REQUEST, "request must be a JSON object")
    rid = message.get("id")
    if rid is not None and not isinstance(rid, (str, int, float)):
        raise ServiceError(BAD_REQUEST, "id must be a JSON scalar")
    method = message.get("method")
    if not isinstance(method, str) or not method:
        raise ServiceError(BAD_REQUEST, "method must be a non-empty string")
    params = message.get("params", {})
    if params is None:
        params = {}
    if not isinstance(params, dict):
        raise ServiceError(BAD_REQUEST, "params must be an object")
    unknown = set(message) - {"id", "method", "params"}
    if unknown:
        raise ServiceError(BAD_REQUEST, f"unknown request fields {sorted(unknown)}")
    return rid, method, params


def dump_line(payload: Dict[str, Any]) -> bytes:
    """Serialize one message to its wire form (compact, newline-framed)."""
    return (json.dumps(payload, separators=(",", ":")) + "\n").encode()


__all__ = ["MAX_LINE_BYTES", "dump_line", "parse_line"]
