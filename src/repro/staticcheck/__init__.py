"""``repro.staticcheck``: static program analysis over the mini-ISA.

The paper's Table I / Table II claims rest on the *static* structure of the
synthetic workloads — a handful of data-dependent H2P branches versus
thousands of rare cold branches — yet that structure is otherwise only
validated dynamically, after paying for a full simulation.  This package
analyzes finalized :class:`repro.isa.Program` objects **without executing
them**:

* :mod:`repro.staticcheck.cfg` — interprocedural control-flow graph and
  reachability;
* :mod:`repro.staticcheck.dominators` — dominator tree, back edges, and
  natural loops;
* :mod:`repro.staticcheck.dataflow` — must-assigned registers
  (use-before-def) and may-taint (input-data / address provenance);
* :mod:`repro.staticcheck.classify` — static branch classification
  (loop-back vs. data-dependent vs. guard) and the per-program footprint;
* :mod:`repro.staticcheck.contracts` — declared footprint contracts and
  drift checking;
* :mod:`repro.staticcheck.diagnostics` — the rule registry (stable IDs
  ``SC1xx``/``SC2xx``/``SC3xx``), diagnostics, and report rendering;
* :mod:`repro.staticcheck.engine` — the passes wired together into
  program- and workload-level linting;
* ``python -m repro.staticcheck`` — the CLI (see
  :mod:`repro.staticcheck.cli` and ``docs/static-analysis.md``).
"""

from repro.staticcheck.classify import BranchClass, StaticBranchProfile, StaticFootprint
from repro.staticcheck.contracts import StaticContract, contract_from_footprint
from repro.staticcheck.diagnostics import RULES, Diagnostic, Report, Rule, Severity
from repro.staticcheck.engine import (
    ProgramAnalysis,
    analyze_program,
    lint_program,
    lint_registry,
    lint_workload,
)

__all__ = [
    "BranchClass",
    "Diagnostic",
    "ProgramAnalysis",
    "RULES",
    "Report",
    "Rule",
    "Severity",
    "StaticBranchProfile",
    "StaticContract",
    "StaticFootprint",
    "analyze_program",
    "contract_from_footprint",
    "lint_program",
    "lint_registry",
    "lint_workload",
]
