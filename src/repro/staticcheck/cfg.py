"""Interprocedural control-flow graph construction and reachability.

The mini-ISA's terminators encode most edges directly; the two policies a
client must choose live here:

* ``Call`` transfers control to the callee only — the ``ret_to`` block is
  reached through the callee's ``Ret``, not by a fall-through edge (so
  callee effects are visible to the dataflow analyses on the return path);
* ``Ret`` is resolved without a call-stack: it may return to **any**
  ``ret_to`` site of any ``Call`` in the program, plus the entry block
  (the executor's empty-stack fallback).  This over-approximates dynamic
  behaviour, which is the safe direction for both reachability (may) and
  must-assigned (intersection) analyses.

``Halt`` is terminal: the executor's restart-at-entry models a fresh
invocation, not an intra-program edge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from repro.isa.instructions import Br, Call, Jmp, Ret, Switch
from repro.isa.program import Program


@dataclass(frozen=True)
class Cfg:
    """A finalized program's control-flow graph.

    ``rpo`` is a reverse postorder over the *reachable* blocks (entry
    first), the iteration order the dataflow fixed points use.
    """

    entry: str
    succs: Dict[str, Tuple[str, ...]]
    preds: Dict[str, Tuple[str, ...]]
    reachable: FrozenSet[str]
    rpo: Tuple[str, ...]

    @property
    def rpo_index(self) -> Dict[str, int]:
        return {label: i for i, label in enumerate(self.rpo)}


def _successors(program: Program) -> Dict[str, Tuple[str, ...]]:
    ret_sites: List[str] = [
        block.terminator.ret_to
        for block in program.blocks
        if isinstance(block.terminator, Call)
    ]
    ret_targets = tuple(dict.fromkeys(ret_sites + [program.entry]))
    succs: Dict[str, Tuple[str, ...]] = {}
    for block in program.blocks:
        term = block.terminator
        if isinstance(term, Br):
            targets: Tuple[str, ...] = (term.taken, term.not_taken)
        elif isinstance(term, Jmp):
            targets = (term.target,)
        elif isinstance(term, Call):
            targets = (term.target,)
        elif isinstance(term, Switch):
            targets = tuple(dict.fromkeys(term.targets))
        elif isinstance(term, Ret):
            targets = ret_targets
        else:  # Halt
            targets = ()
        succs[block.label] = targets
    return succs


def build_cfg(program: Program) -> Cfg:
    """Build the interprocedural CFG and compute reachability + RPO."""
    succs = _successors(program)
    preds_acc: Dict[str, List[str]] = {block.label: [] for block in program.blocks}
    for label, targets in succs.items():
        for target in targets:
            preds_acc[target].append(label)

    # Iterative postorder DFS (recursion would overflow on the ~14k-block
    # LCF dispatch programs).
    postorder: List[str] = []
    visited = {program.entry}
    stack: List[Tuple[str, int]] = [(program.entry, 0)]
    while stack:
        label, child = stack[-1]
        targets = succs[label]
        if child < len(targets):
            stack[-1] = (label, child + 1)
            nxt = targets[child]
            if nxt not in visited:
                visited.add(nxt)
                stack.append((nxt, 0))
        else:
            stack.pop()
            postorder.append(label)

    reachable = frozenset(visited)
    return Cfg(
        entry=program.entry,
        succs=succs,
        preds={label: tuple(p) for label, p in preds_acc.items()},
        reachable=reachable,
        rpo=tuple(reversed(postorder)),
    )


def unreachable_blocks(program: Program, cfg: Cfg) -> List[str]:
    """Labels of blocks no path from entry reaches, in program order."""
    return [b.label for b in program.blocks if b.label not in cfg.reachable]
