"""Static branch classification and the per-program footprint.

Every conditional branch is placed into exactly one class:

* ``DATA`` — the branch is exposed to program input.  Either a condition
  operand may carry ``DATA`` taint (a value flowed — explicitly or via an
  implicit control-dependence flow — from a :class:`Load` or
  :class:`Rand`), or the branch closes a loop whose body contains
  input-steered control flow (a ``DATA``-conditioned branch or switch):
  such a loop exit predicts through a history shaped by data, the
  mechanism behind the paper's loop-tail H2Ps.  Every H2P the dynamic
  screen finds should land here;
* ``LOOP`` — a loop back edge (one of its targets dominates the branch's
  block) with an untainted condition and no input-steered control in its
  body: a plain induction-style loop-closing branch;
* ``GUARD`` — neither: a forward branch over induction/constant state
  (mode checks, unrolled periodic patterns).

The **footprint** aggregates the classification into the per-workload
shape Table I / Table II depend on; contracts pin it (``SC301``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Sequence, Tuple

import enum

from repro.isa.instructions import ArrayBase, Br, Call, Switch
from repro.isa.program import Program
from repro.staticcheck.cfg import Cfg
from repro.staticcheck.dataflow import (
    TaintResult,
    taint_at_terminator,
    terminator_reads,
)
from repro.staticcheck.dominators import NaturalLoop, dominates, loop_body

if TYPE_CHECKING:  # avoid a classify <-> predictability import cycle risk
    from repro.staticcheck.predictability import StaticPredictability


class BranchClass(enum.Enum):
    LOOP = "loop"
    DATA = "data"
    GUARD = "guard"


@dataclass(frozen=True)
class StaticBranchProfile:
    """Classification of one static conditional branch."""

    block: str
    ip: int
    branch_class: BranchClass
    cond: str
    src1: int
    src2: int


@dataclass(frozen=True)
class StaticFootprint:
    """The static shape of one program, as checked by contracts.

    The six ``*_branches`` verdict counts partition the reachable
    conditional branches by their
    :class:`~repro.staticcheck.predictability.Verdict`; the class counts
    (``loop/data/guard_branches``) partition the same set by
    :class:`BranchClass` — both sum to ``conditional_branches``.
    """

    blocks: int
    reachable_blocks: int
    conditional_branches: int
    loop_branches: int
    data_branches: int
    guard_branches: int
    switches: int
    calls: int
    natural_loops: int
    data_arrays: int
    const_branches: int = 0
    loop_exit_branches: int = 0
    biased_branches: int = 0
    correlated_branches: int = 0
    h2p_candidate_branches: int = 0
    rare_branches: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "blocks": self.blocks,
            "reachable_blocks": self.reachable_blocks,
            "conditional_branches": self.conditional_branches,
            "loop_branches": self.loop_branches,
            "data_branches": self.data_branches,
            "guard_branches": self.guard_branches,
            "switches": self.switches,
            "calls": self.calls,
            "natural_loops": self.natural_loops,
            "data_arrays": self.data_arrays,
            "const_branches": self.const_branches,
            "loop_exit_branches": self.loop_exit_branches,
            "biased_branches": self.biased_branches,
            "correlated_branches": self.correlated_branches,
            "h2p_candidate_branches": self.h2p_candidate_branches,
            "rare_branches": self.rare_branches,
        }


def _data_steered_blocks(
    program: Program, cfg: Cfg, taint: TaintResult
) -> FrozenSet[str]:
    """Blocks whose branch/switch condition may carry ``DATA`` taint."""
    steered = set()
    for label in cfg.rpo:
        term = program.block(label).terminator
        if not isinstance(term, (Br, Switch)):
            continue
        data, _addr = taint_at_terminator(program, taint, label)
        if any((data >> reg) & 1 for reg in terminator_reads(term)):
            steered.add(label)
    return frozenset(steered)


def classify_branches(
    program: Program,
    cfg: Cfg,
    idoms: Dict[str, Optional[str]],
    taint: TaintResult,
) -> List[StaticBranchProfile]:
    """Classify every reachable conditional branch (stable IP order)."""
    steered = _data_steered_blocks(program, cfg, taint)
    out: List[StaticBranchProfile] = []
    for label, ip, br in program.conditional_branches():
        if label not in cfg.reachable:
            continue
        data, _addr = taint_at_terminator(program, taint, label)
        operands = (1 << br.src1) | (1 << br.src2)
        headers = {
            target
            for target in (br.taken, br.not_taken)
            if dominates(idoms, target, label)
        }
        if data & operands:
            cls = BranchClass.DATA
        elif headers:
            # Loop exit: DATA when the loop body embeds input-steered
            # control flow (its history is shaped by data), LOOP otherwise.
            body: set = set()
            for header in headers:
                body |= loop_body(cfg, label, header)
            body.discard(label)
            cls = BranchClass.DATA if body & steered else BranchClass.LOOP
        else:
            cls = BranchClass.GUARD
        out.append(
            StaticBranchProfile(
                block=label,
                ip=ip,
                branch_class=cls,
                cond=br.cond.name,
                src1=br.src1,
                src2=br.src2,
            )
        )
    out.sort(key=lambda p: p.ip)
    return out


def referenced_arrays(program: Program) -> FrozenSet[str]:
    """Names of data arrays some :class:`ArrayBase` references."""
    return frozenset(
        ins.name
        for block in program.blocks
        for ins in block.instructions
        if isinstance(ins, ArrayBase)
    )


def compute_footprint(
    program: Program,
    cfg: Cfg,
    branches: List[StaticBranchProfile],
    loops: Sequence[NaturalLoop],
    predictability: Sequence["StaticPredictability"] = (),
) -> StaticFootprint:
    counts = {cls: 0 for cls in BranchClass}
    for profile in branches:
        counts[profile.branch_class] += 1
    verdicts: Dict[str, int] = {}
    for entry in predictability:
        verdicts[entry.verdict.value] = verdicts.get(entry.verdict.value, 0) + 1
    switches = calls = 0
    for block in program.blocks:
        if block.label not in cfg.reachable:
            continue
        if isinstance(block.terminator, Switch):
            switches += 1
        elif isinstance(block.terminator, Call):
            calls += 1
    return StaticFootprint(
        blocks=len(program.blocks),
        reachable_blocks=len(cfg.reachable),
        conditional_branches=len(branches),
        loop_branches=counts[BranchClass.LOOP],
        data_branches=counts[BranchClass.DATA],
        guard_branches=counts[BranchClass.GUARD],
        switches=switches,
        calls=calls,
        natural_loops=len(loops),
        data_arrays=len(program.arrays),
        const_branches=verdicts.get("const", 0),
        loop_exit_branches=verdicts.get("loop_exit", 0),
        biased_branches=verdicts.get("biased", 0),
        correlated_branches=verdicts.get("correlated", 0),
        h2p_candidate_branches=verdicts.get("h2p_candidate", 0),
        rare_branches=verdicts.get("rare", 0),
    )


def branch_class_by_ip(
    branches: List[StaticBranchProfile],
) -> Dict[int, Tuple[str, BranchClass]]:
    """Index classified branches by IP: ``ip -> (block label, class)``."""
    return {p.ip: (p.block, p.branch_class) for p in branches}
