"""``python -m repro.staticcheck``: the static-analysis command line.

Exit status: 0 when no ERROR diagnostics were produced (warnings allowed
unless ``--strict``), 1 otherwise, 2 for usage errors.  See
``docs/static-analysis.md`` for the rule catalogue.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence

from repro import obs
from repro.staticcheck.classify import StaticFootprint
from repro.staticcheck.contracts import contract_from_footprint, render_contract
from repro.staticcheck.diagnostics import Report
from repro.staticcheck.engine import lint_program, lint_registry
from repro.staticcheck.fixtures import FIXTURES

_log = obs.get_logger("staticcheck.cli")


def _emit_contracts(names: Optional[List[str]]) -> int:
    """Print registry stanzas pinned to the current footprints."""
    report = lint_registry(names)
    print("WORKLOAD_CONTRACTS: Dict[str, StaticContract] = {")
    for workload, footprint_dict in sorted(report.footprints.items()):
        footprint = StaticFootprint(**dict(footprint_dict))
        print(render_contract(contract_from_footprint(workload, footprint)))
    print("}")
    return 0


def _render_predictability(report: Report) -> List[str]:
    """One verdict-summary line per workload for the human-readable output."""
    lines: List[str] = []
    for workload, section in sorted(report.predictability.items()):
        branches = section.get("branches")
        if isinstance(branches, list):
            counts: Dict[str, int] = {}
            for entry in branches:
                verdict = str(entry["verdict"])
                counts[verdict] = counts.get(verdict, 0) + 1
        else:
            counts = {
                key.replace("_branches", ""): int(value)
                for key, value in section.items()
                if isinstance(value, int)
            }
        summary = ", ".join(
            f"{verdict}={count}" for verdict, count in sorted(counts.items())
        )
        lines.append(f"predictability {workload}: {summary}")
    return lines


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.staticcheck",
        description=(
            "Statically analyze mini-ISA workload programs: CFG and "
            "reachability, dominators and loops, use-before-def, branch "
            "classification, and footprint-contract checking."
        ),
    )
    parser.add_argument(
        "workloads",
        nargs="*",
        metavar="NAME",
        help="registered workload names to lint (default: none; use --all)",
    )
    parser.add_argument(
        "--all", action="store_true", help="lint every registered workload"
    )
    parser.add_argument(
        "--list", action="store_true", help="list registered workload names and exit"
    )
    parser.add_argument(
        "--fixture",
        choices=sorted(FIXTURES),
        help="lint a committed fixture program instead of registered workloads",
    )
    parser.add_argument(
        "--emit-contracts",
        action="store_true",
        help="print contract-registry stanzas pinned to the current footprints",
    )
    parser.add_argument(
        "--predictability",
        action="store_true",
        help=(
            "emit per-branch StaticPredictability verdicts: SC4xx INFO "
            "diagnostics, per-branch report entries, and a verdict summary"
        ),
    )
    parser.add_argument(
        "--report-out",
        metavar="PATH",
        help="write the machine-readable JSON report to PATH",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings as errors for the exit status",
    )
    parser.add_argument(
        "--log-level",
        default=None,
        choices=["debug", "info", "warning", "error"],
        help="logging level for the repro.* hierarchy",
    )
    args = parser.parse_args(argv)
    obs.configure_logging(args.log_level)

    if args.list:
        from repro.workloads import WORKLOADS_BY_NAME

        for name in sorted(WORKLOADS_BY_NAME):
            print(name)
        return 0

    if args.emit_contracts:
        return _emit_contracts(args.workloads or None)

    if args.fixture:
        program = FIXTURES[args.fixture]()
        _analysis, diagnostics = lint_program(
            program, workload=args.fixture, predictability=args.predictability
        )
        report = Report(diagnostics=diagnostics, programs_checked=1)
        if args.predictability:
            report.predictability[args.fixture] = {
                "branches": [e.as_dict() for e in _analysis.predictability]
            }
    elif args.workloads or args.all:
        try:
            report = lint_registry(
                args.workloads or None, predictability=args.predictability
            )
        except ValueError as exc:
            parser.error(str(exc))
    else:
        parser.error("nothing to lint: name workloads, or pass --all / --fixture")

    print(report.render())
    if args.predictability:
        for line in _render_predictability(report):
            print(line)
    if args.report_out:
        path = report.write_json(args.report_out)
        _log.info("wrote staticcheck report to %s", path)
    return 1 if report.has_errors(strict=args.strict) else 0


if __name__ == "__main__":
    sys.exit(main())
