"""Static-footprint contracts: declared bounds on a workload's shape.

A contract pins inclusive ``(lo, hi)`` bounds on footprint keys (see
:meth:`repro.staticcheck.classify.StaticFootprint.as_dict`).  The workload
generators are seed-deterministic, so the registered contracts in
:mod:`repro.workloads.contracts` use exact bounds (``lo == hi``); the range
form exists so a future stochastic generator can declare tolerances.

This module holds only pure data and checking logic — the per-workload
registry lives with the workloads themselves, keeping the import graph
acyclic (workloads never import the analysis engine).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

from repro.staticcheck.classify import StaticFootprint

#: Predictability-verdict footprint keys (one per
#: :class:`~repro.staticcheck.predictability.Verdict`); contracts that pin
#: none of these trigger ``SC404`` under ``--predictability``.
PREDICTABILITY_CONTRACT_KEYS: Tuple[str, ...] = (
    "const_branches",
    "loop_exit_branches",
    "biased_branches",
    "correlated_branches",
    "h2p_candidate_branches",
    "rare_branches",
)

#: Footprint keys a generated contract pins by default.
DEFAULT_CONTRACT_KEYS: Tuple[str, ...] = (
    "blocks",
    "conditional_branches",
    "loop_branches",
    "data_branches",
    "guard_branches",
) + PREDICTABILITY_CONTRACT_KEYS


@dataclass(frozen=True)
class StaticContract:
    """Declared static-footprint bounds for one workload."""

    workload: str
    bounds: Mapping[str, Tuple[int, int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for key, (lo, hi) in self.bounds.items():
            if lo > hi:
                raise ValueError(
                    f"{self.workload}: contract bound {key} has lo {lo} > hi {hi}"
                )

    def violations(self, footprint: StaticFootprint) -> List[str]:
        """Human-readable violation messages (empty when satisfied)."""
        actual = footprint.as_dict()
        out: List[str] = []
        for key, (lo, hi) in sorted(self.bounds.items()):
            if key not in actual:
                out.append(f"contract references unknown footprint key {key!r}")
                continue
            value = actual[key]
            if not lo <= value <= hi:
                expected = str(lo) if lo == hi else f"{lo}..{hi}"
                out.append(f"{key} is {value}, contract expects {expected}")
        return out


def contract_from_footprint(
    workload: str,
    footprint: StaticFootprint,
    keys: Tuple[str, ...] = DEFAULT_CONTRACT_KEYS,
) -> StaticContract:
    """Pin a contract exactly to an observed footprint (``--emit-contracts``)."""
    actual = footprint.as_dict()
    bounds: Dict[str, Tuple[int, int]] = {
        key: (actual[key], actual[key]) for key in keys
    }
    return StaticContract(workload=workload, bounds=bounds)


def render_contract(contract: StaticContract) -> str:
    """A Python stanza for the workload contract registry."""
    lines = [f'    "{contract.workload}": StaticContract(']
    lines.append(f'        workload="{contract.workload}",')
    lines.append("        bounds={")
    for key, (lo, hi) in contract.bounds.items():
        lines.append(f'            "{key}": ({lo}, {hi}),')
    lines.append("        },")
    lines.append("    ),")
    return "\n".join(lines)
