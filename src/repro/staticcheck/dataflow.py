"""Register dataflow over the CFG: must-assigned and may-taint analyses.

Both analyses represent per-block register sets as **integer bitmasks**
(one bit per architectural register), so the fixed points over the
~14k-block LCF dispatch programs stay cheap pure-Python.

* **Must-assigned** (forward, intersection at joins): a register bit is set
  at a program point iff *every* path from entry writes it first.  Reads of
  registers outside the set are use-before-def candidates (``SC201``).  The
  executor zero-initializes registers, so this is a hygiene rule, not a
  soundness one — and the generators' pervasive self-accumulator idiom
  (``r22 <- r22 + 1`` with no prior def, deliberately relying on zero-init)
  is exempted: a read by an instruction that also *writes* the same
  register does not count.

* **May-taint** (forward, union at joins): two bits per register track
  value provenance — ``DATA`` (flowed from a :class:`Load` or
  :class:`Rand`, i.e. from program input) and ``ADDR`` (flowed from an
  :class:`ArrayBase`).  ``Imm`` kills both (compile-time constants carry no
  taint), matching the executor's dynamic taint semantics.  The branch
  classifier uses ``DATA`` on branch operands; ``SC202`` uses ``ADDR`` on
  load/store bases.

  ``DATA`` additionally propagates through **implicit flows**: a write
  inside a block *control-dependent* on a ``DATA``-conditioned branch or
  switch is itself ``DATA``-tainted (the written value reveals the data
  the branch tested — e.g. the H2P kernels' ``r25/r26`` outcome flags,
  plain ``Imm`` constants whose selection depends on loaded data).
  Control dependence is approximated by dominance: the blocks dominated
  by one of the tainted terminator's targets, i.e. properly inside one
  arm.  Because implicit taint can create newly tainted conditions, the
  analysis iterates the (explicit fixed point, control-region expansion)
  pair until stable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.isa.instructions import (
    NUM_REGISTERS,
    Alu,
    AluImm,
    ArrayBase,
    Br,
    Imm,
    Instruction,
    Load,
    Rand,
    Store,
    Switch,
    Terminator,
)
from repro.isa.program import Program
from repro.staticcheck.cfg import Cfg
from repro.staticcheck.dominators import dominates

_ALL_REGS = (1 << NUM_REGISTERS) - 1


def instruction_reads(ins: Instruction) -> Tuple[int, ...]:
    """Registers an instruction reads, in operand order."""
    if isinstance(ins, Alu):
        return (ins.src1, ins.src2)
    if isinstance(ins, AluImm):
        return (ins.src,)
    if isinstance(ins, Load):
        return (ins.base,)
    if isinstance(ins, Store):
        return (ins.src, ins.base)
    return ()


def instruction_writes(ins: Instruction) -> Optional[int]:
    """The register an instruction writes, if any."""
    if isinstance(ins, (Imm, Alu, AluImm, Load, Rand, ArrayBase)):
        return ins.dst
    return None


def terminator_reads(term: Terminator) -> Tuple[int, ...]:
    """Registers a terminator reads."""
    if isinstance(term, Br):
        return (term.src1, term.src2)
    if isinstance(term, Switch):
        return (term.index,)
    return ()


@dataclass(frozen=True)
class UseBeforeDef:
    """A read of a register no path from entry has written."""

    block: str
    slot: int  # instruction index within the block; -1 for the terminator
    register: int


@dataclass(frozen=True)
class MustAssigned:
    """Result of the must-assigned analysis."""

    block_in: Dict[str, int]  # label -> bitmask at block entry
    uses_before_def: Tuple[UseBeforeDef, ...]


def compute_must_assigned(program: Program, cfg: Cfg) -> MustAssigned:
    """Forward must-analysis plus the per-instruction use-before-def scan."""
    gen: Dict[str, int] = {}
    for label in cfg.rpo:
        mask = 0
        for ins in program.block(label).instructions:
            dst = instruction_writes(ins)
            if dst is not None:
                mask |= 1 << dst
        gen[label] = mask

    block_in = {label: 0 if label == cfg.entry else _ALL_REGS for label in cfg.rpo}
    changed = True
    while changed:
        changed = False
        for label in cfg.rpo:
            if label == cfg.entry:
                continue
            acc = _ALL_REGS
            for p in cfg.preds[label]:
                if p in cfg.reachable:
                    acc &= block_in[p] | gen[p]
            if acc != block_in[label]:
                block_in[label] = acc
                changed = True

    finds: List[UseBeforeDef] = []
    for label in cfg.rpo:
        block = program.block(label)
        assigned = block_in[label]
        for slot, ins in enumerate(block.instructions):
            dst = instruction_writes(ins)
            for reg in instruction_reads(ins):
                # Self-accumulator exemption: the instruction both reads and
                # writes ``reg`` (deliberate zero-init reliance).
                if reg != dst and not (assigned >> reg) & 1:
                    finds.append(UseBeforeDef(block=label, slot=slot, register=reg))
            if dst is not None:
                assigned |= 1 << dst
        for reg in terminator_reads(block.terminator):
            if not (assigned >> reg) & 1:
                finds.append(UseBeforeDef(block=label, slot=-1, register=reg))
    return MustAssigned(block_in=block_in, uses_before_def=tuple(finds))


#: Taint bits (per register, two parallel bitmasks).
DATA = "data"
ADDR = "addr"


@dataclass(frozen=True)
class TaintResult:
    """May-taint masks at block entry, per reachable block.

    ``control`` holds the blocks whose writes carry implicit ``DATA``
    taint (control-dependent on a ``DATA``-conditioned terminator);
    empty when the analysis ran without implicit flows.
    """

    data_in: Dict[str, int]
    addr_in: Dict[str, int]
    control: FrozenSet[str] = frozenset()


def _taint_transfer(
    instructions: List[Instruction], data: int, addr: int, implicit: bool = False
) -> Tuple[int, int]:
    """Propagate the two taint masks through one block's instructions.

    With ``implicit`` the block is control-dependent on a tainted branch,
    so every register it writes also picks up ``DATA``.
    """
    for ins in instructions:
        if isinstance(ins, Imm):
            bit = 1 << ins.dst
            data &= ~bit
            addr &= ~bit
        elif isinstance(ins, ArrayBase):
            bit = 1 << ins.dst
            addr |= bit
            data &= ~bit
        elif isinstance(ins, (Load, Rand)):
            bit = 1 << ins.dst
            data |= bit
            addr &= ~bit
        elif isinstance(ins, Alu):
            bit = 1 << ins.dst
            src = (1 << ins.src1) | (1 << ins.src2)
            data = (data | bit) if data & src else (data & ~bit)
            addr = (addr | bit) if addr & src else (addr & ~bit)
        elif isinstance(ins, AluImm):
            bit = 1 << ins.dst
            src = 1 << ins.src
            data = (data | bit) if data & src else (data & ~bit)
            addr = (addr | bit) if addr & src else (addr & ~bit)
        # Store / Nop: no register effects.
        if implicit:
            dst = instruction_writes(ins)
            if dst is not None:
                data |= 1 << dst
    return data, addr


def _taint_fixpoint(
    program: Program, cfg: Cfg, control: Set[str]
) -> Tuple[Dict[str, int], Dict[str, int]]:
    """Forward may-taint fixed point (union at joins; entry starts clean)."""
    data_in = {label: 0 for label in cfg.rpo}
    addr_in = {label: 0 for label in cfg.rpo}
    changed = True
    while changed:
        changed = False
        for label in cfg.rpo:
            data, addr = _taint_transfer(
                program.block(label).instructions,
                data_in[label],
                addr_in[label],
                implicit=label in control,
            )
            for s in cfg.succs[label]:
                if data | data_in[s] != data_in[s]:
                    data_in[s] |= data
                    changed = True
                if addr | addr_in[s] != addr_in[s]:
                    addr_in[s] |= addr
                    changed = True
    return data_in, addr_in


def control_dependence_map(
    program: Program,
    cfg: Cfg,
    idoms: Dict[str, Optional[str]],
    taint: TaintResult,
) -> Dict[str, str]:
    """Nearest controlling terminator for each control-dependent block.

    Maps every block properly inside one arm of a ``DATA``-conditioned
    :class:`Br`/:class:`Switch` to the *nearest* such terminator's block
    (the one whose outcome selects whether this block runs; outer
    controllers are reached transitively through the inner one's own
    condition and controller).

    The dominance approximation of control dependence: each branch target
    that is *private* to the branch (single predecessor) roots an arm;
    everything the target dominates is control-dependent on the branch.
    Join blocks have multiple predecessors, so the region stops exactly at
    the merge.  When the branch closes a loop (a target dominates it), the
    other targets are the loop's exits — the inevitable continuation,
    which post-dominates the branch — so they do not root arms.
    """
    arm_roots: Dict[str, str] = {}
    for label in cfg.rpo:
        term = program.block(label).terminator
        if not isinstance(term, (Br, Switch)):
            continue
        data, _addr = taint_at_terminator(program, taint, label)
        if not any((data >> reg) & 1 for reg in terminator_reads(term)):
            continue
        closes_loop = any(
            dominates(idoms, target, label) for target in cfg.succs[label]
        )
        for target in cfg.succs[label]:
            if closes_loop and not dominates(idoms, target, label):
                continue
            if tuple(cfg.preds[target]) == (label,):
                arm_roots[target] = label
    # One RPO pass marks whole dominator subtrees (idoms appear earlier);
    # an arm root nested inside another arm keeps its own (nearer)
    # controller for its subtree.
    controller: Dict[str, str] = {}
    for label in cfg.rpo:
        if label in arm_roots:
            controller[label] = arm_roots[label]
            continue
        parent = idoms.get(label)
        if parent is not None and parent in controller:
            controller[label] = controller[parent]
    return controller


def _control_dependent_blocks(
    program: Program,
    cfg: Cfg,
    idoms: Dict[str, Optional[str]],
    taint: TaintResult,
) -> Set[str]:
    """Blocks with a controller per :func:`control_dependence_map`."""
    return set(control_dependence_map(program, cfg, idoms, taint))


def compute_taint(
    program: Program,
    cfg: Cfg,
    idoms: Optional[Dict[str, Optional[str]]] = None,
) -> TaintResult:
    """May-taint over the CFG; with ``idoms``, implicit flows included.

    Without dominators this is the plain explicit fixed point.  With
    them, the analysis alternates (explicit fixed point, expand the
    control-dependent region) until no new region appears — newly
    tainted conditions can create new implicit flows.
    """
    control: Set[str] = set()
    while True:
        data_in, addr_in = _taint_fixpoint(program, cfg, control)
        taint = TaintResult(
            data_in=data_in, addr_in=addr_in, control=frozenset(control)
        )
        if idoms is None:
            return taint
        expanded = _control_dependent_blocks(program, cfg, idoms, taint)
        if expanded <= control:
            return taint
        control |= expanded


def taint_at_terminator(
    program: Program, taint: TaintResult, label: str
) -> Tuple[int, int]:
    """The ``(data, addr)`` masks in effect at a block's terminator."""
    return _taint_transfer(
        program.block(label).instructions,
        taint.data_in[label],
        taint.addr_in[label],
        implicit=label in taint.control,
    )


def suspicious_memory_ops(
    program: Program, cfg: Cfg, taint: TaintResult
) -> List[Tuple[str, int, int]]:
    """Load/store sites whose base register carries no ``ADDR`` taint.

    Returns ``(block label, slot, base register)`` tuples — candidates for
    ``SC202`` (an address computed from raw data or constants, not from an
    :class:`ArrayBase`).
    """
    out: List[Tuple[str, int, int]] = []
    for label in cfg.rpo:
        block = program.block(label)
        data, addr = taint.data_in[label], taint.addr_in[label]
        implicit = label in taint.control
        for slot, ins in enumerate(block.instructions):
            if isinstance(ins, (Load, Store)) and not (addr >> ins.base) & 1:
                out.append((label, slot, ins.base))
            data, addr = _taint_transfer([ins], data, addr, implicit=implicit)
    return out
