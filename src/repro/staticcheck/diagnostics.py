"""Diagnostics: the rule registry, individual findings, and reports.

Every finding carries a **stable rule ID** (``SC101``, ``SC201``, ...) so
CI gates and downstream tooling can match on IDs rather than message text.
Severity decides the exit code: ERROR diagnostics fail a lint run, WARNING
diagnostics fail only under ``--strict``.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional


class Severity(enum.IntEnum):
    """Diagnostic severity (ordering matters: higher is worse).

    ``INFO`` diagnostics never affect the exit code, even under
    ``--strict`` — they surface analysis results (the ``SC4xx``
    predictability verdicts), not defects.
    """

    INFO = 0
    WARNING = 1
    ERROR = 2


@dataclass(frozen=True)
class Rule:
    """One registered static-analysis rule."""

    rule_id: str
    name: str
    severity: Severity
    summary: str


#: The rule registry.  IDs are stable: 1xx = CFG shape, 2xx = dataflow,
#: 3xx = contract/footprint, 4xx = predictability.  Never renumber;
#: retire IDs instead.
RULES: Dict[str, Rule] = {
    r.rule_id: r
    for r in (
        Rule(
            "SC101",
            "unreachable-block",
            Severity.ERROR,
            "a basic block is unreachable from the program entry",
        ),
        Rule(
            "SC102",
            "dead-data-array",
            Severity.WARNING,
            "a declared data array is never referenced by any ArrayBase",
        ),
        Rule(
            "SC103",
            "degenerate-branch",
            Severity.WARNING,
            "a conditional branch has identical taken / not-taken targets",
        ),
        Rule(
            "SC201",
            "use-before-def",
            Severity.ERROR,
            "a register is read before any definition on some path "
            "(self-accumulator reads relying on zero-init are exempt)",
        ),
        Rule(
            "SC202",
            "non-array-address",
            Severity.WARNING,
            "a load/store base register cannot hold an array address here",
        ),
        Rule(
            "SC301",
            "footprint-drift",
            Severity.ERROR,
            "the program's static footprint violates its declared contract",
        ),
        Rule(
            "SC302",
            "missing-contract",
            Severity.WARNING,
            "a registered workload has no declared static-footprint contract",
        ),
        Rule(
            "SC303",
            "input-variant-footprint",
            Severity.ERROR,
            "the static footprint differs across application inputs",
        ),
        Rule(
            "SC401",
            "static-h2p-candidate",
            Severity.INFO,
            "a branch is statically flagged hard-to-predict (data-dependent "
            "or its history requirement exceeds every TAGE table)",
        ),
        Rule(
            "SC402",
            "range-taint-conflict",
            Severity.INFO,
            "a DATA-classified branch is proven single-direction by the "
            "range analysis (the taint is an over-approximation here)",
        ),
        Rule(
            "SC403",
            "missing-verdict",
            Severity.ERROR,
            "a reachable conditional branch received no predictability "
            "verdict (internal analysis invariant violated)",
        ),
        Rule(
            "SC404",
            "predictability-contract-missing",
            Severity.WARNING,
            "a declared contract pins no predictability-verdict counts",
        ),
    )
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding, locatable by workload / block / instruction pointer."""

    rule_id: str
    message: str
    workload: Optional[str] = None
    block: Optional[str] = None
    ip: Optional[int] = None

    @property
    def rule(self) -> Rule:
        return RULES[self.rule_id]

    @property
    def severity(self) -> Severity:
        return self.rule.severity

    def render(self) -> str:
        where = []
        if self.workload:
            where.append(self.workload)
        if self.block:
            where.append(f"block {self.block}")
        if self.ip is not None:
            where.append(f"ip 0x{self.ip:x}")
        location = f" [{', '.join(where)}]" if where else ""
        return (
            f"{self.rule_id} {self.rule.name} "
            f"({self.severity.name.lower()}): {self.message}{location}"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule_id": self.rule_id,
            "rule": self.rule.name,
            "severity": self.severity.name.lower(),
            "message": self.message,
            "workload": self.workload,
            "block": self.block,
            "ip": self.ip,
        }


#: Schema tag for ``--report-out`` JSON documents.  ``v2`` adds the
#: ``infos`` count and the ``predictability`` section (per-workload verdict
#: counts, plus per-branch entries when ``--predictability`` is on).
REPORT_SCHEMA_VERSION = "repro.staticcheck/v2"

#: Schemas :func:`load_report` accepts.  ``v1`` documents (pre-
#: predictability) are read with empty defaults for the new sections.
ACCEPTED_SCHEMA_VERSIONS = ("repro.staticcheck/v1", "repro.staticcheck/v2")


def load_report(path: str) -> Dict[str, Any]:
    """Read a ``--report-out`` JSON document, accepting v1 and v2.

    Returns the raw dict normalized to the v2 shape: missing ``infos``,
    ``predictability`` (v1 documents) are filled with empty defaults.
    Raises ``ValueError`` on an unknown schema tag.
    """
    with open(path) as fh:
        doc: Dict[str, Any] = json.load(fh)
    schema = doc.get("schema")
    if schema not in ACCEPTED_SCHEMA_VERSIONS:
        raise ValueError(
            f"unsupported staticcheck report schema {schema!r}; "
            f"expected one of {ACCEPTED_SCHEMA_VERSIONS}"
        )
    doc.setdefault("infos", 0)
    doc.setdefault("predictability", {})
    return doc


@dataclass
class Report:
    """Aggregated lint results over one or more programs."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: workload name -> input-invariant footprint dict (as_dict form).
    footprints: Dict[str, Mapping[str, int]] = field(default_factory=dict)
    #: workload name -> predictability section: verdict counts plus, in
    #: ``--predictability`` mode, per-branch verdict entries.
    predictability: Dict[str, Mapping[str, Any]] = field(default_factory=dict)
    programs_checked: int = 0

    def extend(self, diagnostics: List[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def count(self, severity: Severity) -> int:
        return sum(1 for d in self.diagnostics if d.severity == severity)

    def has_errors(self, strict: bool = False) -> bool:
        floor = Severity.WARNING if strict else Severity.ERROR
        return any(d.severity >= floor for d in self.diagnostics)

    def render(self) -> str:
        lines = [d.render() for d in self.diagnostics]
        lines.append(
            f"{self.programs_checked} program(s) checked: "
            f"{self.count(Severity.ERROR)} error(s), "
            f"{self.count(Severity.WARNING)} warning(s), "
            f"{self.count(Severity.INFO)} info(s)"
        )
        return "\n".join(lines)

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "schema": REPORT_SCHEMA_VERSION,
            "programs_checked": self.programs_checked,
            "errors": self.count(Severity.ERROR),
            "warnings": self.count(Severity.WARNING),
            "infos": self.count(Severity.INFO),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "footprints": {k: dict(v) for k, v in sorted(self.footprints.items())},
            "predictability": {
                k: dict(v) for k, v in sorted(self.predictability.items())
            },
        }

    def write_json(self, path: str) -> str:
        with open(path, "w") as fh:
            json.dump(self.to_json_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path
