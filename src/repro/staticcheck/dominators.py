"""Dominator tree, back edges, and natural loops.

Implements the Cooper–Harvey–Kennedy iterative algorithm ("A Simple, Fast
Dominance Algorithm") over the reachable subgraph in reverse postorder.
It converges in a handful of passes on reducible graphs and its intersect
step is two pointer walks — comfortably fast even for the ~14k-block LCF
dispatch programs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.staticcheck.cfg import Cfg


def compute_idoms(cfg: Cfg) -> Dict[str, Optional[str]]:
    """Immediate dominators for every reachable block (entry maps to None)."""
    rpo = cfg.rpo
    index = {label: i for i, label in enumerate(rpo)}
    idom: List[Optional[int]] = [None] * len(rpo)
    if rpo:
        idom[0] = 0  # entry: self, by convention during iteration

    preds_idx: List[List[int]] = [
        [index[p] for p in cfg.preds[label] if p in index] for label in rpo
    ]

    def intersect(a: int, b: int) -> int:
        while a != b:
            while a > b:
                a = idom[a]  # type: ignore[assignment]
            while b > a:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for i in range(1, len(rpo)):
            new_idom: Optional[int] = None
            for p in preds_idx[i]:
                if idom[p] is None:
                    continue
                new_idom = p if new_idom is None else intersect(p, new_idom)
            if new_idom is not None and idom[i] != new_idom:
                idom[i] = new_idom
                changed = True

    out: Dict[str, Optional[str]] = {}
    for i, label in enumerate(rpo):
        out[label] = None if i == 0 else rpo[idom[i]] if idom[i] is not None else None
    return out


def dominates(idoms: Dict[str, Optional[str]], a: str, b: str) -> bool:
    """True iff block ``a`` dominates block ``b`` (every block dominates
    itself)."""
    node: Optional[str] = b
    while node is not None:
        if node == a:
            return True
        node = idoms.get(node)
    return False


@dataclass(frozen=True)
class NaturalLoop:
    """A natural loop: the header plus the body of one or more back edges."""

    header: str
    body: FrozenSet[str]  # includes the header


def back_edges(cfg: Cfg, idoms: Dict[str, Optional[str]]) -> List[Tuple[str, str]]:
    """Edges ``(tail, header)`` where the header dominates the tail."""
    out: List[Tuple[str, str]] = []
    for label in cfg.rpo:
        for target in cfg.succs[label]:
            if target in cfg.reachable and dominates(idoms, target, label):
                out.append((label, target))
    return out


def loop_body(cfg: Cfg, tail: str, header: str) -> FrozenSet[str]:
    """The natural-loop body of one back edge ``tail -> header``.

    All blocks that can reach the tail without passing through the
    header, plus the header itself.
    """
    body = {header}
    stack = [tail]
    while stack:
        node = stack.pop()
        if node in body:
            continue
        body.add(node)
        stack.extend(p for p in cfg.preds[node] if p in cfg.reachable)
    return frozenset(body)


def natural_loops(cfg: Cfg, edges: List[Tuple[str, str]]) -> List[NaturalLoop]:
    """Natural loops, one per header (back edges sharing a header merge)."""
    by_header: Dict[str, set] = {}
    for tail, header in edges:
        body = by_header.setdefault(header, {header})
        stack = [tail]
        while stack:
            node = stack.pop()
            if node in body:
                continue
            body.add(node)
            stack.extend(p for p in cfg.preds[node] if p in cfg.reachable)
    return [
        NaturalLoop(header=h, body=frozenset(body))
        for h, body in sorted(by_header.items())
    ]
