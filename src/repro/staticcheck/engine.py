"""The analysis passes wired into program- and workload-level linting.

Three levels:

* :func:`analyze_program` — run every pass over one finalized program and
  return the raw results (CFG, dominators, dataflow, classification,
  footprint);
* :func:`lint_program` — turn an analysis into diagnostics (``SC1xx`` /
  ``SC2xx``);
* :func:`lint_workload` / :func:`lint_registry` — build each registered
  workload across its inputs, add the contract rules (``SC3xx``), and
  aggregate into a :class:`~repro.staticcheck.diagnostics.Report`.

Everything here is static: no program is ever executed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple

from repro import obs
from repro.isa.program import Program
from repro.staticcheck.cfg import Cfg, build_cfg, unreachable_blocks
from repro.staticcheck.classify import (
    StaticBranchProfile,
    StaticFootprint,
    classify_branches,
    compute_footprint,
    referenced_arrays,
)
from repro.staticcheck.contracts import StaticContract
from repro.staticcheck.dataflow import (
    MustAssigned,
    TaintResult,
    compute_must_assigned,
    compute_taint,
    suspicious_memory_ops,
)
from repro.staticcheck.diagnostics import Diagnostic, Report
from repro.staticcheck.dominators import (
    NaturalLoop,
    back_edges,
    compute_idoms,
    natural_loops,
)

if TYPE_CHECKING:  # runtime import stays lazy: workloads import this package
    from repro.workloads.base import WorkloadSpec

_log = obs.get_logger("staticcheck")


@dataclass(frozen=True)
class ProgramAnalysis:
    """Every pass result for one program."""

    program: Program
    cfg: Cfg
    idoms: Dict[str, Optional[str]]
    back_edges: Tuple[Tuple[str, str], ...]
    loops: Tuple[NaturalLoop, ...]
    must: MustAssigned
    taint: TaintResult
    branches: Tuple[StaticBranchProfile, ...]
    footprint: StaticFootprint


def analyze_program(program: Program) -> ProgramAnalysis:
    """Run all static passes over one finalized program."""
    with obs.timer("staticcheck.analyze"):
        cfg = build_cfg(program)
        idoms = compute_idoms(cfg)
        edges = back_edges(cfg, idoms)
        loops = natural_loops(cfg, edges)
        must = compute_must_assigned(program, cfg)
        taint = compute_taint(program, cfg, idoms)
        branches = classify_branches(program, cfg, idoms, taint)
        footprint = compute_footprint(program, cfg, branches, loops)
    obs.counter("staticcheck.programs_analyzed")
    return ProgramAnalysis(
        program=program,
        cfg=cfg,
        idoms=idoms,
        back_edges=tuple(edges),
        loops=tuple(loops),
        must=must,
        taint=taint,
        branches=tuple(branches),
        footprint=footprint,
    )


def _program_diagnostics(
    analysis: ProgramAnalysis, workload: Optional[str]
) -> List[Diagnostic]:
    program, cfg = analysis.program, analysis.cfg
    out: List[Diagnostic] = []

    for label in unreachable_blocks(program, cfg):
        out.append(
            Diagnostic(
                rule_id="SC101",
                message=f"block {label!r} is unreachable from entry {cfg.entry!r}",
                workload=workload,
                block=label,
            )
        )

    live_arrays = referenced_arrays(program)
    for name in program.arrays:
        if name not in live_arrays:
            out.append(
                Diagnostic(
                    rule_id="SC102",
                    message=f"data array {name!r} is never referenced",
                    workload=workload,
                )
            )

    for label, ip, br in program.conditional_branches():
        if br.taken == br.not_taken:
            out.append(
                Diagnostic(
                    rule_id="SC103",
                    message=(
                        f"branch in {label!r} targets {br.taken!r} on both outcomes"
                    ),
                    workload=workload,
                    block=label,
                    ip=ip,
                )
            )

    for use in analysis.must.uses_before_def:
        site = "terminator" if use.slot == -1 else f"instruction {use.slot}"
        out.append(
            Diagnostic(
                rule_id="SC201",
                message=(
                    f"r{use.register} read by {site} of block {use.block!r} "
                    "before any definition"
                ),
                workload=workload,
                block=use.block,
            )
        )

    for label, slot, base in suspicious_memory_ops(program, cfg, analysis.taint):
        out.append(
            Diagnostic(
                rule_id="SC202",
                message=(
                    f"memory access at instruction {slot} of block {label!r} "
                    f"uses base r{base} that never derives from an ArrayBase"
                ),
                workload=workload,
                block=label,
            )
        )
    return out


def lint_program(
    program: Program, workload: Optional[str] = None
) -> Tuple[ProgramAnalysis, List[Diagnostic]]:
    """Analyze one program and return it with its diagnostics."""
    analysis = analyze_program(program)
    diagnostics = _program_diagnostics(analysis, workload)
    for d in diagnostics:
        obs.counter(f"staticcheck.diagnostics.{d.severity.name.lower()}")
    return analysis, diagnostics


def lint_workload(
    spec: "WorkloadSpec",
    contract: Optional[StaticContract] = None,
    input_indices: Optional[Sequence[int]] = None,
) -> Tuple[Optional[StaticFootprint], List[Diagnostic]]:
    """Lint one workload across its application inputs.

    Adds the contract rules on top of the per-program diagnostics:
    ``SC303`` when the static footprint varies across inputs (the
    cross-input H2P methodology requires identical static structure),
    ``SC301`` when it violates the declared contract, ``SC302`` when no
    contract is declared.
    """
    indices = list(input_indices) if input_indices is not None else list(
        range(spec.num_inputs)
    )
    diagnostics: List[Diagnostic] = []
    footprint: Optional[StaticFootprint] = None
    with obs.span(f"staticcheck.{spec.name}", inputs=len(indices)):
        for input_index in indices:
            program = spec.build(input_index)
            _analysis, diags = lint_program(program, workload=spec.name)
            diagnostics.extend(diags)
            if footprint is None:
                footprint = _analysis.footprint
            elif _analysis.footprint != footprint:
                drifted = [
                    key
                    for key, value in _analysis.footprint.as_dict().items()
                    if footprint.as_dict()[key] != value
                ]
                diagnostics.append(
                    Diagnostic(
                        rule_id="SC303",
                        message=(
                            f"input {input_index} changes the static footprint "
                            f"(keys: {', '.join(drifted)})"
                        ),
                        workload=spec.name,
                    )
                )
    if footprint is not None:
        if contract is None:
            diagnostics.append(
                Diagnostic(
                    rule_id="SC302",
                    message="no static-footprint contract declared",
                    workload=spec.name,
                )
            )
        else:
            for violation in contract.violations(footprint):
                diagnostics.append(
                    Diagnostic(
                        rule_id="SC301", message=violation, workload=spec.name
                    )
                )
    for d in diagnostics:
        if d.rule_id.startswith("SC3"):
            obs.counter(f"staticcheck.diagnostics.{d.severity.name.lower()}")
    _log.info(
        "linted %s over %d input(s): %d finding(s)",
        spec.name,
        len(indices),
        len(diagnostics),
    )
    return footprint, diagnostics


def lint_registry(
    names: Optional[Sequence[str]] = None,
    contracts: Optional[Mapping[str, StaticContract]] = None,
) -> Report:
    """Lint registered workloads (all of them by default) into a report."""
    from repro.workloads import WORKLOADS_BY_NAME
    from repro.workloads.contracts import WORKLOAD_CONTRACTS

    if contracts is None:
        contracts = WORKLOAD_CONTRACTS
    selected = list(names) if names else sorted(WORKLOADS_BY_NAME)
    unknown = [n for n in selected if n not in WORKLOADS_BY_NAME]
    if unknown:
        raise ValueError(
            f"unknown workloads: {unknown}; choose from {sorted(WORKLOADS_BY_NAME)}"
        )
    report = Report()
    with obs.span("staticcheck", workloads=len(selected)):
        for name in selected:
            spec = WORKLOADS_BY_NAME[name]
            footprint, diagnostics = lint_workload(spec, contracts.get(name))
            report.extend(diagnostics)
            report.programs_checked += spec.num_inputs
            if footprint is not None:
                report.footprints[name] = footprint.as_dict()
    return report
