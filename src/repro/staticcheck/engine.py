"""The analysis passes wired into program- and workload-level linting.

Three levels:

* :func:`analyze_program` — run every pass over one finalized program and
  return the raw results (CFG, dominators, dataflow, classification,
  footprint);
* :func:`lint_program` — turn an analysis into diagnostics (``SC1xx`` /
  ``SC2xx``);
* :func:`lint_workload` / :func:`lint_registry` — build each registered
  workload across its inputs, add the contract rules (``SC3xx``), and
  aggregate into a :class:`~repro.staticcheck.diagnostics.Report`.

Everything here is static: no program is ever executed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple

from repro import obs
from repro.isa.program import Program
from repro.staticcheck.cfg import Cfg, build_cfg, unreachable_blocks
from repro.staticcheck.classify import (
    BranchClass,
    StaticBranchProfile,
    StaticFootprint,
    classify_branches,
    compute_footprint,
    referenced_arrays,
)
from repro.staticcheck.contracts import (
    PREDICTABILITY_CONTRACT_KEYS,
    StaticContract,
)
from repro.staticcheck.dataflow import (
    MustAssigned,
    TaintResult,
    compute_must_assigned,
    compute_taint,
    control_dependence_map,
    suspicious_memory_ops,
)
from repro.staticcheck.diagnostics import Diagnostic, Report
from repro.staticcheck.dominators import (
    NaturalLoop,
    back_edges,
    compute_idoms,
    natural_loops,
)
from repro.staticcheck.predictability import (
    StaticPredictability,
    Verdict,
    compute_predictability,
)
from repro.staticcheck.ranges import RangeResult, compute_ranges
from repro.staticcheck.trips import LoopTripInfo, analyze_loop_trips

if TYPE_CHECKING:  # runtime import stays lazy: workloads import this package
    from repro.workloads.base import WorkloadSpec

_log = obs.get_logger("staticcheck")


@dataclass(frozen=True)
class ProgramAnalysis:
    """Every pass result for one program."""

    program: Program
    cfg: Cfg
    idoms: Dict[str, Optional[str]]
    back_edges: Tuple[Tuple[str, str], ...]
    loops: Tuple[NaturalLoop, ...]
    must: MustAssigned
    taint: TaintResult
    branches: Tuple[StaticBranchProfile, ...]
    ranges: RangeResult
    trips: Dict[str, LoopTripInfo]
    controllers: Dict[str, str]
    predictability: Tuple[StaticPredictability, ...]
    footprint: StaticFootprint


def analyze_program(program: Program) -> ProgramAnalysis:
    """Run all static passes over one finalized program.

    Results are memoized on the :class:`Program` instance (a finalized
    program is immutable), so repeated linting of the same built program —
    the ``staticcheck`` and ``staticpred`` experiments share builds via
    :func:`repro.workloads.base.build_cached` — pays for the CFG,
    dominator, taint and predictability passes exactly once.
    """
    cached = program.staticcheck_cache
    if isinstance(cached, ProgramAnalysis):
        obs.counter("staticcheck.cache.hits")
        return cached
    obs.counter("staticcheck.cache.misses")
    with obs.timer("staticcheck.analyze"):
        cfg = build_cfg(program)
        idoms = compute_idoms(cfg)
        edges = back_edges(cfg, idoms)
        loops = natural_loops(cfg, edges)
        must = compute_must_assigned(program, cfg)
        taint = compute_taint(program, cfg, idoms)
        branches = classify_branches(program, cfg, idoms, taint)
        ranges = compute_ranges(program, cfg)
        trips = analyze_loop_trips(program, cfg, idoms, ranges, taint)
        controllers = control_dependence_map(program, cfg, idoms, taint)
        predictability = compute_predictability(
            program, cfg, taint, ranges, trips, controllers, tuple(loops)
        )
        footprint = compute_footprint(
            program, cfg, branches, loops, predictability
        )
    obs.counter("staticcheck.programs_analyzed")
    analysis = ProgramAnalysis(
        program=program,
        cfg=cfg,
        idoms=idoms,
        back_edges=tuple(edges),
        loops=tuple(loops),
        must=must,
        taint=taint,
        branches=tuple(branches),
        ranges=ranges,
        trips=trips,
        controllers=controllers,
        predictability=tuple(predictability),
        footprint=footprint,
    )
    program.staticcheck_cache = analysis
    return analysis


def _predictability_diagnostics(
    analysis: ProgramAnalysis, workload: Optional[str]
) -> List[Diagnostic]:
    """The opt-in ``SC401``/``SC402`` INFO findings (``--predictability``)."""
    out: List[Diagnostic] = []
    class_by_block = {p.block: p.branch_class for p in analysis.branches}
    for entry in analysis.predictability:
        if entry.verdict is Verdict.H2P_CANDIDATE:
            out.append(
                Diagnostic(
                    rule_id="SC401",
                    message=f"statically hard-to-predict: {entry.detail}",
                    workload=workload,
                    block=entry.block,
                    ip=entry.ip,
                )
            )
        elif (
            entry.verdict is Verdict.CONST
            and class_by_block.get(entry.block) is BranchClass.DATA
        ):
            out.append(
                Diagnostic(
                    rule_id="SC402",
                    message=(
                        "DATA-classified branch is range-proven "
                        f"single-direction: {entry.detail}"
                    ),
                    workload=workload,
                    block=entry.block,
                    ip=entry.ip,
                )
            )
    return out


def _program_diagnostics(
    analysis: ProgramAnalysis, workload: Optional[str]
) -> List[Diagnostic]:
    program, cfg = analysis.program, analysis.cfg
    out: List[Diagnostic] = []

    verdict_blocks = {entry.block for entry in analysis.predictability}
    for label, ip, _br in program.conditional_branches():
        if label in cfg.reachable and label not in verdict_blocks:
            out.append(
                Diagnostic(
                    rule_id="SC403",
                    message=(
                        f"reachable conditional branch in {label!r} has no "
                        "predictability verdict"
                    ),
                    workload=workload,
                    block=label,
                    ip=ip,
                )
            )

    for label in unreachable_blocks(program, cfg):
        out.append(
            Diagnostic(
                rule_id="SC101",
                message=f"block {label!r} is unreachable from entry {cfg.entry!r}",
                workload=workload,
                block=label,
            )
        )

    live_arrays = referenced_arrays(program)
    for name in program.arrays:
        if name not in live_arrays:
            out.append(
                Diagnostic(
                    rule_id="SC102",
                    message=f"data array {name!r} is never referenced",
                    workload=workload,
                )
            )

    for label, ip, br in program.conditional_branches():
        if br.taken == br.not_taken:
            out.append(
                Diagnostic(
                    rule_id="SC103",
                    message=(
                        f"branch in {label!r} targets {br.taken!r} on both outcomes"
                    ),
                    workload=workload,
                    block=label,
                    ip=ip,
                )
            )

    for use in analysis.must.uses_before_def:
        site = "terminator" if use.slot == -1 else f"instruction {use.slot}"
        out.append(
            Diagnostic(
                rule_id="SC201",
                message=(
                    f"r{use.register} read by {site} of block {use.block!r} "
                    "before any definition"
                ),
                workload=workload,
                block=use.block,
            )
        )

    for label, slot, base in suspicious_memory_ops(program, cfg, analysis.taint):
        out.append(
            Diagnostic(
                rule_id="SC202",
                message=(
                    f"memory access at instruction {slot} of block {label!r} "
                    f"uses base r{base} that never derives from an ArrayBase"
                ),
                workload=workload,
                block=label,
            )
        )
    return out


def lint_program(
    program: Program,
    workload: Optional[str] = None,
    predictability: bool = False,
) -> Tuple[ProgramAnalysis, List[Diagnostic]]:
    """Analyze one program and return it with its diagnostics.

    ``predictability`` adds the per-branch ``SC401``/``SC402`` INFO
    findings; the ``SC403`` invariant check is always on.
    """
    analysis = analyze_program(program)
    diagnostics = _program_diagnostics(analysis, workload)
    if predictability:
        diagnostics.extend(_predictability_diagnostics(analysis, workload))
    for d in diagnostics:
        obs.counter(f"staticcheck.diagnostics.{d.severity.name.lower()}")
    return analysis, diagnostics


def lint_workload(
    spec: "WorkloadSpec",
    contract: Optional[StaticContract] = None,
    input_indices: Optional[Sequence[int]] = None,
    predictability: bool = False,
) -> Tuple[Optional[StaticFootprint], List[Diagnostic]]:
    """Lint one workload across its application inputs.

    Adds the contract rules on top of the per-program diagnostics:
    ``SC303`` when the static footprint varies across inputs (the
    cross-input H2P methodology requires identical static structure),
    ``SC301`` when it violates the declared contract, ``SC302`` when no
    contract is declared, and — under ``predictability`` — ``SC404`` when
    the contract pins no predictability-verdict counts.
    """
    from repro.workloads.base import build_cached

    indices = list(input_indices) if input_indices is not None else list(
        range(spec.num_inputs)
    )
    diagnostics: List[Diagnostic] = []
    footprint: Optional[StaticFootprint] = None
    with obs.span(f"staticcheck.{spec.name}", inputs=len(indices)):
        for input_index in indices:
            program = build_cached(spec, input_index)
            _analysis, diags = lint_program(
                program, workload=spec.name, predictability=predictability
            )
            diagnostics.extend(diags)
            if footprint is None:
                footprint = _analysis.footprint
            elif _analysis.footprint != footprint:
                drifted = [
                    key
                    for key, value in _analysis.footprint.as_dict().items()
                    if footprint.as_dict()[key] != value
                ]
                diagnostics.append(
                    Diagnostic(
                        rule_id="SC303",
                        message=(
                            f"input {input_index} changes the static footprint "
                            f"(keys: {', '.join(drifted)})"
                        ),
                        workload=spec.name,
                    )
                )
    if footprint is not None:
        if contract is None:
            diagnostics.append(
                Diagnostic(
                    rule_id="SC302",
                    message="no static-footprint contract declared",
                    workload=spec.name,
                )
            )
        else:
            for violation in contract.violations(footprint):
                diagnostics.append(
                    Diagnostic(
                        rule_id="SC301", message=violation, workload=spec.name
                    )
                )
            if predictability and not any(
                key in contract.bounds for key in PREDICTABILITY_CONTRACT_KEYS
            ):
                diagnostics.append(
                    Diagnostic(
                        rule_id="SC404",
                        message=(
                            "contract pins no predictability-verdict counts "
                            "(regenerate with --emit-contracts)"
                        ),
                        workload=spec.name,
                    )
                )
    for d in diagnostics:
        # Only the workload-level rules: the per-program diagnostics were
        # already counted inside lint_program.
        if d.rule_id in ("SC301", "SC302", "SC303", "SC404"):
            obs.counter(f"staticcheck.diagnostics.{d.severity.name.lower()}")
    _log.info(
        "linted %s over %d input(s): %d finding(s)",
        spec.name,
        len(indices),
        len(diagnostics),
    )
    return footprint, diagnostics


def lint_registry(
    names: Optional[Sequence[str]] = None,
    contracts: Optional[Mapping[str, StaticContract]] = None,
    predictability: bool = False,
) -> Report:
    """Lint registered workloads (all of them by default) into a report.

    The report's ``predictability`` section always carries the per-workload
    verdict counts; with ``predictability`` it additionally carries one
    entry per conditional branch (input 0 — the verdicts are input-
    invariant, which ``SC303`` separately enforces).
    """
    from repro.workloads import WORKLOADS_BY_NAME
    from repro.workloads.base import build_cached
    from repro.workloads.contracts import WORKLOAD_CONTRACTS

    if contracts is None:
        contracts = WORKLOAD_CONTRACTS
    selected = list(names) if names else sorted(WORKLOADS_BY_NAME)
    unknown = [n for n in selected if n not in WORKLOADS_BY_NAME]
    if unknown:
        raise ValueError(
            f"unknown workloads: {unknown}; choose from {sorted(WORKLOADS_BY_NAME)}"
        )
    report = Report()
    with obs.span("staticcheck", workloads=len(selected)):
        for name in selected:
            spec = WORKLOADS_BY_NAME[name]
            footprint, diagnostics = lint_workload(
                spec, contracts.get(name), predictability=predictability
            )
            report.extend(diagnostics)
            report.programs_checked += spec.num_inputs
            if footprint is not None:
                report.footprints[name] = footprint.as_dict()
                section: Dict[str, object] = {
                    key: footprint.as_dict()[key]
                    for key in PREDICTABILITY_CONTRACT_KEYS
                }
                if predictability:
                    # The analysis is memoized on the cached build, so this
                    # is a lookup, not a recomputation.
                    analysis = analyze_program(build_cached(spec, 0))
                    section["branches"] = [
                        entry.as_dict() for entry in analysis.predictability
                    ]
                report.predictability[name] = section
    return report
