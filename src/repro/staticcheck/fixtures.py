"""Committed negative fixtures: programs the linter must reject.

CI runs ``python -m repro.staticcheck --fixture negative`` and requires a
non-zero exit with the expected rule IDs — pinning the analyzer's ability
to actually catch generator bugs, not just pass clean code.
"""

from __future__ import annotations

from repro.isa.instructions import (
    Alu,
    AluImm,
    AluOp,
    Br,
    Cond,
    Halt,
    Imm,
    Jmp,
    Load,
    Nop,
    Rand,
)
from repro.isa.program import Program, ProgramBuilder


def build_negative_fixture() -> Program:
    """A small program with one unreachable block (``SC101``) and one
    use-before-def (``SC201``), plus warning-level findings: a dead data
    array (``SC102``), a degenerate branch (``SC103``), and a load through
    a non-address base (``SC202``)."""
    b = ProgramBuilder("negative_fixture")
    b.data("dead_array", [1, 2, 3])

    entry = b.block("entry")
    body = b.block("body")
    exit_blk = b.block("exit")
    orphan = b.block("orphan")  # SC101: nothing targets this block

    entry.instructions = [
        Imm(1, 5),
        Rand(2, 0, 16),
        # SC201: r9 is read before any path defines it (and this is not the
        # exempt self-accumulator form, since the destination differs).
        Alu(AluOp.ADD, 3, 1, 9),
    ]
    entry.terminator = Jmp(body.label)

    body.instructions = [AluImm(AluOp.AND, 4, 2, 1)]
    # SC103: both outcomes land on the same block.
    body.terminator = Br(Cond.EQ, 4, 1, exit_blk.label, exit_blk.label)

    # SC202: r1 holds the constant 5, never an ArrayBase-derived address.
    exit_blk.instructions = [Load(5, 1), Nop()]
    exit_blk.terminator = Halt()

    orphan.instructions = [Imm(6, 1)]
    orphan.terminator = Halt()

    return b.build()


FIXTURES = {"negative": build_negative_fixture}

#: Rule IDs the negative fixture is guaranteed to trip (tests + CI assert).
NEGATIVE_FIXTURE_ERROR_RULES = ("SC101", "SC201")
NEGATIVE_FIXTURE_WARNING_RULES = ("SC102", "SC103", "SC202")
