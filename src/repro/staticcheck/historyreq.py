"""History-requirement analysis: how far back must a predictor look?

The static analogue of the paper's Table III experiment.  For every
branch, walk the dependency graph *backwards* from the condition
registers to the sites that produce their values:

* :class:`Load`/:class:`Rand` sites — the condition consumes raw program
  input (or entropy).  No bounded branch history determines the outcome,
  so unless an earlier structural verdict applies the branch is a static
  H2P candidate ("the data that determines them is not contained in the
  global history", Sec. III-C);
* **implicit producers** — a write inside a block control-dependent on an
  earlier branch.  The written value is a function of that branch's
  *outcome*, which **is** in the global history: the earlier branch
  *reveals* the value.  The branch under analysis is then correlated,
  provided the revealing outcome sits a bounded number of branches back;
* constants (``Imm``/``ArrayBase``/zero-init) — no producer at all: the
  outcome is a deterministic function of induction state, i.e. perfectly
  correlated with position (distance 0).

The distance from a revealing branch R to the dependent branch B is the
number of conditional-branch outcomes entering the global history between
R's outcome and B's prediction, maximized over CFG paths — the static
counterpart of the "dependency branch position" axis.  When some R→B
path re-enters a cycle, the distance is unbounded (each extra iteration
pushes R deeper into history — the paper's noise-loop mechanism), which
we report as ``None``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.isa.instructions import Alu, AluImm, ArrayBase, Br, Load, Rand
from repro.isa.program import Program
from repro.staticcheck.cfg import Cfg
from repro.staticcheck.dataflow import (
    TaintResult,
    instruction_writes,
    terminator_reads,
)

#: A producer site: ``(block label, instruction slot)``.
Site = Tuple[str, int]


@dataclass(frozen=True)
class ProducerSet:
    """Everything that can produce a set of condition registers' values."""

    data_sites: Tuple[Site, ...]  # Load/Rand instructions (raw input)
    control_sources: Tuple[str, ...]  # controlling branch/switch blocks
    array_refs: Tuple[str, ...]  # ArrayBase names flowing in (addresses)

    @property
    def has_data(self) -> bool:
        return bool(self.data_sites)


def collect_producers(
    program: Program,
    cfg: Cfg,
    controllers: Dict[str, str],
    label: str,
    regs: Tuple[int, ...],
) -> ProducerSet:
    """Backward-slice ``regs`` as read by ``label``'s terminator.

    The walk is path-sensitive per block (scanning instructions backwards)
    and joins over predecessors, visiting each ``(block, register)``
    live-at-entry state at most once, so it terminates on cyclic CFGs and
    self-accumulator idioms.
    """
    data_sites: Set[Site] = set()
    control_sources: Set[str] = set()
    array_refs: Set[str] = set()
    visited: Set[Tuple[str, int]] = set()
    # Stack entries: (block, live registers at the block's *entry*).
    stack: List[Tuple[str, Set[int]]] = []

    def push_preds(block: str, live: Set[int]) -> None:
        for pred in cfg.preds[block]:
            if pred not in cfg.reachable:
                continue
            fresh = {r for r in live if (pred, r) not in visited}
            if fresh:
                visited.update((pred, r) for r in fresh)
                stack.append((pred, fresh))

    live0 = _scan_block(
        program, controllers, label, set(regs), data_sites, control_sources, array_refs
    )
    push_preds(label, live0)
    while stack:
        block, live = stack.pop()
        leftover = _scan_block(
            program, controllers, block, live, data_sites, control_sources, array_refs
        )
        push_preds(block, leftover)

    return ProducerSet(
        data_sites=tuple(sorted(data_sites)),
        control_sources=tuple(sorted(control_sources)),
        array_refs=tuple(sorted(array_refs)),
    )


def _scan_block(
    program: Program,
    controllers: Dict[str, str],
    label: str,
    pending: Set[int],
    data_sites: Set[Site],
    control_sources: Set[str],
    array_refs: Set[str],
) -> Set[int]:
    """Scan one block backwards, resolving ``pending`` registers' defs.

    Records producer events as a side effect.  Returns the registers
    still live at the block's entry (alu operands replace their results
    as the scan proceeds, so the result can differ from the input set).
    """
    controller = controllers.get(label)
    for slot in range(len(program.block(label).instructions) - 1, -1, -1):
        if not pending:
            break
        ins = program.block(label).instructions[slot]
        dst = instruction_writes(ins)
        if dst is None or dst not in pending:
            continue
        pending = set(pending)
        pending.discard(dst)
        # The write's *selection* depends on the controlling branch.
        if controller is not None:
            control_sources.add(controller)
        if isinstance(ins, (Load, Rand)):
            data_sites.add((label, slot))
        elif isinstance(ins, ArrayBase):
            array_refs.add(ins.name)
        elif isinstance(ins, Alu):
            pending.add(ins.src1)
            pending.add(ins.src2)
        elif isinstance(ins, AluImm):
            pending.add(ins.src)
        # Imm: compile-time constant, no producer.
    return pending


@dataclass(frozen=True)
class HistoryRequirement:
    """Producer summary plus the bounded history distance, if any."""

    block: str
    producers: ProducerSet
    #: Max branch-distance from the furthest revealing branch; ``None``
    #: when some revealer's distance is unbounded (or it never reaches the
    #: branch without re-entering a cycle).  Meaningless if ``has_data``.
    distance: Optional[int]


def branch_distance(program: Program, cfg: Cfg, src: str, dst: str) -> Optional[int]:
    """Worst-case conditional-branch count along CFG paths ``src`` → ``dst``.

    Counts the :class:`Br` terminators of the blocks on the path including
    ``src``'s, excluding ``dst``'s.  Returns ``None`` when no path exists
    or when the path region contains a cycle (unbounded distance).
    """
    fwd = _reach(cfg, src, forward=True)
    if dst not in fwd:
        return None
    back = _reach(cfg, dst, forward=False)
    region = fwd & back

    # Kahn's algorithm over the region: leftovers mean a cycle.
    indeg = {
        b: sum(1 for p in cfg.preds[b] if p in region and b != src)
        for b in region
    }
    order: List[str] = [b for b in region if indeg[b] == 0 or b == src]
    seen = set(order)
    queue = deque(order)
    topo: List[str] = []
    while queue:
        b = queue.popleft()
        topo.append(b)
        if b == dst:
            continue
        for s in cfg.succs[b]:
            if s not in region or s in seen:
                continue
            indeg[s] -= 1
            if indeg[s] == 0:
                seen.add(s)
                queue.append(s)
    if len(topo) != len(region):
        return None  # cyclic region: distance grows with iteration count

    def weight(b: str) -> int:
        return 1 if isinstance(program.block(b).terminator, Br) else 0

    dist: Dict[str, int] = {src: weight(src)}
    for b in topo:
        if b not in dist or b == dst:
            continue
        for s in cfg.succs[b]:
            if s in region:
                cand = dist[b] + (weight(s) if s != dst else 0)
                if cand > dist.get(s, -1):
                    dist[s] = cand
    return dist.get(dst)


def _reach(cfg: Cfg, start: str, forward: bool) -> FrozenSet[str]:
    edges = cfg.succs if forward else cfg.preds
    seen = {start}
    queue = deque([start])
    while queue:
        b = queue.popleft()
        for n in edges[b]:
            if n in cfg.reachable and n not in seen:
                seen.add(n)
                queue.append(n)
    return frozenset(seen)


def history_requirement(
    program: Program,
    cfg: Cfg,
    taint: TaintResult,
    controllers: Dict[str, str],
    label: str,
) -> HistoryRequirement:
    """Producers and revealing-branch distance for one branch block."""
    term = program.block(label).terminator
    producers = collect_producers(
        program, cfg, controllers, label, terminator_reads(term)
    )
    distance: Optional[int] = 0 if not producers.control_sources else None
    if not producers.has_data and producers.control_sources:
        worst = 0
        for source in producers.control_sources:
            d = branch_distance(program, cfg, source, label)
            if d is None:
                worst = -1
                break
            worst = max(worst, d)
        distance = None if worst < 0 else worst
    return HistoryRequirement(block=label, producers=producers, distance=distance)
