"""Per-branch static predictability verdicts.

Combines the range (:mod:`~repro.staticcheck.ranges`), trip-count
(:mod:`~repro.staticcheck.trips`) and history-requirement
(:mod:`~repro.staticcheck.historyreq`) passes into one
:class:`StaticPredictability` verdict per conditional branch — the static
counterpart of the paper's dynamic branch taxonomy:

``RARE``
    The branch sits behind a data-driven switch with a large fan-out: even
    an optimistic static bound on its per-slice executions stays below the
    dynamic H2P screen's execution floor, so it can never accumulate
    statistics (Fig. 8's long tail).  Unreachable branches are the bound-0
    degenerate case.
``CONST``
    The operand intervals decide the condition outright — the branch
    resolves the same way on every execution.
``LOOP_EXIT(N)``
    A counted loop with an *untainted* trip bound: mispredicts about once
    per loop entry, accuracy ``~1 - 1/N``.  (A data-derived bound
    disqualifies the loop — its exit position re-randomizes per entry,
    the paper's noise-loop mechanism — and falls through to the history
    analysis.)
``BIASED(p)``
    A local value-distribution argument bounds the accuracy at ≥ 0.99
    without needing history: a uniform :class:`Rand` tested against a
    constant, or a strided walk over a *statically known* (never-stored)
    data array whose direction sequence rarely changes (the sorted-scan
    idiom).
``CORRELATED(d)``
    Every producer of the condition is either a constant or a value
    *revealed* by an earlier branch's outcome at a bounded history
    distance ``d`` ≤ the largest TAGE preset's history length.  A plain
    induction-state branch has no producers at all: ``CORRELATED(0)``.
``H2P_CANDIDATE``
    None of the above: raw input data reaches the condition, or the
    revealing outcome lies an unbounded / too-distant number of branches
    back.  The static analogue of the paper's H2P definition.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.config import H2P_MIN_EXECUTIONS, SLICE_INSTRUCTIONS
from repro.isa.instructions import (
    Alu,
    AluImm,
    AluOp,
    ArrayBase,
    Br,
    Cond,
    Load,
    Rand,
    Store,
    Switch,
)
from repro.isa.program import DataArray, Program
from repro.staticcheck.cfg import Cfg
from repro.staticcheck.dataflow import TaintResult, instruction_writes
from repro.staticcheck.dominators import NaturalLoop
from repro.staticcheck.historyreq import history_requirement
from repro.staticcheck.ranges import RangeResult, RegIntervals, branch_outcome
from repro.staticcheck.trips import LoopTripInfo, entry_interval

#: Largest ``max_history`` across the TAGE-SC-L presets (the 64KB+
#: configurations) — a correlation further back than this is invisible to
#: every predictor in the suite.
MAX_TAGE_HISTORY = 3000

#: Accuracy a structural argument must guarantee for a BIASED verdict —
#: aligned with the dynamic H2P screen's accuracy cut so BIASED statically
#: implies "not H2P" dynamically.
BIAS_VERDICT_ACCURACY = 0.99

#: Switch fan-out from which arms count as candidate rare regions.
RARE_SWITCH_FANOUT = 16

#: Cap on the strided-walk simulation (cycle detection always fires well
#: below this for the generators' power-of-two arrays).
_MAX_WALK_STEPS = 1 << 16


class Verdict(enum.Enum):
    CONST = "const"
    LOOP_EXIT = "loop_exit"
    BIASED = "biased"
    CORRELATED = "correlated"
    H2P_CANDIDATE = "h2p_candidate"
    RARE = "rare"


@dataclass(frozen=True)
class StaticPredictability:
    """One branch's verdict plus the verdict-specific evidence."""

    block: str
    ip: int
    verdict: Verdict
    detail: str
    #: Lower bound on achievable accuracy, when the verdict implies one.
    predicted_accuracy: Optional[float] = None
    direction: Optional[bool] = None  # CONST: the constant outcome
    trip_lo: Optional[int] = None  # LOOP_EXIT
    trip_hi: Optional[int] = None  # LOOP_EXIT
    distance: Optional[int] = None  # CORRELATED: revealing distance
    exec_bound: Optional[int] = None  # RARE: static per-slice bound

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "block": self.block,
            "ip": self.ip,
            "verdict": self.verdict.value,
            "detail": self.detail,
        }
        for key in (
            "predicted_accuracy",
            "direction",
            "trip_lo",
            "trip_hi",
            "distance",
            "exec_bound",
        ):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        return out


# ---------------------------------------------------------------------------
# RARE: static execution-count bounds behind wide data-driven switches.


def _shortest_cycle_instructions(program: Program, cfg: Cfg, label: str) -> Optional[int]:
    """Instruction weight of the shortest CFG cycle through ``label``.

    Dijkstra over node weights (instructions + terminator); the cycle
    bound is optimistic — real iterations interleave other work — which
    makes the derived execution bound an *over*-estimate, so a RARE
    verdict is only issued when even that over-estimate is tiny.
    """

    def weight(block: str) -> int:
        return program.block(block).size

    dist: Dict[str, int] = {}
    heap: List[Tuple[int, str]] = []
    for succ in cfg.succs[label]:
        if succ in cfg.reachable:
            w = weight(succ)
            if w < dist.get(succ, 1 << 60):
                dist[succ] = w
                heapq.heappush(heap, (w, succ))
    best: Optional[int] = None
    while heap:
        d, block = heapq.heappop(heap)
        if d > dist.get(block, 1 << 60):
            continue
        for succ in cfg.succs[block]:
            if succ == label:
                cycle = d + weight(label)
                if best is None or cycle < best:
                    best = cycle
            elif succ in cfg.reachable:
                nd = d + weight(succ)
                if nd < dist.get(succ, 1 << 60):
                    dist[succ] = nd
                    heapq.heappush(heap, (nd, succ))
    return best


def rare_execution_bounds(
    program: Program, cfg: Cfg, controllers: Dict[str, str]
) -> Dict[str, int]:
    """Static per-slice execution bounds for blocks in wide switch arms.

    For each block whose controller chain passes through a
    :class:`Switch` with fan-out ``K ≥ RARE_SWITCH_FANOUT``, bound its
    per-slice executions by ``SLICE_INSTRUCTIONS / (L * K)`` where ``L``
    is the instruction weight of the shortest cycle through the switch:
    even if the slice did nothing but spin this dispatch loop, a uniform
    selector lands on any one arm at most that often.
    """
    cycle_cache: Dict[str, Optional[int]] = {}
    bounds: Dict[str, int] = {}
    for label in cfg.rpo:
        node = label
        hops = 0
        while node in controllers and hops < 64:
            ctrl = controllers[node]
            term = program.block(ctrl).terminator
            if isinstance(term, Switch):
                fanout = len(set(term.targets))
                if fanout >= RARE_SWITCH_FANOUT:
                    if ctrl not in cycle_cache:
                        cycle_cache[ctrl] = _shortest_cycle_instructions(
                            program, cfg, ctrl
                        )
                    cycle = cycle_cache[ctrl]
                    if cycle is not None:
                        bound = SLICE_INSTRUCTIONS // (cycle * fanout)
                        if bound < bounds.get(label, 1 << 60):
                            bounds[label] = bound
            node = ctrl
            hops += 1
    return bounds


# ---------------------------------------------------------------------------
# BIASED: local distribution arguments.


def _reaching_def(
    program: Program, cfg: Cfg, label: str, reg: int
) -> Optional[Tuple[str, int]]:
    """The unique reaching definition site of ``reg`` at ``label``'s
    terminator, found by scanning backwards through the block and then
    through *unique* predecessors; None at any ambiguity."""
    block = label
    visited = {label}
    while True:
        instructions = program.block(block).instructions
        for slot in range(len(instructions) - 1, -1, -1):
            if instruction_writes(instructions[slot]) == reg:
                return (block, slot)
        preds = [p for p in cfg.preds[block] if p in cfg.reachable]
        if len(preds) != 1 or preds[0] in visited:
            return None
        block = preds[0]
        visited.add(block)


def _cond_probability(cond: Cond, lo: int, hi: int, c: int, rand_is_src1: bool) -> float:
    """P(cond holds) for X uniform on ``[lo, hi)`` against constant ``c``,
    with X on the side indicated by ``rand_is_src1``."""
    n = hi - lo
    below = min(max(c - lo, 0), n)  # |{x : x < c}|
    at_or_below = min(max(c + 1 - lo, 0), n)  # |{x : x <= c}|
    if not rand_is_src1:
        # c OP X: mirror the comparison.
        if cond is Cond.LT:  # c < X  <=>  X > c
            return (n - at_or_below) / n
        if cond is Cond.GE:
            return at_or_below / n
        if cond is Cond.LE:  # c <= X  <=>  X >= c
            return (n - below) / n
        if cond is Cond.GT:
            return below / n
    if cond is Cond.LT:
        return below / n
    if cond is Cond.GE:
        return (n - below) / n
    if cond is Cond.LE:
        return at_or_below / n
    if cond is Cond.GT:
        return (n - at_or_below) / n
    inside = 1 / n if lo <= c < hi else 0.0
    if cond is Cond.EQ:
        return inside
    return 1.0 - inside  # NE


def _rand_bias(
    program: Program, cfg: Cfg, label: str, br: Br, state: RegIntervals
) -> Optional[float]:
    """P(branch taken) when one operand is a fresh uniform Rand and the
    other a compile-time singleton; None when the idiom doesn't apply."""
    for rand_reg, const_reg, rand_is_src1 in (
        (br.src1, br.src2, True),
        (br.src2, br.src1, False),
    ):
        clo, chi = state[const_reg]
        if clo != chi:
            continue
        site = _reaching_def(program, cfg, label, rand_reg)
        if site is None:
            continue
        ins = program.block(site[0]).instructions[site[1]]
        if isinstance(ins, Rand) and ins.hi > ins.lo:
            return _cond_probability(br.cond, ins.lo, ins.hi, clo, rand_is_src1)
    return None


def written_arrays(program: Program, cfg: Cfg) -> FrozenSet[str]:
    """Arrays some :class:`Store`'s base address can derive from.

    Anything outside this set keeps its initial contents for the whole
    run, so its values are static facts the scan-bias analysis may read.
    """
    written: Set[str] = set()
    all_names = frozenset(program.arrays)
    for block in program.blocks:
        if block.label not in cfg.reachable:
            continue
        for slot, ins in enumerate(block.instructions):
            if isinstance(ins, Store):
                written |= _store_array_candidates(
                    program, cfg, block.label, slot, ins.base
                )
                if written >= all_names:
                    return frozenset(written)
    return frozenset(written)


def _store_array_candidates(
    program: Program, cfg: Cfg, label: str, slot: int, base: int
) -> FrozenSet[str]:
    """Arrays a store's base address may derive from.

    A backward may-reaching walk over ``ArrayBase``/ALU chains, branching
    into every predecessor at joins.  A path that resolves the base to a
    non-address source (``Imm``/``Load``/``Rand``, or zero-init at program
    entry) cannot be attributed and poisons every array — the store may
    alias any of them.
    """
    every = frozenset(program.arrays)
    names: Set[str] = set()
    start = (label, slot, frozenset((base,)))
    stack = [start]
    seen = {start}
    while stack:
        block, stop, pending_key = stack.pop()
        pending = set(pending_key)
        instructions = program.block(block).instructions
        resolved_here = False
        for i in range(stop - 1, -1, -1):
            ins = instructions[i]
            dst = instruction_writes(ins)
            if dst is None or dst not in pending:
                continue
            pending.discard(dst)
            if isinstance(ins, ArrayBase):
                names.add(ins.name)
                resolved_here = True
                break
            if isinstance(ins, Alu):
                pending.update((ins.src1, ins.src2))
            elif isinstance(ins, AluImm):
                pending.add(ins.src)
            # Imm / Load / Rand resolve that operand as plain data (an
            # index, not the address chain) — keep tracing the rest.
            if not pending:
                # Every operand resolved without any ArrayBase: the
                # address is pure data, it may alias anything.
                return every
        if resolved_here or not pending:
            continue
        preds = [p for p in cfg.preds[block] if p in cfg.reachable]
        if not preds:
            return every  # reached entry: base register is zero-init
        for pred in preds:
            nxt = (
                pred,
                len(program.block(pred).instructions),
                frozenset(pending),
            )
            if nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)
    return names


def _array_at(program: Program, address: int) -> Optional[DataArray]:
    for arr in program.arrays.values():
        if arr.base <= address < arr.base + arr.length:
            return arr
    return None


def _eval_cond(cond: Cond, a: int, b: int) -> bool:
    if cond is Cond.EQ:
        return a == b
    if cond is Cond.NE:
        return a != b
    if cond is Cond.LT:
        return a < b
    if cond is Cond.GE:
        return a >= b
    if cond is Cond.LE:
        return a <= b
    return a > b  # GT


def _scan_bias(
    program: Program,
    cfg: Cfg,
    ranges: RangeResult,
    loops: Tuple[NaturalLoop, ...],
    clean_arrays: FrozenSet[str],
    label: str,
    br: Br,
    state: RegIntervals,
) -> Optional[float]:
    """Accuracy bound for the strided static-array scan idiom.

    Matches ``Load(v, base + idx)`` feeding the condition directly, with
    ``idx`` walked by exactly ``idx += s; idx %= m`` inside the enclosing
    loop from a constant start.  The whole load sequence is then a static
    fact: replay it over the array's initial contents and count direction
    transitions per walk cycle — a two-level predictor mispredicts at most
    at the transitions (accuracy ``1 - T / cycle``).
    """
    for value_reg, const_reg in ((br.src1, br.src2), (br.src2, br.src1)):
        clo, chi = state[const_reg]
        if clo != chi:
            continue
        site = _reaching_def(program, cfg, label, value_reg)
        if site is None:
            continue
        load = program.block(site[0]).instructions[site[1]]
        if not isinstance(load, Load):
            continue
        addr_site = _reaching_def_before(program, cfg, site[0], site[1], load.base)
        if addr_site is None:
            continue
        addr_ins = program.block(addr_site[0]).instructions[addr_site[1]]
        if not (isinstance(addr_ins, Alu) and addr_ins.op is AluOp.ADD):
            continue
        entry_state = ranges.block_in[label]
        # One ADD operand must be a singleton address (the ArrayBase), the
        # other the walked index.
        for base_reg, idx_reg in (
            (addr_ins.src1, addr_ins.src2),
            (addr_ins.src2, addr_ins.src1),
        ):
            blo, bhi = entry_state[base_reg]
            if blo != bhi:
                continue
            arr = _array_at(program, blo)
            if arr is None or arr.name not in clean_arrays:
                continue
            walk = _affine_walk(program, cfg, ranges, loops, label, idx_reg)
            if walk is None:
                continue
            init, step, mod = walk
            acc = _walk_accuracy(
                program, arr, blo - arr.base, init, step, mod, br.cond, clo,
                value_is_src1=value_reg == br.src1,
            )
            if acc is not None:
                return acc
    return None


def _reaching_def_before(
    program: Program, cfg: Cfg, label: str, slot: int, reg: int
) -> Optional[Tuple[str, int]]:
    """Like :func:`_reaching_def` but starting just above ``slot``."""
    instructions = program.block(label).instructions
    for i in range(slot - 1, -1, -1):
        if instruction_writes(instructions[i]) == reg:
            return (label, i)
    preds = [p for p in cfg.preds[label] if p in cfg.reachable]
    if len(preds) == 1 and preds[0] != label:
        return _reaching_def(program, cfg, preds[0], reg)
    return None


def _affine_walk(
    program: Program,
    cfg: Cfg,
    ranges: RangeResult,
    loops: Tuple[NaturalLoop, ...],
    label: str,
    reg: int,
) -> Optional[Tuple[int, int, int]]:
    """``(init, step, mod)`` when ``reg``'s only in-loop updates are one
    ``+= step`` and one ``%= mod`` and its loop-entry value is constant."""
    enclosing = [loop for loop in loops if label in loop.body]
    if not enclosing:
        return None
    loop = min(enclosing, key=lambda lp: len(lp.body))
    step = mod = None
    for body_label in loop.body:
        for ins in program.block(body_label).instructions:
            if instruction_writes(ins) != reg:
                continue
            if isinstance(ins, AluImm) and ins.src == reg and ins.op is AluOp.ADD:
                if step is not None:
                    return None
                step = ins.imm
            elif isinstance(ins, AluImm) and ins.src == reg and ins.op is AluOp.MOD:
                if mod is not None:
                    return None
                mod = ins.imm
            else:
                return None
    if step is None or mod is None or step < 1 or mod < 1:
        return None
    init = entry_interval(program, cfg, ranges, loop.body, loop.header, reg)
    if init is None or init[0] != init[1]:
        return None
    return (init[0], step, mod)


def _walk_accuracy(
    program: Program,
    arr: DataArray,
    offset: int,
    init: int,
    step: int,
    mod: int,
    cond: Cond,
    const: int,
    value_is_src1: bool,
) -> Optional[float]:
    """Transition-count accuracy of the deterministic walk's directions."""
    directions: List[bool] = []
    idx = init % mod
    first = idx
    for _ in range(_MAX_WALK_STEPS):
        element = offset + idx
        if not 0 <= element < arr.length:
            return None
        value = program.initial_memory[arr.base + element]
        taken = (
            _eval_cond(cond, value, const)
            if value_is_src1
            else _eval_cond(cond, const, value)
        )
        directions.append(taken)
        idx = (idx + step) % mod
        if idx == first:
            break
    else:
        return None
    transitions = sum(
        directions[i] != directions[(i + 1) % len(directions)]
        for i in range(len(directions))
    )
    return 1.0 - transitions / len(directions)


# ---------------------------------------------------------------------------
# Verdict assembly.


def compute_predictability(
    program: Program,
    cfg: Cfg,
    taint: TaintResult,
    ranges: RangeResult,
    trips: Dict[str, LoopTripInfo],
    controllers: Dict[str, str],
    loops: Tuple[NaturalLoop, ...],
) -> List[StaticPredictability]:
    """One verdict per static conditional branch (stable IP order)."""
    rare_bounds = rare_execution_bounds(program, cfg, controllers)
    clean = frozenset(program.arrays) - written_arrays(program, cfg)
    out: List[StaticPredictability] = []
    for label, ip, br in program.conditional_branches():
        out.append(
            _branch_verdict(
                program,
                cfg,
                taint,
                ranges,
                trips,
                controllers,
                loops,
                rare_bounds,
                clean,
                label,
                ip,
                br,
            )
        )
    out.sort(key=lambda v: v.ip)
    return out


def _branch_verdict(
    program: Program,
    cfg: Cfg,
    taint: TaintResult,
    ranges: RangeResult,
    trips: Dict[str, LoopTripInfo],
    controllers: Dict[str, str],
    loops: Tuple[NaturalLoop, ...],
    rare_bounds: Dict[str, int],
    clean_arrays: FrozenSet[str],
    label: str,
    ip: int,
    br: Br,
) -> StaticPredictability:
    if label not in cfg.reachable:
        return StaticPredictability(
            block=label,
            ip=ip,
            verdict=Verdict.RARE,
            detail="unreachable from entry: executes zero times",
            exec_bound=0,
        )

    bound = rare_bounds.get(label)
    if bound is not None and bound < H2P_MIN_EXECUTIONS:
        return StaticPredictability(
            block=label,
            ip=ip,
            verdict=Verdict.RARE,
            detail=(
                f"wide-switch arm: static bound {bound} executions/slice is "
                f"below the H2P screen floor ({H2P_MIN_EXECUTIONS})"
            ),
            exec_bound=bound,
        )

    state = ranges.at_terminator(program, label)
    outcome = branch_outcome(br, state)
    if outcome is not None:
        way = "taken" if outcome else "not-taken"
        return StaticPredictability(
            block=label,
            ip=ip,
            verdict=Verdict.CONST,
            detail=f"operand intervals prove the branch always {way}",
            predicted_accuracy=1.0,
            direction=outcome,
        )

    trip = trips.get(label)
    if trip is not None:
        return StaticPredictability(
            block=label,
            ip=ip,
            verdict=Verdict.LOOP_EXIT,
            detail=(
                f"counted loop over r{trip.iv_register} (step {trip.step}, "
                f"untainted bound r{trip.bound_register}): "
                f"{trip.trip_lo}..{trip.trip_hi} trips per entry"
            ),
            predicted_accuracy=1.0 - trip.exit_mispredict_rate,
            trip_lo=trip.trip_lo,
            trip_hi=trip.trip_hi,
        )

    p_taken = _rand_bias(program, cfg, label, br, state)
    if p_taken is not None:
        acc = max(p_taken, 1.0 - p_taken)
        if acc >= BIAS_VERDICT_ACCURACY:
            return StaticPredictability(
                block=label,
                ip=ip,
                verdict=Verdict.BIASED,
                detail=(
                    f"uniform Rand vs constant: taken probability {p_taken:.4f}"
                ),
                predicted_accuracy=acc,
            )

    scan_acc = _scan_bias(
        program, cfg, ranges, loops, clean_arrays, label, br, state
    )
    if scan_acc is not None and scan_acc >= BIAS_VERDICT_ACCURACY:
        return StaticPredictability(
            block=label,
            ip=ip,
            verdict=Verdict.BIASED,
            detail=(
                "strided walk over a static array: direction transitions "
                f"bound accuracy at {scan_acc:.4f}"
            ),
            predicted_accuracy=scan_acc,
        )

    req = history_requirement(program, cfg, taint, controllers, label)
    if req.producers.has_data:
        sites = len(req.producers.data_sites)
        return StaticPredictability(
            block=label,
            ip=ip,
            verdict=Verdict.H2P_CANDIDATE,
            detail=(
                f"condition consumes raw input/entropy from {sites} "
                "producer site(s): determining data is outside any "
                "bounded branch history"
            ),
        )
    if req.producers.control_sources:
        if req.distance is None:
            return StaticPredictability(
                block=label,
                ip=ip,
                verdict=Verdict.H2P_CANDIDATE,
                detail=(
                    "revealing branch(es) "
                    f"{list(req.producers.control_sources)} sit an unbounded "
                    "number of branches back (cyclic revealing region)"
                ),
            )
        if req.distance > MAX_TAGE_HISTORY:
            return StaticPredictability(
                block=label,
                ip=ip,
                verdict=Verdict.H2P_CANDIDATE,
                detail=(
                    f"revealing distance {req.distance} exceeds the largest "
                    f"TAGE history ({MAX_TAGE_HISTORY})"
                ),
                distance=req.distance,
            )
        return StaticPredictability(
            block=label,
            ip=ip,
            verdict=Verdict.CORRELATED,
            detail=(
                "outcome determined by earlier branch outcome(s) "
                f"{list(req.producers.control_sources)} within "
                f"{req.distance} branches of history"
            ),
            distance=req.distance,
        )
    return StaticPredictability(
        block=label,
        ip=ip,
        verdict=Verdict.CORRELATED,
        detail=(
            "no data producer: outcome is a deterministic function of "
            "induction state (distance 0)"
        ),
        distance=0,
    )
