"""Interval value-range analysis over the CFG.

A forward dataflow pass mapping every register to an unsigned 32-bit
interval ``[lo, hi]`` at each reachable block's entry.  The lattice is the
standard interval domain with join = convex hull and widening to the full
word range after a fixed number of growths per block, so the fixed point
terminates even on the counter-carrying loops of the synthetic kernels.

Transfer functions mirror the executor exactly (see
``repro.isa.executor``): all arithmetic is 32-bit unsigned with wraparound
(an overflowing interval degrades to TOP rather than wrapping piecewise),
``MOD`` by zero yields 0, and :class:`Rand` produces ``[lo, hi - 1]`` — the
one instruction whose *distribution* (uniform) is also statically known,
which :mod:`repro.staticcheck.predictability` exploits for bias verdicts.

The predictability engine uses the intervals three ways: proving a branch
condition always/never true (``CONST`` verdicts), bounding loop-invariant
trip-count registers (``LOOP_EXIT`` verdicts), and bounding switch
fan-out for the rare-branch execution-count analysis.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.isa.instructions import (
    NUM_REGISTERS,
    WORD_MASK,
    Alu,
    AluImm,
    AluOp,
    ArrayBase,
    Br,
    Cond,
    Imm,
    Instruction,
    Load,
    Rand,
)
from repro.isa.program import Program
from repro.staticcheck.cfg import Cfg

#: An unsigned interval; ``TOP`` is the full word range.
Interval = Tuple[int, int]

TOP: Interval = (0, WORD_MASK)

#: How many times a block-entry interval may grow before widening to TOP.
_WIDEN_AFTER = 3


def _clip(lo: int, hi: int) -> Interval:
    """An interval provided the bounds stay in-word; TOP on overflow."""
    if 0 <= lo <= hi <= WORD_MASK:
        return (lo, hi)
    return TOP


def _is_singleton(iv: Interval) -> bool:
    return iv[0] == iv[1]


def _bits_upper(hi: int) -> int:
    """The largest value expressible in ``hi``'s bit width."""
    return (1 << hi.bit_length()) - 1 if hi else 0


def alu_interval(op: AluOp, a: Interval, b: Interval) -> Interval:
    """Interval transfer for one ALU operation (both operand forms)."""
    alo, ahi = a
    blo, bhi = b
    if op is AluOp.ADD:
        return _clip(alo + blo, ahi + bhi)
    if op is AluOp.SUB:
        # Unsigned subtraction wraps; only a provably non-negative result
        # keeps a useful interval.
        if alo >= bhi:
            return _clip(alo - bhi, ahi - blo)
        return TOP
    if op is AluOp.MUL:
        return _clip(alo * blo, ahi * bhi)
    if op is AluOp.XOR:
        if _is_singleton(a) and _is_singleton(b):
            return (alo ^ blo, alo ^ blo)
        return (0, _bits_upper(ahi | bhi))
    if op is AluOp.AND:
        if _is_singleton(a) and _is_singleton(b):
            return (alo & blo, alo & blo)
        return (0, min(ahi, bhi))
    if op is AluOp.OR:
        if _is_singleton(a) and _is_singleton(b):
            return (alo | blo, alo | blo)
        return (max(alo, blo), _bits_upper(ahi | bhi))
    if op is AluOp.SHL:
        # The register form masks the shift amount to 0..31; the immediate
        # form does not, but generators only emit in-range immediates, and
        # an over-wide result degrades to TOP anyway.
        if _is_singleton(b) and blo <= 31:
            return _clip(alo << blo, ahi << blo)
        return TOP
    if op is AluOp.SHR:
        if _is_singleton(b) and blo <= 31:
            return (alo >> blo, ahi >> blo)
        return (0, ahi)
    if op is AluOp.MOD:
        # x % 0 == 0 in the executor, so a divisor interval touching zero
        # still admits 0 as a result (covered by the 0 lower bound below).
        if blo >= 1 and ahi < blo:
            return a  # x always below every divisor value: identity
        if bhi >= 1:
            return (0, min(ahi, bhi - 1))
        return (0, 0)
    if op is AluOp.MIN:
        return (min(alo, blo), min(ahi, bhi))
    if op is AluOp.MAX:
        return (max(alo, blo), max(ahi, bhi))
    return TOP


#: Register intervals, indexed by register number.
RegIntervals = Tuple[Interval, ...]

_ENTRY_STATE: RegIntervals = tuple((0, 0) for _ in range(NUM_REGISTERS))


def transfer_instruction(
    ins: Instruction, state: List[Interval], program: Program
) -> None:
    """Apply one instruction's effect to a mutable register-interval state."""
    if isinstance(ins, Imm):
        state[ins.dst] = (ins.value & WORD_MASK, ins.value & WORD_MASK)
    elif isinstance(ins, Rand):
        state[ins.dst] = (ins.lo, ins.hi - 1)
    elif isinstance(ins, Load):
        state[ins.dst] = TOP
    elif isinstance(ins, ArrayBase):
        arr = program.arrays.get(ins.name)
        if arr is None:
            state[ins.dst] = TOP
        else:
            addr = (arr.base + ins.offset) & WORD_MASK
            state[ins.dst] = (addr, addr)
    elif isinstance(ins, Alu):
        state[ins.dst] = alu_interval(ins.op, state[ins.src1], state[ins.src2])
    elif isinstance(ins, AluImm):
        imm = ins.imm & WORD_MASK
        state[ins.dst] = alu_interval(ins.op, state[ins.src], (imm, imm))
    # Store / Nop: no register effects.


def block_exit_state(
    program: Program, label: str, entry: RegIntervals
) -> RegIntervals:
    """The register intervals after a block's instructions (pre-terminator)."""
    state = list(entry)
    for ins in program.block(label).instructions:
        transfer_instruction(ins, state, program)
    return tuple(state)


@dataclass(frozen=True)
class RangeResult:
    """Register intervals at every reachable block's entry."""

    block_in: Dict[str, RegIntervals]

    def at_terminator(self, program: Program, label: str) -> RegIntervals:
        """Intervals in effect at a block's terminator."""
        return block_exit_state(program, label, self.block_in[label])


def compute_ranges(program: Program, cfg: Cfg) -> RangeResult:
    """Forward interval fixed point with per-block widening.

    The executor zero-initializes all registers, so the entry block starts
    from ``[0, 0]`` everywhere; unreached joins contribute nothing (the
    in-state starts as ``None`` = bottom).
    """
    block_in: Dict[str, Optional[RegIntervals]] = {
        label: None for label in cfg.rpo
    }
    block_in[cfg.entry] = _ENTRY_STATE
    growths: Dict[str, int] = {label: 0 for label in cfg.rpo}

    worklist = deque(cfg.rpo)
    in_list = set(worklist)
    while worklist:
        label = worklist.popleft()
        in_list.discard(label)
        entry = block_in[label]
        if entry is None:
            continue
        exit_state = block_exit_state(program, label, entry)
        for succ in cfg.succs[label]:
            if succ not in cfg.reachable:
                continue
            old = block_in[succ]
            if old is None:
                new: Optional[RegIntervals] = exit_state
            else:
                joined = tuple(
                    (min(o[0], n[0]), max(o[1], n[1]))
                    for o, n in zip(old, exit_state)
                )
                if joined == old:
                    new = None
                else:
                    growths[succ] += 1
                    if growths[succ] > _WIDEN_AFTER:
                        joined = tuple(
                            (
                                0 if j[0] < o[0] else j[0],
                                WORD_MASK if j[1] > o[1] else j[1],
                            )
                            for o, j in zip(old, joined)
                        )
                    new = joined
            if new is not None and new != old:
                block_in[succ] = new
                if succ not in in_list:
                    worklist.append(succ)
                    in_list.add(succ)

    # Unreached-but-listed blocks (shouldn't happen: rpo covers reachable
    # only, and everything in rpo is reachable from entry) fall back to TOP.
    resolved: Dict[str, RegIntervals] = {}
    for label in cfg.rpo:
        state = block_in[label]
        resolved[label] = (
            state if state is not None else tuple(TOP for _ in range(NUM_REGISTERS))
        )
    return RangeResult(block_in=resolved)


def branch_outcome(br: Br, state: RegIntervals) -> Optional[bool]:
    """Statically decide a branch, if its operand intervals allow it.

    Returns ``True`` (always taken), ``False`` (never taken), or ``None``
    (undecidable from the intervals alone).
    """
    alo, ahi = state[br.src1]
    blo, bhi = state[br.src2]
    if br.cond is Cond.EQ:
        if alo == ahi == blo == bhi:
            return True
        if ahi < blo or bhi < alo:
            return False
        return None
    if br.cond is Cond.NE:
        inv = branch_outcome(
            Br(Cond.EQ, br.src1, br.src2, br.taken, br.not_taken), state
        )
        return None if inv is None else not inv
    if br.cond is Cond.LT:
        if ahi < blo:
            return True
        if alo >= bhi:
            return False
        return None
    if br.cond is Cond.GE:
        inv = branch_outcome(
            Br(Cond.LT, br.src1, br.src2, br.taken, br.not_taken), state
        )
        return None if inv is None else not inv
    if br.cond is Cond.LE:
        if ahi <= blo:
            return True
        if alo > bhi:
            return False
        return None
    if br.cond is Cond.GT:
        inv = branch_outcome(
            Br(Cond.LE, br.src1, br.src2, br.taken, br.not_taken), state
        )
        return None if inv is None else not inv
    return None
