"""Loop analysis: affine induction variables and static trip counts.

For every back-edge conditional branch, this pass tries to prove the
canonical counted-loop shape the generators emit:

* exactly one operand is an **affine induction variable** — a register
  whose only writes inside the natural-loop body are a single
  ``AluImm(ADD, r, r, step)`` with a positive constant step;
* the other operand is a **loop-invariant bound** — never written in the
  body, with a finite interval from the range analysis, and (crucially)
  carrying no ``DATA`` taint: a data-derived trip count re-randomizes the
  loop's exit position per entry, which is the paper's history-smearing
  mechanism, *not* a predictable counted loop — those branches fall
  through to the history-requirement analysis instead.

When the shape holds, the trip-count interval follows from the induction
variable's initial interval (joined over the loop's entry edges) and the
bound's interval at the branch; the predicted loop-exit misprediction
rate is ``~1/N`` (one exit surprise per ``N`` executions of the branch).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple

from repro.isa.instructions import AluImm, AluOp, Cond
from repro.isa.program import Program
from repro.staticcheck.cfg import Cfg
from repro.staticcheck.dataflow import (
    TaintResult,
    instruction_writes,
    taint_at_terminator,
)
from repro.staticcheck.dominators import dominates, loop_body
from repro.staticcheck.ranges import RangeResult, block_exit_state

#: Bounds above this are treated as unknown (widened) rather than counted.
_MAX_FINITE_BOUND = 1 << 31


@dataclass(frozen=True)
class LoopTripInfo:
    """A proven counted loop, keyed by its back-edge branch block."""

    branch_block: str
    header: str
    iv_register: int
    bound_register: int
    step: int
    trip_lo: int
    trip_hi: int

    @property
    def exit_mispredict_rate(self) -> float:
        """Predicted misprediction rate of the loop-exit branch (~1/N)."""
        return 1.0 / max(1, self.trip_lo)


def _iv_step(program: Program, body: FrozenSet[str], reg: int) -> Optional[int]:
    """The affine step of ``reg`` over the loop body, if it has one.

    Requires exactly one write in the body, of the form
    ``reg <- reg + step`` with ``step >= 1``.
    """
    step: Optional[int] = None
    writes = 0
    for label in body:
        for ins in program.block(label).instructions:
            if instruction_writes(ins) != reg:
                continue
            writes += 1
            if (
                isinstance(ins, AluImm)
                and ins.op is AluOp.ADD
                and ins.src == reg
                and ins.imm >= 1
            ):
                step = ins.imm
            else:
                return None
    return step if writes == 1 else None


def _is_invariant(program: Program, body: FrozenSet[str], reg: int) -> bool:
    """True when no instruction in the loop body writes ``reg``."""
    return all(
        instruction_writes(ins) != reg
        for label in body
        for ins in program.block(label).instructions
    )


def entry_interval(
    program: Program,
    cfg: Cfg,
    ranges: RangeResult,
    body: FrozenSet[str],
    header: str,
    reg: int,
) -> Optional[Tuple[int, int]]:
    """Join ``reg``'s interval over the loop's entry edges (non-body
    predecessors of the header); None when the loop is never entered from
    outside (an unreachable or degenerate loop)."""
    lo: Optional[int] = None
    hi = 0
    for pred in cfg.preds[header]:
        if pred in body or pred not in cfg.reachable:
            continue
        state = block_exit_state(program, pred, ranges.block_in[pred])
        plo, phi = state[reg]
        lo = plo if lo is None else min(lo, plo)
        hi = max(hi, phi)
    if lo is None:
        return None
    return (lo, hi)


def _trip_interval(
    cond: Cond,
    continue_on_taken: bool,
    init: Tuple[int, int],
    bound: Tuple[int, int],
    step: int,
) -> Optional[Tuple[int, int]]:
    """Executions of the branch per loop entry, as an interval.

    The canonical shape is an up-counting IV compared against the bound,
    continuing while the comparison holds.  ``cond`` is normalized so the
    IV is the left operand; the *continue* condition (the branch outcome
    that stays in the loop) must be one of ``< <= !=`` — anything else is
    not an up-counted loop and returns None.
    """
    cont = cond if continue_on_taken else _NEGATED[cond]
    if cont not in (Cond.LT, Cond.LE, Cond.NE):
        return None
    extra = 1 if cont is Cond.LE else 0
    if cont is Cond.NE and step != 1:
        return None  # may step over the bound and never terminate
    ilo, ihi = init
    blo, bhi = bound

    def trips(b: int, i: int) -> int:
        return max(1, -(-(b + extra - i) // step))

    return (trips(blo, ihi), trips(bhi, ilo))


_NEGATED = {
    Cond.EQ: Cond.NE,
    Cond.NE: Cond.EQ,
    Cond.LT: Cond.GE,
    Cond.GE: Cond.LT,
    Cond.LE: Cond.GT,
    Cond.GT: Cond.LE,
}

#: Mirror of each condition under operand swap: ``a op b == b op' a``.
_SWAPPED = {
    Cond.EQ: Cond.EQ,
    Cond.NE: Cond.NE,
    Cond.LT: Cond.GT,
    Cond.GT: Cond.LT,
    Cond.LE: Cond.GE,
    Cond.GE: Cond.LE,
}


def analyze_loop_trips(
    program: Program,
    cfg: Cfg,
    idoms: Dict[str, Optional[str]],
    ranges: RangeResult,
    taint: TaintResult,
) -> Dict[str, LoopTripInfo]:
    """Prove trip counts for every counted back-edge branch.

    Returns a mapping from branch block label to its :class:`LoopTripInfo`;
    back-edge branches that don't fit the counted shape are simply absent.
    """
    out: Dict[str, LoopTripInfo] = {}
    for label, _ip, br in program.conditional_branches():
        if label not in cfg.reachable:
            continue
        headers = [
            t for t in (br.taken, br.not_taken) if dominates(idoms, t, label)
        ]
        if not headers:
            continue
        # A degenerate both-targets-dominate branch (e.g. a self-loop with
        # identical targets) still has a well-defined body per header; use
        # the first, the loop never exits statically anyway.
        header = headers[0]
        body = loop_body(cfg, label, header)

        data, _addr = taint_at_terminator(program, taint, label)
        state = ranges.at_terminator(program, label)
        for iv, bound_reg, cond in (
            (br.src1, br.src2, br.cond),
            (br.src2, br.src1, _SWAPPED[br.cond]),
        ):
            step = _iv_step(program, body, iv)
            if step is None:
                continue
            if not _is_invariant(program, body, bound_reg):
                continue
            if (data >> bound_reg) & 1:
                continue  # data-derived bound: not a counted loop
            blo, bhi = state[bound_reg]
            if bhi >= _MAX_FINITE_BOUND:
                continue
            init = entry_interval(program, cfg, ranges, body, header, iv)
            if init is None or init[1] >= _MAX_FINITE_BOUND:
                continue
            trip = _trip_interval(
                cond, br.taken == header, init, (blo, bhi), step
            )
            if trip is None:
                continue
            out[label] = LoopTripInfo(
                branch_block=label,
                header=header,
                iv_register=iv,
                bound_register=bound_reg,
                step=step,
                trip_lo=trip[0],
                trip_hi=trip[1],
            )
            break
    return out
