"""Synthetic workloads: SPECint-like benchmarks and LCF applications."""

from repro.workloads.base import (
    R_SEGMENT,
    WorkloadSpec,
    build_driver,
    execute_workload,
    make_input_data,
    trace_workload,
    workload_seed,
)
from repro.workloads.trace_store import TRACE_VERSION, TraceStore
from repro.workloads.kernels import (
    KernelHandles,
    R_ARG0,
    build_cold_check_kernel,
    build_h2p_kernel,
    build_loop_nest_kernel,
    build_pointer_chase_kernel,
    build_rare_dispatch_kernel,
    build_scan_kernel,
)
from repro.workloads.contracts import WORKLOAD_CONTRACTS
from repro.workloads.library import TraceLibrary, load_trace, save_trace
from repro.workloads.lcf import (
    LCF_BY_NAME,
    LCF_TRACE_INSTRUCTIONS,
    LCF_WORKLOADS,
    LcfAppParams,
    build_lcf_app,
)
from repro.workloads.specint import (
    SPECINT_BY_NAME,
    SPECINT_WORKLOADS,
    SPEC_TRACE_INSTRUCTIONS,
    SpecBenchParams,
    build_spec_benchmark,
)

ALL_WORKLOADS = SPECINT_WORKLOADS + LCF_WORKLOADS
WORKLOADS_BY_NAME = {**SPECINT_BY_NAME, **LCF_BY_NAME}

__all__ = [
    "ALL_WORKLOADS",
    "KernelHandles",
    "LCF_BY_NAME",
    "LCF_TRACE_INSTRUCTIONS",
    "LCF_WORKLOADS",
    "LcfAppParams",
    "R_ARG0",
    "R_SEGMENT",
    "SPECINT_BY_NAME",
    "SPECINT_WORKLOADS",
    "SPEC_TRACE_INSTRUCTIONS",
    "SpecBenchParams",
    "TRACE_VERSION",
    "TraceLibrary",
    "TraceStore",
    "WORKLOADS_BY_NAME",
    "WORKLOAD_CONTRACTS",
    "WorkloadSpec",
    "build_cold_check_kernel",
    "build_driver",
    "build_h2p_kernel",
    "build_lcf_app",
    "build_loop_nest_kernel",
    "build_pointer_chase_kernel",
    "build_rare_dispatch_kernel",
    "build_scan_kernel",
    "build_spec_benchmark",
    "execute_workload",
    "load_trace",
    "make_input_data",
    "save_trace",
    "trace_workload",
    "workload_seed",
]
