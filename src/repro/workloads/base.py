"""Workload specification and the phased top-level driver.

A workload is a synthetic program plus a set of *application inputs* (seeds
that change the input data but not the code), mirroring the paper's
methodology of tracing each benchmark over multiple inputs (after Amaral et
al.) so that H2P recurrence across inputs can be measured.

The driver gives every program macro-scale **phase structure**: execution
proceeds in rounds, and each round belongs to one of several *segments* that
invoke the program's kernels with different iteration weights (and steer the
dispatch kernels into different handler subsets).  SimPoint-style clustering
of basic-block vectors recovers these segments as phases (Table I's
"Avg # Phases").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.types import WorkloadTrace
from repro.isa.executor import ExecutionResult, Executor
from repro.isa.instructions import AluImm, AluOp, Call, Imm, Jmp, Switch
from repro.isa.program import Program, ProgramBuilder
from repro.workloads.kernels import R_ARG0

#: Register holding the current segment id (read by dispatch kernels).
R_SEGMENT = 55
_R_ROUND = 56

#: A segment is a list of (kernel entry label, iterations per round).
SegmentPlan = Sequence[Tuple[str, int]]


def build_driver(
    b: ProgramBuilder,
    segments: Sequence[SegmentPlan],
    rounds_per_segment: int = 4,
) -> None:
    """Wire the top-level phased driver into ``b`` (as the entry block).

    Rounds cycle through the segments: rounds ``[k*rps, (k+1)*rps)`` run
    segment ``k mod len(segments)``.  ``rounds_per_segment`` must be a power
    of two (the round->segment map uses a shift).
    """
    if not segments:
        raise ValueError("need at least one segment")
    if rounds_per_segment < 1 or rounds_per_segment & (rounds_per_segment - 1):
        raise ValueError("rounds_per_segment must be a power of two")
    log_rps = int(math.log2(rounds_per_segment))

    main = b.block("driver_main")
    b.set_entry(main.label)
    round_head = b.block("driver_round_head")
    round_tail = b.block("driver_round_tail")

    main.instructions = [Imm(_R_ROUND, 0)]
    main.terminator = Jmp(round_head.label)

    seg_entry_labels: List[str] = []
    for s, plan in enumerate(segments):
        if not plan:
            raise ValueError(f"segment {s} is empty")
        # One block per kernel call; Call needs an explicit return block.
        call_blocks = [b.block(f"driver_seg{s}_call{j}") for j in range(len(plan))]
        for j, (kernel_label, iterations) in enumerate(plan):
            if iterations < 1:
                raise ValueError("kernel iterations must be >= 1")
            blk = call_blocks[j]
            blk.instructions = [Imm(R_ARG0, iterations)]
            ret_to = (
                call_blocks[j + 1].label if j + 1 < len(plan) else round_tail.label
            )
            blk.terminator = Call(kernel_label, ret_to=ret_to)
        seg_entry_labels.append(call_blocks[0].label)

    round_head.instructions = [
        AluImm(AluOp.SHR, R_SEGMENT, _R_ROUND, log_rps),
        AluImm(AluOp.MOD, R_SEGMENT, R_SEGMENT, len(segments)),
    ]
    round_head.terminator = Switch(R_SEGMENT, tuple(seg_entry_labels))

    round_tail.instructions = [AluImm(AluOp.ADD, _R_ROUND, _R_ROUND, 1)]
    # The driver never exits on its own: the executor's instruction budget
    # bounds the run (a restart would reset round state anyway).
    round_tail.terminator = Jmp(round_head.label)


@dataclass(frozen=True)
class WorkloadSpec:
    """A named synthetic benchmark.

    Attributes:
        name: benchmark name (e.g. ``"641.leela_s"``).
        category: ``"specint"`` or ``"lcf"``.
        build: callable mapping an input index to a finalized
            :class:`Program` (same code for every input; only data differs).
        num_inputs: how many application inputs exist.
        default_instructions: trace length (retired instructions) for the
            standard experiments.
        description: one-line description for reports.
    """

    name: str
    category: str
    build: Callable[[int], Program]
    num_inputs: int
    default_instructions: int
    description: str = ""

    def input_name(self, input_index: int) -> str:
        return f"input{input_index}"


#: Finalized programs by ``(workload name, input index)``.  Builders are
#: deterministic, so one build per pair serves every client — and sharing
#: the *instance* lets ``repro.staticcheck`` reuse its per-``Program``
#: analysis memo across the lint CLI and the ``staticpred`` experiment.
_BUILD_CACHE: Dict[Tuple[str, int], Program] = {}


def build_cached(spec: WorkloadSpec, input_index: int) -> Program:
    """Build (or fetch the previously built) program for one input.

    Execution never mutates a :class:`Program`, so the cached instance is
    safe to share between tracing, linting, and cross-validation.
    """
    key = (spec.name, input_index)
    program = _BUILD_CACHE.get(key)
    if program is None:
        program = spec.build(input_index)
        _BUILD_CACHE[key] = program
    return program


def clear_build_cache() -> None:
    """Drop all cached programs (frees their static-analysis memos too)."""
    _BUILD_CACHE.clear()


def workload_seed(input_index: int) -> int:
    """Executor seed for one application input.

    Shared by trace generation and the trace-store key
    (:mod:`repro.workloads.trace_store`), so the two can never disagree
    about which execution a stored trace reproduces.
    """
    return 1000 * input_index + 17


def trace_workload(
    spec: WorkloadSpec,
    input_index: int,
    instructions: Optional[int] = None,
    **executor_kwargs,
) -> WorkloadTrace:
    """Build and execute one (workload, input) pair, returning its trace."""
    if not 0 <= input_index < spec.num_inputs:
        raise ValueError(
            f"{spec.name} has inputs 0..{spec.num_inputs - 1}, got {input_index}"
        )
    program = spec.build(input_index)
    executor = Executor(program, seed=workload_seed(input_index), **executor_kwargs)
    n = instructions if instructions is not None else spec.default_instructions
    result = executor.run(n)
    return WorkloadTrace(
        benchmark=spec.name,
        input_name=spec.input_name(input_index),
        trace=result.trace,
        metadata={"program": program, "instructions": n},
    )


def execute_workload(
    spec: WorkloadSpec,
    input_index: int,
    instructions: Optional[int] = None,
    **executor_kwargs,
) -> ExecutionResult:
    """Like :func:`trace_workload` but returns the full execution result
    (needed when instrumentation — dataflow, snapshots, BBVs — is on)."""
    if not 0 <= input_index < spec.num_inputs:
        raise ValueError(
            f"{spec.name} has inputs 0..{spec.num_inputs - 1}, got {input_index}"
        )
    program = spec.build(input_index)
    executor = Executor(program, seed=workload_seed(input_index), **executor_kwargs)
    n = instructions if instructions is not None else spec.default_instructions
    return executor.run(n)


def make_input_data(
    benchmark_seed: int, input_index: int, length: int, style: str = "uniform"
) -> np.ndarray:
    """Input-data arrays for a benchmark input.

    Styles shape the register-value distributions of Fig. 10:
    ``uniform`` — flat; ``zipf`` — heavy-tailed magnitudes; ``bimodal`` —
    two value clusters; ``lowcard`` — few distinct values.
    """
    rng = np.random.default_rng(benchmark_seed * 1009 + input_index * 7919 + 13)
    if style == "uniform":
        return rng.integers(0, 1 << 16, length)
    if style == "zipf":
        vals = rng.zipf(1.3, length).astype(np.int64)
        return np.minimum(vals * 37, (1 << 30) - 1)
    if style == "bimodal":
        lo = rng.integers(0, 256, length)
        hi = rng.integers(1 << 20, (1 << 20) + 4096, length)
        pick = rng.random(length) < 0.5
        return np.where(pick, lo, hi)
    if style == "lowcard":
        alphabet = rng.integers(0, 1 << 24, 12)
        return alphabet[rng.integers(0, len(alphabet), length)]
    raise ValueError(f"unknown data style {style!r}")
