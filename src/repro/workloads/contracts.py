"""Declared static-footprint contracts for every registered workload.

Each contract pins the workload's static shape — block count, conditional
branch count, and the loop / data-dependent / guard class mix computed by
:mod:`repro.staticcheck` — so a generator regression that silently changes
the structure behind Table I / Table II fails the ``staticcheck`` gate
(rule ``SC301``) before any simulation runs.

The generators are seed-deterministic, so bounds are exact.  After an
*intentional* structure change, regenerate this table with::

    PYTHONPATH=src python -m repro.staticcheck --emit-contracts

and review the diff like any other golden file.
"""

from __future__ import annotations

from typing import Dict

from repro.staticcheck.contracts import StaticContract

WORKLOAD_CONTRACTS: Dict[str, StaticContract] = {
    "600.perlbench_s": StaticContract(
        workload="600.perlbench_s",
        bounds={
            "blocks": (2250, 2250),
            "conditional_branches": (740, 740),
            "loop_branches": (2, 2),
            "data_branches": (738, 738),
            "guard_branches": (0, 0),
            "const_branches": (1, 1),
            "loop_exit_branches": (6, 6),
            "biased_branches": (9, 9),
            "correlated_branches": (0, 0),
            "h2p_candidate_branches": (4, 4),
            "rare_branches": (720, 720),
        },
    ),
    "602.gcc_s": StaticContract(
        workload="602.gcc_s",
        bounds={
            "blocks": (3485, 3485),
            "conditional_branches": (1149, 1149),
            "loop_branches": (3, 3),
            "data_branches": (596, 596),
            "guard_branches": (550, 550),
            "const_branches": (2, 2),
            "loop_exit_branches": (8, 8),
            "biased_branches": (11, 11),
            "correlated_branches": (550, 550),
            "h2p_candidate_branches": (8, 8),
            "rare_branches": (570, 570),
        },
    ),
    "605.mcf_s": StaticContract(
        workload="605.mcf_s",
        bounds={
            "blocks": (116, 116),
            "conditional_branches": (31, 31),
            "loop_branches": (2, 2),
            "data_branches": (29, 29),
            "guard_branches": (0, 0),
            "const_branches": (3, 3),
            "loop_exit_branches": (9, 9),
            "biased_branches": (5, 5),
            "correlated_branches": (0, 0),
            "h2p_candidate_branches": (14, 14),
            "rare_branches": (0, 0),
        },
    ),
    "620.omnetpp_s": StaticContract(
        workload="620.omnetpp_s",
        bounds={
            "blocks": (1210, 1210),
            "conditional_branches": (392, 392),
            "loop_branches": (2, 2),
            "data_branches": (390, 390),
            "guard_branches": (0, 0),
            "const_branches": (3, 3),
            "loop_exit_branches": (8, 8),
            "biased_branches": (9, 9),
            "correlated_branches": (0, 0),
            "h2p_candidate_branches": (12, 12),
            "rare_branches": (360, 360),
        },
    ),
    "623.xalancbmk_s": StaticContract(
        workload="623.xalancbmk_s",
        bounds={
            "blocks": (1904, 1904),
            "conditional_branches": (626, 626),
            "loop_branches": (2, 2),
            "data_branches": (624, 624),
            "guard_branches": (0, 0),
            "const_branches": (2, 2),
            "loop_exit_branches": (7, 7),
            "biased_branches": (9, 9),
            "correlated_branches": (0, 0),
            "h2p_candidate_branches": (8, 8),
            "rare_branches": (600, 600),
        },
    ),
    "625.x264_s": StaticContract(
        workload="625.x264_s",
        bounds={
            "blocks": (84, 84),
            "conditional_branches": (19, 19),
            "loop_branches": (2, 2),
            "data_branches": (17, 17),
            "guard_branches": (0, 0),
            "const_branches": (1, 1),
            "loop_exit_branches": (5, 5),
            "biased_branches": (9, 9),
            "correlated_branches": (0, 0),
            "h2p_candidate_branches": (4, 4),
            "rare_branches": (0, 0),
        },
    ),
    "631.deepsjeng_s": StaticContract(
        workload="631.deepsjeng_s",
        bounds={
            "blocks": (1462, 1462),
            "conditional_branches": (478, 478),
            "loop_branches": (2, 2),
            "data_branches": (476, 476),
            "guard_branches": (0, 0),
            "const_branches": (4, 4),
            "loop_exit_branches": (9, 9),
            "biased_branches": (9, 9),
            "correlated_branches": (0, 0),
            "h2p_candidate_branches": (16, 16),
            "rare_branches": (440, 440),
        },
    ),
    "641.leela_s": StaticContract(
        workload="641.leela_s",
        bounds={
            "blocks": (1031, 1031),
            "conditional_branches": (332, 332),
            "loop_branches": (2, 2),
            "data_branches": (330, 330),
            "guard_branches": (0, 0),
            "const_branches": (6, 6),
            "loop_exit_branches": (12, 12),
            "biased_branches": (9, 9),
            "correlated_branches": (0, 0),
            "h2p_candidate_branches": (25, 25),
            "rare_branches": (280, 280),
        },
    ),
    "648.exchange2_s": StaticContract(
        workload="648.exchange2_s",
        bounds={
            "blocks": (100, 100),
            "conditional_branches": (25, 25),
            "loop_branches": (2, 2),
            "data_branches": (23, 23),
            "guard_branches": (0, 0),
            "const_branches": (2, 2),
            "loop_exit_branches": (6, 6),
            "biased_branches": (9, 9),
            "correlated_branches": (0, 0),
            "h2p_candidate_branches": (8, 8),
            "rare_branches": (0, 0),
        },
    ),
    "657.xz_s": StaticContract(
        workload="657.xz_s",
        bounds={
            "blocks": (854, 854),
            "conditional_branches": (274, 274),
            "loop_branches": (2, 2),
            "data_branches": (272, 272),
            "guard_branches": (0, 0),
            "const_branches": (3, 3),
            "loop_exit_branches": (9, 9),
            "biased_branches": (9, 9),
            "correlated_branches": (0, 0),
            "h2p_candidate_branches": (13, 13),
            "rare_branches": (240, 240),
        },
    ),
    "game": StaticContract(
        workload="game",
        bounds={
            "blocks": (13617, 13617),
            "conditional_branches": (4523, 4523),
            "loop_branches": (3, 3),
            "data_branches": (4220, 4220),
            "guard_branches": (300, 300),
            "const_branches": (1, 1),
            "loop_exit_branches": (7, 7),
            "biased_branches": (11, 11),
            "correlated_branches": (300, 300),
            "h2p_candidate_branches": (4, 4),
            "rare_branches": (4200, 4200),
        },
    ),
    "nosql": StaticContract(
        workload="nosql",
        bounds={
            "blocks": (3315, 3315),
            "conditional_branches": (1093, 1093),
            "loop_branches": (3, 3),
            "data_branches": (740, 740),
            "guard_branches": (350, 350),
            "const_branches": (1, 1),
            "loop_exit_branches": (7, 7),
            "biased_branches": (11, 11),
            "correlated_branches": (350, 350),
            "h2p_candidate_branches": (4, 4),
            "rare_branches": (720, 720),
        },
    ),
    "rdbms": StaticContract(
        workload="rdbms",
        bounds={
            "blocks": (6325, 6325),
            "conditional_branches": (2095, 2095),
            "loop_branches": (3, 3),
            "data_branches": (1592, 1592),
            "guard_branches": (500, 500),
            "const_branches": (3, 3),
            "loop_exit_branches": (9, 9),
            "biased_branches": (11, 11),
            "correlated_branches": (500, 500),
            "h2p_candidate_branches": (12, 12),
            "rare_branches": (1560, 1560),
        },
    ),
    "rt_analytics": StaticContract(
        workload="rt_analytics",
        bounds={
            "blocks": (3005, 3005),
            "conditional_branches": (989, 989),
            "loop_branches": (3, 3),
            "data_branches": (566, 566),
            "guard_branches": (420, 420),
            "const_branches": (2, 2),
            "loop_exit_branches": (8, 8),
            "biased_branches": (11, 11),
            "correlated_branches": (420, 420),
            "h2p_candidate_branches": (8, 8),
            "rare_branches": (540, 540),
        },
    ),
    "streaming_server": StaticContract(
        workload="streaming_server",
        bounds={
            "blocks": (1446, 1446),
            "conditional_branches": (474, 474),
            "loop_branches": (3, 3),
            "data_branches": (311, 311),
            "guard_branches": (160, 160),
            "const_branches": (2, 2),
            "loop_exit_branches": (8, 8),
            "biased_branches": (11, 11),
            "correlated_branches": (160, 160),
            "h2p_candidate_branches": (8, 8),
            "rare_branches": (285, 285),
        },
    ),
}
