"""Dedicated workload for the CNN-helper study (paper Sec. V-C).

A compact program dominated by one *noisy-xor* H2P: its direction is the
XOR of the two dependency branches' data bits, but a genuinely random-length
noise loop separates the dependency branches from the H2P.  Exact-pattern
predictors (TAGE) must learn every (gap-combination, outcome) history
pattern separately and mispredict heavily at 8KB; a position-robust CNN
whose convolution window spans the dependency pair recovers the XOR rule
and approaches oracle accuracy.  Multiple inputs allow the cross-input
generalization measurement that the companion paper emphasizes (train on
some inputs, deploy on unseen ones).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.isa.program import Program, ProgramBuilder
from repro.workloads.base import WorkloadSpec, build_driver, make_input_data
from repro.workloads.kernels import (
    build_h2p_kernel,
    build_loop_nest_kernel,
    build_scan_kernel,
)

_DATA_LEN = 4093

#: Trace length for the helper study (enough H2P executions to train on).
HELPER_STUDY_INSTRUCTIONS = 400_000


def build_helper_study_program(input_index: int) -> Program:
    """One noisy-xor H2P kernel plus light easy filler."""
    import numpy as np

    b = ProgramBuilder("cnn_helper_study")
    b.data("input_data", make_input_data(900, input_index, _DATA_LEN, "uniform"))
    b.data(
        "scan_data",
        np.sort(make_input_data(902, input_index, _DATA_LEN, "uniform")),
    )

    h2p = build_h2p_kernel(
        b,
        "noisyxor",
        "input_data",
        _DATA_LEN,
        xor_correlated=True,
        noise_random=True,
    )
    loops = build_loop_nest_kernel(b, "loops", inner_trips=8)
    scan = build_scan_kernel(b, "scan", "scan_data", _DATA_LEN, bias_threshold=52000)

    segments: List[List[Tuple[str, int]]] = [
        [(h2p.entry, 400), (loops.entry, 60), (scan.entry, 150)],
        [(h2p.entry, 300), (loops.entry, 90), (scan.entry, 220)],
    ]
    build_driver(b, segments, rounds_per_segment=4)
    return b.build()


HELPER_STUDY_WORKLOAD = WorkloadSpec(
    name="cnn_helper_study",
    category="study",
    build=build_helper_study_program,
    num_inputs=4,
    default_instructions=HELPER_STUDY_INSTRUCTIONS,
    description="Noisy-xor H2P workload for the CNN helper-predictor study",
)


def h2p_branch_ip(program: Program) -> int:
    """The study H2P's branch IP (the ``noisyxor`` kernel's H2P block)."""
    return program.terminator_ip("noisyxor_h2p_pre")
