"""Reusable branch-behaviour kernels.

Synthetic benchmarks are composed from these kernels, each of which realizes
one of the branch populations the paper characterizes:

* :func:`build_loop_nest_kernel` — regular nested loops: highly predictable,
  exercises the loop predictor and IMLI.
* :func:`build_scan_kernel` — mostly-biased data scans: the easy bulk that
  keeps aggregate accuracy high, as in SPECint.
* :func:`build_h2p_kernel` — a *hard-to-predict* branch: its condition mixes
  two values loaded from input data; earlier branches test parts of the same
  values (ground-truth **dependency branches**), and a variable-trip noise
  loop between them smears the dependency branches across history positions
  — the paper's Sec. IV-A mechanism for why TAGE's exact pattern matching
  struggles.
* :func:`build_pointer_chase_kernel` — an mcf-like pointer chase with a
  data-dependent branch.
* :func:`build_rare_dispatch_kernel` — input-driven dispatch into a large
  population of cold handlers full of low-execution-count branches: the
  rare-branch population of the LCF applications.
* :func:`build_cold_check_kernel` — almost-never-taken error checks.

Every kernel is a subroutine: the caller places the iteration count in
register ``R_ARG0`` and ``Call``s the kernel's entry block; the kernel
``Ret``s when done.  All kernels keep their locals in registers r1-r30, so
they may be freely sequenced.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.isa.instructions import (
    Alu,
    AluImm,
    AluOp,
    ArrayBase,
    Br,
    Cond,
    Imm,
    Jmp,
    Load,
    Nop,
    Rand,
    Ret,
    Store,
    Switch,
)
from repro.isa.program import ProgramBuilder

#: Calling convention: iteration count / kernel arguments.
R_ARG0 = 50
R_ARG1 = 51
R_ARG2 = 52

#: Registers holding the most recent data values in the H2P kernels; these
#: are inside the default 18 registers the Fig. 10 snapshotting tracks.
R_VALUE_A = 5
R_VALUE_B = 6


@dataclass
class KernelHandles:
    """What a kernel builder returns.

    Attributes:
        entry: label of the kernel's entry block (the ``Call`` target).
        h2p_labels: labels of blocks whose terminator is the kernel's
            hard-to-predict branch(es) (empty for easy kernels).
        dependency_labels: labels of blocks ending in ground-truth
            dependency branches of the H2P(s).
    """

    entry: str
    h2p_labels: List[str]
    dependency_labels: List[str]


def build_loop_nest_kernel(
    b: ProgramBuilder, name: str, inner_trips: int = 12, body_nops: int = 2
) -> KernelHandles:
    """``R_ARG0`` outer iterations, each running a fixed-trip inner loop."""
    if inner_trips < 1:
        raise ValueError("inner_trips must be >= 1")
    entry = b.block(f"{name}_entry")
    outer = b.block(f"{name}_outer")
    inner = b.block(f"{name}_inner")
    outer_tail = b.block(f"{name}_outer_tail")
    done = b.block(f"{name}_done")

    entry.instructions = [Imm(1, 0)]  # r1 = outer index
    entry.terminator = Jmp(outer.label)

    outer.instructions = [Imm(2, 0)]  # r2 = inner index
    outer.terminator = Jmp(inner.label)

    inner.instructions = [Nop()] * body_nops + [AluImm(AluOp.ADD, 2, 2, 1)]
    inner.terminator = Br(Cond.LT, 2, 3, inner.label, outer_tail.label)
    # r3 holds inner_trips; set in entry so the compare has a register.
    entry.instructions.append(Imm(3, inner_trips))

    outer_tail.instructions = [AluImm(AluOp.ADD, 1, 1, 1)]
    outer_tail.terminator = Br(Cond.LT, 1, R_ARG0, outer.label, done.label)

    done.terminator = Ret()
    return KernelHandles(entry=entry.label, h2p_labels=[], dependency_labels=[])


def build_scan_kernel(
    b: ProgramBuilder,
    name: str,
    data_name: str,
    data_len: int,
    bias_threshold: int,
    stride: int = 1,
) -> KernelHandles:
    """Scans a data array, branching on ``value < bias_threshold``.

    With a skewed array this is a biased, highly-predictable branch — the
    bulk population that keeps SPECint aggregate accuracy near 0.95+.
    """
    entry = b.block(f"{name}_entry")
    loop = b.block(f"{name}_loop")
    hit = b.block(f"{name}_hit")
    miss = b.block(f"{name}_miss")
    tail = b.block(f"{name}_tail")
    done = b.block(f"{name}_done")

    entry.instructions = [
        ArrayBase(1, data_name),
        Imm(2, 0),  # element index
        Imm(3, 0),  # iteration counter
        Imm(4, bias_threshold),
    ]
    entry.terminator = Jmp(loop.label)

    loop.instructions = [
        Alu(AluOp.ADD, 7, 1, 2),
        Load(R_VALUE_A, 7),
        AluImm(AluOp.ADD, 2, 2, stride),
        AluImm(AluOp.MOD, 2, 2, data_len),
    ]
    loop.terminator = Br(Cond.LT, R_VALUE_A, 4, hit.label, miss.label)

    hit.instructions = [AluImm(AluOp.ADD, 8, 8, 1)]
    hit.terminator = Jmp(tail.label)
    miss.instructions = [Nop()]
    miss.terminator = Jmp(tail.label)

    tail.instructions = [AluImm(AluOp.ADD, 3, 3, 1)]
    tail.terminator = Br(Cond.LT, 3, R_ARG0, loop.label, done.label)
    done.terminator = Ret()
    return KernelHandles(entry=entry.label, h2p_labels=[], dependency_labels=[])


def build_h2p_kernel(
    b: ProgramBuilder,
    name: str,
    data_name: str,
    data_len: int,
    h2p_threshold: int = 128,
    dep_a_threshold: int = 4,
    dep_b_threshold: int = 4,
    xor_correlated: bool = False,
    noise_random: bool = False,
    stride_a: int = 1,
    stride_b: int = 7,
) -> KernelHandles:
    """The H2P generator (see module docstring).

    Per iteration it loads ``v`` and ``w`` from two strided streams over the
    input array, executes two *dependency branches* testing parts of ``v``
    and ``w`` (biased by ``dep_?_threshold`` of 16, so they are hard but not
    coin flips), runs a noise loop whose trip count ``2 + depA + 2*depB`` is
    a function of the dependency-branch outcomes just recorded in the
    history (so its branches are learnable, while the varying trip count
    still shifts the dependency branches' history positions — or, with
    ``noise_random``, a genuinely random count), then executes the H2P
    branch:

    * default: taken iff ``(v ^ w) & 0xFF < h2p_threshold`` — pseudo-random
      at rate ``h2p_threshold/256``, weakly correlated with the dependency
      branches;
    * ``xor_correlated=True``: taken iff ``(v & 1) ^ (w & 1)`` — *fully
      determined* by the two dependency branches' data, but the varying gap
      defeats exact-position pattern matching (the helper-predictor
      opportunity of Sec. V).
    """
    if data_len < 8:
        raise ValueError("data_len too small")
    if not 1 <= dep_a_threshold <= 15 or not 1 <= dep_b_threshold <= 15:
        raise ValueError("dependency thresholds must be in 1..15")
    entry = b.block(f"{name}_entry")
    loop = b.block(f"{name}_loop")
    dep_a_t = b.block(f"{name}_depa_t")
    dep_a_f = b.block(f"{name}_depa_f")
    dep_b_pre = b.block(f"{name}_depb_pre")
    dep_b_t = b.block(f"{name}_depb_t")
    dep_b_f = b.block(f"{name}_depb_f")
    noise_head = b.block(f"{name}_noise_head")
    noise_body = b.block(f"{name}_noise_body")
    h2p_pre = b.block(f"{name}_h2p_pre")
    h2p_t = b.block(f"{name}_h2p_t")
    h2p_f = b.block(f"{name}_h2p_f")
    tail = b.block(f"{name}_tail")
    done = b.block(f"{name}_done")

    # Stream indices persist across kernel invocations (in memory cells);
    # otherwise every call would replay the same data prefix and an
    # exact-pattern matcher could simply memorize it.
    state = b.data(f"{name}_state", [0, data_len // 2])
    entry.instructions = [
        ArrayBase(1, data_name),
        ArrayBase(24, state),
        Load(2, 24, 0),  # stream A index
        Load(3, 24, 1),  # stream B index
        Imm(4, 0),  # iteration counter
    ]
    entry.terminator = Jmp(loop.label)

    loop.instructions = [
        Alu(AluOp.ADD, 7, 1, 2),
        Load(R_VALUE_A, 7),  # v
        Alu(AluOp.ADD, 8, 1, 3),
        Load(R_VALUE_B, 8),  # w
        AluImm(AluOp.ADD, 2, 2, stride_a),
        AluImm(AluOp.MOD, 2, 2, data_len),
        AluImm(AluOp.ADD, 3, 3, stride_b),
        AluImm(AluOp.MOD, 3, 3, data_len),
        AluImm(AluOp.AND, 18, R_VALUE_A, 1),  # v & 1 (feeds noise/xor)
        AluImm(AluOp.AND, 19, R_VALUE_B, 1),  # w & 1
        AluImm(AluOp.AND, 9, R_VALUE_A, 0xF),
        Imm(17, 0),
        Imm(10, dep_a_threshold),
    ]
    # Dependency branch A: tests low bits of v (bias = dep_a_threshold/16;
    # in xor mode it tests exactly v & 1 so it reveals the H2P's operand).
    loop.terminator = (
        Br(Cond.NE, 18, 17, dep_a_t.label, dep_a_f.label)
        if xor_correlated
        else Br(Cond.LT, 9, 10, dep_a_t.label, dep_a_f.label)
    )

    dep_a_t.instructions = [Imm(25, 1)]  # r25 = depA outcome
    dep_a_t.terminator = Jmp(dep_b_pre.label)
    dep_a_f.instructions = [Imm(25, 0)]
    dep_a_f.terminator = Jmp(dep_b_pre.label)

    dep_b_pre.instructions = [
        AluImm(AluOp.AND, 11, R_VALUE_B, 0xF),
        Imm(12, dep_b_threshold),
        Imm(17, 0),
    ]
    # Dependency branch B: tests low bits of w.
    dep_b_pre.terminator = (
        Br(Cond.NE, 19, 17, dep_b_t.label, dep_b_f.label)
        if xor_correlated
        else Br(Cond.LT, 11, 12, dep_b_t.label, dep_b_f.label)
    )

    dep_b_t.instructions = [Imm(26, 1)]  # r26 = depB outcome
    dep_b_t.terminator = Jmp(noise_head.label)
    dep_b_f.instructions = [Imm(26, 0)]
    dep_b_f.terminator = Jmp(noise_head.label)

    # Noise loop: a variable number of branches between the dependency
    # branches and the H2P.  Default mode: trip count 2 + depA + 2*depB — a
    # function of the two branch outcomes just recorded in the global
    # history, so these branches are fully learnable; their purpose is
    # purely to smear the dependency branches over history positions as
    # seen from the H2P.  ``noise_random``: the trip count comes from an
    # independent input value, so the dependency-to-H2P gap is genuinely
    # random — exact-pattern matchers must learn every (gap, outcome)
    # combination separately, while position-robust models need not (the
    # CNN-helper opportunity).
    noise_head.instructions = (
        [
            Rand(13, 0, 8),
            AluImm(AluOp.ADD, 13, 13, 2),
            Imm(14, 0),
        ]
        if noise_random
        else [
            AluImm(AluOp.MUL, 13, 26, 2),
            Alu(AluOp.ADD, 13, 13, 25),
            AluImm(AluOp.ADD, 13, 13, 2),
            Imm(14, 0),
        ]
    )
    noise_head.terminator = Br(Cond.LT, 14, 13, noise_body.label, h2p_pre.label)
    noise_body.instructions = [Nop(), AluImm(AluOp.ADD, 14, 14, 1)]
    noise_body.terminator = Br(Cond.LT, 14, 13, noise_body.label, h2p_pre.label)

    if xor_correlated:
        h2p_pre.instructions = [
            Alu(AluOp.XOR, 15, 18, 19),  # (v & 1) ^ (w & 1)
            Imm(16, 0),
        ]
        h2p_pre.terminator = Br(Cond.NE, 15, 16, h2p_t.label, h2p_f.label)
    else:
        h2p_pre.instructions = [
            Alu(AluOp.XOR, 15, R_VALUE_A, R_VALUE_B),
            AluImm(AluOp.AND, 15, 15, 0xFF),
            Imm(16, h2p_threshold),
        ]
        h2p_pre.terminator = Br(Cond.LT, 15, 16, h2p_t.label, h2p_f.label)

    h2p_t.instructions = [AluImm(AluOp.ADD, 17, 17, 1)]
    h2p_t.terminator = Jmp(tail.label)
    h2p_f.instructions = [Nop()]
    h2p_f.terminator = Jmp(tail.label)

    tail.instructions = [AluImm(AluOp.ADD, 4, 4, 1)]
    tail.terminator = Br(Cond.LT, 4, R_ARG0, loop.label, done.label)
    done.instructions = [Store(2, 24, 0), Store(3, 24, 1)]
    done.terminator = Ret()

    return KernelHandles(
        entry=entry.label,
        h2p_labels=[h2p_pre.label],
        dependency_labels=[loop.label, dep_b_pre.label],
    )


def build_pointer_chase_kernel(
    b: ProgramBuilder,
    name: str,
    perm_name: str,
    vals_name: str,
    data_len: int,
    threshold: int = 128,
) -> KernelHandles:
    """mcf-like pointer chase: follow a permutation, branch on loaded data."""
    entry = b.block(f"{name}_entry")
    loop = b.block(f"{name}_loop")
    taken = b.block(f"{name}_taken")
    fall = b.block(f"{name}_fall")
    tail = b.block(f"{name}_tail")
    done = b.block(f"{name}_done")

    state = b.data(f"{name}_state", [0])
    entry.instructions = [
        ArrayBase(1, perm_name),
        ArrayBase(2, vals_name),
        ArrayBase(12, state),
        Load(3, 12),  # cursor persists across invocations
        Imm(4, 0),  # counter
        Imm(9, threshold),
    ]
    entry.terminator = Jmp(loop.label)

    loop.instructions = [
        Alu(AluOp.ADD, 7, 1, 3),
        Load(3, 7),  # cursor = perm[cursor]
        Alu(AluOp.ADD, 8, 2, 3),
        Load(R_VALUE_A, 8),  # value at the new node
        AluImm(AluOp.AND, 10, R_VALUE_A, 0xFF),
    ]
    loop.terminator = Br(Cond.LT, 10, 9, taken.label, fall.label)

    taken.instructions = [AluImm(AluOp.ADD, 11, 11, 1)]
    taken.terminator = Jmp(tail.label)
    fall.instructions = [Nop()]
    fall.terminator = Jmp(tail.label)

    tail.instructions = [AluImm(AluOp.ADD, 4, 4, 1)]
    tail.terminator = Br(Cond.LT, 4, R_ARG0, loop.label, done.label)
    done.instructions = [Store(3, 12)]
    done.terminator = Ret()
    return KernelHandles(
        entry=entry.label, h2p_labels=[loop.label], dependency_labels=[]
    )


def build_rare_dispatch_kernel(
    b: ProgramBuilder,
    name: str,
    num_handlers: int,
    branches_per_handler: int,
    rng: random.Random,
    handlers_per_segment: Optional[int] = None,
    segment_reg: Optional[int] = None,
    hard_fraction: float = 0.3,
    patterned_fraction: float = 0.25,
) -> KernelHandles:
    """Input-driven dispatch into a large cold-handler population.

    Each iteration selects a handler (uniformly within the current
    *segment's* handler range when ``segment_reg`` is given, modelling code
    regions touched only in some program phases) through an indirect switch.
    Handlers contain ``branches_per_handler`` conditional branches in three
    classes:

    * **hard** (``hard_fraction``): fresh Bernoulli draws near 50/50 —
      irreducibly unpredictable;
    * **patterned** (``patterned_fraction``): a deterministic periodic
      direction driven by a per-branch visit counter — fully learnable, but
      only if the predictor can *keep* the entry between the branch's widely
      spaced executions.  These realize the paper's capacity-limited
      behaviour: accuracy improves when TAGE storage grows (Fig. 7);
    * **easy** (the rest): heavily biased, most fully deterministic — real
      rare branches are dominated by always/never-taken checks (Fig. 3's
      mass at >=0.99 accuracy).

    With many handlers each branch executes only a handful of times per
    slice — the rare-branch population of Tables II / Figs. 3-4.
    """
    if num_handlers < 1 or branches_per_handler < 1:
        raise ValueError("invalid dispatch shape")
    if hard_fraction + patterned_fraction > 1.0:
        raise ValueError("hard_fraction + patterned_fraction must be <= 1")
    entry = b.block(f"{name}_entry")
    loop = b.block(f"{name}_loop")
    tail = b.block(f"{name}_tail")
    done = b.block(f"{name}_done")

    # One visit counter per (handler, branch) for the patterned class.
    counters = b.data(
        f"{name}_counters", [0] * (num_handlers * branches_per_handler)
    )

    handler_labels: List[str] = []
    for h in range(num_handlers):
        prev = None
        first_label = None
        for j in range(branches_per_handler):
            blk = b.block(f"{name}_h{h}_b{j}")
            roll = rng.random()
            if roll < hard_fraction:
                bias = rng.randint(35, 65)  # hard: near-50/50
                blk.instructions = [Rand(20, 0, 100), Imm(21, bias)]
                blk_cond = (Cond.LT, 20, 21)
            elif roll < hard_fraction + patterned_fraction:
                period = rng.choice([3, 4, 6, 8])
                # Biased periodic: one exceptional direction per period.  A
                # plain counter learns the bias quickly; perfecting the
                # exception takes a retained (capacity-sensitive) entry.
                split = rng.choice([1, period - 1])
                cell = h * branches_per_handler + j
                blk.instructions = [
                    ArrayBase(27, counters, offset=cell),
                    Load(20, 27),
                    AluImm(AluOp.ADD, 28, 20, 1),
                    Store(28, 27),
                    AluImm(AluOp.MOD, 20, 20, period),
                    Imm(21, split),
                ]
                blk_cond = (Cond.LT, 20, 21)
            else:
                # Easy: heavily biased, most fully deterministic.
                bias = rng.choice([0, 0, 1, 2, 98, 99, 100, 100])
                blk.instructions = [Rand(20, 0, 100), Imm(21, bias)]
                blk_cond = (Cond.LT, 20, 21)
            t_blk = b.block(f"{name}_h{h}_b{j}_t")
            t_blk.instructions = [AluImm(AluOp.ADD, 22, 22, 1)]
            f_blk = b.block(f"{name}_h{h}_b{j}_f")
            f_blk.instructions = [Nop()]
            blk.terminator = Br(blk_cond[0], blk_cond[1], blk_cond[2], t_blk.label, f_blk.label)
            if first_label is None:
                first_label = blk.label
            if prev is not None:
                prev[0].terminator = Jmp(blk.label)
                prev[1].terminator = Jmp(blk.label)
            prev = (t_blk, f_blk)
        prev[0].terminator = Jmp(tail.label)
        prev[1].terminator = Jmp(tail.label)
        handler_labels.append(first_label)

    entry.instructions = [Imm(2, 0)]  # counter
    entry.terminator = Jmp(loop.label)

    loop.instructions = (
        # handler = segment * handlers_per_segment + rand % handlers_per_segment
        [
            Rand(23, 0, handlers_per_segment),
            AluImm(AluOp.MUL, 24, segment_reg, handlers_per_segment),
            Alu(AluOp.ADD, 23, 23, 24),
            AluImm(AluOp.MOD, 23, 23, num_handlers),
        ]
        if handlers_per_segment and segment_reg is not None
        else [Rand(23, 0, num_handlers)]
    )
    loop.terminator = Switch(23, tuple(handler_labels))

    tail.instructions = [AluImm(AluOp.ADD, 2, 2, 1)]
    tail.terminator = Br(Cond.LT, 2, R_ARG0, loop.label, done.label)
    done.terminator = Ret()
    return KernelHandles(entry=entry.label, h2p_labels=[], dependency_labels=[])


def build_periodic_workingset_kernel(
    b: ProgramBuilder,
    name: str,
    num_branches: int,
    rng: random.Random,
) -> KernelHandles:
    """A large working set of individually-predictable branches.

    ``R_ARG0`` sweeps; each sweep visits ``num_branches`` chained branches,
    every one a deterministic periodic function of the sweep counter (with a
    per-branch period and phase).  Each branch is perfectly predictable
    *given a retained table entry per (branch, period-phase)* — but the
    combined working set exceeds a small predictor's storage, so an 8KB
    TAGE must keep "forgetting predictive patterns to make room for new
    ones" (Sec. IV-B) while 64KB+ retains them.  This realizes the
    capacity-limited population behind the paper's Fig. 7 storage sweep.
    """
    if num_branches < 1:
        raise ValueError("num_branches must be >= 1")
    entry = b.block(f"{name}_entry")
    tail = b.block(f"{name}_tail")
    done = b.block(f"{name}_done")

    entry.instructions = [Imm(2, 0)]  # sweep counter
    entry.terminator = Jmp(f"{name}_b0")

    for j in range(num_branches):
        blk = b.block(f"{name}_b{j}")
        period = rng.choice([3, 4, 5, 6, 7, 8])
        phase = rng.randrange(period)
        split = rng.randint(1, period - 1)
        blk.instructions = [
            AluImm(AluOp.ADD, 20, 2, phase),
            AluImm(AluOp.MOD, 20, 20, period),
            Imm(21, split),
        ]
        t_blk = b.block(f"{name}_b{j}_t")
        t_blk.instructions = [AluImm(AluOp.ADD, 22, 22, 1)]
        f_blk = b.block(f"{name}_b{j}_f")
        f_blk.instructions = [Nop()]
        blk.terminator = Br(Cond.LT, 20, 21, t_blk.label, f_blk.label)
        nxt = f"{name}_b{j + 1}" if j + 1 < num_branches else tail.label
        t_blk.terminator = Jmp(nxt)
        f_blk.terminator = Jmp(nxt)

    tail.instructions = [AluImm(AluOp.ADD, 2, 2, 1)]
    tail.terminator = Br(Cond.LT, 2, R_ARG0, f"{name}_b0", done.label)
    done.terminator = Ret()
    return KernelHandles(entry=entry.label, h2p_labels=[], dependency_labels=[])


def build_cold_check_kernel(
    b: ProgramBuilder, name: str, num_checks: int = 8, take_one_in: int = 512
) -> KernelHandles:
    """A chain of almost-never-taken error checks (very predictable, but
    adds static branch population with extreme bias)."""
    if num_checks < 1 or take_one_in < 2:
        raise ValueError("invalid cold-check shape")
    entry = b.block(f"{name}_entry")
    loop_head = b.block(f"{name}_loop")
    entry.instructions = [Imm(2, 0)]
    entry.terminator = Jmp(loop_head.label)

    prev_join = loop_head
    prev_join.instructions = [Nop()]
    chain_start: Optional[str] = None
    for j in range(num_checks):
        check = b.block(f"{name}_chk{j}")
        check.instructions = [Rand(20, 0, take_one_in), Imm(21, 1)]
        handler = b.block(f"{name}_chk{j}_err")
        handler.instructions = [Nop(), Nop()]
        joined = b.block(f"{name}_chk{j}_join")
        joined.instructions = [Nop()]
        check.terminator = Br(Cond.LT, 20, 21, handler.label, joined.label)
        handler.terminator = Jmp(joined.label)
        prev_join.terminator = Jmp(check.label)
        prev_join = joined
        if chain_start is None:
            chain_start = check.label

    tail = b.block(f"{name}_tail")
    done = b.block(f"{name}_done")
    prev_join.terminator = Jmp(tail.label)
    tail.instructions = [AluImm(AluOp.ADD, 2, 2, 1)]
    tail.terminator = Br(Cond.LT, 2, R_ARG0, loop_head.label, done.label)
    done.terminator = Ret()
    return KernelHandles(entry=entry.label, h2p_labels=[], dependency_labels=[])
