"""Large-code-footprint (LCF) synthetic applications.

The paper's Table II applications (602.gcc_s plus five traced from live
deployments: a game, an RDBMS, a NoSQL database, a real-time analytics
engine, and a streaming server) share one defining property: thousands of
static branches, most executing only a handful of times per 30M-instruction
trace.  These synthetics realize that with large dispatch-handler
populations (segment-gated, so different phases touch different code), a
small number of H2P kernels (Table II reports 1-8 H2Ps each), and varying
amounts of hot easy work which sets the execs-per-static-branch ordering:
the streaming server re-runs a small code footprint constantly (highest
execs/branch), while the game spreads execution across the largest
population (lowest).
"""

from __future__ import annotations

import random

import numpy as np
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.isa.program import Program, ProgramBuilder
from repro.workloads.base import (
    R_SEGMENT,
    WorkloadSpec,
    build_driver,
    make_input_data,
)
from repro.workloads.kernels import (
    build_cold_check_kernel,
    build_h2p_kernel,
    build_loop_nest_kernel,
    build_periodic_workingset_kernel,
    build_rare_dispatch_kernel,
    build_scan_kernel,
)

_DATA_LEN = 4093


@dataclass(frozen=True)
class LcfAppParams:
    """Composition knobs for one LCF application."""

    name: str
    seed: int
    data_style: str = "uniform"
    num_inputs: int = 1
    dispatch_handlers: int = 600
    dispatch_branches_per_handler: int = 3
    dispatch_iters: int = 300
    dispatch_hard_fraction: float = 0.4
    dispatch_patterned_fraction: float = 0.20
    workingset_branches: int = 400
    workingset_sweeps: int = 2
    handlers_per_segment: int = 120
    # H2P kernels: (threshold, xor_correlated, iterations-per-round)
    h2p_kernels: Tuple[Tuple[int, bool, int], ...] = ()
    loop_nest_iters: int = 60
    scan_iters: int = 200
    scan_bias: int = 52000
    cold_checks: int = 10
    num_segments: int = 6
    rounds_per_segment: int = 4


def build_lcf_app(params: LcfAppParams, input_index: int) -> Program:
    """Construct the program for one input of an LCF application."""
    b = ProgramBuilder(params.name)
    structure_rng = random.Random(params.seed)

    b.data("input_data", make_input_data(params.seed, input_index, _DATA_LEN, params.data_style))
    # The scan kernel sweeps a *sorted* copy: its branch direction changes
    # only at the threshold crossing once per sweep, so it is easy work.
    b.data(
        "scan_data",
        np.sort(make_input_data(params.seed + 2, input_index, _DATA_LEN, "uniform")),
    )

    kernels: List[Tuple[str, int]] = []
    loops = build_loop_nest_kernel(b, "loops", inner_trips=10)
    kernels.append((loops.entry, params.loop_nest_iters))
    scan = build_scan_kernel(
        b, "scan", "scan_data", _DATA_LEN, bias_threshold=params.scan_bias
    )
    kernels.append((scan.entry, params.scan_iters))

    h2p_entries: List[Tuple[str, int]] = []
    for k, (threshold, xor_corr, iters) in enumerate(params.h2p_kernels):
        h = build_h2p_kernel(
            b,
            f"h2p{k}",
            "input_data",
            _DATA_LEN,
            h2p_threshold=threshold,
            xor_correlated=xor_corr,
            stride_a=1 + 2 * k,
            stride_b=7 + 4 * k,
        )
        h2p_entries.append((h.entry, iters))

    d = build_rare_dispatch_kernel(
        b,
        "dispatch",
        num_handlers=params.dispatch_handlers,
        branches_per_handler=params.dispatch_branches_per_handler,
        rng=structure_rng,
        handlers_per_segment=params.handlers_per_segment or None,
        segment_reg=R_SEGMENT if params.handlers_per_segment else None,
        hard_fraction=params.dispatch_hard_fraction,
        patterned_fraction=params.dispatch_patterned_fraction,
    )
    dispatch_entry = (d.entry, params.dispatch_iters)

    cold = build_cold_check_kernel(b, "cold", num_checks=params.cold_checks)
    workingset = None
    if params.workingset_branches > 0:
        workingset = build_periodic_workingset_kernel(
            b, "wset", params.workingset_branches, structure_rng
        )

    segments: List[List[Tuple[str, int]]] = []
    for s in range(params.num_segments):
        plan: List[Tuple[str, int]] = []
        hot = s % 2 == 0
        for entry, iters in kernels:
            plan.append((entry, max(1, int(iters * (0.7 if hot else 1.2)))))
        for entry, iters in h2p_entries:
            plan.append((entry, max(1, int(iters * (1.2 if hot else 0.6)))))
        plan.append((dispatch_entry[0], max(1, int(dispatch_entry[1] * (1.3 if hot else 0.8)))))
        if workingset is not None:
            plan.append((workingset.entry, params.workingset_sweeps))
        plan.append((cold.entry, 30))
        segments.append(plan)

    build_driver(b, segments, rounds_per_segment=params.rounds_per_segment)
    return b.build()


#: Default LCF trace length: one scaled 30M-instruction trace (Table II
#: analyzes "a single 30M-instruction trace for each application").
LCF_TRACE_INSTRUCTIONS = 300_000

_LCF_PARAMS: Tuple[LcfAppParams, ...] = (
    LcfAppParams(
        name="602.gcc_s",
        seed=602,
        data_style="uniform",
        dispatch_handlers=190,
        dispatch_branches_per_handler=3,
        dispatch_iters=220,
        dispatch_hard_fraction=0.30,
        handlers_per_segment=180,
        h2p_kernels=((120, False, 160), (96, False, 120)),
        loop_nest_iters=70,
        scan_iters=320,
        workingset_branches=550,
        num_segments=6,
    ),
    LcfAppParams(
        name="game",
        seed=701,
        data_style="bimodal",
        dispatch_handlers=1400,
        dispatch_branches_per_handler=3,
        dispatch_iters=420,
        dispatch_hard_fraction=0.45,
        handlers_per_segment=350,
        h2p_kernels=((128, False, 60),),
        loop_nest_iters=25,
        scan_iters=60,
        workingset_branches=300,
        num_segments=8,
    ),
    LcfAppParams(
        name="rdbms",
        seed=702,
        data_style="zipf",
        dispatch_handlers=520,
        dispatch_branches_per_handler=3,
        dispatch_iters=280,
        dispatch_hard_fraction=0.22,
        handlers_per_segment=230,
        h2p_kernels=((96, False, 140), (112, True, 110), (80, False, 90)),
        loop_nest_iters=70,
        scan_iters=260,
        workingset_branches=500,
        num_segments=6,
    ),
    LcfAppParams(
        name="nosql",
        seed=703,
        data_style="lowcard",
        dispatch_handlers=240,
        dispatch_branches_per_handler=3,
        dispatch_iters=240,
        dispatch_hard_fraction=0.20,
        handlers_per_segment=190,
        h2p_kernels=((88, False, 120),),
        loop_nest_iters=80,
        scan_iters=300,
        workingset_branches=350,
        num_segments=6,
    ),
    LcfAppParams(
        name="rt_analytics",
        seed=704,
        data_style="uniform",
        dispatch_handlers=180,
        dispatch_branches_per_handler=3,
        dispatch_iters=200,
        dispatch_hard_fraction=0.40,
        handlers_per_segment=160,
        h2p_kernels=((128, False, 180), (120, True, 140)),
        loop_nest_iters=60,
        scan_iters=220,
        workingset_branches=420,
        num_segments=6,
    ),
    LcfAppParams(
        name="streaming_server",
        seed=705,
        data_style="bimodal",
        dispatch_handlers=95,
        dispatch_branches_per_handler=3,
        dispatch_iters=240,
        dispatch_hard_fraction=0.45,
        handlers_per_segment=24,
        h2p_kernels=((136, False, 220), (112, False, 180)),
        loop_nest_iters=70,
        scan_iters=240,
        workingset_branches=160,
        num_segments=4,
    ),
)


def _make_lcf(params: LcfAppParams) -> WorkloadSpec:
    return WorkloadSpec(
        name=params.name,
        category="lcf",
        build=lambda input_index, p=params: build_lcf_app(p, input_index),
        num_inputs=params.num_inputs,
        default_instructions=LCF_TRACE_INSTRUCTIONS,
        description=f"Large-code-footprint synthetic application ({params.name})",
    )


#: The six LCF applications (Table II's rows).
LCF_WORKLOADS: Tuple[WorkloadSpec, ...] = tuple(_make_lcf(p) for p in _LCF_PARAMS)

LCF_BY_NAME: Dict[str, WorkloadSpec] = {w.name: w for w in LCF_WORKLOADS}

LCF_PARAMS_BY_NAME: Dict[str, LcfAppParams] = {p.name: p for p in _LCF_PARAMS}
