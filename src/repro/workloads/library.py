"""On-disk trace library (the offline-training substrate of Sec. V).

The paper's proposed deployment rests on "collecting multiple long-duration
traces of an application, executing over multiple distinct application
inputs".  This module provides that artifact: branch traces serialize to
compressed ``.npz`` files, and a :class:`TraceLibrary` manages a directory
of them keyed by (benchmark, input), generating on demand and re-loading
thereafter — so helper-predictor training pipelines can run against a
stable corpus instead of re-executing workloads.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.core.types import BranchTrace, WorkloadTrace
from repro.workloads.base import WorkloadSpec, trace_workload

_FORMAT_VERSION = 1


def save_trace(trace: BranchTrace, path: Union[str, Path]) -> Path:
    """Serialize a branch trace to a compressed ``.npz`` file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        version=np.int64(_FORMAT_VERSION),
        ips=trace.ips,
        taken=trace.taken,
        targets=trace.targets,
        kinds=trace.kinds,
        instr_indices=trace.instr_indices,
        instr_count=np.int64(trace.instr_count),
    )
    # numpy appends ".npz" when the suffix is missing; report the real file.
    return path if path.suffix == ".npz" else Path(str(path) + ".npz")


def load_trace(path: Union[str, Path]) -> BranchTrace:
    """Load a branch trace written by :func:`save_trace`."""
    with np.load(Path(path)) as data:
        version = int(data["version"])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format version {version} "
                f"(expected {_FORMAT_VERSION})"
            )
        return BranchTrace(
            ips=data["ips"],
            taken=data["taken"],
            targets=data["targets"],
            kinds=data["kinds"],
            instr_indices=data["instr_indices"],
            instr_count=int(data["instr_count"]),
        )


def _slug(name: str) -> str:
    return re.sub(r"[^A-Za-z0-9_.-]", "_", name)


class TraceLibrary:
    """A directory of serialized workload traces.

    Layout: ``<root>/<benchmark>/<input>_<instructions>.npz`` plus a
    ``manifest.json`` recording what exists.  ``get()`` loads a trace if
    present, otherwise generates, stores, and returns it.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._manifest_path = self.root / "manifest.json"
        self._manifest: Dict[str, dict] = {}
        if self._manifest_path.exists():
            with open(self._manifest_path) as f:
                self._manifest = json.load(f)

    def _key(self, benchmark: str, input_index: int, instructions: int) -> str:
        return f"{benchmark}/{input_index}/{instructions}"

    def _path(self, benchmark: str, input_index: int, instructions: int) -> Path:
        return (
            self.root
            / _slug(benchmark)
            / f"input{input_index}_{instructions}.npz"
        )

    def _save_manifest(self) -> None:
        with open(self._manifest_path, "w") as f:
            json.dump(self._manifest, f, indent=2, sort_keys=True)

    def contains(self, benchmark: str, input_index: int, instructions: int) -> bool:
        key = self._key(benchmark, input_index, instructions)
        return key in self._manifest and self._path(
            benchmark, input_index, instructions
        ).exists()

    def put(self, workload_trace: WorkloadTrace) -> Path:
        """Store an already-generated trace."""
        benchmark = workload_trace.benchmark
        input_index = int(workload_trace.input_name.replace("input", "") or 0)
        instructions = workload_trace.trace.instr_count
        path = self._path(benchmark, input_index, instructions)
        save_trace(workload_trace.trace, path)
        self._manifest[self._key(benchmark, input_index, instructions)] = {
            "benchmark": benchmark,
            "input_index": input_index,
            "instructions": instructions,
            "branches": len(workload_trace.trace),
            "file": str(path.relative_to(self.root)),
        }
        self._save_manifest()
        return path

    def get(
        self,
        benchmark: str,
        input_index: int,
        instructions: Optional[int] = None,
        spec: Optional[WorkloadSpec] = None,
    ) -> WorkloadTrace:
        """Load a trace, generating and storing it on first access."""
        if spec is None:
            # Imported lazily: the registry lives in the package __init__,
            # which itself imports this module.
            from repro.workloads import WORKLOADS_BY_NAME

            spec = WORKLOADS_BY_NAME.get(benchmark)
        if spec is None:
            raise KeyError(f"unknown benchmark {benchmark!r} and no spec given")
        n = instructions if instructions is not None else spec.default_instructions
        if self.contains(benchmark, input_index, n):
            trace = load_trace(self._path(benchmark, input_index, n))
            return WorkloadTrace(
                benchmark=benchmark,
                input_name=f"input{input_index}",
                trace=trace,
                metadata={"from_library": True, "instructions": n},
            )
        workload_trace = trace_workload(spec, input_index, instructions=n)
        self.put(workload_trace)
        return workload_trace

    def entries(self) -> List[dict]:
        """Manifest entries for everything stored."""
        return [dict(v) for v in self._manifest.values()]

    def __len__(self) -> int:
        return len(self._manifest)

    def __iter__(self) -> Iterator[Tuple[str, int, int]]:
        for entry in self._manifest.values():
            yield (
                entry["benchmark"],
                entry["input_index"],
                entry["instructions"],
            )
