"""SPECint-2017-like synthetic benchmarks.

Each benchmark composes the kernels of :mod:`repro.workloads.kernels` with a
parameter set chosen to land near the corresponding row of the paper's
Table I (scaled; see :mod:`repro.experiments.config`): aggregate accuracy,
how many H2P branches a slice contains, and what share of mispredictions
they cause.  mcf-like is tiny and H2P-dominated; leela-like is the least
predictable with the most H2Ps; xalancbmk-like is large but highly
predictable; and so on.  The mapping is qualitative — the goal is the
paper's *structure* (orderings, proportions), not its exact values.
"""

from __future__ import annotations

import random

import numpy as np
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.isa.program import Program, ProgramBuilder
from repro.workloads.base import (
    R_SEGMENT,
    WorkloadSpec,
    build_driver,
    make_input_data,
)
from repro.workloads.kernels import (
    build_cold_check_kernel,
    build_h2p_kernel,
    build_loop_nest_kernel,
    build_pointer_chase_kernel,
    build_rare_dispatch_kernel,
    build_scan_kernel,
)

_DATA_LEN = 4093  # prime-ish: strided streams cycle through all elements


@dataclass(frozen=True)
class SpecBenchParams:
    """Composition knobs for one SPECint-like benchmark."""

    name: str
    seed: int
    data_style: str = "uniform"
    num_inputs: int = 4
    # H2P kernels: (threshold, xor_correlated, iterations-per-round) or
    # (threshold, xor_correlated, iterations, dep_a_threshold, dep_b_threshold)
    # — the dep thresholds (of 16) set the dependency branches' bias.
    h2p_kernels: Tuple[Tuple, ...] = ((128, False, 400),)
    pointer_chases: Tuple[int, ...] = ()  # iterations per round each
    # Easy work per round.
    loop_nest_iters: int = 200
    loop_inner_trips: int = 12
    scan_iters: int = 800
    scan_bias: int = 52000  # of 65536: ~80% taken
    # Rare-branch dispatch.
    dispatch_handlers: int = 0
    dispatch_branches_per_handler: int = 2
    dispatch_iters: int = 0
    dispatch_hard_fraction: float = 0.35
    handlers_per_segment: int = 0
    cold_checks: int = 8
    num_segments: int = 5
    rounds_per_segment: int = 8


def build_spec_benchmark(params: SpecBenchParams, input_index: int) -> Program:
    """Construct the program for one input of a SPECint-like benchmark.

    The *structure* (blocks, biases, thresholds) depends only on
    ``params.seed``, so every input exposes identical static branch IPs; the
    *data* depends on the input index.
    """
    b = ProgramBuilder(params.name)
    structure_rng = random.Random(params.seed)

    b.data("input_data", make_input_data(params.seed, input_index, _DATA_LEN, params.data_style))
    # The scan kernel sweeps a *sorted* copy: its branch direction changes
    # only at the threshold crossing once per sweep, so it is easy work.
    b.data(
        "scan_data",
        np.sort(make_input_data(params.seed + 2, input_index, _DATA_LEN, "uniform")),
    )
    if params.pointer_chases:
        # Pointer-chase substrate: a random permutation (input-dependent)
        # and values.  Declared only when a chase kernel consumes them —
        # every access resolves through ArrayBase, so the resulting base
        # shift leaves the other kernels' traces unchanged.
        perm_rng = random.Random(params.seed * 31 + input_index)
        perm = list(range(_DATA_LEN))
        perm_rng.shuffle(perm)
        b.data("chase_perm", perm)
        b.data(
            "chase_vals",
            make_input_data(params.seed + 1, input_index, _DATA_LEN, params.data_style),
        )

    kernels: List[Tuple[str, int]] = []  # (entry label, iterations/round)

    loops = build_loop_nest_kernel(
        b, "loops", inner_trips=params.loop_inner_trips
    )
    kernels.append((loops.entry, params.loop_nest_iters))

    scan = build_scan_kernel(
        b, "scan", "scan_data", _DATA_LEN, bias_threshold=params.scan_bias
    )
    kernels.append((scan.entry, params.scan_iters))

    h2p_entries: List[Tuple[str, int]] = []
    for k, spec in enumerate(params.h2p_kernels):
        threshold, xor_corr, iters = spec[0], spec[1], spec[2]
        dep_a, dep_b = (spec[3], spec[4]) if len(spec) > 3 else (4, 4)
        h = build_h2p_kernel(
            b,
            f"h2p{k}",
            "input_data",
            _DATA_LEN,
            h2p_threshold=threshold,
            dep_a_threshold=dep_a,
            dep_b_threshold=dep_b,
            xor_correlated=xor_corr,
            stride_a=1 + 2 * k,
            stride_b=7 + 4 * k,
        )
        h2p_entries.append((h.entry, iters))

    chase_entries: List[Tuple[str, int]] = []
    for k, iters in enumerate(params.pointer_chases):
        c = build_pointer_chase_kernel(
            b, f"chase{k}", "chase_perm", "chase_vals", _DATA_LEN,
            threshold=96 + 16 * k,
        )
        chase_entries.append((c.entry, iters))

    dispatch_entry = None
    if params.dispatch_handlers > 0 and params.dispatch_iters > 0:
        d = build_rare_dispatch_kernel(
            b,
            "dispatch",
            num_handlers=params.dispatch_handlers,
            branches_per_handler=params.dispatch_branches_per_handler,
            rng=structure_rng,
            handlers_per_segment=params.handlers_per_segment or None,
            segment_reg=R_SEGMENT if params.handlers_per_segment else None,
            hard_fraction=params.dispatch_hard_fraction,
        )
        dispatch_entry = (d.entry, params.dispatch_iters)

    cold = build_cold_check_kernel(b, "cold", num_checks=params.cold_checks)
    cold_entry = (cold.entry, 40)

    # Segments shift the mix: even segments emphasize the H2P/chase kernels,
    # odd segments the easy work, and the dispatch kernel (when present)
    # touches a different handler subset each segment via R_SEGMENT.
    segments: List[List[Tuple[str, int]]] = []
    for s in range(params.num_segments):
        plan: List[Tuple[str, int]] = []
        hot = s % 2 == 0
        for entry, iters in kernels:
            scaled = iters if not hot else max(1, int(iters * 0.6))
            plan.append((entry, scaled))
        for entry, iters in h2p_entries:
            scaled = max(1, int(iters * (1.3 if hot else 0.7)))
            plan.append((entry, scaled))
        for entry, iters in chase_entries:
            scaled = max(1, int(iters * (1.3 if hot else 0.7)))
            plan.append((entry, scaled))
        if dispatch_entry is not None:
            plan.append(dispatch_entry)
        plan.append(cold_entry)
        segments.append(plan)

    build_driver(b, segments, rounds_per_segment=params.rounds_per_segment)
    return b.build()


#: Default SPECint-like trace length: 10 slices of the scaled slice size
#: (see repro.experiments.config.SLICE_INSTRUCTIONS).
SPEC_TRACE_INSTRUCTIONS = 3_000_000

_SPEC_PARAMS: Tuple[SpecBenchParams, ...] = (
    SpecBenchParams(
        name="600.perlbench_s",
        seed=600,
        data_style="lowcard",
        h2p_kernels=((40, False, 260, 1, 1),),
        loop_nest_iters=300,
        scan_iters=2200,
        dispatch_handlers=360,
        dispatch_branches_per_handler=2,
        dispatch_iters=320,
        dispatch_hard_fraction=0.30,
        handlers_per_segment=90,
        num_segments=6,
    ),
    SpecBenchParams(
        name="605.mcf_s",
        seed=605,
        data_style="uniform",
        h2p_kernels=(
            (128, False, 420, 2, 3),
            (96, False, 300, 3, 2),
            (144, True, 260, 2, 2),
        ),
        pointer_chases=(340, 260),
        loop_nest_iters=70,
        scan_iters=700,
        cold_checks=4,
        num_segments=4,
    ),
    SpecBenchParams(
        name="620.omnetpp_s",
        seed=620,
        data_style="bimodal",
        h2p_kernels=(
            (128, False, 180, 1, 2),
            (80, False, 140, 2, 1),
            (112, True, 120, 1, 1),
        ),
        loop_nest_iters=260,
        scan_iters=1400,
        dispatch_handlers=180,
        dispatch_iters=70,
        dispatch_hard_fraction=0.25,
        handlers_per_segment=45,
        num_segments=6,
    ),
    SpecBenchParams(
        name="623.xalancbmk_s",
        seed=623,
        data_style="lowcard",
        h2p_kernels=((10, False, 150, 1, 1), (8, False, 120, 1, 1)),
        loop_nest_iters=600,
        scan_iters=3600,
        scan_bias=63000,
        dispatch_handlers=300,
        dispatch_iters=50,
        dispatch_hard_fraction=0.05,
        handlers_per_segment=75,
        num_segments=5,
    ),
    SpecBenchParams(
        name="625.x264_s",
        seed=625,
        data_style="bimodal",
        h2p_kernels=((120, False, 800, 3, 3),),
        loop_nest_iters=500,
        loop_inner_trips=16,
        scan_iters=1400,
        num_segments=7,
    ),
    SpecBenchParams(
        name="631.deepsjeng_s",
        seed=631,
        data_style="uniform",
        h2p_kernels=(
            (104, False, 240, 2, 2),
            (120, True, 210, 2, 2),
            (88, False, 180, 2, 3),
            (136, False, 165, 3, 2),
        ),
        loop_nest_iters=260,
        scan_iters=1300,
        dispatch_handlers=220,
        dispatch_iters=110,
        dispatch_hard_fraction=0.40,
        handlers_per_segment=55,
        num_segments=5,
    ),
    SpecBenchParams(
        name="641.leela_s",
        seed=641,
        data_style="uniform",
        h2p_kernels=(
            (128, False, 360, 3, 4),
            (112, False, 330, 4, 3),
            (140, True, 300, 3, 3),
            (96, False, 280, 4, 4),
            (120, False, 260, 3, 4),
            (132, True, 250, 4, 3),
        ),
        pointer_chases=(220,),
        loop_nest_iters=160,
        scan_iters=700,
        dispatch_handlers=140,
        dispatch_iters=80,
        dispatch_hard_fraction=0.5,
        handlers_per_segment=35,
        num_segments=5,
    ),
    SpecBenchParams(
        name="648.exchange2_s",
        seed=648,
        data_style="lowcard",
        h2p_kernels=((96, True, 170, 1, 1), (72, True, 150, 1, 1)),
        loop_nest_iters=550,
        loop_inner_trips=20,
        scan_iters=2000,
        num_segments=6,
    ),
    SpecBenchParams(
        name="657.xz_s",
        seed=657,
        data_style="zipf",
        h2p_kernels=(
            (144, False, 520, 4, 4),
            (120, False, 460, 4, 3),
            (104, False, 400, 3, 4),
        ),
        pointer_chases=(200,),
        loop_nest_iters=110,
        scan_iters=500,
        dispatch_handlers=120,
        dispatch_iters=60,
        dispatch_hard_fraction=0.4,
        handlers_per_segment=30,
        num_segments=5,
    ),
)


def _make_spec(params: SpecBenchParams) -> WorkloadSpec:
    return WorkloadSpec(
        name=params.name,
        category="specint",
        build=lambda input_index, p=params: build_spec_benchmark(p, input_index),
        num_inputs=params.num_inputs,
        default_instructions=SPEC_TRACE_INSTRUCTIONS,
        description=f"SPECint-2017-like synthetic benchmark ({params.name})",
    )


#: The nine SPECint-like benchmarks (Table I's rows).
SPECINT_WORKLOADS: Tuple[WorkloadSpec, ...] = tuple(
    _make_spec(p) for p in _SPEC_PARAMS
)

SPECINT_BY_NAME: Dict[str, WorkloadSpec] = {w.name: w for w in SPECINT_WORKLOADS}

SPEC_PARAMS_BY_NAME: Dict[str, SpecBenchParams] = {p.name: p for p in _SPEC_PARAMS}
