"""Content-addressed on-disk store for generated branch traces.

Executing a synthetic workload through the pure-Python interpreter is the
single most expensive step of the pipeline, and it is fully deterministic:
the trace is a pure function of (workload name, executor seed, instruction
budget).  The store persists each :class:`~repro.core.types.BranchTrace`'s
columns as a compressed ``.npz`` under the shared cache directory
(``REPRO_CACHE_DIR``), addressed by a digest of that key plus
:data:`TRACE_VERSION` — so the interpreter runs once per (workload, seed,
budget) *ever*, across Labs, worker processes, and repository checkouts
sharing the directory.

Concurrency follows the sim cache's discipline: entries are published
atomically (unique sibling tempfile + ``os.replace``), racing writers of
one deterministic key converge on identical bytes, and corrupt or
mismatched files are WARNING-logged, counted, and recomputed — an I/O
failure costs the cache entry, never the run.

Bump :data:`TRACE_VERSION` whenever trace *content* for an existing key
can change: executor semantics, workload program construction, seeding, or
the serialized column set.  (Pure performance changes don't qualify.)
"""

from __future__ import annotations

import contextlib
import hashlib
import os
import re
import tempfile
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro import obs
from repro.core.types import BranchTrace
from repro.resilience import faults
from repro.resilience.quarantine import quarantine_file
from repro.workloads.base import workload_seed

#: Bump after any change that alters generated trace content for an
#: existing (workload, seed, instructions) key.
TRACE_VERSION = 1

_log = obs.get_logger("lab.trace_store")


def _slug(name: str) -> str:
    return re.sub(r"[^A-Za-z0-9_.-]", "_", name)


class TraceStore:
    """A directory of content-addressed serialized branch traces."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- addressing --------------------------------------------------------

    def key(self, workload: str, input_index: int, instructions: int) -> str:
        """Canonical identity of one trace: everything that determines its
        content, including the format version."""
        return (
            f"repro.trace/v{TRACE_VERSION}/{workload}"
            f"/seed{workload_seed(input_index)}/n{instructions}"
        )

    def path_for(self, workload: str, input_index: int, instructions: int) -> Path:
        key = self.key(workload, input_index, instructions)
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:20]
        fname = (
            f"trace_{_slug(workload)}_i{input_index}_n{instructions}_{digest}.npz"
        )
        return self.root / fname

    # -- access ------------------------------------------------------------

    def load(
        self, workload: str, input_index: int, instructions: int
    ) -> Optional[BranchTrace]:
        """Load one trace, or ``None`` on a miss / unreadable entry."""
        path = self.path_for(workload, input_index, instructions)
        if not path.exists():
            obs.counter("lab.trace_store.miss")
            return None
        key = self.key(workload, input_index, instructions)
        try:
            with np.load(path) as data:
                stored_key = str(data["key"])
                if stored_key != key:
                    raise ValueError(
                        f"key mismatch: file holds {stored_key!r}, want {key!r}"
                    )
                trace = BranchTrace(
                    ips=data["ips"],
                    taken=data["taken"],
                    targets=data["targets"],
                    kinds=data["kinds"],
                    instr_indices=data["instr_indices"],
                    instr_count=int(data["instr_count"]),
                )
        except Exception as exc:
            # Fail-soft: a torn write, a foreign file landing on our name,
            # or a column mismatch must cost a re-execution, never the run.
            # The bad entry is quarantined so the *next* run gets a clean
            # miss instead of re-reading and re-warning about it.
            obs.counter("lab.trace_store.load_error")
            _log.warning(
                "ignoring unreadable trace-store entry %s (%s: %s); regenerating",
                path, type(exc).__name__, exc,
            )
            quarantine_file(path, self.root, f"{type(exc).__name__}: {exc}")
            return None
        obs.counter("lab.trace_store.hit")
        _log.debug("trace store hit: %s", path)
        return trace

    def store(
        self, workload: str, input_index: int, instructions: int, trace: BranchTrace
    ) -> Optional[Path]:
        """Atomically publish one trace; returns its path (None on failure)."""
        path = self.path_for(workload, input_index, instructions)
        key = self.key(workload, input_index, instructions)
        try:
            faults.check_enospc("trace_store.enospc")
            fd, tmp_name = tempfile.mkstemp(
                dir=str(self.root), prefix=path.name, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as f:
                    np.savez_compressed(
                        f,
                        key=key,
                        trace_version=np.int64(TRACE_VERSION),
                        ips=trace.ips,
                        taken=trace.taken,
                        targets=trace.targets,
                        kinds=trace.kinds,
                        instr_indices=trace.instr_indices,
                        instr_count=np.int64(trace.instr_count),
                    )
                os.replace(tmp_name, path)
            except BaseException:
                with contextlib.suppress(OSError):
                    os.unlink(tmp_name)
                raise
        except OSError as exc:
            obs.counter("lab.trace_store.store_failed")
            _log.warning("could not write trace-store entry %s: %s", path, exc)
            return None
        faults.corrupt_file("trace_store.corrupt", path)
        obs.counter("lab.trace_store.store")
        _log.debug("trace store publish: %s", path)
        return path
