"""Tests for the TAGE allocation study reduction."""

import pytest

from repro.analysis.allocation import allocation_study
from repro.predictors.tage import AllocationStats


def stats_from(events):
    """events: list of (ip, table, index)."""
    s = AllocationStats()
    for ip, table, index in events:
        s.record(ip, table, index)
    return s


class TestAllocationStudy:
    def test_split_and_medians(self):
        events = []
        # H2P branch 1: 10 allocations over 4 unique entries.
        for i in range(10):
            events.append((1, 0, i % 4))
        # Non-H2P branch 2: 2 allocations, 2 entries.
        events += [(2, 1, 0), (2, 1, 1)]
        study = allocation_study(stats_from(events), h2p_ips=[1])
        assert study.h2p.num_branches == 1
        assert study.h2p.median_allocations == 10
        assert study.h2p.median_unique_entries == 4
        assert study.h2p.reallocation_ratio == pytest.approx(2.5)
        assert study.non_h2p.median_allocations == 2
        assert study.total_allocations == 12
        assert study.h2p_dominates

    def test_share_computation(self):
        events = [(1, 0, 0)] * 9 + [(2, 0, 1)]
        study = allocation_study(stats_from(events), h2p_ips=[1])
        assert study.h2p.mean_allocation_share == pytest.approx(0.9)
        assert study.non_h2p.mean_allocation_share == pytest.approx(0.1)

    def test_all_ips_includes_zero_allocators(self):
        events = [(1, 0, 0)]
        study = allocation_study(
            stats_from(events), h2p_ips=[1], all_ips=[1, 2, 3]
        )
        assert study.non_h2p.num_branches == 2
        assert study.non_h2p.median_allocations == 0

    def test_empty_classes(self):
        study = allocation_study(AllocationStats(), h2p_ips=[])
        assert study.h2p.num_branches == 0
        assert study.h2p.reallocation_ratio == 0.0
        assert not study.h2p_dominates
