"""Tests for the one-call characterization API."""

import pytest

from repro.analysis.characterize import characterize_workload
from repro.predictors.simple import AlwaysTaken


class TestCharacterizeWorkload:
    @pytest.fixture(scope="class")
    def report(self, mcf_trace):
        return characterize_workload(mcf_trace.trace)

    def test_basic_counters(self, report, mcf_trace):
        assert report.instructions == mcf_trace.trace.instr_count
        assert report.conditional_branches == int(
            mcf_trace.trace.conditional_mask.sum()
        )
        assert report.static_branches == len(
            mcf_trace.trace.static_branch_ips()
        )

    def test_mcf_is_h2p_dominated(self, report):
        # mcf-like: mispredictions concentrate in H2Ps.
        assert report.h2p_dominated
        assert report.h2ps_per_slice >= 5
        assert report.top5_heavy_hitter_coverage > 0.1

    def test_opportunity_grows_with_scale(self, report):
        assert report.ipc_opportunity_8x > report.ipc_opportunity_1x > 0

    def test_lcf_is_rare_branch_dominated(self, lcf_trace):
        report = characterize_workload(lcf_trace.trace)
        assert report.rare_branch_fraction > 0.5
        assert report.rare_branch_accuracy < 0.95

    def test_custom_predictor(self, mcf_trace):
        report = characterize_workload(mcf_trace.trace, AlwaysTaken())
        assert report.predictor_name == "always-taken"
        assert report.accuracy < 0.8

    def test_render_mentions_key_numbers(self, report):
        text = report.render()
        assert "H2Ps per slice" in text
        assert "IPC opportunity" in text
        assert f"{report.accuracy:.4f}" in text
