"""Tests for the rare-branch distribution analyses (Figs. 3-4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.distributions import (
    Histogram,
    accuracy_spread,
    branch_distributions,
)
from repro.core.metrics import BranchStats


def stats_with(branches):
    s = BranchStats()
    for ip, (e, m) in branches.items():
        s.record_bulk(ip, e, m)
    return s


class TestBranchDistributions:
    def test_fractions_sum_to_one(self):
        s = stats_with({i: (10 * (i + 1), i) for i in range(20)})
        d = branch_distributions([s])
        for hist in (d.mispredictions, d.executions, d.accuracy):
            assert sum(hist.fractions) == pytest.approx(1.0)
            assert hist.num_branches == 20

    def test_pools_multiple_apps(self):
        a = stats_with({1: (10, 0)})
        b = stats_with({1: (10, 5)})  # same IP in another app: separate
        d = branch_distributions([a, b])
        assert d.executions.num_branches == 2

    def test_values_above_last_edge_clamped(self):
        s = stats_with({1: (10**9, 0)})
        d = branch_distributions([s])
        assert d.executions.fractions[-1] == pytest.approx(1.0)

    def test_accuracy_bins(self):
        s = stats_with({
            1: (100, 100),  # accuracy 0.0
            2: (100, 0),  # accuracy 1.0
            3: (100, 50),  # accuracy 0.5
        })
        d = branch_distributions([s])
        assert d.accuracy.fractions[0] == pytest.approx(1 / 3)  # [0, .1)
        assert d.accuracy.fractions[-1] == pytest.approx(1 / 3)  # [.99, 1]

    def test_fraction_at_or_below(self):
        h = Histogram(edges=(0, 1, 2, 3), fractions=(0.5, 0.3, 0.2),
                      counts=(5, 3, 2))
        assert h.fraction_at_or_below(1) == pytest.approx(0.5)
        assert h.fraction_at_or_below(2) == pytest.approx(0.8)

    @given(
        branches=st.dictionaries(
            st.integers(0, 50),
            st.tuples(st.integers(1, 10_000), st.integers(0, 100)),
            min_size=1, max_size=40,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_no_branch_lost_property(self, branches):
        branches = {
            ip: (e, min(m, e)) for ip, (e, m) in branches.items()
        }
        s = stats_with(branches)
        d = branch_distributions([s])
        assert d.executions.num_branches == len(branches)
        assert d.mispredictions.num_branches == len(branches)
        assert d.accuracy.num_branches == len(branches)


class TestAccuracySpread:
    def test_rare_branches_have_wider_spread(self):
        rng = np.random.default_rng(0)
        s = BranchStats()
        # Rare branches: 5 executions, accuracy all over the place.
        for i in range(200):
            e = 5
            m = int(rng.integers(0, 6))
            s.record_bulk(1000 + i, e, m)
        # Frequent branches: well predicted.
        for i in range(200):
            e = 500
            m = int(rng.integers(0, 10))
            s.record_bulk(5000 + i, e, m)
        spread = accuracy_spread([s], bin_width=10)
        assert spread.bin_std[0] > 0.15
        frequent_bin = np.searchsorted(spread.bin_edges, 500) - 1
        assert spread.bin_std[frequent_bin] < 0.05
        assert spread.bin_std[0] > 3 * spread.bin_std[frequent_bin]

    def test_counts_partition_branches(self):
        s = stats_with({i: (i + 1, 0) for i in range(50)})
        spread = accuracy_spread([s], bin_width=10)
        assert spread.bin_counts.sum() == 50

    def test_arrays_aligned(self):
        s = stats_with({1: (10, 2), 2: (20, 3)})
        spread = accuracy_spread([s], bin_width=5)
        assert len(spread.executions) == len(spread.accuracies) == 2
