"""Tests for H2P screening and cross-input aggregation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.h2p import (
    H2pCriteria,
    screen_h2ps,
    screen_workload,
    summarize_across_inputs,
)
from repro.core.metrics import BranchStats


def stats_with(branches):
    """branches: {ip: (executions, mispredictions)}."""
    s = BranchStats()
    for ip, (e, m) in branches.items():
        s.record_bulk(ip, e, m)
    return s


CRIT = H2pCriteria(accuracy_below=0.99, min_executions=150, min_mispredictions=10)


class TestScreening:
    def test_qualifying_branch(self):
        s = stats_with({1: (1000, 100)})
        assert screen_h2ps(s, CRIT) == [1]

    def test_too_few_executions(self):
        s = stats_with({1: (100, 50)})
        assert screen_h2ps(s, CRIT) == []

    def test_too_few_mispredictions(self):
        s = stats_with({1: (1000, 9)})
        assert screen_h2ps(s, CRIT) == []

    def test_too_accurate(self):
        s = stats_with({1: (10_000, 50)})  # accuracy 0.995
        assert screen_h2ps(s, CRIT) == []

    def test_boundary_accuracy(self):
        # Exactly 0.99 accuracy does NOT qualify (< strictly).
        s = stats_with({1: (1000, 10)})
        assert screen_h2ps(s, CRIT) == []

    def test_multiple_sorted(self):
        s = stats_with({5: (1000, 100), 2: (1000, 200), 9: (100, 1)})
        assert screen_h2ps(s, CRIT) == [2, 5]

    def test_criteria_validation(self):
        with pytest.raises(ValueError):
            H2pCriteria(accuracy_below=0.0)
        with pytest.raises(ValueError):
            H2pCriteria(min_executions=0)

    @given(
        execs=st.integers(1, 100_000),
        mis_frac=st.floats(0, 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_criteria_consistency_property(self, execs, mis_frac):
        mis = int(execs * mis_frac)
        s = stats_with({1: (execs, mis)})
        selected = screen_h2ps(s, CRIT)
        qualifies = (
            execs >= CRIT.min_executions
            and mis >= CRIT.min_mispredictions
            and (execs - mis) / execs < CRIT.accuracy_below
        )
        assert (selected == [1]) == qualifies


class TestWorkloadReport:
    def test_per_slice_and_union(self):
        slices = [
            stats_with({1: (1000, 100), 2: (1000, 5)}),
            stats_with({1: (1000, 100), 3: (1000, 100)}),
        ]
        rep = screen_workload("b", "i", slices, CRIT)
        assert rep.slices[0].h2p_ips == [1]
        assert rep.slices[1].h2p_ips == [1, 3]
        assert rep.union_h2p_ips == frozenset({1, 3})
        assert rep.mean_h2ps_per_slice == pytest.approx(1.5)

    def test_misprediction_share(self):
        slices = [stats_with({1: (1000, 100), 2: (1000, 100)})]
        rep = screen_workload("b", "i", slices, CRIT)
        assert rep.slices[0].misprediction_share == pytest.approx(1.0)

    def test_empty_slices(self):
        rep = screen_workload("b", "i", [], CRIT)
        assert rep.mean_h2ps_per_slice == 0.0
        assert rep.mean_misprediction_share == 0.0


class TestCrossInput:
    def _reports(self, per_input_h2ps):
        reports = []
        for i, ips in enumerate(per_input_h2ps):
            slices = [stats_with({ip: (1000, 100) for ip in ips})]
            reports.append(screen_workload("b", f"i{i}", slices, CRIT))
        return reports

    def test_recurring_3plus(self):
        reports = self._reports([[1, 2], [1, 3], [1, 2], [4]])
        summary = summarize_across_inputs("b", reports)
        assert summary.total_h2ps == 4
        assert summary.recurring_3plus == 1  # only branch 1 in >= 3 inputs
        assert summary.appearance_counts[1] == 3
        assert summary.appearance_counts[2] == 2

    def test_mean_per_input(self):
        reports = self._reports([[1, 2], [3]])
        summary = summarize_across_inputs("b", reports)
        assert summary.mean_per_input == pytest.approx(1.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_across_inputs("b", [])
