"""Tests for heavy-hitter ranking."""

import numpy as np
import pytest

from repro.analysis.heavy_hitters import (
    coverage_at,
    cumulative_curve,
    rank_heavy_hitters,
    top_heavy_hitter,
)
from repro.core.metrics import BranchStats


def stats_with(branches):
    s = BranchStats()
    for ip, (e, m) in branches.items():
        s.record_bulk(ip, e, m)
    return s


class TestRanking:
    def test_ranked_by_executions(self):
        s = stats_with({1: (100, 10), 2: (300, 5), 3: (200, 50)})
        hitters = rank_heavy_hitters(s, [1, 2, 3])
        assert [h.ip for h in hitters] == [2, 3, 1]
        assert [h.rank for h in hitters] == [1, 2, 3]

    def test_cumulative_fraction_over_all_mispredictions(self):
        s = stats_with({1: (100, 40), 2: (300, 40), 3: (200, 20)})
        hitters = rank_heavy_hitters(s, [1, 2])  # branch 3 not an H2P
        # Total mispredictions = 100; top hitter (ip 2) covers 40%.
        assert hitters[0].cumulative_misprediction_fraction == pytest.approx(0.4)
        assert hitters[1].cumulative_misprediction_fraction == pytest.approx(0.8)

    def test_tie_broken_by_mispredictions(self):
        s = stats_with({1: (100, 10), 2: (100, 50)})
        hitters = rank_heavy_hitters(s, [1, 2])
        assert hitters[0].ip == 2

    def test_top_heavy_hitter(self):
        s = stats_with({1: (100, 10), 2: (300, 5)})
        assert top_heavy_hitter(s, [1, 2]).ip == 2

    def test_top_requires_h2ps(self):
        with pytest.raises(ValueError):
            top_heavy_hitter(stats_with({1: (10, 1)}), [])


class TestCurve:
    def test_curve_monotone_and_padded(self):
        s = stats_with({1: (100, 30), 2: (300, 30), 3: (200, 40)})
        curve = cumulative_curve(s, [1, 2, 3], max_rank=10)
        assert len(curve) == 10
        assert (np.diff(curve) >= -1e-12).all()
        assert curve[-1] == pytest.approx(1.0)
        assert curve[3] == curve[9]  # padded with the final value

    def test_coverage_at(self):
        s = stats_with({1: (100, 50), 2: (300, 50)})
        curve = cumulative_curve(s, [1, 2], max_rank=5)
        assert coverage_at(curve, 1) == pytest.approx(0.5)
        assert coverage_at(curve, 2) == pytest.approx(1.0)
        assert coverage_at(curve, 100) == pytest.approx(1.0)

    def test_coverage_validation(self):
        with pytest.raises(ValueError):
            coverage_at([0.5], 0)

    def test_empty_curve(self):
        assert coverage_at([], 3) == 0.0
