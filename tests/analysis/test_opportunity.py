"""Tests for the IPC-opportunity computations (Figs. 1/5/7/8)."""

import pytest

from repro.analysis.opportunity import (
    h2p_share_of_opportunity,
    ipc_opportunity,
    mispredictions_excluding,
    mispredictions_excluding_above,
    opportunity_remaining,
    scaling_curves,
    storage_gap_closure,
)
from repro.core.metrics import BranchStats
from repro.pipeline.config import SCALING_FACTORS


def stats_with(branches):
    s = BranchStats()
    for ip, (e, m) in branches.items():
        s.record_bulk(ip, e, m)
    return s


class TestExclusions:
    def test_excluding_ips(self):
        s = stats_with({1: (100, 40), 2: (100, 60)})
        assert mispredictions_excluding(s, [1]) == 60
        assert mispredictions_excluding(s, [1, 2]) == 0

    def test_excluding_above_threshold(self):
        s = stats_with({1: (2000, 40), 2: (50, 30)})
        # Branches with > 100 executions predicted perfectly:
        assert mispredictions_excluding_above(s, 100) == 30
        # Threshold above everything: nothing idealized.
        assert mispredictions_excluding_above(s, 10_000) == 70


class TestScalingCurves:
    def test_baseline_normalized_to_one(self):
        curves = scaling_curves(
            100_000, {"base": 500, "perfect": 0}, baseline_label="base"
        )
        base = next(c for c in curves if c.label == "base")
        assert base.at(1) == pytest.approx(1.0)

    def test_perfect_above_baseline_everywhere(self):
        curves = scaling_curves(
            100_000, {"base": 500, "perfect": 0}, baseline_label="base"
        )
        base = next(c for c in curves if c.label == "base")
        perfect = next(c for c in curves if c.label == "perfect")
        for s in SCALING_FACTORS:
            assert perfect.at(s) > base.at(s)

    def test_gap_widens_with_scale(self):
        curves = scaling_curves(
            100_000, {"base": 900, "perfect": 0}, baseline_label="base"
        )
        base = next(c for c in curves if c.label == "base")
        perfect = next(c for c in curves if c.label == "perfect")
        ratios = [perfect.at(s) / base.at(s) for s in SCALING_FACTORS]
        assert ratios == sorted(ratios)

    def test_missing_baseline_rejected(self):
        with pytest.raises(ValueError):
            scaling_curves(1000, {"a": 1}, baseline_label="b")

    def test_unknown_scale_lookup(self):
        curves = scaling_curves(1000, {"a": 1}, baseline_label="a")
        with pytest.raises(KeyError):
            curves[0].at(3)


class TestOpportunityMetrics:
    def test_ipc_opportunity_positive(self):
        assert ipc_opportunity(100_000, 900) > 0

    def test_ipc_opportunity_zero_when_perfect(self):
        assert ipc_opportunity(100_000, 0) == pytest.approx(0.0)

    def test_h2p_share_bounds(self):
        share = h2p_share_of_opportunity(
            100_000, baseline_mispredictions=1000,
            h2p_mispredictions_removed=400,
        )
        assert 0 < share < 1
        full = h2p_share_of_opportunity(100_000, 1000, 0)
        assert full == pytest.approx(1.0)

    def test_opportunity_remaining_complementary(self):
        remaining = opportunity_remaining(
            100_000, baseline_mispredictions=1000, remaining_mispredictions=300
        )
        captured = h2p_share_of_opportunity(100_000, 1000, 300)
        assert remaining + captured == pytest.approx(1.0)

    def test_gap_closure_rows(self):
        closures = storage_gap_closure(
            100_000, 1000, {"64": 800, "1024": 500}, scales=(1, 4)
        )
        assert len(closures) == 4
        by_key = {(c.label, c.scale): c.fraction_closed for c in closures}
        assert by_key[("1024", 1)] > by_key[("64", 1)]
        # Larger scale -> gap harder to close (same misprediction delta is a
        # larger share of runtime).
        assert by_key[("64", 4)] == pytest.approx(by_key[("64", 1)], rel=0.5)
