"""Tests for recurrence-interval analysis (Fig. 9)."""

import pytest

from repro.analysis.recurrence import (
    median_recurrence_intervals,
    recurrence_histogram,
)
from repro.core.types import BranchTrace


def trace_from(events, instr_count=None):
    """events: list of (ip, instr_index)."""
    return BranchTrace(
        ips=[ip for ip, _ in events],
        taken=[True] * len(events),
        instr_indices=[idx for _, idx in events],
        instr_count=instr_count or (max(i for _, i in events) + 1),
    )


class TestMedianRecurrence:
    def test_regular_interval(self):
        t = trace_from([(1, 0), (1, 100), (1, 200), (1, 300)])
        assert median_recurrence_intervals(t)[1] == pytest.approx(100)

    def test_singleton_is_zero(self):
        t = trace_from([(1, 0), (2, 50)])
        mri = median_recurrence_intervals(t)
        assert mri[1] == 0.0
        assert mri[2] == 0.0

    def test_median_of_mixed_gaps(self):
        t = trace_from([(1, 0), (1, 10), (1, 20), (1, 1000)])
        # gaps: 10, 10, 980 -> median 10
        assert median_recurrence_intervals(t)[1] == pytest.approx(10)

    def test_multiple_branches_independent(self):
        t = trace_from([(1, 0), (2, 5), (1, 100), (2, 505)])
        mri = median_recurrence_intervals(t)
        assert mri[1] == pytest.approx(100)
        assert mri[2] == pytest.approx(500)


class TestHistogram:
    def test_fractions_sum(self):
        t = trace_from([(i, i * 37) for i in range(20)])
        hist = recurrence_histogram([t])
        assert sum(hist.fractions) == pytest.approx(1.0)

    def test_custom_edges_and_peak(self):
        t = trace_from(
            [(1, 0), (1, 50), (1, 100)]  # MRI 50
            + [(2, 0), (2, 5000), (2, 10_000)]  # MRI 5000
            + [(3, 0), (3, 5200), (3, 10_400)]
        )
        hist = recurrence_histogram([t], edges=[0, 1, 100, 1000, 10_000])
        assert hist.counts == (0, 1, 0, 2)
        assert hist.peak_bin() == 3

    def test_pools_traces(self):
        t1 = trace_from([(1, 0), (1, 10)])
        t2 = trace_from([(1, 0), (1, 10)])
        hist = recurrence_histogram([t1, t2], edges=[0, 1, 100])
        assert sum(hist.counts) == 2
