"""Tests for register-value profiling (Fig. 10)."""

import pytest

from repro.analysis.regvalues import (
    profile_register_values,
    profiles_differ,
)


class TestProfileRegisterValues:
    def test_constant_register(self):
        snaps = [(7, i) for i in range(100)]
        prof = profile_register_values(0x40, snaps, tracked_registers=[5, 6])
        p5 = prof.profile_for(5)
        assert p5.num_distinct == 1
        assert p5.entropy_bits == pytest.approx(0.0)
        assert p5.concentration == pytest.approx(1.0)
        assert p5.top_values[0] == (7, 100)

    def test_uniform_register_entropy(self):
        snaps = [(i % 16, 0) for i in range(160)]
        prof = profile_register_values(0x40, snaps, tracked_registers=[1, 2])
        p1 = prof.profile_for(1)
        assert p1.num_distinct == 16
        assert p1.entropy_bits == pytest.approx(4.0, abs=0.01)

    def test_values_masked_to_32_bits(self):
        snaps = [((1 << 40) + 3,)]
        prof = profile_register_values(0x40, snaps, tracked_registers=[0])
        assert prof.profile_for(0).top_values[0][0] == 3

    def test_top_n_limits(self):
        snaps = [(i,) for i in range(100)]
        prof = profile_register_values(0x40, snaps, [0], top_n=10)
        assert len(prof.profile_for(0).top_values) == 10

    def test_scatter_points(self):
        snaps = [(1, 2)] * 3
        prof = profile_register_values(0x40, snaps, [0, 1])
        pts = prof.scatter_points()
        assert (0, 1, 3) in pts and (1, 2, 3) in pts

    def test_missing_register_raises(self):
        prof = profile_register_values(0x40, [(1,)], [0])
        with pytest.raises(KeyError):
            prof.profile_for(5)


class TestProfilesDiffer:
    def test_identical_profiles_do_not_differ(self):
        snaps = [(i % 4, 7) for i in range(64)]
        a = profile_register_values(0x40, snaps, [0, 1])
        b = profile_register_values(0x80, snaps, [0, 1])
        assert not profiles_differ(a, b)

    def test_different_value_structure_detected(self):
        a = profile_register_values(0x40, [(0, 0)] * 50, [0, 1])
        b = profile_register_values(
            0x80, [(i % 64, (i * 7) % 64) for i in range(640)], [0, 1]
        )
        assert profiles_differ(a, b)

    def test_dominant_value_disagreement_detected(self):
        a = profile_register_values(0x40, [(1, 1)] * 50, [0, 1])
        b = profile_register_values(0x80, [(9, 9)] * 50, [0, 1])
        assert profiles_differ(a, b)
