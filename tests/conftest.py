"""Shared fixtures.

Expensive artifacts (workload traces, predictor simulations) are
session-scoped and shared through a single :class:`repro.experiments.lab.Lab`
so the experiment-level tests do not repeat simulations.
"""

import os

import pytest

os.environ.setdefault("REPRO_TIER", "quick")

from repro.experiments.config import QUICK_TIER  # noqa: E402
from repro.experiments.lab import Lab  # noqa: E402
from repro.workloads import WORKLOADS_BY_NAME, trace_workload  # noqa: E402


@pytest.fixture(scope="session")
def lab():
    """Shared quick-tier lab; simulations are cached per session."""
    return Lab(tier=QUICK_TIER)


@pytest.fixture
def obs_enabled():
    """Clean, *enabled* obs registry for one test; prior state restored."""
    from repro import obs

    was_enabled = obs.is_enabled()
    obs.reset()
    obs.enable()
    yield obs.registry()
    obs.reset()
    if not was_enabled:
        obs.disable()


@pytest.fixture
def obs_disabled():
    """Clean, *disabled* obs registry for one test; prior state restored."""
    from repro import obs

    was_enabled = obs.is_enabled()
    obs.reset()
    obs.disable()
    yield obs.registry()
    obs.reset()
    if was_enabled:
        obs.enable()


@pytest.fixture(scope="session")
def mcf_trace():
    """A one-slice trace of the mcf-like benchmark (H2P-heavy, small)."""
    return trace_workload(WORKLOADS_BY_NAME["605.mcf_s"], 0, instructions=300_000)


@pytest.fixture(scope="session")
def lcf_trace():
    """A one-slice trace of an LCF application (rare-branch-heavy)."""
    return trace_workload(WORKLOADS_BY_NAME["rdbms"], 0, instructions=300_000)
