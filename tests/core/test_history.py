"""Tests for the history registers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.history import (
    GlobalHistory,
    HistoryState,
    LocalHistoryTable,
    PathHistory,
)


class TestGlobalHistory:
    def test_push_and_bit(self):
        h = GlobalHistory(8)
        for b in [1, 0, 1]:  # pushes: oldest first
            h.push(bool(b))
        # Most recent is position 0.
        assert h.bit(0) == 1
        assert h.bit(1) == 0
        assert h.bit(2) == 1

    def test_length_saturates_at_capacity(self):
        h = GlobalHistory(4)
        for _ in range(10):
            h.push(True)
        assert len(h) == 4

    def test_low_bits(self):
        h = GlobalHistory(8)
        for b in [1, 1, 0, 1]:
            h.push(bool(b))
        assert h.low_bits(4) == 0b1101

    def test_low_bits_bounds(self):
        h = GlobalHistory(4)
        with pytest.raises(ValueError):
            h.low_bits(5)

    def test_bit_out_of_range(self):
        h = GlobalHistory(4)
        with pytest.raises(IndexError):
            h.bit(4)

    def test_to_list_newest_first(self):
        h = GlobalHistory(8)
        for b in [0, 1, 1]:
            h.push(bool(b))
        assert h.to_list(3) == [1, 1, 0]

    def test_capacity_mask_drops_old_bits(self):
        h = GlobalHistory(2)
        for b in [1, 1, 0, 0]:
            h.push(bool(b))
        assert h.low_bits(2) == 0

    @given(bits=st.lists(st.booleans(), min_size=1, max_size=64),
           width=st.integers(1, 12))
    @settings(max_examples=60, deadline=None)
    def test_fold_matches_naive(self, bits, width):
        h = GlobalHistory(64)
        for b in bits:
            h.push(b)
        n = len(bits)
        raw = h.low_bits(n)
        expected, tmp = 0, raw
        while tmp:
            expected ^= tmp & ((1 << width) - 1)
            tmp >>= width
        assert h.fold(n, width) == expected

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            GlobalHistory(0)


class TestPathHistory:
    def test_recent_order(self):
        p = PathHistory(4)
        for ip in [10, 20, 30]:
            p.push(ip)
        assert p.recent(2) == [30, 20]

    def test_capacity_eviction(self):
        p = PathHistory(2)
        for ip in [1, 2, 3]:
            p.push(ip)
        assert p.recent(5) == [3, 2]

    def test_hash_changes_with_path(self):
        p1, p2 = PathHistory(8), PathHistory(8)
        p1.push(0x100)
        p2.push(0x104)
        assert p1.hash_value(12) != p2.hash_value(12)

    def test_hash_width_validation(self):
        p = PathHistory(4)
        with pytest.raises(ValueError):
            p.hash_value(0)


class TestLocalHistoryTable:
    def test_per_ip_isolation(self):
        t = LocalHistoryTable(16, 8)
        t.push(0, True)
        t.push(1, False)
        assert t.get(0) == 1
        assert t.get(1) == 0

    def test_history_shift(self):
        t = LocalHistoryTable(16, 4)
        for b in [True, False, True]:
            t.push(5, b)
        assert t.get(5) == 0b101

    def test_history_bits_mask(self):
        t = LocalHistoryTable(16, 2)
        for _ in range(5):
            t.push(3, True)
        assert t.get(3) == 0b11

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            LocalHistoryTable(10, 4)

    def test_storage_bits(self):
        t = LocalHistoryTable(16, 8)
        assert t.storage_bits() == 128

    def test_aliasing_by_low_bits(self):
        t = LocalHistoryTable(4, 4)
        t.push(0, True)
        assert t.get(4) == t.get(0)  # ip 4 aliases ip 0


class TestHistoryState:
    def test_lockstep_update(self):
        s = HistoryState(global_capacity=16, path_capacity=4)
        s.update(0x40, True)
        s.update(0x44, False)
        assert s.global_history.to_list(2) == [0, 1]
        assert s.path_history.recent(2) == [0x44, 0x40]
        assert s.local_histories.get(0x40) == 1
