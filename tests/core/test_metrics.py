"""Tests for per-branch statistics and metrics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import BranchCounts, BranchStats, misprediction_fraction


class TestBranchCounts:
    def test_accuracy_empty_is_one(self):
        assert BranchCounts().accuracy == 1.0

    def test_accuracy(self):
        c = BranchCounts(executions=10, mispredictions=3)
        assert c.accuracy == pytest.approx(0.7)
        assert c.correct == 7

    def test_merge(self):
        a = BranchCounts(5, 2)
        a.merge(BranchCounts(5, 1))
        assert (a.executions, a.mispredictions) == (10, 3)


class TestBranchStats:
    def test_record_accumulates(self):
        s = BranchStats()
        s.record(1, True)
        s.record(1, False)
        s.record(2, True)
        assert s.total_executions == 3
        assert s.total_mispredictions == 1
        assert s.get(1).executions == 2
        assert s.get(1).mispredictions == 1
        assert len(s) == 2

    def test_accuracy_aggregate(self):
        s = BranchStats()
        for _ in range(8):
            s.record(1, True)
        for _ in range(2):
            s.record(1, False)
        assert s.accuracy == pytest.approx(0.8)

    def test_empty_accuracy(self):
        assert BranchStats().accuracy == 1.0

    def test_record_bulk_validation(self):
        s = BranchStats()
        with pytest.raises(ValueError):
            s.record_bulk(1, executions=2, mispredictions=3)

    def test_accuracy_excluding(self):
        s = BranchStats()
        s.record_bulk(1, 10, 5)  # hard branch
        s.record_bulk(2, 90, 0)  # easy branch
        assert s.accuracy == pytest.approx(0.95)
        assert s.accuracy_excluding([1]) == pytest.approx(1.0)
        assert s.accuracy_excluding([2]) == pytest.approx(0.5)

    def test_accuracy_excluding_everything(self):
        s = BranchStats()
        s.record_bulk(1, 10, 5)
        assert s.accuracy_excluding([1]) == 1.0

    def test_mean_accuracy_per_branch_unweighted(self):
        s = BranchStats()
        s.record_bulk(1, 100, 0)  # acc 1.0
        s.record_bulk(2, 2, 1)  # acc 0.5
        assert s.mean_accuracy_per_branch() == pytest.approx(0.75)

    def test_mean_executions_per_branch(self):
        s = BranchStats()
        s.record_bulk(1, 10, 0)
        s.record_bulk(2, 30, 0)
        assert s.mean_executions_per_branch() == pytest.approx(20.0)

    def test_mpki(self):
        s = BranchStats()
        s.record_bulk(1, 100, 5)
        assert s.mpki(10_000) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            s.mpki(0)

    def test_contains(self):
        s = BranchStats()
        s.record(7, True)
        assert 7 in s
        assert 8 not in s

    def test_merge_and_copy(self):
        a, b = BranchStats(), BranchStats()
        a.record_bulk(1, 10, 2)
        b.record_bulk(1, 5, 1)
        b.record_bulk(2, 3, 0)
        a.merge(b)
        assert a.get(1).executions == 15
        assert a.get(2).executions == 3
        c = a.copy()
        c.record(1, False)
        assert a.get(1).executions == 15  # copy is independent

    @given(
        events=st.lists(
            st.tuples(st.integers(0, 5), st.booleans()), min_size=1, max_size=200
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_totals_consistent_property(self, events):
        s = BranchStats()
        for ip, correct in events:
            s.record(ip, correct)
        assert s.total_executions == len(events)
        assert s.total_executions == sum(c.executions for _, c in s.items())
        assert s.total_mispredictions == sum(
            c.mispredictions for _, c in s.items()
        )
        assert 0.0 <= s.accuracy <= 1.0

    @given(
        a_events=st.lists(st.tuples(st.integers(0, 3), st.booleans()), max_size=50),
        b_events=st.lists(st.tuples(st.integers(0, 3), st.booleans()), max_size=50),
    )
    @settings(max_examples=30, deadline=None)
    def test_merge_commutative_property(self, a_events, b_events):
        def build(events):
            s = BranchStats()
            for ip, correct in events:
                s.record(ip, correct)
            return s

        ab = build(a_events)
        ab.merge(build(b_events))
        ba = build(b_events)
        ba.merge(build(a_events))
        assert ab.total_executions == ba.total_executions
        assert ab.total_mispredictions == ba.total_mispredictions
        assert dict(
            (ip, (c.executions, c.mispredictions)) for ip, c in ab.items()
        ) == dict((ip, (c.executions, c.mispredictions)) for ip, c in ba.items())


class TestMispredictionFraction:
    def test_basic(self):
        s = BranchStats()
        s.record_bulk(1, 10, 4)
        s.record_bulk(2, 10, 6)
        assert misprediction_fraction(s, [1]) == pytest.approx(0.4)
        assert misprediction_fraction(s, [1, 2]) == pytest.approx(1.0)

    def test_no_mispredictions(self):
        s = BranchStats()
        s.record_bulk(1, 10, 0)
        assert misprediction_fraction(s, [1]) == 0.0

    def test_duplicate_ips_counted_once(self):
        s = BranchStats()
        s.record_bulk(1, 10, 5)
        s.record_bulk(2, 10, 5)
        assert misprediction_fraction(s, [1, 1]) == pytest.approx(0.5)
