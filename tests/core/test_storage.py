"""Tests for storage accounting."""

import pytest

from repro.core.storage import (
    StorageBudget,
    bits_to_kib,
    kib_to_bits,
    saturating_counter_bits,
)


class _Component:
    def __init__(self, bits):
        self._bits = bits

    def storage_bits(self):
        return self._bits


class TestConversions:
    def test_kib_to_bits(self):
        assert kib_to_bits(8) == 65536

    def test_bits_to_kib(self):
        assert bits_to_kib(65536) == pytest.approx(8.0)

    def test_round_trip(self):
        assert bits_to_kib(kib_to_bits(64)) == pytest.approx(64.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            kib_to_bits(0)
        with pytest.raises(ValueError):
            bits_to_kib(-1)


class TestStorageBudget:
    def test_fits_within_budget(self):
        budget = StorageBudget(8)
        assert budget.fits(_Component(65536))

    def test_fits_with_slack(self):
        budget = StorageBudget(8, slack=0.10)
        assert budget.fits(_Component(int(65536 * 1.09)))
        assert not budget.fits(_Component(int(65536 * 1.2)))

    def test_utilization(self):
        budget = StorageBudget(8)
        assert budget.utilization(_Component(32768)) == pytest.approx(0.5)


class TestCounterBits:
    def test_counter_table(self):
        assert saturating_counter_bits(1024, 2) == 2048

    def test_validation(self):
        with pytest.raises(ValueError):
            saturating_counter_bits(10, 0)
