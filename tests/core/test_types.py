"""Tests for branch traces and slicing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.types import BranchKind, BranchRecord, BranchTrace, WorkloadTrace


def make_trace(n=100, instr_stride=5, kind=BranchKind.CONDITIONAL):
    ips = [0x1000 + 16 * (i % 7) for i in range(n)]
    taken = [i % 3 == 0 for i in range(n)]
    instr = [i * instr_stride for i in range(n)]
    return BranchTrace(
        ips=ips,
        taken=taken,
        kinds=[int(kind)] * n,
        instr_indices=instr,
        instr_count=n * instr_stride,
    )


class TestBranchRecord:
    def test_conditional_flag(self):
        r = BranchRecord(ip=4, taken=True, target=8)
        assert r.is_conditional

    def test_non_conditional(self):
        r = BranchRecord(ip=4, taken=True, target=8, kind=BranchKind.CALL)
        assert not r.is_conditional


class TestBranchTrace:
    def test_length_and_iteration(self):
        t = make_trace(10)
        assert len(t) == 10
        records = list(t)
        assert len(records) == 10
        assert records[0].ip == 0x1000
        assert records[0].taken is True

    def test_mismatched_columns_rejected(self):
        with pytest.raises(ValueError):
            BranchTrace(ips=[1, 2], taken=[True])

    def test_instr_count_must_exceed_last_index(self):
        with pytest.raises(ValueError):
            BranchTrace(
                ips=[1], taken=[True], instr_indices=[10], instr_count=5
            )

    def test_default_instr_count(self):
        t = BranchTrace(ips=[1, 2], taken=[True, False])
        assert t.instr_count == 2

    def test_static_branch_ips_unique_sorted(self):
        t = make_trace(50)
        ips = t.static_branch_ips()
        assert list(ips) == sorted(set(ips))
        assert len(ips) == 7

    def test_static_ips_exclude_non_conditional(self):
        t = BranchTrace(
            ips=[1, 2], taken=[True, True],
            kinds=[int(BranchKind.CONDITIONAL), int(BranchKind.CALL)],
        )
        assert list(t.static_branch_ips()) == [1]

    def test_num_conditional(self):
        t = BranchTrace(
            ips=[1, 2, 3], taken=[1, 1, 0],
            kinds=[0, 2, 0],
        )
        assert t.num_conditional() == 2

    def test_from_records_round_trip(self):
        records = [
            BranchRecord(ip=16 * i, taken=i % 2 == 0, target=4, instr_index=i)
            for i in range(10)
        ]
        t = BranchTrace.from_records(records)
        assert [r.ip for r in t] == [r.ip for r in records]
        assert [r.taken for r in t] == [r.taken for r in records]


class TestSlicing:
    def test_slices_cover_all_branches(self):
        t = make_trace(100, instr_stride=5)  # 500 instructions
        slices = t.slices(100)
        assert sum(len(s) for s in slices) == len(t)
        assert slices[0].start == 0
        assert slices[-1].stop == len(t)

    def test_slice_instruction_windows(self):
        t = make_trace(100, instr_stride=5)
        slices = t.slices(100)
        assert len(slices) == 5
        for k, s in enumerate(slices):
            assert s.instr_start == k * 100
            assert s.instr_count == 100

    def test_short_tail_dropped(self):
        # 60 branches * stride 5 = 300 instructions; slice length 200 ->
        # one full slice + 100-instruction tail (>= half) kept.
        t = make_trace(60, instr_stride=5)
        slices = t.slices(200)
        assert len(slices) == 2

    def test_tiny_tail_dropped(self):
        # 220 instructions, slice 200: 20-instruction tail dropped.
        t = make_trace(44, instr_stride=5)
        slices = t.slices(200)
        assert len(slices) == 1

    def test_invalid_slice_length(self):
        with pytest.raises(ValueError):
            make_trace(10).slices(0)

    def test_slice_views_match_parent(self):
        t = make_trace(40, instr_stride=5)
        s = t.slices(100)[1]
        np.testing.assert_array_equal(s.ips, t.ips[s.start : s.stop])
        np.testing.assert_array_equal(s.taken, t.taken[s.start : s.stop])

    @given(
        n=st.integers(1, 300),
        stride=st.integers(1, 9),
        slice_len=st.integers(10, 400),
    )
    @settings(max_examples=40, deadline=None)
    def test_slices_partition_property(self, n, stride, slice_len):
        t = make_trace(n, instr_stride=stride)
        slices = t.slices(slice_len)
        # Slices are contiguous and non-overlapping from the start.
        prev_stop = 0
        for s in slices:
            assert s.start == prev_stop
            prev_stop = s.stop
        # Every branch inside a slice's window belongs to that slice.
        for s in slices:
            inside = (t.instr_indices >= s.instr_start) & (
                t.instr_indices < s.instr_stop
            )
            assert inside.sum() == len(s)


class TestWorkloadTrace:
    def test_label(self):
        wt = WorkloadTrace(
            benchmark="b", input_name="i", trace=make_trace(5)
        )
        assert wt.label == "b/i"
