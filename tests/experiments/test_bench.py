"""Perf-trajectory harness: document schema, direction-aware baseline
comparison, a shrunken end-to-end scenario run, and the CLI exit codes."""

import json

import pytest

from repro.bench import (
    BENCH_SCHEMA_VERSION,
    MIN_COMPARABLE_SECONDS,
    BenchConfig,
    compare_to_baseline,
    load_bench_json,
    run_benchmarks,
    validate_bench_doc,
    write_bench_json,
)
from repro.bench import __main__ as bench_cli

TINY = BenchConfig(
    instructions=20_000,
    repeats=1,
    kernel_predictors=("bimodal",),
    scalar_predictors=(),
    jobs_levels=(1,),
    scaling_inputs=(0,),
)


def _doc(metrics):
    return {"schema": BENCH_SCHEMA_VERSION, "meta": {}, "config": {},
            "metrics": metrics}


def _metric(value, direction="lower", unit="s"):
    return {"value": value, "unit": unit, "direction": direction}


class TestValidation:
    def test_accepts_minimal_doc(self):
        validate_bench_doc(_doc({"a": _metric(1.0)}))

    def test_rejects_wrong_schema(self):
        with pytest.raises(ValueError, match="schema"):
            validate_bench_doc({"schema": "repro.bench/v0", "meta": {},
                                "config": {}, "metrics": {"a": _metric(1.0)}})

    def test_rejects_empty_metrics(self):
        with pytest.raises(ValueError, match="no metrics"):
            validate_bench_doc(_doc({}))

    def test_rejects_bad_direction_and_missing_fields(self):
        with pytest.raises(ValueError, match="direction"):
            validate_bench_doc(_doc({"a": _metric(1.0, direction="sideways")}))
        with pytest.raises(ValueError, match="missing"):
            validate_bench_doc(_doc({"a": {"value": 1.0, "unit": "s"}}))


class TestComparison:
    def test_detects_regressions_in_both_directions(self):
        base = _doc({
            "throughput": _metric(100.0, "higher", "branches/s"),
            "wall": _metric(10.0, "lower"),
        })
        cur = _doc({
            "throughput": _metric(50.0, "higher", "branches/s"),  # halved
            "wall": _metric(15.0, "lower"),  # 1.5x slower
        })
        names = {r["metric"] for r in compare_to_baseline(cur, base, 0.40)}
        assert names == {"throughput", "wall"}

    def test_within_band_is_clean(self):
        base = _doc({"wall": _metric(10.0, "lower")})
        cur = _doc({"wall": _metric(13.0, "lower")})  # +30% < 40%
        assert compare_to_baseline(cur, base, 0.40) == []

    def test_info_and_unmatched_metrics_ignored(self):
        base = _doc({"ratio": _metric(4.0, "info", "x")})
        cur = _doc({
            "ratio": _metric(1.0, "info", "x"),
            "brand_new": _metric(99.0, "lower"),
        })
        assert compare_to_baseline(cur, base, 0.40) == []

    def test_tiny_wall_clock_metrics_not_compared(self):
        v = MIN_COMPARABLE_SECONDS / 10
        base = _doc({"warm": _metric(v, "lower")})
        cur = _doc({"warm": _metric(v * 5, "lower")})  # 5x, but sub-floor
        assert compare_to_baseline(cur, base, 0.40) == []
        # Same ratio above the floor does regress.
        base = _doc({"warm": _metric(1.0, "lower")})
        cur = _doc({"warm": _metric(5.0, "lower")})
        assert len(compare_to_baseline(cur, base, 0.40)) == 1


class TestScenarios:
    def test_shrunken_run_produces_valid_doc(self, tmp_path):
        doc = run_benchmarks(
            config=TINY,
            only=["sim_throughput", "trace_store", "jobs_scaling"],
            echo=lambda _line: None,
        )
        validate_bench_doc(doc)
        metrics = doc["metrics"]
        assert "sim.bimodal.scalar.branches_per_sec" in metrics
        assert "sim.bimodal.kernel.branches_per_sec" in metrics
        assert "trace_store.cold_s" in metrics
        assert "parallel.jobs1.wall_s" in metrics
        assert doc["meta"]["tier"] == "quick"
        assert doc["config"]["instructions"] == 20_000
        # Round-trips through the writer/loader unchanged.
        out = write_bench_json(doc, tmp_path / "bench.json")
        assert load_bench_json(out) == json.loads(json.dumps(doc))

    def test_scalar_predictor_gets_batched_row(self):
        cfg = BenchConfig(
            instructions=20_000,
            repeats=1,
            kernel_predictors=(),
            scalar_predictors=("tage-sc-l-8kb",),
        )
        doc = run_benchmarks(
            config=cfg, only=["sim_throughput"], echo=lambda _line: None
        )
        metrics = doc["metrics"]
        assert "sim.tage-sc-l-8kb.scalar.branches_per_sec" in metrics
        assert "sim.tage-sc-l-8kb.batched.branches_per_sec" in metrics
        assert metrics["sim.tage-sc-l-8kb.batched_speedup"]["direction"] == "higher"

    def test_jobs_scaling_records_cores_and_gates_on_multicore(self):
        import os

        cfg = BenchConfig(
            instructions=20_000,
            repeats=1,
            kernel_predictors=("bimodal",),
            scalar_predictors=(),
            jobs_levels=(1, 2),
            scaling_inputs=(0,),
        )
        doc = run_benchmarks(
            config=cfg, only=["jobs_scaling"], echo=lambda _line: None
        )
        metrics = doc["metrics"]
        cores = os.cpu_count() or 1
        assert metrics["parallel.cores"]["value"] == cores
        assert metrics["parallel.cores"]["direction"] == "info"
        want = "higher" if cores >= 2 else "info"
        assert metrics["parallel.jobs2.speedup"]["direction"] == want

    def test_meta_git_sha_resolved_at_bench_time(self, monkeypatch):
        """Regression: a stale per-process git cache must not leak into
        the bench document's provenance header."""
        import subprocess

        from repro.obs import runmeta

        monkeypatch.setattr(runmeta, "_git_cache", ("0" * 40, True))
        doc = run_benchmarks(
            config=TINY, only=["trace_store"], echo=lambda _line: None
        )
        head = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(runmeta.__file__).rsplit("/", 1)[0],
            capture_output=True, text=True,
        ).stdout.strip()
        if not head:
            pytest.skip("not running inside a git checkout")
        assert doc["meta"]["git_sha"] == head

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenarios"):
            run_benchmarks(config=TINY, only=["nope"], echo=lambda _line: None)

    def test_fig7_quick_registered(self):
        # fig7_quick sweeps real quick-tier traces (too slow for this
        # shrunken run); CI exercises it and gates fig7.batched_speedup.
        from repro.bench import SCENARIOS

        assert "fig7_quick" in SCENARIOS


class TestCli:
    def test_check_exit_codes(self, tmp_path, monkeypatch):
        doc = _doc({"wall": _metric(5.0, "lower")})
        monkeypatch.setattr(bench_cli, "run_benchmarks", lambda only=None: doc)
        baseline = tmp_path / "baseline.json"
        write_bench_json(_doc({"wall": _metric(1.0, "lower")}), baseline)
        out = tmp_path / "out.json"
        argv = ["--out", str(out), "--baseline", str(baseline)]
        # Regression reported, but only --check turns it into a failure.
        assert bench_cli.main(argv) == 0
        assert bench_cli.main(argv + ["--check"]) == 1
        # A matching baseline is clean under --check.
        write_bench_json(doc, baseline)
        assert bench_cli.main(argv + ["--check"]) == 0
        assert json.loads(out.read_text())["schema"] == BENCH_SCHEMA_VERSION

    def test_missing_baseline_is_soft(self, tmp_path, monkeypatch):
        doc = _doc({"wall": _metric(5.0, "lower")})
        monkeypatch.setattr(bench_cli, "run_benchmarks", lambda only=None: doc)
        assert bench_cli.main(
            ["--out", str(tmp_path / "o.json"),
             "--baseline", str(tmp_path / "absent.json"), "--check"]
        ) == 0
