"""Tests for tier selection and config consistency."""

import repro.config as config


class TestActiveTier:
    def test_defaults_to_quick(self, monkeypatch):
        monkeypatch.delenv("REPRO_TIER", raising=False)
        assert config.active_tier() is config.QUICK_TIER

    def test_full_selected_by_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TIER", "full")
        assert config.active_tier() is config.FULL_TIER

    def test_case_insensitive(self, monkeypatch):
        monkeypatch.setenv("REPRO_TIER", "FULL")
        assert config.active_tier() is config.FULL_TIER

    def test_unknown_value_falls_back_to_quick(self, monkeypatch):
        monkeypatch.setenv("REPRO_TIER", "gigantic")
        assert config.active_tier() is config.QUICK_TIER


class TestDerivedConstants:
    def test_rare_thresholds_ordered(self):
        hi, lo = config.RARE_EXECUTION_THRESHOLDS
        assert hi > lo > 0

    def test_dependency_window_positive(self):
        assert config.DEPENDENCY_WINDOW_INSTRUCTIONS > 0

    def test_tier_instruction_math(self):
        for tier in (config.QUICK_TIER, config.FULL_TIER):
            assert tier.spec_instructions == (
                tier.spec_slices * config.SLICE_INSTRUCTIONS
            )
            assert tier.lcf_instructions == (
                tier.lcf_slices * config.SLICE_INSTRUCTIONS
            )

    def test_experiments_config_reexports(self):
        import repro.experiments.config as legacy

        assert legacy.SLICE_INSTRUCTIONS == config.SLICE_INSTRUCTIONS
        assert legacy.H2P_MIN_EXECUTIONS == config.H2P_MIN_EXECUTIONS
