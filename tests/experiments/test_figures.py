"""Shape tests for the figure experiments (paper Figs. 1-10).

Each test pins the qualitative claim the corresponding figure makes: who
wins, in which direction the trend goes, and roughly where the crossovers
fall — not the paper's absolute numbers (our substrate is a synthetic
simulator, not the authors' testbed).
"""

import numpy as np
import pytest

from repro.experiments.allocation_study import compute_allocation_study
from repro.experiments.cnn_study import compute_cnn_study
from repro.experiments.fig1 import compute_fig1
from repro.experiments.fig2 import compute_fig2
from repro.experiments.fig3 import compute_fig3, compute_fig4
from repro.experiments.fig5 import compute_fig5
from repro.experiments.fig7 import compute_fig7
from repro.experiments.fig8 import compute_fig8
from repro.experiments.fig9 import compute_fig9
from repro.experiments.fig10 import compute_fig10


@pytest.fixture(scope="module")
def fig1(lab):
    return compute_fig1(lab)


@pytest.fixture(scope="module")
def fig5(lab):
    return compute_fig5(lab)


class TestFig1:
    def test_variant_ordering_at_every_scale(self, fig1):
        for s in fig1.curves[0].scales:
            base = fig1.curve("tage-sc-l-8kb").at(s)
            big = fig1.curve("tage-sc-l-64kb").at(s)
            h2p = fig1.curve("perfect-h2ps").at(s)
            perfect = fig1.curve("perfect").at(s)
            assert base <= big <= perfect + 1e-9
            assert h2p <= perfect + 1e-9
            assert h2p >= base

    def test_opportunity_grows_with_scale(self, fig1):
        # Paper: 18.5% at 1x growing to 55.3% at 4x.
        assert 0.1 <= fig1.opportunity_at(1) <= 0.45
        assert fig1.opportunity_at(4) > fig1.opportunity_at(1) * 1.5

    def test_storage_scaling_gains_little(self, fig1):
        # Paper: 64KB returns just 2.7% additional IPC at 1x.
        gain = (
            fig1.curve("tage-sc-l-64kb").at(1)
            / fig1.curve("tage-sc-l-8kb").at(1)
            - 1
        )
        assert 0 <= gain < 0.12

    def test_imperfect_bp_saturates(self, fig1):
        curve = fig1.curve("tage-sc-l-8kb").relative_ipc
        steps = np.diff(curve)
        assert steps[-1] < steps[0]  # diminishing returns
        # Perfect BP keeps scaling: a visibly wider gap at 32x than at 1x.
        gap32 = fig1.curve("perfect").at(32) - fig1.curve("tage-sc-l-8kb").at(32)
        gap1 = fig1.curve("perfect").at(1) - fig1.curve("tage-sc-l-8kb").at(1)
        assert gap32 > 2 * gap1

    def test_h2ps_dominate_spec_opportunity(self, fig1):
        # Paper: H2Ps account for ~75.7% of the 1x opportunity on SPECint.
        assert fig1.h2p_share_at(1) > 0.5


class TestFig5:
    def test_h2p_share_much_lower_than_spec(self, fig1, fig5):
        # Paper's central contrast: 75.7% (SPECint) vs 37.8% (LCF) at 1x.
        assert fig5.h2p_share_at(1) < fig1.h2p_share_at(1) - 0.2

    def test_h2p_role_diminishes_with_scale(self, fig5):
        # Paper: 37.8% at 1x dropping to 33.7% at 32x.
        assert fig5.h2p_share_at(32) <= fig5.h2p_share_at(1) + 0.05

    def test_rare_branch_gap_remains(self, fig5):
        # Perfect-H2Ps stays far below perfect BP on LCF.
        assert fig5.curve("perfect").at(32) > 1.5 * fig5.curve("perfect-h2ps").at(32)


class TestFig2:
    def test_heavy_hitters_concentrate_mispredictions(self, lab):
        fig2 = compute_fig2(lab)
        # Paper: top five heavy hitters cover 37% of mispredictions on
        # average; ten H2Ps cover 55.3%.
        assert fig2.mean_coverage_top(5) > 0.25
        assert fig2.mean_coverage_top(10) >= fig2.mean_coverage_top(5)
        for curve in fig2.curves.values():
            assert (np.diff(curve) >= -1e-12).all()


class TestFig3:
    def test_rare_branch_distributions(self, lab):
        fig3 = compute_fig3(lab)
        d = fig3.distributions
        # Paper: execution distribution skews left (85% below 100 execs,
        # scaled to 10); misprediction distribution skews toward zero.
        assert d.executions.fractions[0] > 0.4
        assert d.executions.fractions[0] + d.executions.fractions[1] > 0.85
        # Accuracy has mass at both extremes (well-predicted majority plus
        # a significant badly-predicted fraction).
        assert d.accuracy.fractions[-1] > 0.1
        assert d.accuracy.fraction_at_or_below(0.2) > 0.02


class TestFig4:
    def test_rare_branch_accuracy_spread(self, lab):
        fig4 = compute_fig4(lab)
        spread = fig4.spread
        # Paper: std 0.35 in the first bin, dropping off for frequent
        # branches.
        assert spread.bin_std[0] > 0.2
        busy = spread.bin_counts[5:15].sum()
        if busy:
            later = np.average(
                spread.bin_std[5:15], weights=np.maximum(spread.bin_counts[5:15], 1)
            )
            assert later < spread.bin_std[0]


class TestFig7:
    def test_storage_sweep_shape(self, lab):
        fig7 = compute_fig7(lab)
        # 8KB is the baseline: fraction closed is 0 by construction.
        assert fig7.mean_fraction(8, 1) == pytest.approx(0.0)
        # The biggest single step is 8KB -> 64KB.
        step_64 = fig7.mean_fraction(64, 1) - fig7.mean_fraction(8, 1)
        later_steps = [
            fig7.mean_fraction(fig7.storages[i + 1], 1)
            - fig7.mean_fraction(fig7.storages[i], 1)
            for i in range(1, len(fig7.storages) - 1)
        ]
        assert step_64 > max(later_steps)
        # Paper: even 1024KB captures less than half the opportunity.
        assert fig7.mean_fraction(1024, 1) < 0.5
        # Gains shrink as the pipeline scales up.
        assert fig7.best_mean_fraction_at(32) < fig7.best_mean_fraction_at(1)


class TestFig8:
    def test_rare_branches_hold_substantial_opportunity(self, lab):
        fig8 = compute_fig8(lab)
        hi, lo = fig8.thresholds
        # Idealizing more branches (lower threshold) leaves less remaining.
        assert fig8.mean_remaining(lo) <= fig8.mean_remaining(hi)
        # Paper: ~34.3% of the opportunity remains after perfecting all
        # branches above the (scaled) 1000-execution threshold.
        assert fig8.mean_remaining(hi) > 0.2
        for app, vals in fig8.remaining.items():
            assert 0.0 <= vals[hi] <= 1.0


class TestFig9:
    def test_phase_scale_recurrence(self, lab):
        fig9 = compute_fig9(lab)
        hist = fig9.histogram
        assert sum(hist.fractions) == pytest.approx(1.0)
        # Paper: the distribution peaks at long recurrence intervals
        # (100K-1M instructions, scaled to 10K-100K), indicating
        # exploitable phase behaviour — i.e. the peak is NOT in the
        # shortest bins.
        assert hist.peak_bin() >= 3


class TestFig10:
    def test_register_value_structure(self, lab):
        fig10 = compute_fig10(lab, benchmarks=["605.mcf_s", "641.leela_s",
                                               "657.xz_s"])
        assert len(fig10.profiles) == 3
        for prof in fig10.profiles.values():
            # Observation 2: recognizable structure — entropy well below
            # the 32-bit maximum, with repeated values.
            assert 0 < prof.mean_entropy_bits < 16
        # Observation 1: distributions differ drastically across branches.
        assert fig10.distinct_pairs_fraction() > 0.5


class TestAllocationStudy:
    def test_h2ps_thrash_tage_tables(self, lab):
        result = compute_allocation_study(lab, benchmarks=["605.mcf_s"])
        study = result.studies["605.mcf_s"]
        # Paper Sec. IV-A: H2Ps allocate orders of magnitude more than
        # non-H2Ps, re-allocate the same entries, and consume an outsized
        # share of all allocations.
        assert study.h2p_dominates
        assert study.h2p.median_allocations > 5 * study.non_h2p.median_allocations
        assert study.h2p.reallocation_ratio >= 1.0
        assert study.h2p.mean_allocation_share > 10 * max(
            study.non_h2p.mean_allocation_share, 1e-6
        )


class TestCnnStudy:
    @pytest.fixture(scope="class")
    def cnn(self, lab):
        return compute_cnn_study(lab)

    def test_helper_beats_tage_on_h2p(self, cnn):
        assert cnn.helper_cross_input_accuracy > cnn.tage_accuracy_on_h2p

    def test_quantized_helper_retains_uplift(self, cnn):
        assert cnn.helper_quantized_cross_input_accuracy > cnn.tage_accuracy_on_h2p

    def test_generalizes_to_unseen_input(self, cnn):
        # Offline training on other inputs transfers (companion paper claim).
        assert cnn.helper_cross_input_accuracy > 0.9

    def test_deployed_helper_improves_end_to_end(self, cnn):
        assert cnn.augmented_accuracy_on_h2p > cnn.tage_accuracy_on_h2p

    def test_helper_is_small(self, cnn):
        assert cnn.helper_storage_kib_2bit < 4.0
