"""Interrupting an in-flight prefetch must leave zero orphan workers.

Run in a subprocess so the test can deliver a real SIGINT mid-prefetch:
the interrupted process catches KeyboardInterrupt, closes the Lab, and
then reports how many worker processes are still alive.  Before the
teardown-ordering fix, ``ParallelScheduler.close()`` could leave queued
jobs running to completion on the pool after the user had already
interrupted the batch.
"""

import os
import subprocess
import sys
from pathlib import Path

REPO_SRC = Path(__file__).resolve().parents[2] / "src"

INTERRUPT_SCRIPT = r"""
import multiprocessing
import os
import signal
import sys
import threading

from repro.config import ExperimentTier
from repro.experiments.lab import Lab
from repro.parallel.jobs import SimJob

tier = ExperimentTier(name="intr", spec_inputs=1, spec_slices=1, lcf_slices=1)
lab = Lab(tier=tier, jobs=2)
jobs = [
    SimJob("game", 0, 400_000, predictor, 100_000)
    for predictor in (
        "tage-sc-l-8kb", "tage-sc-l-64kb", "gshare", "bimodal",
        "two-level-local", "perceptron",
    )
]

# Interrupt the batch while workers are mid-job.
timer = threading.Timer(0.5, lambda: os.kill(os.getpid(), signal.SIGINT))
timer.start()
interrupted = False
try:
    lab.prefetch(jobs)
except KeyboardInterrupt:
    interrupted = True
timer.cancel()
try:
    lab.close()
except KeyboardInterrupt:
    # The signal landed between prefetch and close; close() is idempotent.
    interrupted = True
    lab.close()
orphans = multiprocessing.active_children()
print(f"INTERRUPTED {interrupted}")
print(f"ORPHANS {len(orphans)}")
sys.exit(0 if not orphans else 3)
"""


def test_sigint_during_prefetch_leaves_no_orphan_workers():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", INTERRUPT_SCRIPT],
        capture_output=True,
        text=True,
        timeout=120,
        env=env,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "ORPHANS 0" in proc.stdout
