"""The ``introspect`` runner experiment: H2P provider attribution study."""

from repro.experiments.introspect import (
    HEATMAP_CELLS,
    IntrospectStudy,
    _sparkline,
    compute_introspect,
)
from repro.obs import introspect


class TestSparkline:
    def test_empty_is_placeholder(self):
        assert _sparkline({}) == "-" * HEATMAP_CELLS

    def test_rebins_to_fixed_width_with_peak_at_nine(self):
        heat = _sparkline({"0": 10, "1": 1, "19": 5})
        assert len(heat) == HEATMAP_CELLS
        assert "9" in heat
        assert all(c.isdigit() for c in heat)


class TestStudy:
    def test_single_benchmark_attribution(self, lab):
        was_enabled = introspect.is_enabled()
        study = compute_introspect(lab, benchmarks=["605.mcf_s"], top_branches=2)
        # The experiment restores the effective introspection state.
        assert introspect.is_enabled() == was_enabled
        assert isinstance(study, IntrospectStudy)
        assert study.predictor == "tage-sc-l-8kb"
        (report,) = study.reports
        assert report["workload"] == "605.mcf_s"
        # TAGE-SC-L introspection rides the batch-of-one replay by default.
        assert report["path"] == "batched"
        assert report["static_branches"] > 0
        # Presets are built with allocation tracking forced on.
        assert report["total_allocations"] > 0
        # mcf is H2P-heavy: the screen yields rows at the quick tier.
        assert study.rows
        assert len(study.rows) <= 2
        for row in study.rows:
            assert row.benchmark == "605.mcf_s"
            assert 0.0 <= row.accuracy < 1.0
            assert row.top_source == "base" or row.top_source == "alt" \
                or row.top_source.startswith("table")
            assert 0.0 <= row.alt_frac <= 1.0
            assert len(row.heat) == HEATMAP_CELLS
        rendered = study.render()
        assert "Prediction introspection" in rendered
        assert "605.mcf_s" in rendered
