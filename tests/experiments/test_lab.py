"""Tests for the lab caching layer, config tiers, and reporting."""

import pytest

from repro.config import (
    EXEC_SCALE,
    FULL_TIER,
    H2P_MIN_EXECUTIONS,
    H2P_MIN_MISPREDICTIONS,
    QUICK_TIER,
    SLICE_INSTRUCTIONS,
    SLICE_SCALE,
)
from repro.experiments.lab import PREDICTOR_FACTORIES, Lab
from repro.experiments.reporting import (
    format_cell,
    format_histogram,
    format_series,
    format_table,
)


class TestConfigScaling:
    def test_slice_length_scaled(self):
        assert SLICE_INSTRUCTIONS == 30_000_000 // SLICE_SCALE

    def test_h2p_thresholds_scaled_consistently(self):
        assert H2P_MIN_EXECUTIONS == 15_000 // SLICE_SCALE
        assert H2P_MIN_MISPREDICTIONS == 1_000 // SLICE_SCALE

    def test_tiers(self):
        assert QUICK_TIER.spec_instructions == QUICK_TIER.spec_slices * SLICE_INSTRUCTIONS
        assert FULL_TIER.spec_slices > QUICK_TIER.spec_slices
        assert EXEC_SCALE * 10 == SLICE_SCALE


class TestLab:
    def test_predictor_registry_covers_presets(self):
        for kib in (8, 64, 128, 256, 512, 1024):
            assert f"tage-sc-l-{kib}kb" in PREDICTOR_FACTORIES

    def test_trace_cached(self, lab):
        t1 = lab.trace("605.mcf_s", 0, instructions=50_000)
        t2 = lab.trace("605.mcf_s", 0, instructions=50_000)
        assert t1 is t2

    def test_simulation_cached(self, lab):
        r1 = lab.simulate("605.mcf_s", 0, "tage-sc-l-8kb", instructions=50_000)
        r2 = lab.simulate("605.mcf_s", 0, "tage-sc-l-8kb", instructions=50_000)
        assert r1 is r2

    def test_unknown_workload(self, lab):
        with pytest.raises(KeyError):
            lab.trace("nope", 0)

    def test_unknown_predictor(self, lab):
        with pytest.raises(KeyError):
            lab.simulate("605.mcf_s", 0, "nope")

    def test_disk_cache_round_trip(self, tmp_path):
        lab1 = Lab(cache_dir=str(tmp_path))
        r1 = lab1.simulate("605.mcf_s", 0, "tage-sc-l-8kb", instructions=30_000)
        lab2 = Lab(cache_dir=str(tmp_path))
        r2 = lab2.simulate("605.mcf_s", 0, "tage-sc-l-8kb", instructions=30_000)
        assert r2.mispredictions == r1.mispredictions
        assert len(list(tmp_path.iterdir())) >= 1

    def test_aggregate_stats_separates_workloads(self, lab):
        pooled, instructions = lab.aggregate_stats(["605.mcf_s"])
        single = lab.simulate("605.mcf_s", 0, "tage-sc-l-8kb")
        assert instructions >= single.instr_count
        assert pooled.total_executions >= single.stats.total_executions


class TestReporting:
    def test_format_cell(self):
        assert format_cell(None) == "-"
        assert format_cell(True) == "yes"
        assert format_cell(1.23456, precision=2) == "1.23"
        assert format_cell("x") == "x"

    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [30, 4.0]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len({len(line) for line in lines[1:]}) == 1  # aligned widths

    def test_format_table_row_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_format_series(self):
        out = format_series("lbl", [1, 2], [0.5, 0.25])
        assert out.startswith("lbl:")
        assert "1=0.500" in out

    def test_format_histogram(self):
        out = format_histogram([0.0, 1.0, 2.0], [0.25, 0.75])
        assert "[0.0, 1.0): 0.2500" in out
